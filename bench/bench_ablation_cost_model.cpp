// Ablation A1: the exponential cost model of Section V-A.
//
// Online_CP with the paper's exponential weights vs the same algorithm with
// linear (utilization-proportional) weights vs SP (uniform weights). This
// isolates the paper's motivating claim: the exponential model balances
// load, admitting more requests once the network saturates. Thresholds are
// relaxed (sigma -> large) for all variants so only the routing weights
// differ.
#include "bench_common.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "sim/simulator.h"
#include "topology/rocketfuel.h"

int main() {
  using namespace nfvm;
  const std::size_t num_requests = bench::online_sequence_length(300);

  std::cout << "# Ablation A1: routing-weight model inside Online_CP ("
            << num_requests << " arrivals)\n";
  std::cout << "# exponential = paper Eq.(1)-(2); linear = weight proportional to\n";
  std::cout << "# utilization; SP = uniform weights. Thresholds relaxed for all.\n";

  util::Table table({"topology", "exponential", "linear", "sp_uniform",
                     "exp_bw_util", "lin_bw_util"});

  for (int which = 0; which < 2; ++which) {
    util::Rng rng(11);
    topo::Topology topo;
    if (which == 0) {
      topo = topo::make_as1755(rng);
    } else {
      topo::WaxmanOptions wo;
      wo.target_mean_degree = 3.0;  // sparse: load balancing matters most
      topo = topo::make_waxman(100, rng, wo);
    }

    util::Rng workload(1234);
    sim::RequestGenerator gen(topo, workload);
    const std::vector<nfv::Request> requests = gen.sequence(num_requests);

    core::OnlineCpOptions exp_opts;
    exp_opts.sigma_e = 1e12;
    exp_opts.sigma_v = 1e12;
    core::OnlineCp exponential(topo, exp_opts);

    core::OnlineCpOptions lin_opts = exp_opts;
    lin_opts.linear_weights = true;
    core::OnlineCp linear(topo, lin_opts);

    core::OnlineSp sp(topo);

    const sim::SimulationMetrics me = sim::run_online(exponential, requests);
    const sim::SimulationMetrics ml = sim::run_online(linear, requests);
    const sim::SimulationMetrics ms = sim::run_online(sp, requests);

    table.begin_row()
        .add(topo.name)
        .add(me.num_admitted)
        .add(ml.num_admitted)
        .add(ms.num_admitted)
        .add(me.final_bandwidth_utilization, 3)
        .add(ml.final_bandwidth_utilization, 3);
  }
  bench::finish("ablation_cost_model", table);
  return 0;
}
