// Ablation A2: the effect of K (the maximum number of service-chain
// instances) on Appro_Multi's cost and running time, plus the
// branch-and-bound combination search against the exhaustive sweep.
//
// Cost is non-increasing in K (more combinations are explored) while the
// combination space grows roughly with C(|V_S|, K); the paper fixes K = 3.
// Every K row runs BOTH searches over the same requests: the row reports the
// branch-and-bound timings/counters and `speedup_vs_exhaustive` (legacy
// wall time / branch-and-bound wall time). The two searches must agree
// exactly on every decision — the bench exits non-zero if they diverge.
// The trailing beam rows (K = 6, m = 2 and m = 4) measure the opt-in
// approximate mode; their `exact` column records whether the beamed cost
// still matched the exhaustive K = 6 cost on this workload.
//
// Two regimes are measured:
//  * a homogeneous random (Waxman) network with randomly placed servers,
//    where a server near the source is usually available and one chain
//    instance is already near-optimal (K buys nothing but time), and
//  * the hierarchical GEANT-like network with servers at major PoPs and
//    small receiver groups (regional multicast), where server placement
//    moves the cost a lot even though one well-placed instance usually
//    suffices - a steep combination landscape that the branch-and-bound
//    bounds prune more than half away.
#include "bench_common.h"
#include "topology/geant.h"

namespace {

using namespace nfvm;

constexpr std::size_t kMaxK = 6;

struct ModeResult {
  bench::OfflineStats stats;
  std::size_t evaluated = 0;
  std::size_t pruned = 0;
};

ModeResult run_mode(const topo::Topology& topo, const core::LinearCosts& costs,
                    const std::vector<nfv::Request>& requests, std::size_t k,
                    core::ApproMultiOptions::Search search,
                    std::size_t beam_width) {
  ModeResult r;
  r.stats = bench::run_offline_batch(requests, [&](const nfv::Request& req) {
    core::ApproMultiOptions opts;
    opts.max_servers = k;
    opts.search = search;
    opts.beam_width = beam_width;
    core::OfflineSolution sol = core::appro_multi(topo, costs, req, opts);
    r.evaluated += sol.combinations_explored;
    r.pruned += sol.combinations_pruned;
    return sol;
  });
  return r;
}

void add_row(util::Table& table, const std::string& topo_name, std::size_t k,
             const std::string& search, const ModeResult& r, double k1_cost,
             double legacy_ms, std::size_t num_requests, bool exact) {
  const std::size_t space = r.evaluated + r.pruned;
  const std::size_t per_req = std::max<std::size_t>(num_requests, 1);
  table.begin_row()
      .add(topo_name)
      .add(k)
      .add(search)
      .add(r.stats.cost.mean(), 2)
      .add(k1_cost > 0 ? r.stats.cost.mean() / k1_cost : 0.0, 3)
      .add(r.stats.time_ms.mean(), 3)
      .add(r.stats.servers_used.mean(), 2)
      .add(r.evaluated / per_req)
      .add(r.pruned / per_req)
      .add(space > 0 ? 100.0 * static_cast<double>(r.pruned) /
                           static_cast<double>(space)
                     : 0.0,
           1)
      .add(r.stats.time_ms.mean() > 0 ? legacy_ms / r.stats.time_ms.mean() : 0.0,
           2)
      .add(exact ? "yes" : "no");
}

/// True when the two searches agreed on every request — the decisions are
/// bitwise-deterministic, so aggregate equality means per-request equality
/// up to cost-sum rounding.
bool same_decisions(const ModeResult& a, const ModeResult& b) {
  return a.stats.admitted == b.stats.admitted &&
         a.stats.rejected == b.stats.rejected &&
         a.stats.cost.mean() == b.stats.cost.mean() &&
         a.stats.servers_used.mean() == b.stats.servers_used.mean();
}

bool sweep(const topo::Topology& topo, const core::LinearCosts& costs,
           const std::vector<nfv::Request>& requests, util::Table& table) {
  bool all_exact = true;
  double k1_cost = 0.0;
  double legacy_k6_ms = 0.0;
  double bnb_k6_cost = 0.0;
  for (std::size_t k = 1; k <= kMaxK; ++k) {
    const ModeResult legacy = run_mode(topo, costs, requests, k,
                                       core::ApproMultiOptions::Search::kLegacySweep, 0);
    const ModeResult bnb = run_mode(topo, costs, requests, k,
                                    core::ApproMultiOptions::Search::kBranchAndBound, 0);
    const bool exact = same_decisions(legacy, bnb);
    if (!exact) {
      std::cerr << "ERROR: branch-and-bound diverged from the exhaustive sweep "
                << "on " << topo.name << " at K=" << k << "\n";
      all_exact = false;
    }
    if (k == 1) k1_cost = bnb.stats.cost.mean();
    if (k == kMaxK) {
      legacy_k6_ms = legacy.stats.time_ms.mean();
      bnb_k6_cost = bnb.stats.cost.mean();
    }
    add_row(table, topo.name, k, "bnb", bnb, k1_cost,
            legacy.stats.time_ms.mean(), requests.size(), exact);
  }
  for (const std::size_t m : {std::size_t{2}, std::size_t{4}}) {
    const ModeResult beam = run_mode(topo, costs, requests, kMaxK,
                                     core::ApproMultiOptions::Search::kBranchAndBound, m);
    add_row(table, topo.name, kMaxK, "beam_m" + std::to_string(m), beam,
            k1_cost, legacy_k6_ms, requests.size(),
            beam.stats.cost.mean() == bnb_k6_cost);
  }
  return all_exact;
}

}  // namespace

int main() {
  const std::size_t per_point = bench::offline_requests_per_point(10);

  std::cout << "# Ablation A2: Appro_Multi cost/time vs K, "
               "branch-and-bound vs exhaustive sweep\n";
  std::cout << "# requests per data point: " << per_point << "\n";

  util::Table table({"topology", "K", "search", "mean_cost", "cost_vs_K1",
                     "mean_ms", "mean_servers", "combos_evaluated",
                     "combos_pruned", "pct_pruned", "speedup_vs_exhaustive",
                     "exact"});

  bool all_exact = true;
  {
    util::Rng rng(1100);
    const topo::Topology topo = bench::make_sweep_topology(100, rng);
    const core::LinearCosts costs = core::random_costs(topo, rng);
    sim::RequestGenOptions gen_opts;
    gen_opts.min_dest_ratio = 0.10;
    gen_opts.max_dest_ratio = 0.10;
    util::Rng workload(2100);
    sim::RequestGenerator gen(topo, workload, gen_opts);
    all_exact &= sweep(topo, costs, gen.sequence(per_point), table);
  }
  {
    util::Rng rng(1200);
    const topo::Topology topo = topo::make_geant(rng);
    const core::LinearCosts costs = core::random_costs(topo, rng);
    sim::RequestGenOptions gen_opts;
    gen_opts.min_dest_ratio = 0.10;
    gen_opts.max_dest_ratio = 0.10;
    util::Rng workload(2200);
    sim::RequestGenerator gen(topo, workload, gen_opts);
    all_exact &= sweep(topo, costs, gen.sequence(per_point * 2), table);
  }
  bench::finish("ablation_k", table);
  if (!all_exact) {
    std::cerr << "FAILED: exactness check (see ERROR lines above)\n";
    return 1;
  }
  return 0;
}
