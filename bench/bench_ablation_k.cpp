// Ablation A2: the effect of K (the maximum number of service-chain
// instances) on Appro_Multi's cost and running time.
//
// Cost is non-increasing in K (more combinations are explored) while running
// time grows roughly with C(|V_S|, K); the paper fixes K = 3.
//
// Two regimes are measured:
//  * a homogeneous random (Waxman) network with randomly placed servers,
//    where a server near the source is usually available and one chain
//    instance is already near-optimal (K buys nothing but time), and
//  * the hierarchical GEANT-like network with servers at major PoPs, where
//    destination clusters sit in distant regions and extra instances
//    genuinely cut bandwidth cost - the effect the paper's Fig. 5 narrative
//    attributes to K.
#include "bench_common.h"
#include "topology/geant.h"

namespace {

using namespace nfvm;

void sweep(const topo::Topology& topo, const core::LinearCosts& costs,
           const std::vector<nfv::Request>& requests, util::Table& table) {
  double k1_cost = 0.0;
  for (std::size_t k = 1; k <= 4; ++k) {
    std::size_t combos = 0;
    const bench::OfflineStats stats = bench::run_offline_batch(
        requests, [&](const nfv::Request& r) {
          core::ApproMultiOptions opts;
          opts.max_servers = k;
          core::OfflineSolution sol = core::appro_multi(topo, costs, r, opts);
          combos += sol.combinations_explored;
          return sol;
        });
    if (k == 1) k1_cost = stats.cost.mean();
    table.begin_row()
        .add(topo.name)
        .add(k)
        .add(stats.cost.mean(), 2)
        .add(k1_cost > 0 ? stats.cost.mean() / k1_cost : 0.0, 3)
        .add(stats.time_ms.mean(), 2)
        .add(stats.servers_used.mean(), 2)
        .add(combos / std::max<std::size_t>(requests.size(), 1));
  }
}

}  // namespace

int main() {
  const std::size_t per_point = bench::offline_requests_per_point(10);

  std::cout << "# Ablation A2: Appro_Multi cost/time vs K\n";
  std::cout << "# requests per data point: " << per_point << "\n";

  util::Table table({"topology", "K", "mean_cost", "cost_vs_K1", "mean_ms",
                     "mean_servers", "combinations"});

  {
    util::Rng rng(1100);
    const topo::Topology topo = bench::make_sweep_topology(100, rng);
    const core::LinearCosts costs = core::random_costs(topo, rng);
    sim::RequestGenOptions gen_opts;
    gen_opts.min_dest_ratio = 0.15;
    gen_opts.max_dest_ratio = 0.15;
    util::Rng workload(2100);
    sim::RequestGenerator gen(topo, workload, gen_opts);
    sweep(topo, costs, gen.sequence(per_point), table);
  }
  {
    util::Rng rng(1200);
    const topo::Topology topo = topo::make_geant(rng);
    const core::LinearCosts costs = core::random_costs(topo, rng);
    sim::RequestGenOptions gen_opts;
    gen_opts.min_dest_ratio = 0.20;
    gen_opts.max_dest_ratio = 0.20;
    util::Rng workload(2200);
    sim::RequestGenerator gen(topo, workload, gen_opts);
    sweep(topo, costs, gen.sequence(per_point * 2), table);
  }
  bench::finish("ablation_k", table);
  return 0;
}
