// Ablation A4: the Steiner engine inside Appro_Multi.
//
// The paper builds on Kou-Markowsky-Berman [12]; Takahashi-Matsuyama is the
// other classic 2-approximation and is cheaper per call (no metric-closure
// MST + expansion). This ablation compares solution cost and running time of
// Appro_Multi under both engines - evidence for (or against) the paper's
// choice of [12].
#include "bench_common.h"
#include "graph/steiner.h"

int main() {
  using namespace nfvm;
  const std::size_t per_point = bench::offline_requests_per_point(10);

  std::cout << "# Ablation A4: KMB vs Takahashi-Matsuyama inside Appro_Multi (K=3)\n";
  std::cout << "# requests per data point: " << per_point << "\n";

  util::Table table(
      {"n", "kmb_cost", "tm_cost", "tm_vs_kmb", "kmb_ms", "tm_ms"});

  for (std::size_t n : {50u, 100u, 150u}) {
    util::Rng rng(1300 + n);
    const topo::Topology topo = bench::make_sweep_topology(n, rng);
    const core::LinearCosts costs = core::random_costs(topo, rng);

    sim::RequestGenOptions gen_opts;
    gen_opts.min_dest_ratio = 0.15;
    gen_opts.max_dest_ratio = 0.15;
    util::Rng workload(2300 + n);
    sim::RequestGenerator gen(topo, workload, gen_opts);
    const std::vector<nfv::Request> requests = gen.sequence(per_point);

    const auto run = [&](graph::SteinerEngine engine) {
      return bench::run_offline_batch(requests, [&](const nfv::Request& r) {
        core::ApproMultiOptions opts;
        opts.max_servers = 3;
        opts.steiner_engine = engine;
        return core::appro_multi(topo, costs, r, opts);
      });
    };
    const bench::OfflineStats kmb = run(graph::SteinerEngine::kKmb);
    const bench::OfflineStats tm = run(graph::SteinerEngine::kTakahashiMatsuyama);

    table.begin_row()
        .add(n)
        .add(kmb.cost.mean(), 2)
        .add(tm.cost.mean(), 2)
        .add(kmb.cost.mean() > 0 ? tm.cost.mean() / kmb.cost.mean() : 0.0, 3)
        .add(kmb.time_ms.mean(), 2)
        .add(tm.time_ms.mean(), 2);
  }
  bench::finish("ablation_steiner_engine", table);
  return 0;
}
