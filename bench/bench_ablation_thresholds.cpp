// Ablation A3: Online_CP's admission-control thresholds.
//
// The competitive analysis (Theorem 2) needs sigma_v = sigma_e = |V| - 1
// with alpha = beta = 2|V|, but those constants reject trees once links
// average ~35-45% utilization. This sweep multiplies the thresholds to show
// the practical tradeoff: literal thresholds protect worst-case guarantees
// at the price of throughput; relaxed thresholds let the exponential
// weights' load balancing dominate.
#include "bench_common.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "core/online_sp_static.h"
#include "sim/simulator.h"

int main() {
  using namespace nfvm;
  const std::size_t num_requests = bench::online_sequence_length(300);

  std::cout << "# Ablation A3: Online_CP threshold sensitivity (n=100 sparse, "
            << num_requests << " arrivals)\n";

  util::Rng rng(77);
  topo::WaxmanOptions wo;
  wo.target_mean_degree = 3.0;
  const topo::Topology topo = topo::make_waxman(100, rng, wo);

  util::Rng workload(1234);
  sim::RequestGenerator gen(topo, workload);
  const std::vector<nfv::Request> requests = gen.sequence(num_requests);

  util::Table table({"sigma_multiplier", "admitted", "bw_util", "cpu_util"});

  const double base_sigma = static_cast<double>(topo.num_switches()) - 1.0;
  for (double mult : {0.5, 1.0, 2.0, 4.0, 8.0, 1e9}) {
    core::OnlineCpOptions opts;
    opts.sigma_e = base_sigma * mult;
    opts.sigma_v = base_sigma * mult;
    core::OnlineCp cp(topo, opts);
    const sim::SimulationMetrics m = sim::run_online(cp, requests);
    table.begin_row()
        .add(mult >= 1e9 ? std::string("inf") : util::format_double(mult, 1))
        .add(m.num_admitted)
        .add(m.final_bandwidth_utilization, 3)
        .add(m.final_compute_utilization, 3);
  }

  // Baselines on the same arrival sequence for reference.
  core::OnlineSp sp(topo);
  core::OnlineSpStatic sp_static(topo);
  const sim::SimulationMetrics msp = sim::run_online(sp, requests);
  const sim::SimulationMetrics mst = sim::run_online(sp_static, requests);
  table.begin_row()
      .add("SP_adaptive")
      .add(msp.num_admitted)
      .add(msp.final_bandwidth_utilization, 3)
      .add(msp.final_compute_utilization, 3);
  table.begin_row()
      .add("SP_static")
      .add(mst.num_admitted)
      .add(mst.final_bandwidth_utilization, 3)
      .add(mst.final_compute_utilization, 3);
  bench::finish("ablation_thresholds", table);
  return 0;
}
