// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary prints `#`-prefixed metadata lines followed by an aligned
// whitespace-separated table (util::Table), so the whole harness output is
// trivially parsable. Each binary additionally emits a machine-readable
// BENCH_<name>.json artifact (schema "nfvm-bench-v1": metadata, the table as
// per-data-point rows, wall time, and a final metrics-registry snapshot)
// when NFVM_BENCH_JSON_DIR names a directory - compare artifacts across runs
// with `nfvm-report` (see docs/observability.md). Workload sizes scale with
// environment knobs:
//   NFVM_BENCH_REQUESTS - requests averaged per offline data point
//   NFVM_BENCH_ONLINE_REQUESTS - arrival-sequence length for online benches
//   NFVM_BENCH_JSON_DIR - when set, write BENCH_<name>.json here at finish
//   NFVM_BENCH_METRICS_JSON - when set, dump the metrics registry to this
//     file when the binary exits (see docs/observability.md)
#pragma once

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/alg_one_server.h"
#include "core/appro_multi.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/request_gen.h"
#include "topology/waxman.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace nfvm::bench {

namespace detail {

/// Writes the global metrics registry to $NFVM_BENCH_METRICS_JSON (if set)
/// when the process exits, so every bench binary exports its instrumentation
/// without per-binary wiring.
struct MetricsAtExit {
  ~MetricsAtExit() {
    const char* path = std::getenv("NFVM_BENCH_METRICS_JSON");
    if (path == nullptr || *path == '\0') return;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot open NFVM_BENCH_METRICS_JSON=" << path << "\n";
      return;
    }
    obs::Registry::global().write_json(out);
  }
};

inline const MetricsAtExit metrics_at_exit{};

}  // namespace detail

inline std::size_t offline_requests_per_point(std::size_t fallback = 10) {
  const auto v = util::env_int("NFVM_BENCH_REQUESTS", static_cast<long>(fallback));
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

inline std::size_t online_sequence_length(std::size_t fallback = 300) {
  const auto v =
      util::env_int("NFVM_BENCH_ONLINE_REQUESTS", static_cast<long>(fallback));
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

/// GT-ITM-like topology for the size sweeps: mean degree ~4 at every n, 10%
/// servers, paper capacity ranges.
inline topo::Topology make_sweep_topology(std::size_t n, util::Rng& rng) {
  topo::WaxmanOptions opts;
  opts.target_mean_degree = 4.0;
  return topo::make_waxman(n, rng, opts);
}

struct OfflineStats {
  util::RunningStats cost;
  util::RunningStats time_ms;
  util::RunningStats servers_used;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
};

/// Runs one offline algorithm over a request batch, timing each call.
inline OfflineStats run_offline_batch(
    const std::vector<nfv::Request>& requests,
    const std::function<core::OfflineSolution(const nfv::Request&)>& algorithm) {
  OfflineStats stats;
  for (const nfv::Request& request : requests) {
    util::Stopwatch watch;
    const core::OfflineSolution sol = algorithm(request);
    stats.time_ms.add(watch.elapsed_ms());
    if (sol.admitted) {
      ++stats.admitted;
      stats.cost.add(sol.tree.cost);
      stats.servers_used.add(static_cast<double>(sol.tree.servers.size()));
    } else {
      ++stats.rejected;
    }
  }
  return stats;
}

namespace detail {

/// True when the whole cell parses as one JSON-compatible number (the table
/// stores strings; numeric cells become JSON numbers in the artifact).
inline bool parse_cell_number(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) return false;
  if (!std::isfinite(value)) return false;  // "inf"/"nan" cells stay strings
  *out = value;
  return true;
}

/// Process wall clock for the artifact: one static stopwatch started at
/// first use of this header (static init), read at finish().
inline util::Stopwatch& process_stopwatch() {
  static util::Stopwatch watch;
  return watch;
}

[[maybe_unused]] inline const bool process_stopwatch_started =
    (process_stopwatch(), true);

}  // namespace detail

/// Writes <dir>/BENCH_<name>.json when $NFVM_BENCH_JSON_DIR is set: an
/// "nfvm-bench-v1" artifact carrying `meta`, the table rows (numeric cells
/// as numbers), the process wall time and a final snapshot of the metrics
/// registry. No-op otherwise.
inline void write_artifact(const std::string& name, const util::Table& table,
                           std::vector<std::pair<std::string, std::string>> meta = {}) {
  const char* dir = std::getenv("NFVM_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot open " << path << " (NFVM_BENCH_JSON_DIR)\n";
    return;
  }

  // Workload knobs every bench honors are recorded uniformly.
  meta.emplace_back("requests_per_point",
                    std::to_string(offline_requests_per_point()));
  meta.emplace_back("online_sequence_length",
                    std::to_string(online_sequence_length()));

  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("nfvm-bench-v1");
  w.key("name").value(name);
  w.key("meta").begin_object();
  for (const auto& [key, value] : meta) w.key(key).value(value);
  w.end_object();
  w.key("wall_time_s").value(detail::process_stopwatch().elapsed_seconds());
  w.key("columns").begin_array();
  for (std::size_t c = 0; c < table.num_columns(); ++c) w.value(table.column(c));
  w.end_array();
  w.key("rows").begin_array();
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    w.begin_object();
    for (std::size_t c = 0; c < table.num_columns(); ++c) {
      const std::string& cell = table.cell(r, c);
      w.key(table.column(c));
      double number = 0.0;
      if (detail::parse_cell_number(cell, &number)) {
        w.value(number);
      } else {
        w.value(cell);
      }
    }
    w.end_object();
  }
  w.end_array();
  std::string metrics = obs::Registry::global().to_json();
  while (!metrics.empty() && std::isspace(static_cast<unsigned char>(metrics.back()))) {
    metrics.pop_back();
  }
  w.key("metrics").raw_value(metrics);
  w.end_object();
  out << "\n";
  std::cerr << "# bench artifact written to " << path << "\n";
}

/// Prints `table` to stdout and emits the BENCH_<name>.json artifact.
/// Call once, at the end of main.
inline void finish(const std::string& name, const util::Table& table,
                   std::vector<std::pair<std::string, std::string>> meta = {}) {
  table.print(std::cout);
  write_artifact(name, table, std::move(meta));
}

}  // namespace nfvm::bench
