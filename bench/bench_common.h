// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary prints `#`-prefixed metadata lines followed by an aligned
// whitespace-separated table (util::Table), so the whole harness output is
// trivially parsable. Workload sizes scale with two environment knobs:
//   NFVM_BENCH_REQUESTS - requests averaged per offline data point
//   NFVM_BENCH_ONLINE_REQUESTS - arrival-sequence length for online benches
//   NFVM_BENCH_METRICS_JSON - when set, dump the metrics registry to this
//     file when the binary exits (see docs/observability.md)
#pragma once

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <vector>

#include "core/alg_one_server.h"
#include "core/appro_multi.h"
#include "obs/metrics.h"
#include "sim/request_gen.h"
#include "topology/waxman.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace nfvm::bench {

namespace detail {

/// Writes the global metrics registry to $NFVM_BENCH_METRICS_JSON (if set)
/// when the process exits, so every bench binary exports its instrumentation
/// without per-binary wiring.
struct MetricsAtExit {
  ~MetricsAtExit() {
    const char* path = std::getenv("NFVM_BENCH_METRICS_JSON");
    if (path == nullptr || *path == '\0') return;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot open NFVM_BENCH_METRICS_JSON=" << path << "\n";
      return;
    }
    obs::Registry::global().write_json(out);
  }
};

inline const MetricsAtExit metrics_at_exit{};

}  // namespace detail

inline std::size_t offline_requests_per_point(std::size_t fallback = 10) {
  const auto v = util::env_int("NFVM_BENCH_REQUESTS", static_cast<long>(fallback));
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

inline std::size_t online_sequence_length(std::size_t fallback = 300) {
  const auto v =
      util::env_int("NFVM_BENCH_ONLINE_REQUESTS", static_cast<long>(fallback));
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

/// GT-ITM-like topology for the size sweeps: mean degree ~4 at every n, 10%
/// servers, paper capacity ranges.
inline topo::Topology make_sweep_topology(std::size_t n, util::Rng& rng) {
  topo::WaxmanOptions opts;
  opts.target_mean_degree = 4.0;
  return topo::make_waxman(n, rng, opts);
}

struct OfflineStats {
  util::RunningStats cost;
  util::RunningStats time_ms;
  util::RunningStats servers_used;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
};

/// Runs one offline algorithm over a request batch, timing each call.
inline OfflineStats run_offline_batch(
    const std::vector<nfv::Request>& requests,
    const std::function<core::OfflineSolution(const nfv::Request&)>& algorithm) {
  OfflineStats stats;
  for (const nfv::Request& request : requests) {
    util::Stopwatch watch;
    const core::OfflineSolution sol = algorithm(request);
    stats.time_ms.add(watch.elapsed_ms());
    if (sol.admitted) {
      ++stats.admitted;
      stats.cost.add(sol.tree.cost);
      stats.servers_used.add(static_cast<double>(sol.tree.servers.size()));
    } else {
      ++stats.rejected;
    }
  }
  return stats;
}

}  // namespace nfvm::bench
