// Extension E5: 1+1 protection - link-disjoint backup pseudo-multicast
// trees.
//
// Sweeps topology density: sparse networks have bridges (single points of
// failure) that make protection impossible for some requests, dense networks
// protect nearly everything. Columns: bridges in the topology, fraction of
// admitted requests with a feasible link-disjoint backup, and the mean cost
// overhead of the backup relative to its primary.
#include "bench_common.h"
#include "core/backup.h"
#include "graph/bridges.h"

int main() {
  using namespace nfvm;
  const std::size_t per_point = bench::offline_requests_per_point(30);

  std::cout << "# Extension E5: link-disjoint backup feasibility vs density (n=60)\n";
  std::cout << "# requests per data point: " << per_point << "\n";

  util::Table table({"mean_degree", "bridges", "protected_frac",
                     "backup_cost_overhead"});

  for (double degree : {2.5, 3.0, 4.0, 6.0}) {
    util::Rng rng(91);
    topo::WaxmanOptions wo;
    wo.target_mean_degree = degree;
    const topo::Topology topo = topo::make_waxman(60, rng, wo);
    const core::LinearCosts costs = core::random_costs(topo, rng);
    const graph::CutAnalysis cut = graph::find_cut_elements(topo.graph);

    util::Rng workload(92);
    sim::RequestGenerator gen(topo, workload);
    std::size_t admitted = 0;
    std::size_t protected_count = 0;
    util::RunningStats overhead;
    for (std::size_t i = 0; i < per_point; ++i) {
      const nfv::Request r = gen.next();
      core::ApproMultiOptions opts;
      opts.engine = core::ApproMultiOptions::Engine::kSharedDijkstra;
      const core::OfflineSolution primary = core::appro_multi(topo, costs, r, opts);
      if (!primary.admitted) continue;
      ++admitted;
      core::BackupOptions bopts;
      bopts.engine = core::ApproMultiOptions::Engine::kSharedDijkstra;
      const core::OfflineSolution backup =
          core::compute_backup_tree(topo, costs, r, primary.tree, bopts);
      if (!backup.admitted) continue;
      ++protected_count;
      overhead.add(backup.tree.cost / primary.tree.cost);
    }

    table.begin_row()
        .add(degree, 1)
        .add(cut.bridges.size())
        .add(admitted == 0 ? 0.0
                           : static_cast<double>(protected_count) /
                                 static_cast<double>(admitted),
             3)
        .add(overhead.mean(), 3);
  }
  bench::finish("ext_backup", table);
  return 0;
}
