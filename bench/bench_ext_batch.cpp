// Extension E2: batch admission planning.
//
// When requests are collected per planning window, the order Appro_Multi_Cap
// admits them changes what fits. This bench compares the ordering heuristics
// of core/batch_planner.h on a contended network (tight link capacities).
#include "bench_common.h"
#include "core/batch_planner.h"

int main() {
  using namespace nfvm;
  const std::size_t batch = bench::offline_requests_per_point(120);

  util::Rng rng(31);
  topo::WaxmanOptions wo;
  wo.target_mean_degree = 4.0;
  wo.capacities.max_bandwidth_mbps = 1200.0;  // tight: contention guaranteed
  const topo::Topology topo = topo::make_waxman(80, rng, wo);
  const core::LinearCosts costs = core::random_costs(topo, rng);

  util::Rng workload(32);
  sim::RequestGenerator gen(topo, workload);
  const std::vector<nfv::Request> requests = gen.sequence(batch);

  std::cout << "# Extension E2: batch-order heuristics (" << batch
            << " requests, tight 80-node network)\n";

  util::Table table({"order", "admitted", "rejected", "total_cost", "bw_util"});
  const std::pair<core::BatchOrder, const char*> orders[] = {
      {core::BatchOrder::kArrival, "arrival"},
      {core::BatchOrder::kFewestDestinationsFirst, "fewest_dests_first"},
      {core::BatchOrder::kSmallestDemandFirst, "smallest_demand_first"},
      {core::BatchOrder::kLargestDemandFirst, "largest_demand_first"},
  };
  for (const auto& [order, label] : orders) {
    core::BatchPlanOptions opts;
    opts.order = order;
    opts.engine = core::ApproMultiOptions::Engine::kSharedDijkstra;
    const core::BatchPlanResult r = core::plan_batch(topo, costs, requests, opts);
    table.begin_row()
        .add(label)
        .add(r.num_admitted)
        .add(r.num_rejected)
        .add(r.total_cost, 1)
        .add(r.final_bandwidth_utilization, 3);
  }
  bench::finish("ext_batch", table);
  return 0;
}
