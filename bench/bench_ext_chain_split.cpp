// Extension E3: chain splitting vs the paper's consolidation assumption.
//
// Sweeps server computing capacity downward; as boxes shrink, consolidating
// a whole chain onto one VM stops fitting while per-function placement
// (core/chain_split.h) keeps admitting. Sequential admission with footprint
// charging on a 60-node network; both policies see the same request stream.
#include "bench_common.h"
#include "core/chain_split.h"

int main() {
  using namespace nfvm;
  const std::size_t stream = bench::offline_requests_per_point(40);

  std::cout << "# Extension E3: consolidated (Appro_Multi_Cap, K=3) vs split chains\n";
  std::cout << "# " << stream << " sequential requests; chains of 3-5 NFs at 150-300 Mbps\n";

  util::Table table({"server_mhz", "consolidated_admitted", "split_admitted",
                     "consolidated_cost", "split_cost"});

  for (double cap : {4000.0, 1200.0, 800.0, 500.0, 350.0}) {
    util::Rng rng(71);
    topo::WaxmanOptions wo;
    wo.target_mean_degree = 4.0;
    wo.server_fraction = 0.25;  // many small boxes: fragmentation regime
    wo.capacities.min_compute_mhz = cap;
    wo.capacities.max_compute_mhz = cap;
    const topo::Topology topo = topo::make_waxman(60, rng, wo);
    const core::LinearCosts costs = core::random_costs(topo, rng);

    sim::RequestGenOptions gen_opts;
    gen_opts.min_chain_length = 3;
    gen_opts.max_chain_length = 5;   // heavy chains: consolidation-hostile
    gen_opts.min_bandwidth_mbps = 150.0;
    gen_opts.max_bandwidth_mbps = 300.0;
    util::Rng workload(72);
    sim::RequestGenerator gen(topo, workload, gen_opts);
    const std::vector<nfv::Request> requests = gen.sequence(stream);

    // Consolidated stream.
    nfv::ResourceState cstate(topo);
    std::size_t c_admit = 0;
    double c_cost = 0.0;
    for (const nfv::Request& r : requests) {
      core::ApproMultiOptions opts;
      opts.max_servers = 3;
      opts.resources = &cstate;
      const core::OfflineSolution sol = core::appro_multi(topo, costs, r, opts);
      if (!sol.admitted) continue;
      cstate.allocate(sol.tree.footprint(r));
      ++c_admit;
      c_cost += sol.tree.cost;
    }

    // Split stream.
    nfv::ResourceState sstate(topo);
    std::size_t s_admit = 0;
    double s_cost = 0.0;
    for (const nfv::Request& r : requests) {
      core::ChainSplitOptions opts;
      opts.resources = &sstate;
      const core::ChainSplitSolution sol =
          core::chain_split_multicast(topo, costs, r, opts);
      if (!sol.admitted) continue;
      sstate.allocate(sol.footprint);
      ++s_admit;
      s_cost += sol.tree.cost;
    }

    table.begin_row()
        .add(cap, 0)
        .add(c_admit)
        .add(s_admit)
        .add(c_admit ? c_cost / static_cast<double>(c_admit) : 0.0, 2)
        .add(s_admit ? s_cost / static_cast<double>(s_admit) : 0.0, 2);
  }
  bench::finish("ext_chain_split", table);
  return 0;
}
