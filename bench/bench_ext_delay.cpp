// Extension E1: delay-constrained NFV multicast (related work: Kuo et al.).
//
// Sweeps the end-to-end delay bound on an AS1755-like topology with link
// propagation delays in U[0.5, 2] ms. The algorithms treat the bound as a
// candidate-tree feasibility filter, so a tighter bound trades throughput
// for latency. Columns: Online_CP admissions, offline Appro_Multi admission
// count and mean worst-destination latency among admitted trees.
#include "bench_common.h"
#include "core/delay.h"
#include "core/online_cp.h"
#include "sim/simulator.h"
#include "topology/rocketfuel.h"

int main() {
  using namespace nfvm;
  const std::size_t online_n = bench::online_sequence_length(200);
  const std::size_t offline_n = bench::offline_requests_per_point(30);

  util::Rng rng(15);
  topo::Topology topo = topo::make_as1755(rng);
  topo::assign_delays(topo, rng, 0.5, 2.0);
  const core::LinearCosts costs = core::random_costs(topo, rng);

  std::cout << "# Extension E1: delay-bound sweep on " << topo.name
            << " (link delays U[0.5,2] ms)\n";
  std::cout << "# online: " << online_n << " arrivals; offline: " << offline_n
            << " requests per bound\n";

  util::Table table({"bound_ms", "cp_admitted", "offline_admitted",
                     "offline_mean_worst_delay", "offline_mean_cost"});

  for (double bound : {5.0, 8.0, 12.0, 20.0, 0.0 /* unconstrained */}) {
    // Online.
    util::Rng workload(77);
    sim::RequestGenerator gen(topo, workload);
    std::vector<nfv::Request> online_requests = gen.sequence(online_n);
    for (nfv::Request& r : online_requests) r.max_delay_ms = bound;
    core::OnlineCp cp(topo);
    const sim::SimulationMetrics mcp = sim::run_online(cp, online_requests);

    // Offline.
    util::Rng workload2(78);
    sim::RequestGenerator gen2(topo, workload2);
    std::vector<nfv::Request> offline_requests = gen2.sequence(offline_n);
    std::size_t admitted = 0;
    util::RunningStats worst_delay;
    util::RunningStats cost;
    for (nfv::Request& r : offline_requests) {
      r.max_delay_ms = bound;
      core::ApproMultiOptions opts;
      opts.max_servers = 3;
      const core::OfflineSolution sol = core::appro_multi(topo, costs, r, opts);
      if (!sol.admitted) continue;
      ++admitted;
      worst_delay.add(core::worst_route_delay_ms(topo, r, sol.tree));
      cost.add(sol.tree.cost);
    }

    table.begin_row()
        .add(bound > 0 ? util::format_double(bound, 1) : std::string("inf"))
        .add(mcp.num_admitted)
        .add(admitted)
        .add(worst_delay.mean(), 2)
        .add(cost.mean(), 2);
  }
  bench::finish("ext_delay", table);
  return 0;
}
