// Extension E4: forwarding-table (flow-entry) capacities - the node-capacity
// model of Huang et al. [10] from the paper's related work.
//
// Every admitted multicast group installs one flow entry on each switch its
// tree touches. Sweeping the per-switch table budget on a network with
// abundant bandwidth/compute isolates the table constraint: small tables
// throttle throughput for every policy; Online_CP's balanced trees stretch
// the budget further than SP's load-blind shortest-path trees.
#include "bench_common.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "core/online_sp_static.h"
#include "sim/simulator.h"

int main() {
  using namespace nfvm;
  const std::size_t num_requests = bench::online_sequence_length(300);

  std::cout << "# Extension E4: flow-table budget sweep (n=100, " << num_requests
            << " arrivals, abundant bandwidth/compute)\n";

  util::Table table({"entries_per_switch", "online_cp", "sp_adaptive",
                     "sp_static"});

  for (double entries : {10.0, 20.0, 40.0, 80.0, 0.0 /*unlimited*/}) {
    util::Rng rng(55);
    topo::WaxmanOptions wo;
    wo.target_mean_degree = 4.0;
    wo.capacities.min_bandwidth_mbps = 10000;
    wo.capacities.max_bandwidth_mbps = 10000;
    wo.capacities.min_compute_mhz = 100000;
    wo.capacities.max_compute_mhz = 100000;
    topo::Topology topo = topo::make_waxman(100, rng, wo);
    if (entries > 0) topo::assign_table_capacities(topo, entries);

    util::Rng workload(56);
    sim::RequestGenerator gen(topo, workload);
    const std::vector<nfv::Request> requests = gen.sequence(num_requests);

    core::OnlineCp cp(topo);
    core::OnlineSp sp(topo);
    core::OnlineSpStatic sp_static(topo);
    const sim::SimulationMetrics mcp = sim::run_online(cp, requests);
    const sim::SimulationMetrics msp = sim::run_online(sp, requests);
    const sim::SimulationMetrics mst = sim::run_online(sp_static, requests);

    table.begin_row()
        .add(entries > 0 ? util::format_double(entries, 0) : std::string("inf"))
        .add(mcp.num_admitted)
        .add(msp.num_admitted)
        .add(mst.num_admitted);
  }
  bench::finish("ext_table_capacity", table);
  return 0;
}
