// Figure 5 (a)-(f): operational cost and running time of Appro_Multi (K=3)
// vs Alg_One_Server on GT-ITM-like networks of 50..250 switches, for
// destination ratios Dmax/|V| in {0.05, 0.10, 0.20}.
//
// Paper's reported shape: Appro_Multi's cost is ~70-85% of Alg_One_Server's
// and the gap widens with network size; Appro_Multi is slightly slower.
#include "bench_common.h"

int main() {
  using namespace nfvm;
  const std::size_t per_point = bench::offline_requests_per_point(25);

  std::cout << "# Figure 5: offline cost & running time vs network size\n";
  std::cout << "# requests per data point: " << per_point
            << " (override with NFVM_BENCH_REQUESTS)\n";
  std::cout << "# cost columns: mean operational cost; time columns: mean ms per request\n";

  util::Table table({"ratio", "n", "appro_cost", "one_srv_cost", "cost_ratio",
                     "appro_ms", "one_srv_ms", "appro_servers"});

  for (double ratio : {0.05, 0.10, 0.20}) {
    for (std::size_t n : {50u, 100u, 150u, 200u, 250u}) {
      util::Rng rng(1000 + n);
      const topo::Topology topo = bench::make_sweep_topology(n, rng);
      const core::LinearCosts costs = core::random_costs(topo, rng);

      sim::RequestGenOptions gen_opts;
      gen_opts.min_dest_ratio = ratio;
      gen_opts.max_dest_ratio = ratio;
      util::Rng workload(2000 + n + static_cast<std::uint64_t>(ratio * 1000));
      sim::RequestGenerator gen(topo, workload, gen_opts);
      const std::vector<nfv::Request> requests = gen.sequence(per_point);

      const bench::OfflineStats appro = bench::run_offline_batch(
          requests, [&](const nfv::Request& r) {
            core::ApproMultiOptions opts;
            opts.max_servers = 3;
            opts.engine = core::ApproMultiOptions::Engine::kSharedDijkstra;
            return core::appro_multi(topo, costs, r, opts);
          });
      const bench::OfflineStats one = bench::run_offline_batch(
          requests,
          [&](const nfv::Request& r) { return core::alg_one_server(topo, costs, r); });

      table.begin_row()
          .add(ratio, 2)
          .add(n)
          .add(appro.cost.mean(), 2)
          .add(one.cost.mean(), 2)
          .add(one.cost.mean() > 0 ? appro.cost.mean() / one.cost.mean() : 0.0, 3)
          .add(appro.time_ms.mean(), 2)
          .add(one.time_ms.mean(), 2)
          .add(appro.servers_used.mean(), 2);
    }
  }
  bench::finish("fig5_offline_size", table);
  return 0;
}
