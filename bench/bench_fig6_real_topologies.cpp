// Figure 6 (a)-(d): operational cost and running time of Appro_Multi (K=3)
// vs Alg_One_Server on the real-like topologies (GEANT and AS1755), varying
// Dmax/|V| from 0.05 to 0.20.
//
// Paper's reported shape: Appro_Multi clearly cheaper (e.g. ~30% lower on
// AS1755 at ratio 0.15) at slightly higher running time.
#include "bench_common.h"
#include "topology/geant.h"
#include "topology/rocketfuel.h"

int main() {
  using namespace nfvm;
  const std::size_t per_point = bench::offline_requests_per_point(20);

  std::cout << "# Figure 6: offline cost & running time on GEANT-like and AS1755-like\n";
  std::cout << "# requests per data point: " << per_point
            << " (override with NFVM_BENCH_REQUESTS)\n";

  util::Table table({"topology", "ratio", "appro_cost", "one_srv_cost",
                     "cost_ratio", "appro_ms", "one_srv_ms"});

  for (int which = 0; which < 2; ++which) {
    util::Rng rng(42);
    const topo::Topology topo =
        which == 0 ? topo::make_geant(rng) : topo::make_as1755(rng);
    const core::LinearCosts costs = core::random_costs(topo, rng);

    for (double ratio : {0.05, 0.10, 0.15, 0.20}) {
      sim::RequestGenOptions gen_opts;
      gen_opts.min_dest_ratio = ratio;
      gen_opts.max_dest_ratio = ratio;
      util::Rng workload(7 + 31 * static_cast<std::uint64_t>(which) +
                         static_cast<std::uint64_t>(ratio * 1000));
      sim::RequestGenerator gen(topo, workload, gen_opts);
      const std::vector<nfv::Request> requests = gen.sequence(per_point);

      const bench::OfflineStats appro = bench::run_offline_batch(
          requests, [&](const nfv::Request& r) {
            core::ApproMultiOptions opts;
            opts.max_servers = 3;
            return core::appro_multi(topo, costs, r, opts);
          });
      const bench::OfflineStats one = bench::run_offline_batch(
          requests,
          [&](const nfv::Request& r) { return core::alg_one_server(topo, costs, r); });

      table.begin_row()
          .add(topo.name)
          .add(ratio, 2)
          .add(appro.cost.mean(), 2)
          .add(one.cost.mean(), 2)
          .add(one.cost.mean() > 0 ? appro.cost.mean() / one.cost.mean() : 0.0, 3)
          .add(appro.time_ms.mean(), 2)
          .add(one.time_ms.mean(), 2);
    }
  }
  bench::finish("fig6_real_topologies", table);
  return 0;
}
