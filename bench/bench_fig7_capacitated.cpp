// Figure 7 (a)-(b): operational cost and running time of Appro_Multi_Cap
// (the capacity-aware variant) vs the uncapacitated Appro_Multi, at
// Dmax/|V| = 0.2, network sizes 50..250.
//
// The capacitated run admits a stream of requests and charges each admitted
// footprint, so later requests see pruned links/servers. To make capacity
// pressure visible at benchmark scale we tighten link capacities to
// U[1000, 2500] Mbps (the paper averages over 1,000 requests instead; the
// shape - capacitated cost above uncapacitated cost, occasional rejections -
// is preserved).
#include "bench_common.h"

int main() {
  using namespace nfvm;
  const std::size_t per_point = bench::offline_requests_per_point(30);

  std::cout << "# Figure 7: Appro_Multi_Cap vs Appro_Multi (ratio 0.2, tight links)\n";
  std::cout << "# requests per data point: " << per_point
            << " (override with NFVM_BENCH_REQUESTS)\n";

  util::Table table({"n", "cap_cost", "uncap_cost", "cost_ratio", "cap_admitted",
                     "of", "cap_ms", "uncap_ms"});

  for (std::size_t n : {50u, 100u, 150u, 200u, 250u}) {
    util::Rng rng(1000 + n);
    topo::WaxmanOptions wopts;
    wopts.target_mean_degree = 4.0;
    wopts.capacities.min_bandwidth_mbps = 1000.0;
    wopts.capacities.max_bandwidth_mbps = 2500.0;
    const topo::Topology topo = topo::make_waxman(n, rng, wopts);
    const core::LinearCosts costs = core::random_costs(topo, rng);

    sim::RequestGenOptions gen_opts;
    gen_opts.min_dest_ratio = 0.2;
    gen_opts.max_dest_ratio = 0.2;
    util::Rng workload(2000 + n);
    sim::RequestGenerator gen(topo, workload, gen_opts);
    const std::vector<nfv::Request> requests = gen.sequence(per_point);

    // Uncapacitated: every request sees the empty network.
    const bench::OfflineStats uncap = bench::run_offline_batch(
        requests, [&](const nfv::Request& r) {
          core::ApproMultiOptions opts;
          opts.max_servers = 3;
          opts.engine = core::ApproMultiOptions::Engine::kSharedDijkstra;
          return core::appro_multi(topo, costs, r, opts);
        });

    // Capacitated: sequential admission with footprint charging.
    nfv::ResourceState state(topo);
    const bench::OfflineStats cap = bench::run_offline_batch(
        requests, [&](const nfv::Request& r) {
          core::ApproMultiOptions opts;
          opts.max_servers = 3;
          opts.resources = &state;
          opts.engine = core::ApproMultiOptions::Engine::kSharedDijkstra;
          core::OfflineSolution sol = core::appro_multi(topo, costs, r, opts);
          if (sol.admitted) state.allocate(sol.tree.footprint(r));
          return sol;
        });

    table.begin_row()
        .add(n)
        .add(cap.cost.mean(), 2)
        .add(uncap.cost.mean(), 2)
        .add(uncap.cost.mean() > 0 ? cap.cost.mean() / uncap.cost.mean() : 0.0, 3)
        .add(cap.admitted)
        .add(requests.size())
        .add(cap.time_ms.mean(), 2)
        .add(uncap.time_ms.mean(), 2);
  }
  bench::finish("fig7_capacitated", table);
  return 0;
}
