// Figure 8 (a)-(b): number of admitted requests vs network size for the
// online algorithms, 300 arrivals on GT-ITM-like networks of 50..250
// switches.
//
// Paper's reported shape: Online_CP admits at least ~2x what SP admits, and
// the admitted count is not monotone in the network size. We report three
// columns: Online_CP (Algorithm 2 verbatim), SP under the adaptive reading
// (reroutes on the residual graph), and SP under the static reading (fixed
// unit-weight routes). The paper's SP numbers correspond to the static
// reading; see EXPERIMENTS.md.
#include "bench_common.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "core/online_sp_static.h"
#include "sim/simulator.h"

int main() {
  using namespace nfvm;
  const std::size_t num_requests = bench::online_sequence_length(300);

  std::cout << "# Figure 8: online admissions vs network size (" << num_requests
            << " arrivals; override with NFVM_BENCH_ONLINE_REQUESTS)\n";

  util::Table table({"n", "online_cp", "sp_static", "sp_adaptive", "cp_vs_static",
                     "cp_bw_util", "static_bw_util"});

  for (std::size_t n : {50u, 100u, 150u, 200u, 250u}) {
    util::Rng rng(1000 + n);
    const topo::Topology topo = bench::make_sweep_topology(n, rng);

    const auto make_requests = [&topo, num_requests]() {
      util::Rng workload(4242);
      sim::RequestGenerator gen(topo, workload);
      return gen.sequence(num_requests);
    };
    const std::vector<nfv::Request> requests = make_requests();

    core::OnlineCp cp(topo);
    core::OnlineSp sp(topo);
    core::OnlineSpStatic sp_static(topo);
    const sim::SimulationMetrics mcp = sim::run_online(cp, requests);
    const sim::SimulationMetrics msp = sim::run_online(sp, requests);
    const sim::SimulationMetrics mst = sim::run_online(sp_static, requests);

    table.begin_row()
        .add(n)
        .add(mcp.num_admitted)
        .add(mst.num_admitted)
        .add(msp.num_admitted)
        .add(mst.num_admitted > 0
                 ? static_cast<double>(mcp.num_admitted) /
                       static_cast<double>(mst.num_admitted)
                 : 0.0,
             2)
        .add(mcp.final_bandwidth_utilization, 3)
        .add(mst.final_bandwidth_utilization, 3);
  }
  bench::finish("fig8_online_size", table);
  return 0;
}
