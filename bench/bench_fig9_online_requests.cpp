// Figure 9 (a)-(b): number of admitted requests vs number of arrivals
// (50..300) on the real-like topologies GEANT and AS1755.
//
// Paper's reported shape: both algorithms admit almost everything up to
// ~100 arrivals; beyond that Online_CP pulls ahead of SP and the gap grows
// with the number of requests. One 300-arrival run per algorithm provides
// every prefix point (the cumulative-admitted series).
#include "bench_common.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "core/online_sp_static.h"
#include "sim/simulator.h"
#include "topology/geant.h"
#include "topology/rocketfuel.h"

int main() {
  using namespace nfvm;
  const std::size_t num_requests = bench::online_sequence_length(300);

  std::cout << "# Figure 9: online admissions vs number of requests ("
            << num_requests << " max; override with NFVM_BENCH_ONLINE_REQUESTS)\n";

  util::Table table(
      {"topology", "requests", "online_cp", "sp_static", "sp_adaptive"});

  for (int which = 0; which < 2; ++which) {
    util::Rng rng(42);
    const topo::Topology topo =
        which == 0 ? topo::make_geant(rng) : topo::make_as1755(rng);

    util::Rng workload(9 + which);
    sim::RequestGenerator gen(topo, workload);
    const std::vector<nfv::Request> requests = gen.sequence(num_requests);

    core::OnlineCp cp(topo);
    core::OnlineSp sp(topo);
    core::OnlineSpStatic sp_static(topo);
    const sim::SimulationMetrics mcp = sim::run_online(cp, requests);
    const sim::SimulationMetrics msp = sim::run_online(sp, requests);
    const sim::SimulationMetrics mst = sim::run_online(sp_static, requests);

    const std::size_t step = std::max<std::size_t>(1, num_requests / 6);
    for (std::size_t i = step - 1; i < num_requests; i += step) {
      table.begin_row()
          .add(topo.name)
          .add(i + 1)
          .add(mcp.cumulative_admitted[i])
          .add(mst.cumulative_admitted[i])
          .add(msp.cumulative_admitted[i]);
    }
  }
  bench::finish("fig9_online_requests", table);
  return 0;
}
