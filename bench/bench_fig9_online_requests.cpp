// Figure 9 (a)-(b): number of admitted requests vs number of arrivals
// (50..300) on the real-like topologies GEANT and AS1755.
//
// Paper's reported shape: both algorithms admit almost everything up to
// ~100 arrivals; beyond that Online_CP pulls ahead of SP and the gap grows
// with the number of requests. One 300-arrival run per algorithm provides
// every prefix point (the cumulative-admitted series).
#include "bench_common.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "core/online_sp_static.h"
#include "sim/simulator.h"
#include "topology/geant.h"
#include "topology/rocketfuel.h"

int main() {
  using namespace nfvm;
  const std::size_t num_requests = bench::online_sequence_length(300);

  std::cout << "# Figure 9: online admissions vs number of requests ("
            << num_requests << " max; override with NFVM_BENCH_ONLINE_REQUESTS)\n";

  // The trailing *_ms columns attribute each full 300-request run to its
  // dominant admission phases (from RequestRecord provenance; zero under
  // NFVM_OBS=0). They repeat on every prefix row of a topology and are
  // excluded from CI gating like all timing columns.
  util::Table table({"topology", "requests", "online_cp", "sp_static",
                     "sp_adaptive", "cp_closure_ms", "cp_eval_ms",
                     "sp_static_eval_ms", "sp_adaptive_eval_ms"});

  for (int which = 0; which < 2; ++which) {
    util::Rng rng(42);
    const topo::Topology topo =
        which == 0 ? topo::make_geant(rng) : topo::make_as1755(rng);

    util::Rng workload(9 + which);
    sim::RequestGenerator gen(topo, workload);
    const std::vector<nfv::Request> requests = gen.sequence(num_requests);

    core::OnlineCp cp(topo);
    core::OnlineSp sp(topo);
    core::OnlineSpStatic sp_static(topo);
    sim::SimulatorOptions opts;
    opts.record_provenance = true;
    const sim::SimulationMetrics mcp = sim::run_online(cp, requests, opts);
    const sim::SimulationMetrics msp = sim::run_online(sp, requests, opts);
    const sim::SimulationMetrics mst = sim::run_online(sp_static, requests, opts);

    const std::size_t step = std::max<std::size_t>(1, num_requests / 6);
    for (std::size_t i = step - 1; i < num_requests; i += step) {
      table.begin_row()
          .add(topo.name)
          .add(i + 1)
          .add(mcp.cumulative_admitted[i])
          .add(mst.cumulative_admitted[i])
          .add(msp.cumulative_admitted[i])
          .add(mcp.phase_closure_us / 1000.0, 3)
          .add(mcp.phase_eval_us / 1000.0, 3)
          .add(mst.phase_eval_us / 1000.0, 3)
          .add(msp.phase_eval_us / 1000.0, 3);
    }
  }
  bench::finish("fig9_online_requests", table);
  return 0;
}
