// Micro-benchmarks for the graph substrate (google-benchmark): the inner
// loops every figure-level benchmark is built from.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/appro_multi.h"
#include "core/cost_model.h"
#include "graph/dijkstra.h"
#include "graph/steiner.h"
#include "graph/tree.h"
#include "graph/union_find.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace {

using namespace nfvm;

topo::Topology sweep_topology(std::size_t n) {
  util::Rng rng(n);
  topo::WaxmanOptions opts;
  opts.target_mean_degree = 4.0;
  return topo::make_waxman(n, rng, opts);
}

void BM_Dijkstra(benchmark::State& state) {
  const topo::Topology topo = sweep_topology(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(topo.graph, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(50)->Arg(100)->Arg(250);

void BM_KmbSteiner(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const topo::Topology topo = sweep_topology(n);
  util::Rng rng(9);
  std::vector<graph::VertexId> terminals;
  for (std::size_t p : rng.sample_without_replacement(n, 10)) {
    terminals.push_back(static_cast<graph::VertexId>(p));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::kmb_steiner(topo.graph, terminals));
  }
}
BENCHMARK(BM_KmbSteiner)->Arg(50)->Arg(100)->Arg(250);

void BM_ExactSteiner(benchmark::State& state) {
  const topo::Topology topo = sweep_topology(30);
  util::Rng rng(9);
  std::vector<graph::VertexId> terminals;
  for (std::size_t p :
       rng.sample_without_replacement(30, static_cast<std::size_t>(state.range(0)))) {
    terminals.push_back(static_cast<graph::VertexId>(p));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::exact_steiner(topo.graph, terminals));
  }
}
BENCHMARK(BM_ExactSteiner)->Arg(4)->Arg(6)->Arg(8);

void BM_RootedTreeBuildAndLca(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const topo::Topology topo = sweep_topology(n);
  util::Rng rng(5);
  std::vector<graph::VertexId> terminals;
  for (std::size_t p : rng.sample_without_replacement(n, 8)) {
    terminals.push_back(static_cast<graph::VertexId>(p));
  }
  const graph::SteinerResult st = graph::kmb_steiner(topo.graph, terminals);
  for (auto _ : state) {
    const graph::RootedTree rt(topo.graph, st.edges, terminals[0]);
    benchmark::DoNotOptimize(rt.lca(std::span<const graph::VertexId>(terminals)));
  }
}
BENCHMARK(BM_RootedTreeBuildAndLca)->Arg(100)->Arg(250);

void BM_UnionFind(benchmark::State& state) {
  util::Rng rng(3);
  const std::size_t n = 1000;
  for (auto _ : state) {
    graph::UnionFind uf(n);
    for (int i = 0; i < 2000; ++i) {
      uf.unite(rng.next_below(n), rng.next_below(n));
    }
    benchmark::DoNotOptimize(uf.num_sets());
  }
}
BENCHMARK(BM_UnionFind);

void BM_WaxmanGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    util::Rng rng(seed++);
    topo::WaxmanOptions opts;
    opts.target_mean_degree = 4.0;
    benchmark::DoNotOptimize(topo::make_waxman(n, rng, opts));
  }
}
BENCHMARK(BM_WaxmanGeneration)->Arg(50)->Arg(250);

void BM_ApproMultiSingleRequest(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const topo::Topology topo = sweep_topology(100);
  util::Rng rng(13);
  const core::LinearCosts costs = core::random_costs(topo, rng);
  nfv::Request request;
  request.id = 1;
  request.source = 0;
  request.destinations = {10, 30, 50, 70, 90};
  request.bandwidth_mbps = 120.0;
  request.chain = nfv::ServiceChain({nfv::NetworkFunction::kFirewall});
  for (auto _ : state) {
    core::ApproMultiOptions opts;
    opts.max_servers = k;
    benchmark::DoNotOptimize(core::appro_multi(topo, costs, request, opts));
  }
}
BENCHMARK(BM_ApproMultiSingleRequest)->Arg(1)->Arg(2)->Arg(3);

void BM_ApproMultiSharedEngine(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const topo::Topology topo = sweep_topology(100);
  util::Rng rng(13);
  const core::LinearCosts costs = core::random_costs(topo, rng);
  nfv::Request request;
  request.id = 1;
  request.source = 0;
  request.destinations = {10, 30, 50, 70, 90};
  request.bandwidth_mbps = 120.0;
  request.chain = nfv::ServiceChain({nfv::NetworkFunction::kFirewall});
  for (auto _ : state) {
    core::ApproMultiOptions opts;
    opts.max_servers = k;
    opts.engine = core::ApproMultiOptions::Engine::kSharedDijkstra;
    benchmark::DoNotOptimize(core::appro_multi(topo, costs, request, opts));
  }
}
BENCHMARK(BM_ApproMultiSharedEngine)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  // google-benchmark owns the per-benchmark table (use --benchmark_format=
  // json for those numbers); the BENCH artifact records the instrumentation
  // counters the inner loops accumulated, comparable with nfvm-report.
  nfvm::bench::write_artifact("micro_graph", nfvm::util::Table({"benchmark"}));
  return 0;
}
