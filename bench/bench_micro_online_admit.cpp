// Micro-benchmark for the online admission fast path:
//
//   * the legacy rebuild path (filter the weighted graph and run per-server
//     Dijkstras from scratch on every request) vs the incremental path (a
//     persistent OnlineWeightedView patched after each admission plus the
//     shared-closure server scan),
//   * Online_CP and Online_SP, on GEANT and Waxman sweeps up to 400 nodes,
//   * periodic departures so the era reset (release -> cache drop) is paid
//     inside the measured loop, not just steady-state cache hits.
//
// Every row carries an admission checksum - sum over requests of
// (i+1) * (admitted ? 1 + cost : -1) - which is bit-deterministic, so the CI
// artifact gate (nfvm-report --check) verifies that both paths keep taking
// identical decisions on every run; timing / throughput columns (*_ms,
// *_time) are machine-dependent and only the speedup_vs_legacy ratio gates,
// via an absolute floor (nfvm-report --min speedup_vs_legacy=0.95) rather
// than a baseline-relative delta. Each mode runs twice with fresh algorithm
// instances and reports the min time, so one scheduler hiccup cannot sink
// the ratio. The binary itself exits non-zero when the two paths (or the
// two repeats) disagree on any sequence, when the adaptive path loses to
// the legacy rebuild on GEANT CP (floor 1.0x - the small-graph case the
// view policy exists to protect), or when it fails 10x on the largest
// Waxman CP case.
#include <map>

#include "bench_common.h"
#include "core/online_cp.h"
#include "core/online_sp.h"
#include "topology/geant.h"

namespace {

using namespace nfvm;

struct RunResult {
  std::size_t admitted = 0;
  double time_ms = 0.0;
  double checksum = 0.0;
  // Summed per-phase wall-clock from the RequestRecord provenance, in ms
  // (all zero under NFVM_OBS=0). Timing columns never gate in CI.
  double classify_ms = 0.0;
  double closure_ms = 0.0;
  double eval_ms = 0.0;
  double realize_ms = 0.0;
  double patch_ms = 0.0;
};

/// Feeds the sequence through one algorithm instance, releasing the oldest
/// still-held footprint every 7th request (the departure pattern of the
/// trace-equivalence tests). Provenance recording stays on so the row can
/// attribute the wall clock to admission phases; both modes pay the same
/// (small) recording overhead and decisions are unaffected.
template <typename Algo>
RunResult run_sequence(Algo& algo, const std::vector<nfv::Request>& requests) {
  RunResult result;
  algo.set_record_provenance(true);
  std::vector<nfv::Footprint> held;
  util::Stopwatch watch;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const core::AdmissionDecision decision = algo.process(requests[i]);
    if (decision.admitted) {
      ++result.admitted;
      result.checksum +=
          static_cast<double>(i + 1) * (1.0 + decision.tree.cost);
      held.push_back(decision.footprint);
    } else {
      result.checksum -= static_cast<double>(i + 1);
    }
    if (const core::RequestRecord* rec = decision.record.get()) {
      result.classify_ms += rec->classify_us / 1000.0;
      result.closure_ms += rec->closure_us / 1000.0;
      result.eval_ms += rec->eval_us / 1000.0;
      result.realize_ms += rec->realize_us / 1000.0;
      result.patch_ms += rec->view_patch_us / 1000.0;
    }
    if (i % 7 == 6 && !held.empty()) {
      algo.release(held.front());
      held.erase(held.begin());
    }
  }
  result.time_ms = watch.elapsed_ms();
  return result;
}

}  // namespace

int main() {
  const std::size_t num_requests = bench::online_sequence_length(300);

  std::cout << "# micro: online admission fast path - incremental view + "
               "shared-closure scan vs per-request rebuild ("
            << num_requests << " requests, departures every 7th)\n";
  std::cout << "# checksum / admitted columns are deterministic and gate in "
               "CI; *_ms / *_time columns do not; speedup_vs_legacy gates "
               "via an absolute floor (--min)\n";

  util::Table table({"case", "mode", "n", "m", "requests", "admitted",
                     "time_ms", "req_per_s_time", "checksum",
                     "speedup_vs_legacy", "classify_ms", "closure_ms",
                     "eval_ms", "realize_ms", "patch_ms"});

  bool checksums_agree = true;
  std::map<std::string, double> speedups;

  const auto run_case = [&](const std::string& name, const topo::Topology& topo,
                            const std::vector<nfv::Request>& requests,
                            auto make_rebuild, auto make_incremental) {
    // Two repeats per mode with fresh instances; the min time feeds the
    // speedup floor so a one-off scheduler hiccup cannot sink the ratio.
    // The checksum must not move between repeats.
    const auto timed_best = [&](auto make_algo) {
      RunResult best;
      for (int rep = 0; rep < 2; ++rep) {
        auto algo = make_algo(topo);
        const RunResult r = run_sequence(algo, requests);
        if (rep == 0) {
          best = r;
          continue;
        }
        if (r.checksum != best.checksum) {
          std::cerr << "FATAL: " << name
                    << ": repeat run diverged from the first (checksum "
                    << r.checksum << " vs " << best.checksum << ")\n";
          checksums_agree = false;
        }
        if (r.time_ms < best.time_ms) best = r;
      }
      return best;
    };
    const RunResult slow = timed_best(make_rebuild);
    const RunResult fast = timed_best(make_incremental);

    if (slow.checksum != fast.checksum) {
      std::cerr << "FATAL: " << name
                << ": incremental admission sequence diverged from rebuild "
                   "(checksum "
                << fast.checksum << " vs " << slow.checksum << ")\n";
      checksums_agree = false;
    }
    const double speedup = fast.time_ms > 0.0 ? slow.time_ms / fast.time_ms : 0.0;
    speedups[name] = speedup;

    const auto row = [&](const std::string& mode, const RunResult& r,
                         bool has_ratio, double ratio) {
      table.begin_row()
          .add(name)
          .add(mode)
          .add(topo.graph.num_vertices())
          .add(topo.graph.num_edges())
          .add(requests.size())
          .add(r.admitted)
          .add(r.time_ms, 3)
          .add(r.time_ms > 0.0
                   ? static_cast<double>(requests.size()) / (r.time_ms / 1000.0)
                   : 0.0,
               1)
          .add(r.checksum, 3);
      // Legacy rows carry no ratio; a non-numeric cell stays a string in
      // the artifact, so the --min floor only ever sees real speedups.
      if (has_ratio) {
        table.add(ratio, 2);
      } else {
        table.add("-");
      }
      table.add(r.classify_ms, 3)
          .add(r.closure_ms, 3)
          .add(r.eval_ms, 3)
          .add(r.realize_ms, 3)
          .add(r.patch_ms, 3);
    };
    row("rebuild", slow, false, 0.0);
    row("incremental", fast, true, speedup);
  };

  const auto make_cp_rebuild = [](const topo::Topology& topo) {
    core::OnlineCpOptions opts;
    opts.incremental_view = false;
    return core::OnlineCp(topo, opts);
  };
  const auto make_cp_fast = [](const topo::Topology& topo) {
    return core::OnlineCp(topo);
  };
  const auto make_sp_rebuild = [](const topo::Topology& topo) {
    core::OnlineSpOptions opts;
    opts.incremental_view = false;
    return core::OnlineSp(topo, opts);
  };
  const auto make_sp_fast = [](const topo::Topology& topo) {
    return core::OnlineSp(topo);
  };

  // --- GEANT ------------------------------------------------------------
  {
    util::Rng rng(77);
    const topo::Topology topo = topo::make_geant(rng);
    util::Rng workload(4242);
    sim::RequestGenerator gen(topo, workload);
    const std::vector<nfv::Request> requests = gen.sequence(num_requests);
    run_case("cp_geant", topo, requests, make_cp_rebuild, make_cp_fast);
    run_case("sp_geant", topo, requests, make_sp_rebuild, make_sp_fast);
  }

  // --- Waxman size sweep -------------------------------------------------
  const std::vector<std::size_t> sizes = {100, 200, 400};
  for (std::size_t n : sizes) {
    util::Rng rng(1000 + n);
    topo::WaxmanOptions wo;
    wo.target_mean_degree = 4.0;
    wo.capacities.max_bandwidth_mbps = 2500.0;  // contention
    const topo::Topology topo = topo::make_waxman(n, rng, wo);
    util::Rng workload(4242);
    sim::RequestGenerator gen(topo, workload);
    const std::vector<nfv::Request> requests = gen.sequence(num_requests);
    run_case("cp_waxman_" + std::to_string(n), topo, requests, make_cp_rebuild,
             make_cp_fast);
    run_case("sp_waxman_" + std::to_string(n), topo, requests, make_sp_rebuild,
             make_sp_fast);
  }

  bench::finish("micro_online_admit", table);

  if (!checksums_agree) return 1;
  // Named speedup floors: the adaptive view policy must never lose to the
  // legacy rebuild on small GEANT (the case it exists to protect), and the
  // incremental path must keep its order-of-magnitude win at scale.
  struct Floor {
    const char* name;
    double min;
  };
  for (const Floor floor : {Floor{"cp_geant", 1.0}, Floor{"cp_waxman_400", 10.0}}) {
    const double speedup = speedups[floor.name];
    if (speedup < floor.min) {
      std::cerr << "FATAL: " << floor.name << ": speedup_vs_legacy " << speedup
                << "x is below the required " << floor.min << "x\n";
      return 1;
    }
  }
  return 0;
}
