// Micro-benchmark for the shortest-path engine overhaul:
//
//   * adjacency-list Dijkstra (the historical implementation, kept here as
//     the reference) vs the CSR-backed SpEngine,
//   * cold SP-tree computation vs SpCache hits (the per-request tree reuse
//     Appro_Multi / Alg_One_Server / SP_static rely on),
//   * APSP builds at 1 / 2 / 4 worker threads.
//
// Every row carries a dist_checksum — the sum of finite shortest-path
// distances produced by that case. The checksums are bit-deterministic, so
// the CI artifact gate (nfvm-report --check) verifies engine/reference and
// cross-thread-count agreement on every run; timing columns (*_ms, *time*)
// are machine-dependent and excluded from gating. The binary itself also
// exits non-zero when the engine disagrees with the reference.
#include <queue>

#include "bench_common.h"
#include "graph/apsp.h"
#include "graph/sp_engine.h"
#include "util/thread_pool.h"

namespace {

using namespace nfvm;

/// The pre-overhaul Dijkstra, verbatim modulo instrumentation: binary heap
/// of (distance, vertex) pairs over the pointer-chasing adjacency lists.
graph::ShortestPaths adjacency_dijkstra(const graph::Graph& g,
                                        graph::VertexId source) {
  const std::size_t n = g.num_vertices();
  graph::ShortestPaths sp;
  sp.source = source;
  sp.dist.assign(n, graph::kInfiniteDistance);
  sp.parent.assign(n, graph::kInvalidVertex);
  sp.parent_edge.assign(n, graph::kInvalidEdge);
  sp.dist[source] = 0.0;

  using Item = std::pair<double, graph::VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > sp.dist[u]) continue;
    for (const graph::Adjacency& adj : g.neighbors(u)) {
      const double nd = d + g.edge(adj.edge).weight;
      if (nd < sp.dist[adj.neighbor]) {
        sp.dist[adj.neighbor] = nd;
        sp.parent[adj.neighbor] = u;
        sp.parent_edge[adj.neighbor] = adj.edge;
        heap.emplace(nd, adj.neighbor);
      }
    }
  }
  return sp;
}

double tree_checksum(const graph::ShortestPaths& sp) {
  double sum = 0.0;
  for (double d : sp.dist) {
    if (d < graph::kInfiniteDistance) sum += d;
  }
  return sum;
}

double apsp_checksum(const graph::AllPairsShortestPaths& apsp) {
  double sum = 0.0;
  for (graph::VertexId u = 0; u < apsp.num_vertices(); ++u) {
    for (graph::VertexId v = 0; v < apsp.num_vertices(); ++v) {
      const double d = apsp.distance(u, v);
      if (d < graph::kInfiniteDistance) sum += d;
    }
  }
  return sum;
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 200;
  constexpr std::size_t kSssspSources = 50;   // full-tree comparison sweep
  constexpr std::size_t kCacheSources = 16;   // distinct roots in the cache
  constexpr std::size_t kCacheQueries = 400;  // round-robin over the roots

  std::cout << "# micro: CSR SpEngine vs adjacency Dijkstra, SP-tree cache, "
               "parallel APSP\n";
  std::cout << "# dist_checksum columns are deterministic and gate in CI; "
               "*_ms / *time* columns do not\n";

  util::Rng rng(4242);
  const topo::Topology topo = bench::make_sweep_topology(kNodes, rng);
  const graph::Graph& g = topo.graph;
  const std::size_t m = g.num_edges();

  util::Table table({"case", "n", "m", "reps", "time_ms", "dist_checksum",
                     "cold_over_cached_time"});
  const auto row = [&](const std::string& name, std::size_t reps, double ms,
                       double checksum, double speedup) {
    table.begin_row()
        .add(name)
        .add(g.num_vertices())
        .add(m)
        .add(reps)
        .add(ms, 3)
        .add(checksum, 3)
        .add(speedup, 2);
  };

  // --- adjacency reference vs CSR engine --------------------------------
  double ref_checksum = 0.0;
  double engine_checksum = 0.0;
  {
    util::Stopwatch watch;
    for (graph::VertexId s = 0; s < kSssspSources; ++s) {
      ref_checksum += tree_checksum(adjacency_dijkstra(g, s));
    }
    row("adjacency_dijkstra", kSssspSources, watch.elapsed_ms(), ref_checksum, 0.0);
  }
  {
    graph::SpEngine engine;
    util::Stopwatch watch;
    for (graph::VertexId s = 0; s < kSssspSources; ++s) {
      engine_checksum += tree_checksum(engine.shortest_paths(g, s));
    }
    row("csr_engine_dijkstra", kSssspSources, watch.elapsed_ms(), engine_checksum,
        0.0);
  }
  if (engine_checksum != ref_checksum) {
    std::cerr << "FATAL: SpEngine disagrees with the adjacency reference\n";
    return 1;
  }

  // --- cold trees vs SpCache hits ---------------------------------------
  const graph::VertexId probe = static_cast<graph::VertexId>(g.num_vertices() - 1);
  double cold_ms = 0.0;
  {
    graph::SpEngine engine;
    double checksum = 0.0;
    util::Stopwatch watch;
    for (std::size_t q = 0; q < kCacheQueries; ++q) {
      const auto sp =
          engine.shortest_paths(g, static_cast<graph::VertexId>(q % kCacheSources));
      checksum += sp.dist[probe];
    }
    cold_ms = watch.elapsed_ms();
    row("sp_tree_cold", kCacheQueries, cold_ms, checksum, 0.0);
  }
  {
    graph::SpCache cache;
    double checksum = 0.0;
    util::Stopwatch watch;
    for (std::size_t q = 0; q < kCacheQueries; ++q) {
      const auto sp =
          cache.paths_from(g, static_cast<graph::VertexId>(q % kCacheSources));
      checksum += sp->dist[probe];
    }
    const double cached_ms = watch.elapsed_ms();
    row("sp_tree_cached", kCacheQueries, cached_ms, checksum,
        cached_ms > 0.0 ? cold_ms / cached_ms : 0.0);
  }

  // --- APSP at 1 / 2 / 4 threads ----------------------------------------
  for (std::size_t threads : {1u, 2u, 4u}) {
    util::ThreadPool::set_global_threads(threads);
    util::Stopwatch watch;
    const graph::AllPairsShortestPaths apsp(g);
    row("apsp_threads_" + std::to_string(threads), g.num_vertices(),
        watch.elapsed_ms(), apsp_checksum(apsp), 0.0);
  }
  util::ThreadPool::set_global_threads(1);

  bench::finish("micro_sp_engine", table);
  return 0;
}
