// Micro-benchmark for the shortest-path engine overhaul:
//
//   * adjacency-list Dijkstra (the historical implementation, kept here as
//     the reference) vs the CSR-backed SpEngine,
//   * the Dial bucket-ring specialization (auto-selected on integer-weight
//     graphs) vs the binary-heap fallback on a non-integer-weight clone,
//   * batched multi-source SSSP (graph::batch_dijkstra on the pool) vs the
//     equivalent per-source engine loop,
//   * cold SP-tree computation vs SpCache hits (the per-request tree reuse
//     Appro_Multi / Alg_One_Server / SP_static rely on),
//   * APSP builds at 1 / 2 / 4 worker threads.
//
// Every row carries a dist_checksum — the sum of finite shortest-path
// distances produced by that case. The checksums are bit-deterministic, so
// the CI artifact gate (nfvm-report --check) verifies engine/reference and
// cross-thread-count agreement on every run; timing columns (*_ms, *time*,
// the per-row time_ratio) are machine-dependent and excluded from gating.
// The binary itself also exits non-zero when the engine disagrees with the
// reference, when Dial auto-selection picks the wrong implementation, or
// when the batched tables diverge from the sequential ones.
#include <numeric>
#include <queue>

#include "bench_common.h"
#include "graph/apsp.h"
#include "graph/sp_engine.h"
#include "util/thread_pool.h"

namespace {

using namespace nfvm;

/// The pre-overhaul Dijkstra, verbatim modulo instrumentation: binary heap
/// of (distance, vertex) pairs over the pointer-chasing adjacency lists.
graph::ShortestPaths adjacency_dijkstra(const graph::Graph& g,
                                        graph::VertexId source) {
  const std::size_t n = g.num_vertices();
  graph::ShortestPaths sp;
  sp.source = source;
  sp.dist.assign(n, graph::kInfiniteDistance);
  sp.parent.assign(n, graph::kInvalidVertex);
  sp.parent_edge.assign(n, graph::kInvalidEdge);
  sp.dist[source] = 0.0;

  using Item = std::pair<double, graph::VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > sp.dist[u]) continue;
    for (const graph::Adjacency& adj : g.neighbors(u)) {
      const double nd = d + g.edge(adj.edge).weight;
      if (nd < sp.dist[adj.neighbor]) {
        sp.dist[adj.neighbor] = nd;
        sp.parent[adj.neighbor] = u;
        sp.parent_edge[adj.neighbor] = adj.edge;
        heap.emplace(nd, adj.neighbor);
      }
    }
  }
  return sp;
}

double tree_checksum(const graph::ShortestPaths& sp) {
  double sum = 0.0;
  for (double d : sp.dist) {
    if (d < graph::kInfiniteDistance) sum += d;
  }
  return sum;
}

double apsp_checksum(const graph::AllPairsShortestPaths& apsp) {
  double sum = 0.0;
  for (graph::VertexId u = 0; u < apsp.num_vertices(); ++u) {
    for (graph::VertexId v = 0; v < apsp.num_vertices(); ++v) {
      const double d = apsp.distance(u, v);
      if (d < graph::kInfiniteDistance) sum += d;
    }
  }
  return sum;
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 200;
  constexpr std::size_t kSssspSources = 50;   // full-tree comparison sweep
  constexpr std::size_t kCacheSources = 16;   // distinct roots in the cache
  constexpr std::size_t kCacheQueries = 400;  // round-robin over the roots

  std::cout << "# micro: CSR SpEngine vs adjacency Dijkstra, SP-tree cache, "
               "parallel APSP\n";
  std::cout << "# dist_checksum columns are deterministic and gate in CI; "
               "*_ms / *time* columns do not\n";

  util::Rng rng(4242);
  const topo::Topology topo = bench::make_sweep_topology(kNodes, rng);
  const graph::Graph& g = topo.graph;
  const std::size_t m = g.num_edges();

  // time_ratio is per-case: cold/cached for the cache rows, heap/dial for
  // the Dial row, sequential/batched for the batch row; 0 elsewhere.
  util::Table table({"case", "n", "m", "reps", "time_ms", "dist_checksum",
                     "time_ratio"});
  const auto row = [&](const std::string& name, std::size_t reps, double ms,
                       double checksum, double speedup) {
    table.begin_row()
        .add(name)
        .add(g.num_vertices())
        .add(m)
        .add(reps)
        .add(ms, 3)
        .add(checksum, 3)
        .add(speedup, 2);
  };

  // --- adjacency reference vs CSR engine --------------------------------
  double ref_checksum = 0.0;
  double engine_checksum = 0.0;
  {
    util::Stopwatch watch;
    for (graph::VertexId s = 0; s < kSssspSources; ++s) {
      ref_checksum += tree_checksum(adjacency_dijkstra(g, s));
    }
    row("adjacency_dijkstra", kSssspSources, watch.elapsed_ms(), ref_checksum, 0.0);
  }
  {
    graph::SpEngine engine;
    util::Stopwatch watch;
    for (graph::VertexId s = 0; s < kSssspSources; ++s) {
      engine_checksum += tree_checksum(engine.shortest_paths(g, s));
    }
    row("csr_engine_dijkstra", kSssspSources, watch.elapsed_ms(), engine_checksum,
        0.0);
  }
  if (engine_checksum != ref_checksum) {
    std::cerr << "FATAL: SpEngine disagrees with the adjacency reference\n";
    return 1;
  }

  // --- Dial bucket ring vs binary-heap fallback -------------------------
  // The sweep topology is unit-weight, so the engine rows above already ran
  // on the Dial ring; these rows pin the auto-selection rule explicitly and
  // time the heap fallback on a non-integer-weight clone of the topology.
  {
    graph::Graph frac(g.num_vertices());
    for (graph::EdgeId e = 0; e < m; ++e) {
      const graph::Edge& ed = g.edge(e);
      frac.add_edge(ed.u, ed.v, 1.0 + static_cast<double>(e % 7) * 0.1);
    }

    graph::SpEngine dial_engine;
    double dial_checksum = 0.0;
    util::Stopwatch dial_watch;
    for (graph::VertexId s = 0; s < kSssspSources; ++s) {
      dial_checksum += tree_checksum(dial_engine.shortest_paths(g, s));
    }
    const double dial_ms = dial_watch.elapsed_ms();
    if (!dial_engine.last_used_dial()) {
      std::cerr << "FATAL: unit-weight graph did not select the Dial ring\n";
      return 1;
    }
    if (dial_checksum != ref_checksum) {
      std::cerr << "FATAL: Dial ring disagrees with the adjacency reference\n";
      return 1;
    }

    graph::SpEngine heap_engine;
    double frac_checksum = 0.0;
    util::Stopwatch frac_watch;
    for (graph::VertexId s = 0; s < kSssspSources; ++s) {
      frac_checksum += tree_checksum(heap_engine.shortest_paths(frac, s));
    }
    const double frac_ms = frac_watch.elapsed_ms();
    if (heap_engine.last_used_dial()) {
      std::cerr << "FATAL: non-integer weights selected the Dial ring\n";
      return 1;
    }
    double frac_ref = 0.0;
    for (graph::VertexId s = 0; s < kSssspSources; ++s) {
      frac_ref += tree_checksum(adjacency_dijkstra(frac, s));
    }
    if (frac_checksum != frac_ref) {
      std::cerr << "FATAL: heap fallback disagrees with the adjacency reference\n";
      return 1;
    }
    row("dial_unit_weight", kSssspSources, dial_ms, dial_checksum,
        dial_ms > 0.0 ? frac_ms / dial_ms : 0.0);
    row("heap_fractional_weight", kSssspSources, frac_ms, frac_checksum, 0.0);
  }

  // --- batched multi-source SSSP vs per-source engine calls -------------
  {
    std::vector<graph::VertexId> sources(kSssspSources);
    std::iota(sources.begin(), sources.end(), graph::VertexId{0});

    graph::SpEngine engine;
    double seq_checksum = 0.0;
    util::Stopwatch seq_watch;
    for (graph::VertexId s : sources) {
      seq_checksum += tree_checksum(engine.shortest_paths(g, s));
    }
    const double seq_ms = seq_watch.elapsed_ms();

    util::ThreadPool::set_global_threads(4);
    util::Stopwatch batch_watch;
    const std::vector<graph::ShortestPaths> batch =
        graph::batch_dijkstra(g, sources);
    const double batch_ms = batch_watch.elapsed_ms();
    util::ThreadPool::set_global_threads(1);

    double batch_checksum = 0.0;
    for (const graph::ShortestPaths& sp : batch) {
      batch_checksum += tree_checksum(sp);
    }
    if (batch_checksum != seq_checksum) {
      std::cerr << "FATAL: batched SSSP diverged from the sequential loop\n";
      return 1;
    }
    row("sssp_sequential", kSssspSources, seq_ms, seq_checksum, 0.0);
    row("sssp_batched_t4", kSssspSources, batch_ms, batch_checksum,
        batch_ms > 0.0 ? seq_ms / batch_ms : 0.0);
  }

  // --- cold trees vs SpCache hits ---------------------------------------
  const graph::VertexId probe = static_cast<graph::VertexId>(g.num_vertices() - 1);
  double cold_ms = 0.0;
  {
    graph::SpEngine engine;
    double checksum = 0.0;
    util::Stopwatch watch;
    for (std::size_t q = 0; q < kCacheQueries; ++q) {
      const auto sp =
          engine.shortest_paths(g, static_cast<graph::VertexId>(q % kCacheSources));
      checksum += sp.dist[probe];
    }
    cold_ms = watch.elapsed_ms();
    row("sp_tree_cold", kCacheQueries, cold_ms, checksum, 0.0);
  }
  {
    graph::SpCache cache;
    double checksum = 0.0;
    util::Stopwatch watch;
    for (std::size_t q = 0; q < kCacheQueries; ++q) {
      const auto sp =
          cache.paths_from(g, static_cast<graph::VertexId>(q % kCacheSources));
      checksum += sp->dist[probe];
    }
    const double cached_ms = watch.elapsed_ms();
    row("sp_tree_cached", kCacheQueries, cached_ms, checksum,
        cached_ms > 0.0 ? cold_ms / cached_ms : 0.0);
  }

  // --- APSP at 1 / 2 / 4 threads ----------------------------------------
  for (std::size_t threads : {1u, 2u, 4u}) {
    util::ThreadPool::set_global_threads(threads);
    util::Stopwatch watch;
    const graph::AllPairsShortestPaths apsp(g);
    row("apsp_threads_" + std::to_string(threads), g.num_vertices(),
        watch.elapsed_ms(), apsp_checksum(apsp), 0.0);
  }
  util::ThreadPool::set_global_threads(1);

  bench::finish("micro_sp_engine", table);
  return 0;
}
