// Measured approximation ratios (Theorem 1 validation).
//
// On small random instances where the exact optimum is computable
// (Dreyfus-Wagner), measure:
//  * Appro_Multi(K=1) vs the true one-server optimum      (bound: 2)
//  * Alg_One_Server  vs the true one-server optimum       (bound: ~3)
//  * Appro_Multi(K)   vs the exact auxiliary optimum       (bound: 2, any K)
// The table reports mean and worst observed ratios; all must sit within the
// proved bounds, and typically far below them.
#include "bench_common.h"
#include "core/exact_offline.h"

int main() {
  using namespace nfvm;
  const std::size_t instances =
      static_cast<std::size_t>(util::env_int("NFVM_BENCH_REQUESTS", 25));

  std::cout << "# Measured approximation ratios on " << instances
            << " random 16-node instances (3 destinations)\n";

  util::RunningStats appro_vs_opt1;
  util::RunningStats baseline_vs_opt1;
  util::RunningStats approk2_vs_aux2;

  for (std::size_t i = 0; i < instances; ++i) {
    util::Rng rng(9000 + i);
    const topo::Topology topo = topo::make_waxman(16, rng);
    const core::LinearCosts costs = core::random_costs(topo, rng);
    nfv::Request request;
    request.id = i;
    request.bandwidth_mbps = rng.uniform_real(50, 200);
    request.chain = nfv::random_service_chain(rng, 1, 3);
    const auto picks = rng.sample_without_replacement(16, 4);
    request.source = static_cast<graph::VertexId>(picks[0]);
    for (std::size_t j = 1; j < picks.size(); ++j) {
      request.destinations.push_back(static_cast<graph::VertexId>(picks[j]));
    }

    const core::OfflineSolution opt1 = core::exact_one_server(topo, costs, request);
    core::ApproMultiOptions a1;
    a1.max_servers = 1;
    const core::OfflineSolution appro1 = core::appro_multi(topo, costs, request, a1);
    const core::OfflineSolution base = core::alg_one_server(topo, costs, request);
    core::ExactOfflineOptions e2;
    e2.max_servers = 2;
    const core::OfflineSolution aux2 = core::exact_auxiliary(topo, costs, request, e2);
    core::ApproMultiOptions a2;
    a2.max_servers = 2;
    const core::OfflineSolution appro2 = core::appro_multi(topo, costs, request, a2);
    if (!opt1.admitted || !appro1.admitted || !base.admitted || !aux2.admitted ||
        !appro2.admitted) {
      continue;
    }
    appro_vs_opt1.add(appro1.tree.cost / opt1.tree.cost);
    baseline_vs_opt1.add(base.tree.cost / opt1.tree.cost);
    approk2_vs_aux2.add(appro2.tree.cost / aux2.tree.cost);
  }

  util::Table table({"ratio", "mean", "max", "proved_bound"});
  table.begin_row()
      .add("appro_multi_K1/OPT1")
      .add(appro_vs_opt1.mean(), 4)
      .add(appro_vs_opt1.max(), 4)
      .add("2.0");
  table.begin_row()
      .add("alg_one_server/OPT1")
      .add(baseline_vs_opt1.mean(), 4)
      .add(baseline_vs_opt1.max(), 4)
      .add("~3.0");
  table.begin_row()
      .add("appro_multi_K2/auxOPT2")
      .add(approk2_vs_aux2.mean(), 4)
      .add(approk2_vs_aux2.max(), 4)
      .add("2.0");
  bench::finish("ratio_measured", table);
  return 0;
}
