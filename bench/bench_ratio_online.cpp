// Empirical competitive behaviour (Theorem 2 companion).
//
// The competitive ratio compares Online_CP against an optimal *offline*
// algorithm that sees the whole sequence. The offline optimum is NP-hard, so
// we use a strong proxy: the batch planner admitting the same requests in
// its best ordering (smallest-demand-first) with Appro_Multi_Cap, which
// re-optimizes every tree with full knowledge. Columns report admitted
// counts and the empirical ratio online/offline-proxy - Theorem 2 guarantees
// it stays above Omega(1/log|V|); in practice it is far better.
#include <cmath>

#include "bench_common.h"
#include "core/batch_planner.h"
#include "core/online_cp.h"
#include "sim/simulator.h"

int main() {
  using namespace nfvm;
  const std::size_t num_requests = bench::online_sequence_length(150);

  std::cout << "# Empirical competitive behaviour: Online_CP vs offline batch proxy ("
            << num_requests << " requests)\n";

  util::Table table({"n", "online_cp", "offline_proxy", "empirical_ratio",
                     "1/log2(n)"});

  for (std::size_t n : {50u, 100u, 150u}) {
    util::Rng rng(1000 + n);
    topo::WaxmanOptions wo;
    wo.target_mean_degree = 4.0;
    wo.capacities.max_bandwidth_mbps = 2500.0;  // contention
    const topo::Topology topo = topo::make_waxman(n, rng, wo);
    const core::LinearCosts costs = core::random_costs(topo, rng);

    util::Rng workload(4242);
    sim::RequestGenerator gen(topo, workload);
    const std::vector<nfv::Request> requests = gen.sequence(num_requests);

    core::OnlineCp cp(topo);
    const sim::SimulationMetrics online = sim::run_online(cp, requests);

    core::BatchPlanOptions bopts;
    bopts.order = core::BatchOrder::kSmallestDemandFirst;
    bopts.engine = core::ApproMultiOptions::Engine::kSharedDijkstra;
    const core::BatchPlanResult offline = core::plan_batch(topo, costs, requests, bopts);

    const double ratio =
        offline.num_admitted == 0
            ? 1.0
            : static_cast<double>(online.num_admitted) /
                  static_cast<double>(offline.num_admitted);
    table.begin_row()
        .add(n)
        .add(online.num_admitted)
        .add(offline.num_admitted)
        .add(ratio, 3)
        .add(1.0 / std::log2(static_cast<double>(n)), 3);
  }
  bench::finish("ratio_online", table);
  return 0;
}
