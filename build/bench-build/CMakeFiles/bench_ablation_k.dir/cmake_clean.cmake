file(REMOVE_RECURSE
  "../bench/bench_ablation_k"
  "../bench/bench_ablation_k.pdb"
  "CMakeFiles/bench_ablation_k.dir/bench_ablation_k.cpp.o"
  "CMakeFiles/bench_ablation_k.dir/bench_ablation_k.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
