# Empty dependencies file for bench_ablation_steiner_engine.
# This may be replaced when dependencies are built.
