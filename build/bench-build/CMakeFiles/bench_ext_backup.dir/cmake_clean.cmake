file(REMOVE_RECURSE
  "../bench/bench_ext_backup"
  "../bench/bench_ext_backup.pdb"
  "CMakeFiles/bench_ext_backup.dir/bench_ext_backup.cpp.o"
  "CMakeFiles/bench_ext_backup.dir/bench_ext_backup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
