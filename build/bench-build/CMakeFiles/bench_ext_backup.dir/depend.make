# Empty dependencies file for bench_ext_backup.
# This may be replaced when dependencies are built.
