file(REMOVE_RECURSE
  "../bench/bench_ext_batch"
  "../bench/bench_ext_batch.pdb"
  "CMakeFiles/bench_ext_batch.dir/bench_ext_batch.cpp.o"
  "CMakeFiles/bench_ext_batch.dir/bench_ext_batch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
