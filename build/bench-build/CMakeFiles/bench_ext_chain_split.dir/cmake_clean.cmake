file(REMOVE_RECURSE
  "../bench/bench_ext_chain_split"
  "../bench/bench_ext_chain_split.pdb"
  "CMakeFiles/bench_ext_chain_split.dir/bench_ext_chain_split.cpp.o"
  "CMakeFiles/bench_ext_chain_split.dir/bench_ext_chain_split.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_chain_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
