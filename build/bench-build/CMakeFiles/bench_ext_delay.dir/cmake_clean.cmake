file(REMOVE_RECURSE
  "../bench/bench_ext_delay"
  "../bench/bench_ext_delay.pdb"
  "CMakeFiles/bench_ext_delay.dir/bench_ext_delay.cpp.o"
  "CMakeFiles/bench_ext_delay.dir/bench_ext_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
