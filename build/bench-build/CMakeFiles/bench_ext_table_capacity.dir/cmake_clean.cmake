file(REMOVE_RECURSE
  "../bench/bench_ext_table_capacity"
  "../bench/bench_ext_table_capacity.pdb"
  "CMakeFiles/bench_ext_table_capacity.dir/bench_ext_table_capacity.cpp.o"
  "CMakeFiles/bench_ext_table_capacity.dir/bench_ext_table_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_table_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
