# Empty dependencies file for bench_ext_table_capacity.
# This may be replaced when dependencies are built.
