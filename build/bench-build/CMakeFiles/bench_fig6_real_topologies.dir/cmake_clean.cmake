file(REMOVE_RECURSE
  "../bench/bench_fig6_real_topologies"
  "../bench/bench_fig6_real_topologies.pdb"
  "CMakeFiles/bench_fig6_real_topologies.dir/bench_fig6_real_topologies.cpp.o"
  "CMakeFiles/bench_fig6_real_topologies.dir/bench_fig6_real_topologies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_real_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
