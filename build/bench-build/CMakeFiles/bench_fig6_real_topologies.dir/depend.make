# Empty dependencies file for bench_fig6_real_topologies.
# This may be replaced when dependencies are built.
