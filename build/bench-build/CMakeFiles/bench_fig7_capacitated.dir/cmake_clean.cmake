file(REMOVE_RECURSE
  "../bench/bench_fig7_capacitated"
  "../bench/bench_fig7_capacitated.pdb"
  "CMakeFiles/bench_fig7_capacitated.dir/bench_fig7_capacitated.cpp.o"
  "CMakeFiles/bench_fig7_capacitated.dir/bench_fig7_capacitated.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_capacitated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
