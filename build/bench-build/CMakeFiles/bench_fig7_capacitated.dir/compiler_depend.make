# Empty compiler generated dependencies file for bench_fig7_capacitated.
# This may be replaced when dependencies are built.
