file(REMOVE_RECURSE
  "../bench/bench_fig8_online_size"
  "../bench/bench_fig8_online_size.pdb"
  "CMakeFiles/bench_fig8_online_size.dir/bench_fig8_online_size.cpp.o"
  "CMakeFiles/bench_fig8_online_size.dir/bench_fig8_online_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_online_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
