file(REMOVE_RECURSE
  "../bench/bench_fig9_online_requests"
  "../bench/bench_fig9_online_requests.pdb"
  "CMakeFiles/bench_fig9_online_requests.dir/bench_fig9_online_requests.cpp.o"
  "CMakeFiles/bench_fig9_online_requests.dir/bench_fig9_online_requests.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_online_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
