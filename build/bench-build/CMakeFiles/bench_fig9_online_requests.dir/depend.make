# Empty dependencies file for bench_fig9_online_requests.
# This may be replaced when dependencies are built.
