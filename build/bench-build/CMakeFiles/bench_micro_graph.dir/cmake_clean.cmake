file(REMOVE_RECURSE
  "../bench/bench_micro_graph"
  "../bench/bench_micro_graph.pdb"
  "CMakeFiles/bench_micro_graph.dir/bench_micro_graph.cpp.o"
  "CMakeFiles/bench_micro_graph.dir/bench_micro_graph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
