file(REMOVE_RECURSE
  "../bench/bench_ratio_measured"
  "../bench/bench_ratio_measured.pdb"
  "CMakeFiles/bench_ratio_measured.dir/bench_ratio_measured.cpp.o"
  "CMakeFiles/bench_ratio_measured.dir/bench_ratio_measured.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ratio_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
