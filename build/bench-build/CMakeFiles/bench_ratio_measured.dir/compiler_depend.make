# Empty compiler generated dependencies file for bench_ratio_measured.
# This may be replaced when dependencies are built.
