file(REMOVE_RECURSE
  "../bench/bench_ratio_online"
  "../bench/bench_ratio_online.pdb"
  "CMakeFiles/bench_ratio_online.dir/bench_ratio_online.cpp.o"
  "CMakeFiles/bench_ratio_online.dir/bench_ratio_online.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ratio_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
