# Empty dependencies file for bench_ratio_online.
# This may be replaced when dependencies are built.
