
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alg_one_server.cpp" "src/CMakeFiles/nfvm_core.dir/core/alg_one_server.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/alg_one_server.cpp.o.d"
  "/root/repo/src/core/appro_multi.cpp" "src/CMakeFiles/nfvm_core.dir/core/appro_multi.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/appro_multi.cpp.o.d"
  "/root/repo/src/core/aux_graph.cpp" "src/CMakeFiles/nfvm_core.dir/core/aux_graph.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/aux_graph.cpp.o.d"
  "/root/repo/src/core/backup.cpp" "src/CMakeFiles/nfvm_core.dir/core/backup.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/backup.cpp.o.d"
  "/root/repo/src/core/batch_planner.cpp" "src/CMakeFiles/nfvm_core.dir/core/batch_planner.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/batch_planner.cpp.o.d"
  "/root/repo/src/core/chain_split.cpp" "src/CMakeFiles/nfvm_core.dir/core/chain_split.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/chain_split.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/CMakeFiles/nfvm_core.dir/core/cost_model.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/cost_model.cpp.o.d"
  "/root/repo/src/core/delay.cpp" "src/CMakeFiles/nfvm_core.dir/core/delay.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/delay.cpp.o.d"
  "/root/repo/src/core/exact_offline.cpp" "src/CMakeFiles/nfvm_core.dir/core/exact_offline.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/exact_offline.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/CMakeFiles/nfvm_core.dir/core/online.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/online.cpp.o.d"
  "/root/repo/src/core/online_cp.cpp" "src/CMakeFiles/nfvm_core.dir/core/online_cp.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/online_cp.cpp.o.d"
  "/root/repo/src/core/online_sp.cpp" "src/CMakeFiles/nfvm_core.dir/core/online_sp.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/online_sp.cpp.o.d"
  "/root/repo/src/core/online_sp_static.cpp" "src/CMakeFiles/nfvm_core.dir/core/online_sp_static.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/online_sp_static.cpp.o.d"
  "/root/repo/src/core/pseudo_tree.cpp" "src/CMakeFiles/nfvm_core.dir/core/pseudo_tree.cpp.o" "gcc" "src/CMakeFiles/nfvm_core.dir/core/pseudo_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nfvm_nfv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
