file(REMOVE_RECURSE
  "CMakeFiles/nfvm_core.dir/core/alg_one_server.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/alg_one_server.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/appro_multi.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/appro_multi.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/aux_graph.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/aux_graph.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/backup.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/backup.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/batch_planner.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/batch_planner.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/chain_split.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/chain_split.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/cost_model.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/cost_model.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/delay.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/delay.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/exact_offline.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/exact_offline.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/online.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/online.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/online_cp.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/online_cp.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/online_sp.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/online_sp.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/online_sp_static.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/online_sp_static.cpp.o.d"
  "CMakeFiles/nfvm_core.dir/core/pseudo_tree.cpp.o"
  "CMakeFiles/nfvm_core.dir/core/pseudo_tree.cpp.o.d"
  "libnfvm_core.a"
  "libnfvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
