file(REMOVE_RECURSE
  "libnfvm_core.a"
)
