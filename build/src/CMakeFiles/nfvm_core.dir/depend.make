# Empty dependencies file for nfvm_core.
# This may be replaced when dependencies are built.
