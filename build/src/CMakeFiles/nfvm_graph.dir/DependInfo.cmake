
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/apsp.cpp" "src/CMakeFiles/nfvm_graph.dir/graph/apsp.cpp.o" "gcc" "src/CMakeFiles/nfvm_graph.dir/graph/apsp.cpp.o.d"
  "/root/repo/src/graph/bridges.cpp" "src/CMakeFiles/nfvm_graph.dir/graph/bridges.cpp.o" "gcc" "src/CMakeFiles/nfvm_graph.dir/graph/bridges.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/nfvm_graph.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/nfvm_graph.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/dijkstra.cpp" "src/CMakeFiles/nfvm_graph.dir/graph/dijkstra.cpp.o" "gcc" "src/CMakeFiles/nfvm_graph.dir/graph/dijkstra.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/nfvm_graph.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/nfvm_graph.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/mst.cpp" "src/CMakeFiles/nfvm_graph.dir/graph/mst.cpp.o" "gcc" "src/CMakeFiles/nfvm_graph.dir/graph/mst.cpp.o.d"
  "/root/repo/src/graph/steiner.cpp" "src/CMakeFiles/nfvm_graph.dir/graph/steiner.cpp.o" "gcc" "src/CMakeFiles/nfvm_graph.dir/graph/steiner.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/CMakeFiles/nfvm_graph.dir/graph/subgraph.cpp.o" "gcc" "src/CMakeFiles/nfvm_graph.dir/graph/subgraph.cpp.o.d"
  "/root/repo/src/graph/tree.cpp" "src/CMakeFiles/nfvm_graph.dir/graph/tree.cpp.o" "gcc" "src/CMakeFiles/nfvm_graph.dir/graph/tree.cpp.o.d"
  "/root/repo/src/graph/union_find.cpp" "src/CMakeFiles/nfvm_graph.dir/graph/union_find.cpp.o" "gcc" "src/CMakeFiles/nfvm_graph.dir/graph/union_find.cpp.o.d"
  "/root/repo/src/graph/yen_ksp.cpp" "src/CMakeFiles/nfvm_graph.dir/graph/yen_ksp.cpp.o" "gcc" "src/CMakeFiles/nfvm_graph.dir/graph/yen_ksp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nfvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
