file(REMOVE_RECURSE
  "CMakeFiles/nfvm_graph.dir/graph/apsp.cpp.o"
  "CMakeFiles/nfvm_graph.dir/graph/apsp.cpp.o.d"
  "CMakeFiles/nfvm_graph.dir/graph/bridges.cpp.o"
  "CMakeFiles/nfvm_graph.dir/graph/bridges.cpp.o.d"
  "CMakeFiles/nfvm_graph.dir/graph/components.cpp.o"
  "CMakeFiles/nfvm_graph.dir/graph/components.cpp.o.d"
  "CMakeFiles/nfvm_graph.dir/graph/dijkstra.cpp.o"
  "CMakeFiles/nfvm_graph.dir/graph/dijkstra.cpp.o.d"
  "CMakeFiles/nfvm_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/nfvm_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/nfvm_graph.dir/graph/mst.cpp.o"
  "CMakeFiles/nfvm_graph.dir/graph/mst.cpp.o.d"
  "CMakeFiles/nfvm_graph.dir/graph/steiner.cpp.o"
  "CMakeFiles/nfvm_graph.dir/graph/steiner.cpp.o.d"
  "CMakeFiles/nfvm_graph.dir/graph/subgraph.cpp.o"
  "CMakeFiles/nfvm_graph.dir/graph/subgraph.cpp.o.d"
  "CMakeFiles/nfvm_graph.dir/graph/tree.cpp.o"
  "CMakeFiles/nfvm_graph.dir/graph/tree.cpp.o.d"
  "CMakeFiles/nfvm_graph.dir/graph/union_find.cpp.o"
  "CMakeFiles/nfvm_graph.dir/graph/union_find.cpp.o.d"
  "CMakeFiles/nfvm_graph.dir/graph/yen_ksp.cpp.o"
  "CMakeFiles/nfvm_graph.dir/graph/yen_ksp.cpp.o.d"
  "libnfvm_graph.a"
  "libnfvm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
