file(REMOVE_RECURSE
  "libnfvm_graph.a"
)
