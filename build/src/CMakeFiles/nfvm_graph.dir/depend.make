# Empty dependencies file for nfvm_graph.
# This may be replaced when dependencies are built.
