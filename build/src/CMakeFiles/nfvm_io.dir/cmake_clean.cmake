file(REMOVE_RECURSE
  "CMakeFiles/nfvm_io.dir/io/dot.cpp.o"
  "CMakeFiles/nfvm_io.dir/io/dot.cpp.o.d"
  "CMakeFiles/nfvm_io.dir/io/serialize.cpp.o"
  "CMakeFiles/nfvm_io.dir/io/serialize.cpp.o.d"
  "libnfvm_io.a"
  "libnfvm_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
