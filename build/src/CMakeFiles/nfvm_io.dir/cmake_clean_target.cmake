file(REMOVE_RECURSE
  "libnfvm_io.a"
)
