# Empty dependencies file for nfvm_io.
# This may be replaced when dependencies are built.
