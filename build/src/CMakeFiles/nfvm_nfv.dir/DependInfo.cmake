
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nfv/network_function.cpp" "src/CMakeFiles/nfvm_nfv.dir/nfv/network_function.cpp.o" "gcc" "src/CMakeFiles/nfvm_nfv.dir/nfv/network_function.cpp.o.d"
  "/root/repo/src/nfv/request.cpp" "src/CMakeFiles/nfvm_nfv.dir/nfv/request.cpp.o" "gcc" "src/CMakeFiles/nfvm_nfv.dir/nfv/request.cpp.o.d"
  "/root/repo/src/nfv/resources.cpp" "src/CMakeFiles/nfvm_nfv.dir/nfv/resources.cpp.o" "gcc" "src/CMakeFiles/nfvm_nfv.dir/nfv/resources.cpp.o.d"
  "/root/repo/src/nfv/service_chain.cpp" "src/CMakeFiles/nfvm_nfv.dir/nfv/service_chain.cpp.o" "gcc" "src/CMakeFiles/nfvm_nfv.dir/nfv/service_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nfvm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
