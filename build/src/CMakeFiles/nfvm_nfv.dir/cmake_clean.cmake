file(REMOVE_RECURSE
  "CMakeFiles/nfvm_nfv.dir/nfv/network_function.cpp.o"
  "CMakeFiles/nfvm_nfv.dir/nfv/network_function.cpp.o.d"
  "CMakeFiles/nfvm_nfv.dir/nfv/request.cpp.o"
  "CMakeFiles/nfvm_nfv.dir/nfv/request.cpp.o.d"
  "CMakeFiles/nfvm_nfv.dir/nfv/resources.cpp.o"
  "CMakeFiles/nfvm_nfv.dir/nfv/resources.cpp.o.d"
  "CMakeFiles/nfvm_nfv.dir/nfv/service_chain.cpp.o"
  "CMakeFiles/nfvm_nfv.dir/nfv/service_chain.cpp.o.d"
  "libnfvm_nfv.a"
  "libnfvm_nfv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_nfv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
