file(REMOVE_RECURSE
  "libnfvm_nfv.a"
)
