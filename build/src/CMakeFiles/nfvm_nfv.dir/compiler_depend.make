# Empty compiler generated dependencies file for nfvm_nfv.
# This may be replaced when dependencies are built.
