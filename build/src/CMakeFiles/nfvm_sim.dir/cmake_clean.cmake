file(REMOVE_RECURSE
  "CMakeFiles/nfvm_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/nfvm_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/nfvm_sim.dir/sim/request_gen.cpp.o"
  "CMakeFiles/nfvm_sim.dir/sim/request_gen.cpp.o.d"
  "CMakeFiles/nfvm_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/nfvm_sim.dir/sim/simulator.cpp.o.d"
  "libnfvm_sim.a"
  "libnfvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
