file(REMOVE_RECURSE
  "libnfvm_sim.a"
)
