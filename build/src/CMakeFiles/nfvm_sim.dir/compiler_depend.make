# Empty compiler generated dependencies file for nfvm_sim.
# This may be replaced when dependencies are built.
