
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/geant.cpp" "src/CMakeFiles/nfvm_topology.dir/topology/geant.cpp.o" "gcc" "src/CMakeFiles/nfvm_topology.dir/topology/geant.cpp.o.d"
  "/root/repo/src/topology/rocketfuel.cpp" "src/CMakeFiles/nfvm_topology.dir/topology/rocketfuel.cpp.o" "gcc" "src/CMakeFiles/nfvm_topology.dir/topology/rocketfuel.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/CMakeFiles/nfvm_topology.dir/topology/topology.cpp.o" "gcc" "src/CMakeFiles/nfvm_topology.dir/topology/topology.cpp.o.d"
  "/root/repo/src/topology/transit_stub.cpp" "src/CMakeFiles/nfvm_topology.dir/topology/transit_stub.cpp.o" "gcc" "src/CMakeFiles/nfvm_topology.dir/topology/transit_stub.cpp.o.d"
  "/root/repo/src/topology/waxman.cpp" "src/CMakeFiles/nfvm_topology.dir/topology/waxman.cpp.o" "gcc" "src/CMakeFiles/nfvm_topology.dir/topology/waxman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nfvm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
