file(REMOVE_RECURSE
  "CMakeFiles/nfvm_topology.dir/topology/geant.cpp.o"
  "CMakeFiles/nfvm_topology.dir/topology/geant.cpp.o.d"
  "CMakeFiles/nfvm_topology.dir/topology/rocketfuel.cpp.o"
  "CMakeFiles/nfvm_topology.dir/topology/rocketfuel.cpp.o.d"
  "CMakeFiles/nfvm_topology.dir/topology/topology.cpp.o"
  "CMakeFiles/nfvm_topology.dir/topology/topology.cpp.o.d"
  "CMakeFiles/nfvm_topology.dir/topology/transit_stub.cpp.o"
  "CMakeFiles/nfvm_topology.dir/topology/transit_stub.cpp.o.d"
  "CMakeFiles/nfvm_topology.dir/topology/waxman.cpp.o"
  "CMakeFiles/nfvm_topology.dir/topology/waxman.cpp.o.d"
  "libnfvm_topology.a"
  "libnfvm_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
