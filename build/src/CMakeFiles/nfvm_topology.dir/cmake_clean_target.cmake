file(REMOVE_RECURSE
  "libnfvm_topology.a"
)
