# Empty compiler generated dependencies file for nfvm_topology.
# This may be replaced when dependencies are built.
