file(REMOVE_RECURSE
  "CMakeFiles/nfvm_util.dir/util/env.cpp.o"
  "CMakeFiles/nfvm_util.dir/util/env.cpp.o.d"
  "CMakeFiles/nfvm_util.dir/util/rng.cpp.o"
  "CMakeFiles/nfvm_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/nfvm_util.dir/util/stats.cpp.o"
  "CMakeFiles/nfvm_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/nfvm_util.dir/util/table.cpp.o"
  "CMakeFiles/nfvm_util.dir/util/table.cpp.o.d"
  "libnfvm_util.a"
  "libnfvm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
