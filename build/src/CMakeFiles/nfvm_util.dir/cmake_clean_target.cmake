file(REMOVE_RECURSE
  "libnfvm_util.a"
)
