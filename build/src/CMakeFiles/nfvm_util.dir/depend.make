# Empty dependencies file for nfvm_util.
# This may be replaced when dependencies are built.
