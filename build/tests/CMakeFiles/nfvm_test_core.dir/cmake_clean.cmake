file(REMOVE_RECURSE
  "CMakeFiles/nfvm_test_core.dir/test_aux_graph.cpp.o"
  "CMakeFiles/nfvm_test_core.dir/test_aux_graph.cpp.o.d"
  "CMakeFiles/nfvm_test_core.dir/test_cost_model.cpp.o"
  "CMakeFiles/nfvm_test_core.dir/test_cost_model.cpp.o.d"
  "CMakeFiles/nfvm_test_core.dir/test_delay.cpp.o"
  "CMakeFiles/nfvm_test_core.dir/test_delay.cpp.o.d"
  "CMakeFiles/nfvm_test_core.dir/test_pseudo_tree.cpp.o"
  "CMakeFiles/nfvm_test_core.dir/test_pseudo_tree.cpp.o.d"
  "CMakeFiles/nfvm_test_core.dir/test_table_capacity.cpp.o"
  "CMakeFiles/nfvm_test_core.dir/test_table_capacity.cpp.o.d"
  "nfvm_test_core"
  "nfvm_test_core.pdb"
  "nfvm_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
