# Empty compiler generated dependencies file for nfvm_test_core.
# This may be replaced when dependencies are built.
