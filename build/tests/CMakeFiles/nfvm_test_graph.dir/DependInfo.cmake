
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apsp.cpp" "tests/CMakeFiles/nfvm_test_graph.dir/test_apsp.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_graph.dir/test_apsp.cpp.o.d"
  "/root/repo/tests/test_bridges.cpp" "tests/CMakeFiles/nfvm_test_graph.dir/test_bridges.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_graph.dir/test_bridges.cpp.o.d"
  "/root/repo/tests/test_components.cpp" "tests/CMakeFiles/nfvm_test_graph.dir/test_components.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_graph.dir/test_components.cpp.o.d"
  "/root/repo/tests/test_dijkstra.cpp" "tests/CMakeFiles/nfvm_test_graph.dir/test_dijkstra.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_graph.dir/test_dijkstra.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/nfvm_test_graph.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_graph.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_model.cpp" "tests/CMakeFiles/nfvm_test_graph.dir/test_graph_model.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_graph.dir/test_graph_model.cpp.o.d"
  "/root/repo/tests/test_mst.cpp" "tests/CMakeFiles/nfvm_test_graph.dir/test_mst.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_graph.dir/test_mst.cpp.o.d"
  "/root/repo/tests/test_subgraph.cpp" "tests/CMakeFiles/nfvm_test_graph.dir/test_subgraph.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_graph.dir/test_subgraph.cpp.o.d"
  "/root/repo/tests/test_union_find.cpp" "tests/CMakeFiles/nfvm_test_graph.dir/test_union_find.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_graph.dir/test_union_find.cpp.o.d"
  "/root/repo/tests/test_yen_ksp.cpp" "tests/CMakeFiles/nfvm_test_graph.dir/test_yen_ksp.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_graph.dir/test_yen_ksp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nfvm_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_nfv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
