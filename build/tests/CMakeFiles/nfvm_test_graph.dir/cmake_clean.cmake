file(REMOVE_RECURSE
  "CMakeFiles/nfvm_test_graph.dir/test_apsp.cpp.o"
  "CMakeFiles/nfvm_test_graph.dir/test_apsp.cpp.o.d"
  "CMakeFiles/nfvm_test_graph.dir/test_bridges.cpp.o"
  "CMakeFiles/nfvm_test_graph.dir/test_bridges.cpp.o.d"
  "CMakeFiles/nfvm_test_graph.dir/test_components.cpp.o"
  "CMakeFiles/nfvm_test_graph.dir/test_components.cpp.o.d"
  "CMakeFiles/nfvm_test_graph.dir/test_dijkstra.cpp.o"
  "CMakeFiles/nfvm_test_graph.dir/test_dijkstra.cpp.o.d"
  "CMakeFiles/nfvm_test_graph.dir/test_graph.cpp.o"
  "CMakeFiles/nfvm_test_graph.dir/test_graph.cpp.o.d"
  "CMakeFiles/nfvm_test_graph.dir/test_graph_model.cpp.o"
  "CMakeFiles/nfvm_test_graph.dir/test_graph_model.cpp.o.d"
  "CMakeFiles/nfvm_test_graph.dir/test_mst.cpp.o"
  "CMakeFiles/nfvm_test_graph.dir/test_mst.cpp.o.d"
  "CMakeFiles/nfvm_test_graph.dir/test_subgraph.cpp.o"
  "CMakeFiles/nfvm_test_graph.dir/test_subgraph.cpp.o.d"
  "CMakeFiles/nfvm_test_graph.dir/test_union_find.cpp.o"
  "CMakeFiles/nfvm_test_graph.dir/test_union_find.cpp.o.d"
  "CMakeFiles/nfvm_test_graph.dir/test_yen_ksp.cpp.o"
  "CMakeFiles/nfvm_test_graph.dir/test_yen_ksp.cpp.o.d"
  "nfvm_test_graph"
  "nfvm_test_graph.pdb"
  "nfvm_test_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
