# Empty compiler generated dependencies file for nfvm_test_graph.
# This may be replaced when dependencies are built.
