
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/nfvm_test_integration.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_integration.dir/test_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nfvm_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_nfv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
