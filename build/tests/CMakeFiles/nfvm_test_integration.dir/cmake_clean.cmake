file(REMOVE_RECURSE
  "CMakeFiles/nfvm_test_integration.dir/test_integration.cpp.o"
  "CMakeFiles/nfvm_test_integration.dir/test_integration.cpp.o.d"
  "nfvm_test_integration"
  "nfvm_test_integration.pdb"
  "nfvm_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
