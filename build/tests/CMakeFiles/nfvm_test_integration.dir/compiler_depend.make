# Empty compiler generated dependencies file for nfvm_test_integration.
# This may be replaced when dependencies are built.
