file(REMOVE_RECURSE
  "CMakeFiles/nfvm_test_io.dir/test_dot.cpp.o"
  "CMakeFiles/nfvm_test_io.dir/test_dot.cpp.o.d"
  "CMakeFiles/nfvm_test_io.dir/test_serialize.cpp.o"
  "CMakeFiles/nfvm_test_io.dir/test_serialize.cpp.o.d"
  "nfvm_test_io"
  "nfvm_test_io.pdb"
  "nfvm_test_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_test_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
