# Empty compiler generated dependencies file for nfvm_test_io.
# This may be replaced when dependencies are built.
