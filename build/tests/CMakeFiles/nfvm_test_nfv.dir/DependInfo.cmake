
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_network_function.cpp" "tests/CMakeFiles/nfvm_test_nfv.dir/test_network_function.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_nfv.dir/test_network_function.cpp.o.d"
  "/root/repo/tests/test_request.cpp" "tests/CMakeFiles/nfvm_test_nfv.dir/test_request.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_nfv.dir/test_request.cpp.o.d"
  "/root/repo/tests/test_resources.cpp" "tests/CMakeFiles/nfvm_test_nfv.dir/test_resources.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_nfv.dir/test_resources.cpp.o.d"
  "/root/repo/tests/test_service_chain.cpp" "tests/CMakeFiles/nfvm_test_nfv.dir/test_service_chain.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_nfv.dir/test_service_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nfvm_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_nfv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
