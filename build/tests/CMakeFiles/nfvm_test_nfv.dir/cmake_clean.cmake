file(REMOVE_RECURSE
  "CMakeFiles/nfvm_test_nfv.dir/test_network_function.cpp.o"
  "CMakeFiles/nfvm_test_nfv.dir/test_network_function.cpp.o.d"
  "CMakeFiles/nfvm_test_nfv.dir/test_request.cpp.o"
  "CMakeFiles/nfvm_test_nfv.dir/test_request.cpp.o.d"
  "CMakeFiles/nfvm_test_nfv.dir/test_resources.cpp.o"
  "CMakeFiles/nfvm_test_nfv.dir/test_resources.cpp.o.d"
  "CMakeFiles/nfvm_test_nfv.dir/test_service_chain.cpp.o"
  "CMakeFiles/nfvm_test_nfv.dir/test_service_chain.cpp.o.d"
  "nfvm_test_nfv"
  "nfvm_test_nfv.pdb"
  "nfvm_test_nfv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_test_nfv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
