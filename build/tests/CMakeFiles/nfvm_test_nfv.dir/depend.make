# Empty dependencies file for nfvm_test_nfv.
# This may be replaced when dependencies are built.
