
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alg_one_server.cpp" "tests/CMakeFiles/nfvm_test_offline.dir/test_alg_one_server.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_offline.dir/test_alg_one_server.cpp.o.d"
  "/root/repo/tests/test_appro_multi.cpp" "tests/CMakeFiles/nfvm_test_offline.dir/test_appro_multi.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_offline.dir/test_appro_multi.cpp.o.d"
  "/root/repo/tests/test_appro_multi_shared.cpp" "tests/CMakeFiles/nfvm_test_offline.dir/test_appro_multi_shared.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_offline.dir/test_appro_multi_shared.cpp.o.d"
  "/root/repo/tests/test_backup.cpp" "tests/CMakeFiles/nfvm_test_offline.dir/test_backup.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_offline.dir/test_backup.cpp.o.d"
  "/root/repo/tests/test_batch_planner.cpp" "tests/CMakeFiles/nfvm_test_offline.dir/test_batch_planner.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_offline.dir/test_batch_planner.cpp.o.d"
  "/root/repo/tests/test_chain_split.cpp" "tests/CMakeFiles/nfvm_test_offline.dir/test_chain_split.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_offline.dir/test_chain_split.cpp.o.d"
  "/root/repo/tests/test_exact_offline.cpp" "tests/CMakeFiles/nfvm_test_offline.dir/test_exact_offline.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_offline.dir/test_exact_offline.cpp.o.d"
  "/root/repo/tests/test_offline_properties.cpp" "tests/CMakeFiles/nfvm_test_offline.dir/test_offline_properties.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_offline.dir/test_offline_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nfvm_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_nfv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
