file(REMOVE_RECURSE
  "CMakeFiles/nfvm_test_offline.dir/test_alg_one_server.cpp.o"
  "CMakeFiles/nfvm_test_offline.dir/test_alg_one_server.cpp.o.d"
  "CMakeFiles/nfvm_test_offline.dir/test_appro_multi.cpp.o"
  "CMakeFiles/nfvm_test_offline.dir/test_appro_multi.cpp.o.d"
  "CMakeFiles/nfvm_test_offline.dir/test_appro_multi_shared.cpp.o"
  "CMakeFiles/nfvm_test_offline.dir/test_appro_multi_shared.cpp.o.d"
  "CMakeFiles/nfvm_test_offline.dir/test_backup.cpp.o"
  "CMakeFiles/nfvm_test_offline.dir/test_backup.cpp.o.d"
  "CMakeFiles/nfvm_test_offline.dir/test_batch_planner.cpp.o"
  "CMakeFiles/nfvm_test_offline.dir/test_batch_planner.cpp.o.d"
  "CMakeFiles/nfvm_test_offline.dir/test_chain_split.cpp.o"
  "CMakeFiles/nfvm_test_offline.dir/test_chain_split.cpp.o.d"
  "CMakeFiles/nfvm_test_offline.dir/test_exact_offline.cpp.o"
  "CMakeFiles/nfvm_test_offline.dir/test_exact_offline.cpp.o.d"
  "CMakeFiles/nfvm_test_offline.dir/test_offline_properties.cpp.o"
  "CMakeFiles/nfvm_test_offline.dir/test_offline_properties.cpp.o.d"
  "nfvm_test_offline"
  "nfvm_test_offline.pdb"
  "nfvm_test_offline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_test_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
