# Empty compiler generated dependencies file for nfvm_test_offline.
# This may be replaced when dependencies are built.
