
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_online_base.cpp" "tests/CMakeFiles/nfvm_test_online.dir/test_online_base.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_online.dir/test_online_base.cpp.o.d"
  "/root/repo/tests/test_online_cp.cpp" "tests/CMakeFiles/nfvm_test_online.dir/test_online_cp.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_online.dir/test_online_cp.cpp.o.d"
  "/root/repo/tests/test_online_sp.cpp" "tests/CMakeFiles/nfvm_test_online.dir/test_online_sp.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_online.dir/test_online_sp.cpp.o.d"
  "/root/repo/tests/test_online_sp_static.cpp" "tests/CMakeFiles/nfvm_test_online.dir/test_online_sp_static.cpp.o" "gcc" "tests/CMakeFiles/nfvm_test_online.dir/test_online_sp_static.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nfvm_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_nfv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nfvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
