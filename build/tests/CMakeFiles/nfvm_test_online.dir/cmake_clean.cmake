file(REMOVE_RECURSE
  "CMakeFiles/nfvm_test_online.dir/test_online_base.cpp.o"
  "CMakeFiles/nfvm_test_online.dir/test_online_base.cpp.o.d"
  "CMakeFiles/nfvm_test_online.dir/test_online_cp.cpp.o"
  "CMakeFiles/nfvm_test_online.dir/test_online_cp.cpp.o.d"
  "CMakeFiles/nfvm_test_online.dir/test_online_sp.cpp.o"
  "CMakeFiles/nfvm_test_online.dir/test_online_sp.cpp.o.d"
  "CMakeFiles/nfvm_test_online.dir/test_online_sp_static.cpp.o"
  "CMakeFiles/nfvm_test_online.dir/test_online_sp_static.cpp.o.d"
  "nfvm_test_online"
  "nfvm_test_online.pdb"
  "nfvm_test_online[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_test_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
