# Empty dependencies file for nfvm_test_online.
# This may be replaced when dependencies are built.
