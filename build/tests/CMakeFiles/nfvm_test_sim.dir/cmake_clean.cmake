file(REMOVE_RECURSE
  "CMakeFiles/nfvm_test_sim.dir/test_dynamic_simulator.cpp.o"
  "CMakeFiles/nfvm_test_sim.dir/test_dynamic_simulator.cpp.o.d"
  "CMakeFiles/nfvm_test_sim.dir/test_request_gen.cpp.o"
  "CMakeFiles/nfvm_test_sim.dir/test_request_gen.cpp.o.d"
  "CMakeFiles/nfvm_test_sim.dir/test_simulator.cpp.o"
  "CMakeFiles/nfvm_test_sim.dir/test_simulator.cpp.o.d"
  "nfvm_test_sim"
  "nfvm_test_sim.pdb"
  "nfvm_test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
