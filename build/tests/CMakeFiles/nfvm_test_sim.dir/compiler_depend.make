# Empty compiler generated dependencies file for nfvm_test_sim.
# This may be replaced when dependencies are built.
