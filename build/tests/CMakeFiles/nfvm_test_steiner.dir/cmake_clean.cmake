file(REMOVE_RECURSE
  "CMakeFiles/nfvm_test_steiner.dir/test_steiner.cpp.o"
  "CMakeFiles/nfvm_test_steiner.dir/test_steiner.cpp.o.d"
  "CMakeFiles/nfvm_test_steiner.dir/test_steiner_improve.cpp.o"
  "CMakeFiles/nfvm_test_steiner.dir/test_steiner_improve.cpp.o.d"
  "CMakeFiles/nfvm_test_steiner.dir/test_steiner_properties.cpp.o"
  "CMakeFiles/nfvm_test_steiner.dir/test_steiner_properties.cpp.o.d"
  "CMakeFiles/nfvm_test_steiner.dir/test_takahashi_matsuyama.cpp.o"
  "CMakeFiles/nfvm_test_steiner.dir/test_takahashi_matsuyama.cpp.o.d"
  "nfvm_test_steiner"
  "nfvm_test_steiner.pdb"
  "nfvm_test_steiner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_test_steiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
