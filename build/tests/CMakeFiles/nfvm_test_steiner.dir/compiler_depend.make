# Empty compiler generated dependencies file for nfvm_test_steiner.
# This may be replaced when dependencies are built.
