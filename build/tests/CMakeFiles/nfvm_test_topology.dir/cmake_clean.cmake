file(REMOVE_RECURSE
  "CMakeFiles/nfvm_test_topology.dir/test_real_topologies.cpp.o"
  "CMakeFiles/nfvm_test_topology.dir/test_real_topologies.cpp.o.d"
  "CMakeFiles/nfvm_test_topology.dir/test_topology.cpp.o"
  "CMakeFiles/nfvm_test_topology.dir/test_topology.cpp.o.d"
  "CMakeFiles/nfvm_test_topology.dir/test_transit_stub.cpp.o"
  "CMakeFiles/nfvm_test_topology.dir/test_transit_stub.cpp.o.d"
  "CMakeFiles/nfvm_test_topology.dir/test_waxman.cpp.o"
  "CMakeFiles/nfvm_test_topology.dir/test_waxman.cpp.o.d"
  "nfvm_test_topology"
  "nfvm_test_topology.pdb"
  "nfvm_test_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_test_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
