# Empty dependencies file for nfvm_test_topology.
# This may be replaced when dependencies are built.
