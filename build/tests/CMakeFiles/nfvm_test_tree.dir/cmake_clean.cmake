file(REMOVE_RECURSE
  "CMakeFiles/nfvm_test_tree.dir/test_tree.cpp.o"
  "CMakeFiles/nfvm_test_tree.dir/test_tree.cpp.o.d"
  "nfvm_test_tree"
  "nfvm_test_tree.pdb"
  "nfvm_test_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_test_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
