# Empty dependencies file for nfvm_test_tree.
# This may be replaced when dependencies are built.
