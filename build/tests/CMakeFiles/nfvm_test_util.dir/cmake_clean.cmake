file(REMOVE_RECURSE
  "CMakeFiles/nfvm_test_util.dir/test_env.cpp.o"
  "CMakeFiles/nfvm_test_util.dir/test_env.cpp.o.d"
  "CMakeFiles/nfvm_test_util.dir/test_rng.cpp.o"
  "CMakeFiles/nfvm_test_util.dir/test_rng.cpp.o.d"
  "CMakeFiles/nfvm_test_util.dir/test_stats.cpp.o"
  "CMakeFiles/nfvm_test_util.dir/test_stats.cpp.o.d"
  "CMakeFiles/nfvm_test_util.dir/test_table.cpp.o"
  "CMakeFiles/nfvm_test_util.dir/test_table.cpp.o.d"
  "nfvm_test_util"
  "nfvm_test_util.pdb"
  "nfvm_test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
