# Empty dependencies file for nfvm_test_util.
# This may be replaced when dependencies are built.
