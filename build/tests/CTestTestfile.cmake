# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nfvm_test_util[1]_include.cmake")
include("/root/repo/build/tests/nfvm_test_graph[1]_include.cmake")
include("/root/repo/build/tests/nfvm_test_steiner[1]_include.cmake")
include("/root/repo/build/tests/nfvm_test_tree[1]_include.cmake")
include("/root/repo/build/tests/nfvm_test_topology[1]_include.cmake")
include("/root/repo/build/tests/nfvm_test_nfv[1]_include.cmake")
include("/root/repo/build/tests/nfvm_test_core[1]_include.cmake")
include("/root/repo/build/tests/nfvm_test_offline[1]_include.cmake")
include("/root/repo/build/tests/nfvm_test_online[1]_include.cmake")
include("/root/repo/build/tests/nfvm_test_sim[1]_include.cmake")
include("/root/repo/build/tests/nfvm_test_io[1]_include.cmake")
include("/root/repo/build/tests/nfvm_test_integration[1]_include.cmake")
