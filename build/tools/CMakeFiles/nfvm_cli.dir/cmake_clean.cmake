file(REMOVE_RECURSE
  "CMakeFiles/nfvm_cli.dir/nfvm_sim.cpp.o"
  "CMakeFiles/nfvm_cli.dir/nfvm_sim.cpp.o.d"
  "nfvm-sim"
  "nfvm-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
