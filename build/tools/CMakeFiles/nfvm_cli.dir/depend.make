# Empty dependencies file for nfvm_cli.
# This may be replaced when dependencies are built.
