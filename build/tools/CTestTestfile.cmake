# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(nfvm_cli_smoke_static "/root/repo/build/tools/nfvm-sim" "--topology" "geant" "--algorithm" "all" "--requests" "60" "--seed" "3")
set_tests_properties(nfvm_cli_smoke_static PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(nfvm_cli_smoke_dynamic "/root/repo/build/tools/nfvm-sim" "--topology" "as1755" "--algorithm" "online_cp" "--requests" "80" "--dynamic" "--arrival-rate" "2" "--mean-duration" "10")
set_tests_properties(nfvm_cli_smoke_dynamic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(nfvm_cli_smoke_waxman "/root/repo/build/tools/nfvm-sim" "--topology" "waxman" "--nodes" "60" "--requests" "50" "--dest-ratio" "0.1")
set_tests_properties(nfvm_cli_smoke_waxman PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(nfvm_cli_smoke_delay "/root/repo/build/tools/nfvm-sim" "--topology" "geant" "--requests" "40" "--max-delay" "15")
set_tests_properties(nfvm_cli_smoke_delay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(nfvm_cli_smoke_offline "/root/repo/build/tools/nfvm-sim" "--mode" "offline" "--topology" "geant" "--requests" "20")
set_tests_properties(nfvm_cli_smoke_offline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
