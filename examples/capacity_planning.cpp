// Capacity planning: how many NFV servers does an SDN need?
//
// Sweeps the server fraction of a 100-switch Waxman SDN and reports, for a
// fixed arrival sequence, how many requests Online_CP admits and what the
// average implementation cost of an offline request is. Useful to a network
// operator deciding where the compute/bandwidth tradeoff saturates.
//
//   $ ./capacity_planning
#include <iostream>

#include "core/appro_multi.h"
#include "core/online_cp.h"
#include "sim/request_gen.h"
#include "sim/simulator.h"
#include "topology/waxman.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace nfvm;

  std::cout << "# Server-fraction sweep on a 100-switch Waxman SDN\n";
  std::cout << "# 200 online requests (Online_CP) + 50 offline costs (Appro_Multi K=3)\n\n";

  util::Table table({"server_frac", "servers", "admitted_of_200",
                     "mean_offline_cost", "mean_servers_used"});

  for (double frac : {0.05, 0.10, 0.15, 0.20, 0.30}) {
    // Same wiring for every fraction: regenerate with the same seed and
    // re-draw only the server placement and capacities.
    util::Rng rng(4242);
    topo::WaxmanOptions opts;
    opts.server_fraction = frac;
    const topo::Topology topo = topo::make_waxman(100, rng, opts);

    // Online throughput.
    util::Rng workload(7);
    sim::RequestGenerator gen(topo, workload);
    core::OnlineCp cp(topo);
    const sim::SimulationMetrics m = sim::run_online(cp, gen.sequence(200));

    // Offline cost on a fresh (uncapacitated) view.
    util::Rng costs_rng(11);
    const core::LinearCosts costs = core::random_costs(topo, costs_rng);
    util::Rng offline_rng(13);
    sim::RequestGenerator offline_gen(topo, offline_rng);
    double cost_sum = 0.0;
    double servers_sum = 0.0;
    int admitted = 0;
    for (int i = 0; i < 50; ++i) {
      const nfv::Request r = offline_gen.next();
      const core::OfflineSolution sol = core::appro_multi(topo, costs, r);
      if (!sol.admitted) continue;
      cost_sum += sol.tree.cost;
      servers_sum += static_cast<double>(sol.tree.servers.size());
      ++admitted;
    }

    table.begin_row()
        .add(frac, 2)
        .add(topo.servers.size())
        .add(m.num_admitted)
        .add(admitted ? cost_sum / admitted : 0.0, 2)
        .add(admitted ? servers_sum / admitted : 0.0, 2);
  }

  table.print(std::cout);
  std::cout << "\nMore servers shorten the detour to the nearest service-chain\n"
               "instance (lower offline cost, more multi-instance trees) and\n"
               "raise online throughput until bandwidth becomes the bottleneck.\n";
  return 0;
}
