// Dynamic workload with departures: video-conference-style sessions arrive
// as a Poisson process, hold resources for an exponential duration, and
// release them on departure. Compares the three online algorithms under
// resource recycling and writes a Graphviz rendering of one admitted
// pseudo-multicast tree.
//
//   $ ./dynamic_workload [out.dot]
#include <fstream>
#include <iostream>

#include "core/online_cp.h"
#include "core/online_sp.h"
#include "core/online_sp_static.h"
#include "io/dot.h"
#include "sim/simulator.h"
#include "topology/transit_stub.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nfvm;

  util::Rng rng(2027);
  const topo::Topology topo = topo::make_transit_stub(120, rng);
  std::cout << "# " << topo.name << ": " << topo.num_switches() << " switches, "
            << topo.num_links() << " links, " << topo.servers.size()
            << " servers\n";
  std::cout << "# 500 conference sessions, Poisson arrivals (rate 3/min), "
               "exp holding (mean 15 min)\n\n";

  sim::DynamicWorkloadOptions dyn;
  dyn.arrival_rate = 3.0;
  dyn.mean_duration = 15.0;

  const auto make_workload = [&topo, &dyn]() {
    util::Rng requests_rng(99);
    util::Rng times_rng(100);
    sim::RequestGenerator generator(topo, requests_rng);
    return sim::make_poisson_workload(generator, times_rng, 500, dyn);
  };

  util::Table table({"algorithm", "admitted_of_500", "acceptance", "peak_active",
                     "mean_active"});
  for (int which = 0; which < 3; ++which) {
    const auto workload = make_workload();
    std::unique_ptr<core::OnlineAlgorithm> algo;
    switch (which) {
      case 0: algo = std::make_unique<core::OnlineCp>(topo); break;
      case 1: algo = std::make_unique<core::OnlineSp>(topo); break;
      default: algo = std::make_unique<core::OnlineSpStatic>(topo); break;
    }
    const sim::DynamicMetrics m = sim::run_online_dynamic(*algo, workload);
    table.begin_row()
        .add(std::string(algo->name()))
        .add(m.num_admitted)
        .add(m.acceptance_ratio(), 3)
        .add(m.peak_active)
        .add(m.mean_active, 1);
  }
  table.print(std::cout);

  // Render one admitted tree for inspection.
  core::OnlineCp cp(topo);
  const auto workload = make_workload();
  for (const sim::TimedRequest& tr : workload) {
    const core::AdmissionDecision d = cp.process(tr.request);
    if (!d.admitted) continue;
    const std::string dot = io::to_dot(topo, tr.request, d.tree);
    const char* path = argc > 1 ? argv[1] : "pseudo_tree.dot";
    std::ofstream out(path);
    out << dot;
    std::cout << "\nwrote " << path << " (render with: neato -Tsvg " << path
              << " -o tree.svg)\n";
    break;
  }
  std::cout << "\nDepartures recycle bandwidth and computing, so all three\n"
               "algorithms sustain far more sessions than a permanent-\n"
               "allocation run of the same arrival sequence would.\n";
  return 0;
}
