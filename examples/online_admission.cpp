// Online admission on an ISP topology (AS1755-like): requests arrive one by
// one, Online_CP and SP decide admit/reject, and we print throughput over
// time plus final utilization - the paper's Section VI-C scenario.
//
//   $ ./online_admission [num_requests]
#include <cstdlib>
#include <iostream>

#include "core/online_cp.h"
#include "core/online_sp.h"
#include "sim/request_gen.h"
#include "sim/simulator.h"
#include "topology/rocketfuel.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nfvm;

  std::size_t num_requests = 300;
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed > 0) num_requests = static_cast<std::size_t>(parsed);
  }

  util::Rng rng(99);
  const topo::Topology topo = topo::make_as1755(rng);
  std::cout << "# Online NFV-enabled multicast admission on " << topo.name
            << " (" << topo.num_switches() << " switches, " << topo.num_links()
            << " links, " << topo.servers.size() << " servers)\n";
  std::cout << "# " << num_requests
            << " requests; bandwidth U[50,200] Mbps; Dmax/|V| U[0.05,0.2]\n\n";

  // Identical arrival sequence for both algorithms.
  util::Rng workload(1234);
  sim::RequestGenerator gen(topo, workload);
  const std::vector<nfv::Request> requests = gen.sequence(num_requests);

  core::OnlineCp cp(topo);
  core::OnlineSp sp(topo);
  const sim::SimulationMetrics mcp = sim::run_online(cp, requests);
  const sim::SimulationMetrics msp = sim::run_online(sp, requests);

  // Throughput over time, sampled every num_requests/10 arrivals.
  util::Table series({"arrivals", "Online_CP_admitted", "SP_admitted"});
  const std::size_t step = std::max<std::size_t>(1, num_requests / 10);
  for (std::size_t i = step - 1; i < num_requests; i += step) {
    series.begin_row()
        .add(i + 1)
        .add(mcp.cumulative_admitted[i])
        .add(msp.cumulative_admitted[i]);
  }
  series.print(std::cout);

  util::Table summary({"algorithm", "admitted", "acceptance", "mean_bw_util",
                       "mean_cpu_util", "mean_decision_ms"});
  summary.begin_row()
      .add("Online_CP")
      .add(mcp.num_admitted)
      .add(mcp.acceptance_ratio(), 3)
      .add(mcp.final_bandwidth_utilization, 3)
      .add(mcp.final_compute_utilization, 3)
      .add(mcp.decision_seconds.mean() * 1e3, 3);
  summary.begin_row()
      .add("SP")
      .add(msp.num_admitted)
      .add(msp.acceptance_ratio(), 3)
      .add(msp.final_bandwidth_utilization, 3)
      .add(msp.final_compute_utilization, 3)
      .add(msp.decision_seconds.mean() * 1e3, 3);
  std::cout << "\n";
  summary.print(std::cout);

  std::cout << "\nOnline_CP's exponential cost model steers requests away from\n"
               "loaded links/servers and rejects requests whose admission would\n"
               "crowd out future ones; SP greedily packs shortest paths.\n";
  return 0;
}
