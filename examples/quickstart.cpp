// Quickstart: build a small SDN, submit one NFV-enabled multicast request,
// and print the pseudo-multicast tree produced by Appro_Multi.
//
//   $ ./quickstart
//
// Walks through the full public API surface: topology construction, cost
// model, request definition, algorithm invocation, and tree inspection.
#include <iostream>

#include "core/appro_multi.h"
#include "topology/waxman.h"
#include "util/rng.h"

int main() {
  using namespace nfvm;

  // 1. A 20-switch SDN with 10% of switches hosting NFV servers, link
  //    bandwidths in [1000, 10000] Mbps and server capacities in
  //    [4000, 12000] MHz (the paper's evaluation defaults).
  util::Rng rng(7);
  const topo::Topology topo = topo::make_waxman(20, rng);
  std::cout << "SDN '" << topo.name << "': " << topo.num_switches()
            << " switches, " << topo.num_links() << " links, "
            << topo.servers.size() << " servers at {";
  for (std::size_t i = 0; i < topo.servers.size(); ++i) {
    std::cout << (i ? "," : "") << topo.servers[i];
  }
  std::cout << "}\n";

  // 2. Per-unit usage costs (operational-cost model of the paper, Case 1).
  const core::LinearCosts costs = core::random_costs(topo, rng);

  // 3. An NFV-enabled multicast request r = (s, D; b, SC).
  nfv::Request request;
  request.id = 1;
  request.source = 0;
  request.destinations = {5, 11, 17};
  request.bandwidth_mbps = 120.0;
  request.chain = nfv::ServiceChain(
      {nfv::NetworkFunction::kNat, nfv::NetworkFunction::kFirewall,
       nfv::NetworkFunction::kIds});
  std::cout << "request: " << request.to_string() << "\n";
  std::cout << "chain computing demand: " << request.compute_demand_mhz()
            << " MHz\n\n";

  // 4. Run Appro_Multi with K = 3 (at most three service-chain instances).
  core::ApproMultiOptions options;
  options.max_servers = 3;
  const core::OfflineSolution sol =
      core::appro_multi(topo, costs, request, options);
  if (!sol.admitted) {
    std::cout << "request rejected: " << sol.reject_reason << "\n";
    return 1;
  }

  // 5. Inspect the pseudo-multicast tree.
  std::cout << "admitted with cost " << sol.tree.cost << " (explored "
            << sol.combinations_explored << " server combinations)\n";
  std::cout << "service chain instances at: ";
  for (graph::VertexId v : sol.tree.servers) std::cout << v << " ";
  std::cout << "\nlink usage (link id x traversals):\n";
  for (const auto& [edge, mult] : sol.tree.edge_uses) {
    const graph::Edge& e = topo.graph.edge(edge);
    std::cout << "  " << e.u << "-" << e.v << " x" << mult << "\n";
  }
  std::cout << "per-destination routes (* marks the processing server):\n";
  for (const core::DestinationRoute& route : sol.tree.routes) {
    std::cout << "  d=" << route.destination << ": ";
    for (std::size_t i = 0; i < route.walk.size(); ++i) {
      if (i) std::cout << " -> ";
      std::cout << route.walk[i];
      if (i == route.server_index) std::cout << "*";
    }
    std::cout << "\n";
  }

  // 6. The tree validates against the physical network.
  std::string error;
  if (!core::validate_pseudo_tree(topo.graph, request, sol.tree, &error)) {
    std::cout << "BUG: invalid tree: " << error << "\n";
    return 1;
  }
  std::cout << "tree validated: every destination receives processed traffic\n";
  return 0;
}
