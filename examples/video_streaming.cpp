// Video-streaming distribution over the GÉANT-like topology.
//
// A streaming origin in Amsterdam multicasts a live channel to European
// PoPs. Every stream must pass a service chain (NAT -> Firewall -> IDS)
// before delivery. We compare Appro_Multi (K = 1..3) against the
// Alg_One_Server baseline on operational cost, per event size.
//
//   $ ./video_streaming
#include <iostream>
#include <vector>

#include "core/alg_one_server.h"
#include "core/appro_multi.h"
#include "topology/geant.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

nfvm::graph::VertexId city(const std::string& name) {
  const auto& names = nfvm::topo::geant_city_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<nfvm::graph::VertexId>(i);
  }
  throw std::runtime_error("unknown city " + name);
}

}  // namespace

int main() {
  using namespace nfvm;

  util::Rng rng(2026);
  const topo::Topology geant = topo::make_geant(rng);
  const core::LinearCosts costs = core::random_costs(geant, rng);

  struct Event {
    const char* label;
    std::vector<const char*> audience;
    double mbps;
  };
  const std::vector<Event> events = {
      {"regional-news", {"Brussels", "Luxembourg", "Paris"}, 80.0},
      {"football-final",
       {"London", "Madrid", "Rome", "Warsaw", "Athens", "Stockholm"},
       160.0},
      {"continental-launch",
       {"Lisbon", "Dublin", "Oslo", "Helsinki", "Istanbul", "Nicosia",
        "Moscow", "Sofia", "Zagreb", "Riga"},
       120.0},
  };

  util::Table table({"event", "dests", "Mbps", "alg_one_server", "appro_K1",
                     "appro_K2", "appro_K3", "saving_%"});

  std::uint64_t id = 0;
  for (const Event& event : events) {
    nfv::Request request;
    request.id = ++id;
    request.source = city("Amsterdam");
    for (const char* a : event.audience) request.destinations.push_back(city(a));
    request.bandwidth_mbps = event.mbps;
    request.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat,
                                       nfv::NetworkFunction::kFirewall,
                                       nfv::NetworkFunction::kIds});

    const core::OfflineSolution base = core::alg_one_server(geant, costs, request);
    if (!base.admitted) {
      std::cerr << "baseline rejected " << event.label << ": "
                << base.reject_reason << "\n";
      return 1;
    }
    double k_cost[3] = {0, 0, 0};
    for (std::size_t k = 1; k <= 3; ++k) {
      core::ApproMultiOptions opts;
      opts.max_servers = k;
      const core::OfflineSolution sol = core::appro_multi(geant, costs, request, opts);
      if (!sol.admitted) {
        std::cerr << "appro_multi(K=" << k << ") rejected " << event.label
                  << ": " << sol.reject_reason << "\n";
        return 1;
      }
      k_cost[k - 1] = sol.tree.cost;
    }
    const double saving = 100.0 * (base.tree.cost - k_cost[2]) / base.tree.cost;
    table.begin_row()
        .add(event.label)
        .add(event.audience.size())
        .add(event.mbps, 0)
        .add(base.tree.cost, 2)
        .add(k_cost[0], 2)
        .add(k_cost[1], 2)
        .add(k_cost[2], 2)
        .add(saving, 1);
  }

  std::cout << "# Video streaming from Amsterdam over GEANT-like topology\n";
  std::cout << "# chain <NAT, Firewall, IDS>; costs are operational cost units\n";
  table.print(std::cout);
  std::cout << "\nMore service-chain instances (larger K) trade computing cost\n"
               "for shorter processed-traffic routes; the saving column is\n"
               "Appro_Multi(K=3) vs the single-server baseline.\n";
  return 0;
}
