#include "core/alg_one_server.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "core/aux_graph.h"
#include "core/delay.h"
#include "core/shared_closure.h"
#include "graph/mst.h"
#include "graph/steiner.h"
#include "graph/tree.h"

namespace nfvm::core {
namespace {

// Faithful to the paper's Section VI-A description of Zhang et al. [22]:
//   1. route the traffic from the source to a candidate server v,
//   2. build the metric-closure MST over the *destinations* (each closure
//      edge is the shortest path between two destinations),
//   3. expand the MST into its subgraph in the network,
//   4. attach the server to the expanded subgraph via the shortest path to
//      its nearest destination,
//   5. pick the (server, subgraph) combination with minimum cost.
// Unlike Appro_Multi this never exploits Steiner points across the whole
// terminal set {v} ∪ D, which is exactly the baseline's weakness the paper's
// Fig. 5/6 gaps exhibit.

struct CandidatePlan {
  double cost = std::numeric_limits<double>::infinity();
  graph::VertexId server = graph::kInvalidVertex;
  /// Distinct working-graph edges of the expanded destination MST plus the
  /// server-attachment path.
  std::vector<graph::EdgeId> subgraph_edges;
};

}  // namespace

OfflineSolution alg_one_server(const topo::Topology& topo, const LinearCosts& costs,
                               const nfv::Request& request,
                               const nfv::ResourceState* resources) {
  OfflineSolution sol;
  const WorkContext ctx = build_work_context(topo, costs, request, resources);
  if (!ctx.destinations_reachable) {
    sol.reject_reason = "a destination is unreachable with the demanded bandwidth";
    return sol;
  }
  if (ctx.eligible_servers.empty()) {
    sol.reject_reason = "no server can host the service chain";
    return sol;
  }

  const std::vector<graph::VertexId>& dests = request.destinations;

  // Shortest paths from every destination (shared across candidate servers):
  // computed in parallel and cached in the context's SP-tree cache.
  const std::vector<std::shared_ptr<const graph::ShortestPaths>> sp_dest =
      context_trees(ctx, dests);

  // Metric-closure MST over the destinations (Prim), server-independent.
  const std::size_t t = dests.size();
  std::vector<bool> in_tree(t, false);
  std::vector<double> best(t, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> best_from(t, 0);
  best[0] = 0.0;
  std::set<graph::EdgeId> mst_expansion;
  for (std::size_t step = 0; step < t; ++step) {
    std::size_t pick = t;
    for (std::size_t i = 0; i < t; ++i) {
      if (!in_tree[i] && (pick == t || best[i] < best[pick])) pick = i;
    }
    in_tree[pick] = true;
    if (pick != 0) {
      for (graph::EdgeId e :
           graph::path_edges(*sp_dest[best_from[pick]], dests[pick])) {
        mst_expansion.insert(e);
      }
    }
    for (std::size_t j = 0; j < t; ++j) {
      if (in_tree[j]) continue;
      const double d = sp_dest[pick]->dist[dests[j]];
      if (d < best[j]) {
        best[j] = d;
        best_from[j] = pick;
      }
    }
  }

  // Candidate servers: attach each via its nearest destination.
  std::vector<CandidatePlan> candidates;
  for (graph::VertexId v : ctx.eligible_servers) {
    ++sol.combinations_explored;
    const std::size_t nearest = nearest_table_root(sp_dest, v);
    if (nearest == t) continue;  // no destination reaches this server

    std::set<graph::EdgeId> edges = mst_expansion;
    for (graph::EdgeId e : graph::path_edges(*sp_dest[nearest], v)) edges.insert(e);

    CandidatePlan plan;
    plan.server = v;
    plan.subgraph_edges.assign(edges.begin(), edges.end());
    double subgraph_cost = 0.0;
    for (graph::EdgeId e : plan.subgraph_edges) {
      subgraph_cost += ctx.cost_graph.weight(e);
    }
    plan.cost = ctx.sp_source.dist[v] + ctx.server_chain_cost[v] + subgraph_cost;
    candidates.push_back(std::move(plan));
  }

  if (candidates.empty()) {
    sol.reject_reason = "no server reaches all destinations";
    return sol;
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const CandidatePlan& a, const CandidatePlan& b) {
                     return a.cost < b.cost;
                   });

  for (const CandidatePlan& plan : candidates) {
    // The expanded subgraph can contain cycles (overlapping closure paths);
    // routing uses a spanning tree of it, while the baseline's cost charges
    // every subgraph edge (its documented inefficiency).
    graph::MstResult routing =
        graph::kruskal_mst_subset(ctx.cost_graph, plan.subgraph_edges);

    PseudoMulticastTree tree;
    tree.source = request.source;
    tree.servers = {plan.server};
    tree.cost = plan.cost;

    std::map<graph::EdgeId, int> mult;
    for (graph::EdgeId e : graph::path_edges(ctx.sp_source, plan.server)) {
      ++mult[ctx.to_physical[e]];
    }
    for (graph::EdgeId e : plan.subgraph_edges) ++mult[ctx.to_physical[e]];
    tree.edge_uses.assign(mult.begin(), mult.end());

    const graph::RootedTree rooted(ctx.cost_graph, routing.edges, plan.server);
    const std::vector<graph::VertexId> to_server =
        graph::path_vertices(ctx.sp_source, plan.server);
    bool routable = true;
    for (graph::VertexId d : dests) {
      if (!rooted.contains(d)) {
        routable = false;
        break;
      }
      DestinationRoute route;
      route.destination = d;
      route.server = plan.server;
      route.walk = to_server;
      route.server_index = route.walk.size() - 1;
      const std::vector<graph::VertexId> down = rooted.path_vertices(plan.server, d);
      route.walk.insert(route.walk.end(), down.begin() + 1, down.end());
      tree.routes.push_back(std::move(route));
    }
    if (!routable) continue;
    if (!meets_delay_bound(topo, request, tree)) continue;

    if (resources != nullptr &&
        !resources->can_allocate(tree.footprint(request, topo.graph))) {
      continue;
    }
    sol.admitted = true;
    sol.tree = std::move(tree);
    return sol;
  }

  sol.reject_reason = "every candidate tree violates capacity or delay constraints";
  return sol;
}

}  // namespace nfvm::core
