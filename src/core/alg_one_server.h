// Alg_One_Server - the state-of-the-art baseline of the paper's evaluation
// (Zhang et al. [22], as described in Section VI-A).
//
// A single server implements the whole service chain: route the request's
// traffic from the source to a candidate server v along a shortest path,
// span the destinations with an expanded metric-closure MST over D_k (each
// closure edge is a shortest path in the network), attach the server to that
// subgraph via its nearest destination, and pick the cheapest (server,
// subgraph) combination. Because the destination MST is built without
// Steiner points over {v} ∪ D_k, the baseline's trees are up to ~3x optimal
// where Appro_Multi's auxiliary-graph KMB stays within 2K.
#pragma once

#include "core/appro_multi.h"

namespace nfvm::core {

/// Runs the one-server baseline for a single request. `resources` (optional)
/// enables capacity-aware pruning like Appro_Multi_Cap so the baseline can
/// also be exercised in capacitated settings.
OfflineSolution alg_one_server(const topo::Topology& topo, const LinearCosts& costs,
                               const nfv::Request& request,
                               const nfv::ResourceState* resources = nullptr);

}  // namespace nfvm::core
