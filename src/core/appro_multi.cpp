#include "core/appro_multi.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "core/aux_graph.h"
#include "core/delay.h"
#include "graph/steiner.h"
#include "graph/tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace nfvm::core {
namespace {

/// Advances `idx` (strictly increasing indices into [0, n)) to the next
/// K-combination in lexicographic order; false when exhausted.
bool next_combination(std::vector<std::size_t>& idx, std::size_t n) {
  const std::size_t k = idx.size();
  for (std::size_t i = k; i-- > 0;) {
    if (idx[i] + (k - i) < n) {
      ++idx[i];
      for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Shared-Dijkstra engine: evaluates one combination's KMB metric closure from
// per-request shortest-path tables instead of running |terminals| Dijkstras
// inside every auxiliary graph. Distances in G_k^i decompose into
//   d_i(x, y) = min( d_G'(x, y),                 # plain working graph
//                    star_in(x) + star_out(y),   # through the zero-cost star
//                                                # {s_k} ∪ (combo ∩ N(s_k))
//                    d_i(s', x) + d_i(s', y) )   # through the virtual source
// with d_i(s', y) = min over v in combo of (w_virtual(v) + d_i(v, y)).
// ---------------------------------------------------------------------------

/// Per-request shortest-path tables on the working graph. The trees live in
/// the request's WorkContext SpCache; the oracle pins them via shared_ptr so
/// they outlive any cache eviction.
struct SharedOracle {
  const WorkContext* ctx = nullptr;
  const nfv::Request* request = nullptr;
  std::vector<std::shared_ptr<const graph::ShortestPaths>> sp_dest;
  std::map<graph::VertexId, std::shared_ptr<const graph::ShortestPaths>> sp_server;

  const graph::ShortestPaths& from(graph::VertexId v) const {
    if (v == request->source) return ctx->sp_source;
    const auto it = sp_server.find(v);
    if (it != sp_server.end()) return *it->second;
    for (std::size_t i = 0; i < request->destinations.size(); ++i) {
      if (request->destinations[i] == v) return *sp_dest[i];
    }
    throw std::logic_error("SharedOracle: no shortest-path table for vertex");
  }
};

SharedOracle build_shared_oracle(const WorkContext& ctx, const nfv::Request& request) {
  NFVM_SPAN("appro_multi/build_shared_oracle");
  SharedOracle oracle;
  oracle.ctx = &ctx;
  oracle.request = &request;
  // One parallel fan-out over destination + server trees, primed into (and
  // served from) the context's shared SP-tree cache.
  std::vector<graph::VertexId> sources(request.destinations.begin(),
                                       request.destinations.end());
  sources.insert(sources.end(), ctx.eligible_servers.begin(),
                 ctx.eligible_servers.end());
  auto trees = context_trees(ctx, sources);
  const std::size_t num_dest = request.destinations.size();
  oracle.sp_dest.assign(trees.begin(), trees.begin() + static_cast<long>(num_dest));
  for (std::size_t i = 0; i < ctx.eligible_servers.size(); ++i) {
    oracle.sp_server.emplace(ctx.eligible_servers[i], trees[num_dest + i]);
  }
  return oracle;
}

/// Evaluates one combination via the shared tables; returns a Steiner tree
/// in auxiliary-graph edge ids.
class SharedComboSolver {
 public:
  SharedComboSolver(const SharedOracle& oracle, const AuxiliaryGraph& aux)
      : oracle_(oracle), aux_(aux), request_(*oracle.request) {
    // Zero-cost star: the source plus combo servers adjacent to it.
    star_.push_back({request_.source, graph::kInvalidEdge});
    for (const graph::Adjacency& adj :
         oracle_.ctx->cost_graph.neighbors(request_.source)) {
      if (std::find(aux.combo.begin(), aux.combo.end(), adj.neighbor) ==
          aux.combo.end()) {
        continue;
      }
      bool seen = false;
      for (const StarEntry& e : star_) seen |= (e.vertex == adj.neighbor);
      if (!seen) star_.push_back({adj.neighbor, adj.edge});
    }
    via_sprime_.resize(request_.destinations.size());
    for (std::size_t j = 0; j < request_.destinations.size(); ++j) {
      via_sprime_[j] = best_via_sprime(request_.destinations[j]);
    }
  }

  graph::SteinerResult solve() {
    const std::size_t t = request_.destinations.size() + 1;  // s' + dests
    std::vector<bool> in_tree(t, false);
    std::vector<double> best(t, graph::kInfiniteDistance);
    std::vector<std::size_t> best_from(t, 0);
    best[0] = 0.0;
    std::vector<std::pair<std::size_t, std::size_t>> mst;
    for (std::size_t step = 0; step < t; ++step) {
      std::size_t pick = t;
      for (std::size_t i = 0; i < t; ++i) {
        if (!in_tree[i] && (pick == t || best[i] < best[pick])) pick = i;
      }
      if (best[pick] >= graph::kInfiniteDistance) {
        return graph::SteinerResult{};  // disconnected closure
      }
      in_tree[pick] = true;
      if (pick != 0) mst.emplace_back(best_from[pick], pick);
      for (std::size_t j = 0; j < t; ++j) {
        if (in_tree[j]) continue;
        const double d = closure_distance(pick, j);
        if (d < best[j]) {
          best[j] = d;
          best_from[j] = pick;
        }
      }
    }

    edge_set_.clear();
    for (const auto& [a, b] : mst) expand(a, b);
    std::vector<graph::EdgeId> union_edges(edge_set_.begin(), edge_set_.end());

    std::vector<graph::VertexId> terminals;
    terminals.push_back(aux_.virtual_source);
    terminals.insert(terminals.end(), request_.destinations.begin(),
                     request_.destinations.end());
    return graph::kmb_finish(aux_.graph, union_edges, terminals);
  }

 private:
  struct StarEntry {
    graph::VertexId vertex;
    graph::EdgeId edge;  // working-graph edge to the source (invalid for it)
  };
  /// A vertex-to-vertex distance with the realized routing choice:
  /// p == kInvalidVertex means the direct working-graph path, otherwise the
  /// path enters the zero-cost star at p and leaves it at q.
  struct Via {
    double value = graph::kInfiniteDistance;
    graph::VertexId p = graph::kInvalidVertex;
    graph::VertexId q = graph::kInvalidVertex;
  };
  /// d_i(s', y) with the realized server.
  struct ViaSprime {
    double value = graph::kInfiniteDistance;
    graph::VertexId server = graph::kInvalidVertex;
    Via inner;
  };

  Via vertex_distance(const graph::ShortestPaths& sp_x, graph::VertexId y) const {
    Via best;
    best.value = sp_x.dist[y];
    double in = graph::kInfiniteDistance;
    graph::VertexId pb = graph::kInvalidVertex;
    for (const StarEntry& e : star_) {
      if (sp_x.dist[e.vertex] < in) {
        in = sp_x.dist[e.vertex];
        pb = e.vertex;
      }
    }
    double out = graph::kInfiniteDistance;
    graph::VertexId qb = graph::kInvalidVertex;
    for (const StarEntry& e : star_) {
      const double d = oracle_.from(e.vertex).dist[y];
      if (d < out) {
        out = d;
        qb = e.vertex;
      }
    }
    if (in + out < best.value) {
      best.value = in + out;
      best.p = pb;
      best.q = qb;
    }
    return best;
  }

  ViaSprime best_via_sprime(graph::VertexId y) const {
    ViaSprime best;
    for (std::size_t i = 0; i < aux_.combo.size(); ++i) {
      const graph::VertexId v = aux_.combo[i];
      const double virt =
          aux_.graph.weight(static_cast<graph::EdgeId>(aux_.num_real_edges + i));
      const Via via = vertex_distance(oracle_.from(v), y);
      if (virt + via.value < best.value) {
        best.value = virt + via.value;
        best.server = v;
        best.inner = via;
      }
    }
    return best;
  }

  /// Closure distance between terminal indices (0 = s', j >= 1 = dest j-1).
  double closure_distance(std::size_t a, std::size_t b) const {
    if (a > b) std::swap(a, b);
    if (a == 0) return via_sprime_[b - 1].value;
    const graph::VertexId x = request_.destinations[a - 1];
    const graph::VertexId y = request_.destinations[b - 1];
    const double direct = vertex_distance(oracle_.from(x), y).value;
    const double via_virtual = via_sprime_[a - 1].value + via_sprime_[b - 1].value;
    return std::min(direct, via_virtual);
  }

  void emit_via(const graph::ShortestPaths& sp_x, graph::VertexId y, const Via& via) {
    if (via.p == graph::kInvalidVertex) {
      for (graph::EdgeId e : graph::path_edges(sp_x, y)) edge_set_.insert(e);
      return;
    }
    for (graph::EdgeId e : graph::path_edges(sp_x, via.p)) edge_set_.insert(e);
    for (const StarEntry& e : star_) {
      if ((e.vertex == via.p || e.vertex == via.q) &&
          e.edge != graph::kInvalidEdge) {
        edge_set_.insert(e.edge);
      }
    }
    for (graph::EdgeId e : graph::path_edges(oracle_.from(via.q), y)) {
      edge_set_.insert(e);
    }
  }

  void emit_sprime(std::size_t dest_index) {
    const ViaSprime& vs = via_sprime_[dest_index];
    const std::size_t combo_index = static_cast<std::size_t>(
        std::find(aux_.combo.begin(), aux_.combo.end(), vs.server) -
        aux_.combo.begin());
    edge_set_.insert(static_cast<graph::EdgeId>(aux_.num_real_edges + combo_index));
    emit_via(oracle_.from(vs.server), request_.destinations[dest_index], vs.inner);
  }

  void expand(std::size_t a, std::size_t b) {
    if (a > b) std::swap(a, b);
    if (a == 0) {
      emit_sprime(b - 1);
      return;
    }
    const graph::VertexId x = request_.destinations[a - 1];
    const graph::VertexId y = request_.destinations[b - 1];
    const Via direct = vertex_distance(oracle_.from(x), y);
    const double via_virtual = via_sprime_[a - 1].value + via_sprime_[b - 1].value;
    if (via_virtual < direct.value) {
      emit_sprime(a - 1);
      emit_sprime(b - 1);
    } else {
      emit_via(oracle_.from(x), y, direct);
    }
  }

  const SharedOracle& oracle_;
  const AuxiliaryGraph& aux_;
  const nfv::Request& request_;
  std::vector<StarEntry> star_;
  std::vector<ViaSprime> via_sprime_;
  std::set<graph::EdgeId> edge_set_;
};

}  // namespace

OfflineSolution appro_multi(const topo::Topology& topo, const LinearCosts& costs,
                            const nfv::Request& request,
                            const ApproMultiOptions& options) {
  if (options.max_servers == 0) {
    throw std::invalid_argument("appro_multi: max_servers (K) must be >= 1");
  }
  const bool shared = options.engine == ApproMultiOptions::Engine::kSharedDijkstra;
  if (shared && options.steiner_engine != graph::SteinerEngine::kKmb) {
    throw std::invalid_argument(
        "appro_multi: the shared-Dijkstra engine requires the KMB Steiner engine");
  }

  NFVM_SPAN("appro_multi");
  NFVM_COUNTER_INC("core.appro_multi.calls");
  OfflineSolution sol;
  const WorkContext ctx =
      build_work_context(topo, costs, request, options.resources);
  if (!ctx.destinations_reachable) {
    sol.reject_reason = "a destination is unreachable with the demanded bandwidth";
    return sol;
  }
  if (ctx.eligible_servers.empty()) {
    sol.reject_reason = "no server can host the service chain";
    return sol;
  }

  SharedOracle oracle;
  if (shared) oracle = build_shared_oracle(ctx, request);

  // Terminals in every auxiliary graph: the virtual source plus D_k. The
  // virtual source id equals |V| in each aux graph by construction.
  std::vector<graph::VertexId> terminals;
  terminals.push_back(static_cast<graph::VertexId>(ctx.cost_graph.num_vertices()));
  terminals.insert(terminals.end(), request.destinations.begin(),
                   request.destinations.end());

  struct Candidate {
    double cost;
    std::vector<graph::VertexId> combo;
    std::vector<graph::EdgeId> tree_edges;  // ids in the aux graph
  };
  std::vector<Candidate> candidates;

  // Enumerate the server combinations up front (cheap), then evaluate them
  // across the thread pool. Each evaluation writes only its own slot and the
  // results are collected in enumeration order, so the admitted tree is
  // identical for any thread count.
  std::vector<std::vector<graph::VertexId>> combos;
  const std::size_t max_k =
      std::min(options.max_servers, ctx.eligible_servers.size());
  bool budget_left = true;
  {
    NFVM_SPAN("appro_multi/enumerate_servers");
    for (std::size_t k = 1; k <= max_k && budget_left; ++k) {
      std::vector<std::size_t> idx(k);
      for (std::size_t i = 0; i < k; ++i) idx[i] = i;
      do {
        if (combos.size() >= options.max_combinations) {
          budget_left = false;
          break;
        }
        std::vector<graph::VertexId> combo(k);
        for (std::size_t i = 0; i < k; ++i) combo[i] = ctx.eligible_servers[idx[i]];
        combos.push_back(std::move(combo));
      } while (next_combination(idx, ctx.eligible_servers.size()));
    }
  }
  sol.combinations_explored = combos.size();

  struct Evaluated {
    bool connected = false;
    double cost = 0.0;
    std::vector<graph::EdgeId> tree_edges;
  };
  std::vector<Evaluated> evaluated(combos.size());
  {
    NFVM_SPAN("appro_multi/evaluate_combinations");
    util::ThreadPool::global().parallel_for(combos.size(), [&](std::size_t i) {
      const AuxiliaryGraph aux = build_auxiliary_graph(ctx, request.source, combos[i]);
      graph::SteinerResult st =
          shared ? SharedComboSolver(oracle, aux).solve()
                 : graph::steiner_tree(aux.graph, terminals, options.steiner_engine);
      evaluated[i] = Evaluated{st.connected, st.weight, std::move(st.edges)};
    });
  }
  candidates.reserve(combos.size());
  for (std::size_t i = 0; i < combos.size(); ++i) {
    if (!evaluated[i].connected) continue;
    candidates.push_back(Candidate{evaluated[i].cost, std::move(combos[i]),
                                   std::move(evaluated[i].tree_edges)});
  }
  NFVM_COUNTER_ADD("core.appro_multi.combinations_explored",
                   sol.combinations_explored);
  NFVM_HISTOGRAM_OBSERVE("core.appro_multi.combinations_per_call",
                         sol.combinations_explored);

  if (candidates.empty()) {
    sol.reject_reason = "no server combination connects the source to all destinations";
    return sol;
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) { return a.cost < b.cost; });

  NFVM_SPAN("appro_multi/realize_cheapest");
  for (const Candidate& cand : candidates) {
    const AuxiliaryGraph aux = build_auxiliary_graph(ctx, request.source, cand.combo);
    PseudoMulticastTree tree = realize_pseudo_tree(ctx, aux, cand.tree_edges, request);
    if (!meets_delay_bound(topo, request, tree)) continue;
    if (options.resources != nullptr &&
        !options.resources->can_allocate(tree.footprint(request, topo.graph))) {
      // Cheapest tree needs more residual than available once traversal
      // multiplicities are charged; fall through to the next combination.
      continue;
    }
    sol.admitted = true;
    sol.tree = std::move(tree);
    return sol;
  }

  sol.reject_reason = "every candidate tree violates capacity or delay constraints";
  return sol;
}

}  // namespace nfvm::core
