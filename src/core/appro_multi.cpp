#include "core/appro_multi.h"

#include <algorithm>
#include <stdexcept>

#include "core/aux_graph.h"
#include "core/combo_search.h"
#include "core/delay.h"
#include "core/shared_closure.h"
#include "graph/steiner.h"
#include "graph/tree.h"
#include "obs/hdr_histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/combinatorics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace nfvm::core {

OfflineSolution appro_multi(const topo::Topology& topo, const LinearCosts& costs,
                            const nfv::Request& request,
                            const ApproMultiOptions& options) {
  if (options.max_servers == 0) {
    throw std::invalid_argument("appro_multi: max_servers (K) must be >= 1");
  }
  const bool shared = options.engine == ApproMultiOptions::Engine::kSharedDijkstra;
  if (shared && options.steiner_engine != graph::SteinerEngine::kKmb) {
    throw std::invalid_argument(
        "appro_multi: the shared-Dijkstra engine requires the KMB Steiner engine");
  }
  const bool bnb = options.search == ApproMultiOptions::Search::kBranchAndBound;

  NFVM_SPAN("appro_multi");
  NFVM_COUNTER_INC("core.appro_multi.calls");
  OfflineSolution sol;
  NFVM_OBS_ONLY(util::Stopwatch phase_watch;)
  const WorkContext ctx =
      build_work_context(topo, costs, request, options.resources);
  NFVM_HDR_OBSERVE("core.appro_multi.context_us", phase_watch.elapsed_us());
  if (!ctx.destinations_reachable) {
    sol.reject_reason = "a destination is unreachable with the demanded bandwidth";
    return sol;
  }
  if (ctx.eligible_servers.empty()) {
    sol.reject_reason = "no server can host the service chain";
    return sol;
  }

  // Destination SP trees feed the beam centrality score and the
  // branch-and-bound lower bounds; the legacy unbeamed sweep never needs
  // them, so it skips the fan-out entirely.
  std::vector<std::shared_ptr<const graph::ShortestPaths>> dest_trees;
  if (bnb || options.beam_width != 0) {
    dest_trees = context_trees(ctx, request.destinations);
  }
  const std::vector<graph::VertexId> pool =
      options.beam_width != 0
          ? beam_server_pool(ctx, dest_trees, options.beam_width)
          : ctx.eligible_servers;

  SharedOracle oracle;
  if (shared) oracle = build_shared_oracle(ctx, request, pool);

  // Terminals in every auxiliary graph: the virtual source plus D_k. The
  // virtual source id equals |V| in each aux graph by construction.
  std::vector<graph::VertexId> terminals;
  terminals.push_back(static_cast<graph::VertexId>(ctx.cost_graph.num_vertices()));
  terminals.insert(terminals.end(), request.destinations.begin(),
                   request.destinations.end());

  if (!bnb) {
    struct Candidate {
      double cost;
      std::vector<graph::VertexId> combo;
      std::vector<graph::EdgeId> tree_edges;  // ids in the aux graph
    };
    std::vector<Candidate> candidates;

    // Enumerate the server combinations up front (cheap), then evaluate them
    // across the thread pool. Each evaluation writes only its own slot and the
    // results are collected in enumeration order, so the admitted tree is
    // identical for any thread count.
    std::vector<std::vector<graph::VertexId>> combos;
    const std::size_t max_k = std::min(options.max_servers, pool.size());
    bool budget_left = true;
    {
      NFVM_SPAN("appro_multi/enumerate_servers");
      NFVM_OBS_ONLY(phase_watch.reset();)
      for (std::size_t k = 1; k <= max_k && budget_left; ++k) {
        std::vector<std::size_t> idx(k);
        for (std::size_t i = 0; i < k; ++i) idx[i] = i;
        do {
          if (combos.size() >= options.max_combinations) {
            budget_left = false;
            break;
          }
          std::vector<graph::VertexId> combo(k);
          for (std::size_t i = 0; i < k; ++i) combo[i] = pool[idx[i]];
          combos.push_back(std::move(combo));
        } while (util::next_combination(idx, pool.size()));
      }
      NFVM_HDR_OBSERVE("core.appro_multi.enumerate_us", phase_watch.elapsed_us());
    }
    sol.combinations_explored = combos.size();

    struct Evaluated {
      bool connected = false;
      double cost = 0.0;
      std::vector<graph::EdgeId> tree_edges;
    };
    std::vector<Evaluated> evaluated(combos.size());
    {
      NFVM_SPAN("appro_multi/evaluate_combinations");
      NFVM_OBS_ONLY(phase_watch.reset();)
      util::ThreadPool::global().parallel_for(combos.size(), [&](std::size_t i) {
        graph::SteinerResult st;
        if (shared) {
          // Overlay + shared tables: no per-combination graph copy at all.
          const AuxOverlay aux = build_aux_overlay(ctx, request.source, combos[i]);
          st = SharedComboSolver(oracle, aux).solve();
        } else {
          const AuxiliaryGraph aux =
              build_auxiliary_graph(ctx, request.source, combos[i]);
          st = graph::steiner_tree(aux.graph, terminals, options.steiner_engine);
        }
        evaluated[i] = Evaluated{st.connected, st.weight, std::move(st.edges)};
      });
      NFVM_HDR_OBSERVE("core.appro_multi.evaluate_us", phase_watch.elapsed_us());
    }
    candidates.reserve(combos.size());
    for (std::size_t i = 0; i < combos.size(); ++i) {
      if (!evaluated[i].connected) continue;
      candidates.push_back(Candidate{evaluated[i].cost, std::move(combos[i]),
                                     std::move(evaluated[i].tree_edges)});
    }
    NFVM_COUNTER_ADD("core.appro_multi.combinations_explored",
                     sol.combinations_explored);
    // HDR since nfvm-metrics-v2: p50/p90/p99 of this instrument are now tight
    // (<= 1% relative error) instead of factor-2 log2 estimates.
    NFVM_HDR_OBSERVE("core.appro_multi.combinations_per_call",
                     sol.combinations_explored);

    if (candidates.empty()) {
      sol.reject_reason = "no server combination connects the source to all destinations";
      return sol;
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) { return a.cost < b.cost; });
    NFVM_SPAN("appro_multi/realize_cheapest");
    NFVM_OBS_ONLY(phase_watch.reset();
                  const auto observe_realize = [&phase_watch] {
                    NFVM_HDR_OBSERVE("core.appro_multi.realize_us",
                                     phase_watch.elapsed_us());
                  };)
    for (const Candidate& cand : candidates) {
      // Realization only needs edge weights/endpoints and the source's
      // shortest-path tree — the overlay suffices for both engines (the edge-id
      // scheme is shared), so the second full graph copy is gone too.
      const AuxOverlay aux = build_aux_overlay(ctx, request.source, cand.combo);
      PseudoMulticastTree tree = realize_pseudo_tree(ctx, aux, cand.tree_edges, request);
      if (!meets_delay_bound(topo, request, tree)) continue;
      if (options.resources != nullptr &&
          !options.resources->can_allocate(tree.footprint(request, topo.graph))) {
        // Cheapest tree needs more residual than available once traversal
        // multiplicities are charged; fall through to the next combination.
        continue;
      }
      sol.admitted = true;
      sol.tree = std::move(tree);
      NFVM_OBS_ONLY(observe_realize();)
      return sol;
    }

    NFVM_OBS_ONLY(observe_realize();)
    sol.reject_reason = "every candidate tree violates capacity or delay constraints";
    return sol;
  }

  // Branch-and-bound search. The evaluator is byte-for-byte the legacy
  // per-combination evaluation, so equal combinations yield bitwise-equal
  // costs and trees; the search therefore returns exactly the combination
  // the legacy sweep would have ranked first (see core/combo_search.h).
  NFVM_SPAN("appro_multi/branch_and_bound");
  NFVM_OBS_ONLY(phase_watch.reset();)
  const ComboBounds bounds(ctx, request, pool, dest_trees);
  const auto evaluator = [&](std::span<const std::size_t> idx) {
    std::vector<graph::VertexId> combo(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) combo[i] = pool[idx[i]];
    graph::SteinerResult st;
    if (shared) {
      const AuxOverlay aux = build_aux_overlay(ctx, request.source, combo);
      st = SharedComboSolver(oracle, aux).solve();
    } else {
      const AuxiliaryGraph aux = build_auxiliary_graph(ctx, request.source, combo);
      st = graph::steiner_tree(aux.graph, terminals, options.steiner_engine);
    }
    return ComboEvaluation{st.connected, st.weight, std::move(st.edges)};
  };
  ComboSearch search(pool.size(), bounds, options.max_servers, evaluator);

  // Realize-fallthrough: when the cheapest tree violates the delay bound or
  // the residual capacities, re-search with its key as the floor to obtain
  // the next candidate in the legacy sort order. Each pass spends from the
  // same evaluation budget.
  ComboKey floor;
  bool have_floor = false;
  bool any_connected = false;
  NFVM_OBS_ONLY(double evaluate_us = 0.0; double realize_us = 0.0;
                util::Stopwatch pass_watch;)
  while (true) {
    const std::size_t remaining =
        options.max_combinations > sol.combinations_explored
            ? options.max_combinations - sol.combinations_explored
            : 0;
    NFVM_OBS_ONLY(pass_watch.reset();)
    ComboSearchResult pass =
        search.next_best(have_floor ? &floor : nullptr, remaining);
    NFVM_OBS_ONLY(evaluate_us += pass_watch.elapsed_us();)
    sol.combinations_explored += pass.evaluated;
    sol.combinations_pruned =
        util::saturating_add(sol.combinations_pruned, pass.pruned);
    if (!pass.found) break;
    any_connected = true;

    NFVM_OBS_ONLY(pass_watch.reset();)
    std::vector<graph::VertexId> combo(pass.key.idx.size());
    for (std::size_t i = 0; i < combo.size(); ++i) combo[i] = pool[pass.key.idx[i]];
    const AuxOverlay aux = build_aux_overlay(ctx, request.source, combo);
    PseudoMulticastTree tree =
        realize_pseudo_tree(ctx, aux, pass.tree_edges, request);
    const bool feasible =
        meets_delay_bound(topo, request, tree) &&
        (options.resources == nullptr ||
         options.resources->can_allocate(tree.footprint(request, topo.graph)));
    NFVM_OBS_ONLY(realize_us += pass_watch.elapsed_us();)
    if (feasible) {
      sol.admitted = true;
      sol.tree = std::move(tree);
      break;
    }
    floor = std::move(pass.key);
    have_floor = true;
  }
  NFVM_HDR_OBSERVE("core.appro_multi.evaluate_us", evaluate_us);
  NFVM_HDR_OBSERVE("core.appro_multi.realize_us", realize_us);
  NFVM_COUNTER_ADD("core.appro_multi.combinations_explored",
                   sol.combinations_explored);
  NFVM_COUNTER_ADD("core.appro_multi.combinations_pruned",
                   sol.combinations_pruned);
  NFVM_HDR_OBSERVE("core.appro_multi.combinations_per_call",
                   sol.combinations_explored);
  if (!sol.admitted) {
    sol.reject_reason =
        any_connected
            ? "every candidate tree violates capacity or delay constraints"
            : "no server combination connects the source to all destinations";
  }
  return sol;
}

}  // namespace nfvm::core
