// Appro_Multi (paper Algorithm 1) and its capacitated variant
// Appro_Multi_Cap (Section IV-C).
//
// For each combination of at most K eligible servers, build the auxiliary
// graph G_k^i, find a KMB Steiner tree spanning the virtual source and all
// destinations, and keep the cheapest result over all combinations. The
// returned pseudo-multicast tree routes every destination's traffic through
// one of the chosen servers. Approximation ratio: 2K (Theorem 1).
//
// Appro_Multi_Cap is the same algorithm run on the subgraph of links with
// residual bandwidth >= b_k and servers with residual computing >= the
// chain demand; pass `resources` to enable it.
#pragma once

#include <cstddef>
#include <limits>
#include <string>

#include "core/cost_model.h"
#include "core/pseudo_tree.h"
#include "graph/steiner.h"
#include "nfv/request.h"
#include "nfv/resources.h"
#include "topology/topology.h"

namespace nfvm::core {

/// Result of a single-request (offline) algorithm.
struct OfflineSolution {
  bool admitted = false;
  /// Human-readable reason when admitted == false.
  std::string reject_reason;
  /// Valid iff admitted.
  PseudoMulticastTree tree;
  /// Server combinations (Appro_Multi) or candidate servers
  /// (Alg_One_Server) evaluated.
  std::size_t combinations_explored = 0;
};

struct ApproMultiOptions {
  /// K: maximum number of servers implementing SC_k (paper default 3).
  std::size_t max_servers = 3;
  /// Non-null enables the capacitated variant (Appro_Multi_Cap).
  const nfv::ResourceState* resources = nullptr;
  /// Safety valve for pathological |V_S| choose K blow-ups; enumeration is
  /// stopped (deterministically) after this many combinations.
  std::size_t max_combinations = std::numeric_limits<std::size_t>::max();
  /// Steiner approximation used inside every auxiliary graph (paper: KMB).
  graph::SteinerEngine steiner_engine = graph::SteinerEngine::kKmb;
  /// Evaluation engine for the combination sweep:
  ///  * kReference (default) — run full KMB in every auxiliary graph
  ///    (|terminals| Dijkstras per combination; paper-literal).
  ///  * kSharedDijkstra — precompute Dijkstras from the source, every
  ///    destination and every eligible server once per request, then
  ///    evaluate each combination's metric closure arithmetically
  ///    (virtual edges and the zero-cost star are composed from the shared
  ///    tables). Produces identical trees whenever shortest paths are
  ///    unique (ties may resolve differently, still within the KMB
  ///    guarantee) and is ~|D_k| times faster on large sweeps. Requires
  ///    steiner_engine == kKmb (throws std::invalid_argument otherwise).
  enum class Engine { kReference, kSharedDijkstra };
  Engine engine = Engine::kReference;
};

/// Runs Algorithm 1 (or its capacitated variant) for one request.
/// Throws std::invalid_argument for malformed inputs (bad request, zero K,
/// cost tables of the wrong size).
OfflineSolution appro_multi(const topo::Topology& topo, const LinearCosts& costs,
                            const nfv::Request& request,
                            const ApproMultiOptions& options = {});

}  // namespace nfvm::core
