// Appro_Multi (paper Algorithm 1) and its capacitated variant
// Appro_Multi_Cap (Section IV-C).
//
// For each combination of at most K eligible servers, build the auxiliary
// graph G_k^i, find a KMB Steiner tree spanning the virtual source and all
// destinations, and keep the cheapest result over all combinations. The
// returned pseudo-multicast tree routes every destination's traffic through
// one of the chosen servers. Approximation ratio: 2K (Theorem 1).
//
// Appro_Multi_Cap is the same algorithm run on the subgraph of links with
// residual bandwidth >= b_k and servers with residual computing >= the
// chain demand; pass `resources` to enable it.
#pragma once

#include <cstddef>
#include <limits>
#include <string>

#include "core/cost_model.h"
#include "core/pseudo_tree.h"
#include "graph/steiner.h"
#include "nfv/request.h"
#include "nfv/resources.h"
#include "topology/topology.h"

namespace nfvm::core {

/// Result of a single-request (offline) algorithm.
struct OfflineSolution {
  bool admitted = false;
  /// Human-readable reason when admitted == false.
  std::string reject_reason;
  /// Valid iff admitted.
  PseudoMulticastTree tree;
  /// Server combinations (Appro_Multi) or candidate servers
  /// (Alg_One_Server) evaluated.
  std::size_t combinations_explored = 0;
  /// Combinations the branch-and-bound search discarded via lower bounds
  /// without evaluating (0 for the legacy sweep and for Alg_One_Server).
  std::size_t combinations_pruned = 0;
};

struct ApproMultiOptions {
  /// K: maximum number of servers implementing SC_k (paper default 3).
  std::size_t max_servers = 3;
  /// Non-null enables the capacitated variant (Appro_Multi_Cap).
  const nfv::ResourceState* resources = nullptr;
  /// Safety valve for pathological |V_S| choose K blow-ups: the number of
  /// combinations *evaluated* per request, counted identically in both
  /// search modes (branch-and-bound counts evaluator calls across every
  /// re-search pass; pruned combinations are free and do not consume
  /// budget). The search stops deterministically once the budget is spent.
  /// When the valve actually binds, the two modes may legitimately return
  /// different results — they spend the budget on different combinations.
  std::size_t max_combinations = std::numeric_limits<std::size_t>::max();
  /// Steiner approximation used inside every auxiliary graph (paper: KMB).
  graph::SteinerEngine steiner_engine = graph::SteinerEngine::kKmb;
  /// Evaluation engine for the combination sweep:
  ///  * kReference (default) — run full KMB in every auxiliary graph
  ///    (|terminals| Dijkstras per combination; paper-literal).
  ///  * kSharedDijkstra — precompute Dijkstras from the source, every
  ///    destination and every eligible server once per request, then
  ///    evaluate each combination's metric closure arithmetically
  ///    (virtual edges and the zero-cost star are composed from the shared
  ///    tables). Produces identical trees whenever shortest paths are
  ///    unique (ties may resolve differently, still within the KMB
  ///    guarantee) and is ~|D_k| times faster on large sweeps. Requires
  ///    steiner_engine == kKmb (throws std::invalid_argument otherwise).
  enum class Engine { kReference, kSharedDijkstra };
  Engine engine = Engine::kReference;
  /// Combination-search strategy:
  ///  * kBranchAndBound (default) — deterministic branch-and-bound over
  ///    combination prefixes with admissible lower bounds
  ///    (core/combo_search.h). Returns the same cost and the same argmin
  ///    combination as the exhaustive sweep — bit-identical decisions at
  ///    any thread count — while evaluating a fraction of the
  ///    combinations.
  ///  * kLegacySweep — materialize and evaluate every combination, then
  ///    sort (the original implementation; kept as the equivalence
  ///    baseline).
  enum class Search { kLegacySweep, kBranchAndBound };
  Search search = Search::kBranchAndBound;
  /// Opt-in beam mode: restrict the sweep to the `beam_width` most central
  /// eligible servers (see beam_server_pool). 0 (default) or >= |V_S|
  /// disables the restriction and keeps the search exact; smaller widths
  /// trade optimality within the 2K guarantee for speed. Pools are nested
  /// in beam_width, so the returned cost is non-increasing in the width.
  std::size_t beam_width = 0;
};

/// Runs Algorithm 1 (or its capacitated variant) for one request.
/// Throws std::invalid_argument for malformed inputs (bad request, zero K,
/// cost tables of the wrong size).
OfflineSolution appro_multi(const topo::Topology& topo, const LinearCosts& costs,
                            const nfv::Request& request,
                            const ApproMultiOptions& options = {});

}  // namespace nfvm::core
