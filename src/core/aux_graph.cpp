#include "core/aux_graph.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "graph/subgraph.h"
#include "graph/tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace nfvm::core {

WorkContext build_work_context(const topo::Topology& topo, const LinearCosts& costs,
                               const nfv::Request& request,
                               const nfv::ResourceState* resources) {
  NFVM_SPAN("appro_multi/build_work_context");
  nfv::validate_request(request, topo.graph);
  if (costs.link_unit_cost.size() != topo.num_links() ||
      costs.server_unit_cost.size() != topo.num_switches()) {
    throw std::invalid_argument("build_work_context: cost table size mismatch");
  }

  WorkContext ctx;
  const double b = request.bandwidth_mbps;

  // Cost-weighted working graph, dropping links without enough residual
  // bandwidth in the capacitated case (paper Section IV-C: G' = (V, E')).
  ctx.cost_graph = graph::Graph(topo.num_switches());
  ctx.to_physical.reserve(topo.num_links());
  for (graph::EdgeId e = 0; e < topo.num_links(); ++e) {
    // Shared eligibility predicate: residual bandwidth plus forwarding-table
    // pruning (a switch without a free flow entry cannot join any new tree).
    if (resources != nullptr && !nfv::edge_eligible(*resources, topo.graph, e, b)) {
      continue;
    }
    const graph::Edge& ed = topo.graph.edge(e);
    ctx.cost_graph.add_edge(ed.u, ed.v, costs.edge_cost(e, b));
    ctx.to_physical.push_back(e);
  }

  ctx.sp_cache = std::make_shared<graph::SpCache>();
  ctx.arena = std::make_shared<util::Arena>();
  ctx.sp_source = *ctx.sp_cache->paths_from(ctx.cost_graph, request.source);

  ctx.destinations_reachable = true;
  for (graph::VertexId d : request.destinations) {
    if (!ctx.sp_source.reachable(d)) {
      ctx.destinations_reachable = false;
      break;
    }
  }

  const double demand = request.compute_demand_mhz();
  ctx.server_chain_cost.assign(topo.num_switches(), 0.0);
  for (graph::VertexId v : topo.servers) {
    ctx.server_chain_cost[v] = costs.server_cost(v, demand);
    const bool capacity_ok =
        resources == nullptr || resources->residual_compute(v) >= demand;
    if (capacity_ok && ctx.sp_source.reachable(v)) {
      ctx.eligible_servers.push_back(v);
    }
  }
  return ctx;
}

std::vector<std::shared_ptr<const graph::ShortestPaths>> context_trees(
    const WorkContext& ctx, std::span<const graph::VertexId> sources) {
  NFVM_SPAN("core/context_trees");
  std::vector<std::shared_ptr<const graph::ShortestPaths>> trees(sources.size());
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    // A repeated source later in `sources` lands in `missing` twice before
    // the first computation is cached; both slots get identical trees.
    trees[i] = ctx.sp_cache->try_get(ctx.cost_graph, sources[i]);
    if (!trees[i]) missing.push_back(i);
  }
  if (!missing.empty()) {
    // Batched multi-source SSSP: one engine invocation per pool chunk fills
    // every missing terminal table off a single CSR sync and one
    // generation-stamped workspace, instead of |missing| independent
    // Dijkstra calls.
    std::vector<graph::VertexId> miss_sources;
    miss_sources.reserve(missing.size());
    for (std::size_t i : missing) miss_sources.push_back(sources[i]);
    std::vector<graph::ShortestPaths> batch =
        graph::batch_dijkstra(ctx.cost_graph, miss_sources);
    for (std::size_t j = 0; j < missing.size(); ++j) {
      trees[missing[j]] =
          std::make_shared<const graph::ShortestPaths>(std::move(batch[j]));
    }
  }
  // Insert in `sources` order so the cache's LRU state does not depend on
  // the parallel schedule.
  for (std::size_t i : missing) {
    ctx.sp_cache->put(ctx.cost_graph, sources[i], trees[i]);
  }
  return trees;
}

AuxiliaryGraph build_auxiliary_graph(const WorkContext& ctx,
                                     graph::VertexId source,
                                     std::span<const graph::VertexId> combo) {
  if (combo.empty()) {
    throw std::invalid_argument("build_auxiliary_graph: empty server combination");
  }
  NFVM_COUNTER_INC("core.appro_multi.aux_graphs_built");
  AuxiliaryGraph aux;
  aux.num_real_edges = ctx.cost_graph.num_edges();
  aux.combo.assign(combo.begin(), combo.end());

  // Real part: same vertex/edge ids as cost_graph.
  aux.graph = graph::Graph(ctx.cost_graph.num_vertices());
  for (graph::EdgeId e = 0; e < ctx.cost_graph.num_edges(); ++e) {
    const graph::Edge& ed = ctx.cost_graph.edge(e);
    aux.graph.add_edge(ed.u, ed.v, ed.weight);
  }

  aux.virtual_source = aux.graph.add_vertex();

  // Virtual edges s'_k -> v, weighted path-cost + chain cost.
  aux.virtual_paths.reserve(combo.size());
  for (graph::VertexId v : combo) {
    if (!ctx.sp_source.reachable(v)) {
      throw std::invalid_argument("build_auxiliary_graph: server unreachable");
    }
    const double w = ctx.sp_source.dist[v] + ctx.server_chain_cost[v];
    aux.graph.add_edge(aux.virtual_source, v, w);
    aux.virtual_paths.push_back(graph::path_edges(ctx.sp_source, v));
  }

  // Zero-cost correction: physical edges (s_k, v) with v in the combination.
  for (const graph::Adjacency& adj : ctx.cost_graph.neighbors(source)) {
    if (std::find(combo.begin(), combo.end(), adj.neighbor) != combo.end()) {
      aux.graph.set_weight(adj.edge, 0.0);
    }
  }
  return aux;
}

double AuxOverlay::weight(graph::EdgeId e) const {
  if (is_virtual(e)) return virtual_weight[virtual_index(e)];
  if (std::binary_search(zero_edges.begin(), zero_edges.end(), e)) return 0.0;
  return ctx->cost_graph.weight(e);
}

graph::EdgeRecord AuxOverlay::record(graph::EdgeId e) const {
  if (is_virtual(e)) {
    const std::size_t i = virtual_index(e);
    return graph::EdgeRecord{e, virtual_source, combo[i], virtual_weight[i]};
  }
  const graph::Edge& ed = ctx->cost_graph.edge(e);
  return graph::EdgeRecord{e, ed.u, ed.v, weight(e)};
}

AuxOverlay build_aux_overlay(const WorkContext& ctx, graph::VertexId source,
                             std::span<const graph::VertexId> combo) {
  if (combo.empty()) {
    throw std::invalid_argument("build_aux_overlay: empty server combination");
  }
  NFVM_COUNTER_INC("core.appro_multi.aux_overlays");
  AuxOverlay aux;
  aux.ctx = &ctx;
  aux.num_real_edges = ctx.cost_graph.num_edges();
  aux.virtual_source = static_cast<graph::VertexId>(ctx.cost_graph.num_vertices());
  aux.combo.assign(combo.begin(), combo.end());

  aux.virtual_weight.reserve(combo.size());
  for (graph::VertexId v : combo) {
    if (!ctx.sp_source.reachable(v)) {
      throw std::invalid_argument("build_aux_overlay: server unreachable");
    }
    aux.virtual_weight.push_back(ctx.sp_source.dist[v] + ctx.server_chain_cost[v]);
  }

  // Zero-cost correction: physical edges (s_k, v) with v in the combination.
  for (const graph::Adjacency& adj : ctx.cost_graph.neighbors(source)) {
    if (std::find(combo.begin(), combo.end(), adj.neighbor) != combo.end()) {
      aux.zero_edges.push_back(adj.edge);
    }
  }
  std::sort(aux.zero_edges.begin(), aux.zero_edges.end());
  return aux;
}

namespace {

/// Shared realization body: `aux_weight(e)`, `virtual_path_edges(i)` and the
/// rooted view abstract over the materialized aux graph vs the overlay; the
/// accumulation and routing logic is identical (and so is the output).
template <typename AuxT, typename WeightFn, typename VirtualPathFn>
PseudoMulticastTree realize_impl(const WorkContext& ctx, const AuxT& aux,
                                 const graph::RootedTree& rooted,
                                 const std::vector<graph::EdgeId>& tree_edges,
                                 const nfv::Request& request,
                                 const WeightFn& aux_weight,
                                 const VirtualPathFn& virtual_path_edges) {
  PseudoMulticastTree tree;
  tree.source = request.source;

  std::vector<graph::EdgeId> traversals;  // physical ids, one per traversal
  traversals.reserve(tree_edges.size());
  double cost = 0.0;
  for (graph::EdgeId e : tree_edges) {
    cost += aux_weight(e);
    if (aux.is_virtual(e)) {
      const std::size_t i = aux.virtual_index(e);
      tree.servers.push_back(aux.combo[i]);
      for (graph::EdgeId pe : virtual_path_edges(i)) {
        traversals.push_back(ctx.to_physical[pe]);
      }
    } else {
      traversals.push_back(ctx.to_physical[e]);
    }
  }
  tree.cost = cost;
  std::sort(tree.servers.begin(), tree.servers.end());
  tree.edge_uses = accumulate_edge_uses(std::move(traversals));

  tree.routes.reserve(request.destinations.size());
  for (graph::VertexId d : request.destinations) {
    const std::vector<graph::VertexId> aux_path =
        rooted.path_vertices(aux.virtual_source, d);
    // aux_path = [s'_k, server, ...dest]; the first hop is necessarily a
    // virtual edge because s'_k has no other incident edges.
    if (aux_path.size() < 2) {
      throw std::logic_error("realize_pseudo_tree: degenerate destination path");
    }
    const graph::VertexId server = aux_path[1];

    DestinationRoute route;
    route.destination = d;
    route.server = server;
    route.walk = graph::path_vertices(ctx.sp_source, server);
    route.server_index = route.walk.size() - 1;
    route.walk.insert(route.walk.end(), aux_path.begin() + 2, aux_path.end());
    tree.routes.push_back(std::move(route));
  }
  return tree;
}

}  // namespace

PseudoMulticastTree realize_pseudo_tree(const WorkContext& ctx,
                                        const AuxiliaryGraph& aux,
                                        const std::vector<graph::EdgeId>& tree_edges,
                                        const nfv::Request& request) {
  const graph::RootedTree rooted(aux.graph, tree_edges, aux.virtual_source);
  return realize_impl(
      ctx, aux, rooted, tree_edges, request,
      [&](graph::EdgeId e) { return aux.graph.weight(e); },
      [&](std::size_t i) -> const std::vector<graph::EdgeId>& {
        return aux.virtual_paths[i];
      });
}

PseudoMulticastTree realize_pseudo_tree(const WorkContext& ctx,
                                        const AuxOverlay& aux,
                                        const std::vector<graph::EdgeId>& tree_edges,
                                        const nfv::Request& request) {
  // Per-candidate record buffer from the request arena: realization is
  // sequential (one candidate at a time), so a scope per call reuses the
  // same warm bytes across the whole candidate walk.
  util::ArenaScope scope(*ctx.arena);
  std::span<graph::EdgeRecord> records =
      scope.arena().make_span<graph::EdgeRecord>(tree_edges.size());
  for (std::size_t i = 0; i < tree_edges.size(); ++i) {
    records[i] = aux.record(tree_edges[i]);
  }
  const graph::RootedTree rooted(aux.num_vertices(), records, aux.virtual_source);
  return realize_impl(
      ctx, aux, rooted, tree_edges, request,
      [&](graph::EdgeId e) { return aux.weight(e); },
      [&](std::size_t i) {
        // The stored virtual_paths of the materialized variant are exactly
        // path_edges(sp_source, combo[i]); re-derive on demand.
        return graph::path_edges(ctx.sp_source, aux.combo[i]);
      });
}

}  // namespace nfvm::core
