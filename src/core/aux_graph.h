// Per-request working context and the auxiliary graphs of Algorithm 1.
//
// For a request r_k and a server combination V_S^i, the auxiliary graph is
//   G_k^i = (V ∪ {s'_k}, E ∪ {(s'_k, v) : v ∈ V_S^i})
// where the virtual edge (s'_k, v) stands for "route from s_k to v along a
// shortest path, then run SC_k at v" and is weighted accordingly
// (sum of link costs on p_{s_k,v} at b_k Mbps, plus c_v(SC_k)). Real edges
// keep their bandwidth cost c_e * b_k, except that a physical edge (s_k, v)
// with v ∈ V_S^i costs zero (the paper's double-counting correction). A
// Steiner tree over {s'_k} ∪ D_k in G_k^i therefore forces every destination
// path through a chosen server.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/cost_model.h"
#include "core/pseudo_tree.h"
#include "graph/dijkstra.h"
#include "graph/graph.h"
#include "graph/sp_engine.h"
#include "nfv/request.h"
#include "nfv/resources.h"
#include "topology/topology.h"
#include "util/arena.h"

namespace nfvm::core {

/// Everything the offline algorithms need about one request, computed once:
/// the (optionally capacity-filtered) cost-weighted graph, shortest paths
/// from the source, and the eligible server set.
struct WorkContext {
  /// Physical graph restricted to links with residual bandwidth >= b_k
  /// (unrestricted when uncapacitated), with edge weight = c_e * b_k.
  graph::Graph cost_graph;
  /// cost_graph edge id -> physical edge id.
  std::vector<graph::EdgeId> to_physical;
  /// Dijkstra from the request source on `cost_graph`.
  graph::ShortestPaths sp_source;
  /// Shortest-path trees on `cost_graph`, shared by every algorithm stage
  /// touching this request (source, destination and server trees). Seeded
  /// with the source tree by build_work_context; self-invalidates if
  /// `cost_graph` is ever mutated. Never null after build_work_context.
  std::shared_ptr<graph::SpCache> sp_cache;
  /// Servers that can host SC_k: enough residual computing (capacitated
  /// case) and reachable from the source. Sorted ascending.
  std::vector<graph::VertexId> eligible_servers;
  /// c_v(SC_k) per vertex (only meaningful for servers).
  std::vector<double> server_chain_cost;
  /// False when some destination is unreachable from the source in
  /// `cost_graph` (the request must then be rejected).
  bool destinations_reachable = false;
  /// Request-lifetime bump arena for short-lived record buffers built in
  /// the request's *sequential* phases (e.g. the per-candidate EdgeRecord
  /// buffer in realize_pseudo_tree). Dies with the context — the epoch
  /// reset between requests. Never null after build_work_context. Parallel
  /// phases must use util::Arena::thread_local_arena() instead.
  std::shared_ptr<util::Arena> arena;
};

/// Builds the context. `resources == nullptr` means uncapacitated.
WorkContext build_work_context(const topo::Topology& topo, const LinearCosts& costs,
                               const nfv::Request& request,
                               const nfv::ResourceState* resources);

/// Shortest-path trees on ctx.cost_graph from each of `sources`, in order.
/// Cached trees come straight from ctx.sp_cache; the missing ones are
/// computed in parallel on util::ThreadPool::global() and inserted into the
/// cache (in `sources` order, so cache state is thread-count independent).
std::vector<std::shared_ptr<const graph::ShortestPaths>> context_trees(
    const WorkContext& ctx, std::span<const graph::VertexId> sources);

/// One auxiliary graph G_k^i.
struct AuxiliaryGraph {
  graph::Graph graph;
  graph::VertexId virtual_source = graph::kInvalidVertex;
  /// Edge ids < num_real_edges coincide with `cost_graph` edge ids; edge id
  /// num_real_edges + i is the virtual edge to combo[i].
  std::size_t num_real_edges = 0;
  std::vector<graph::VertexId> combo;
  /// Physical-path edges (cost_graph ids) realizing each virtual edge.
  std::vector<std::vector<graph::EdgeId>> virtual_paths;

  bool is_virtual(graph::EdgeId e) const { return e >= num_real_edges; }
  std::size_t virtual_index(graph::EdgeId e) const { return e - num_real_edges; }
};

/// Builds G_k^i for the given combination. Every vertex of `combo` must be
/// reachable in ctx.cost_graph (eligible_servers guarantees it); throws
/// std::invalid_argument otherwise.
AuxiliaryGraph build_auxiliary_graph(const WorkContext& ctx,
                                     graph::VertexId source,
                                     std::span<const graph::VertexId> combo);

/// Lightweight view of G_k^i over ctx.cost_graph: instead of copying the
/// whole working graph per combination (the dominant allocation of the
/// Appro_Multi fan-out), it records only what differs from the working
/// graph — the virtual-edge tail and the zero-cost star patch list. Edge
/// ids follow the AuxiliaryGraph scheme exactly: ids < num_real_edges are
/// cost_graph ids, id num_real_edges + i is the virtual edge to combo[i].
struct AuxOverlay {
  const WorkContext* ctx = nullptr;
  graph::VertexId virtual_source = graph::kInvalidVertex;
  std::size_t num_real_edges = 0;
  std::vector<graph::VertexId> combo;
  /// Weight of virtual edge i: d(s_k, combo[i]) + c_{combo[i]}(SC_k).
  std::vector<double> virtual_weight;
  /// Real (s_k, v) edges with v in the combo, patched to weight zero by the
  /// double-counting correction. Sorted ascending.
  std::vector<graph::EdgeId> zero_edges;

  /// Vertex count including the virtual source (id == |V| of cost_graph).
  std::size_t num_vertices() const { return ctx->cost_graph.num_vertices() + 1; }
  bool is_virtual(graph::EdgeId e) const { return e >= num_real_edges; }
  std::size_t virtual_index(graph::EdgeId e) const { return e - num_real_edges; }
  /// Overlay edge weight (star patches and virtual edges applied).
  double weight(graph::EdgeId e) const;
  /// Self-contained record of edge `e` for the record-based tree/Steiner
  /// machinery (graph::kmb_finish, graph::RootedTree).
  graph::EdgeRecord record(graph::EdgeId e) const;
};

/// Builds the overlay for a combination: same validation and semantics as
/// build_auxiliary_graph without materializing a Graph. Counted by
/// `core.appro_multi.aux_overlays`.
AuxOverlay build_aux_overlay(const WorkContext& ctx, graph::VertexId source,
                             std::span<const graph::VertexId> combo);

/// Realizes the physical pseudo-multicast tree from an auxiliary-graph
/// Steiner tree (Algorithm 1 steps 10-12 plus the Fig. 3 routing semantics):
/// virtual edges expand into the stored shortest path plus a chain instance
/// at their server; every destination's walk is the physical path to its
/// branch server followed by the tree path below it. Throws std::logic_error
/// if `tree_edges` is not a tree spanning the virtual source and all
/// destinations.
PseudoMulticastTree realize_pseudo_tree(const WorkContext& ctx,
                                        const AuxiliaryGraph& aux,
                                        const std::vector<graph::EdgeId>& tree_edges,
                                        const nfv::Request& request);

/// Overlay variant: identical semantics and output to the AuxiliaryGraph
/// overload (virtual paths are re-derived from ctx.sp_source, which is what
/// the materialized graph stored), without building the aux graph copy.
PseudoMulticastTree realize_pseudo_tree(const WorkContext& ctx,
                                        const AuxOverlay& aux,
                                        const std::vector<graph::EdgeId>& tree_edges,
                                        const nfv::Request& request);

}  // namespace nfvm::core
