#include "core/backup.h"

#include <algorithm>
#include <set>

namespace nfvm::core {

bool link_disjoint(const PseudoMulticastTree& a, const PseudoMulticastTree& b) {
  std::set<graph::EdgeId> edges_a;
  for (const auto& [e, mult] : a.edge_uses) edges_a.insert(e);
  for (const auto& [e, mult] : b.edge_uses) {
    if (edges_a.count(e) != 0) return false;
  }
  return true;
}

OfflineSolution compute_backup_tree(const topo::Topology& topo,
                                    const LinearCosts& costs,
                                    const nfv::Request& request,
                                    const PseudoMulticastTree& primary,
                                    const BackupOptions& options) {
  for (const auto& [e, mult] : primary.edge_uses) {
    if (!topo.graph.has_edge(e)) {
      throw std::invalid_argument("compute_backup_tree: primary uses unknown link");
    }
  }

  // Scratch resource view: start from the caller's residuals (or the full
  // capacities) and zero out the primary's links so Appro_Multi_Cap's
  // pruning removes them.
  nfv::ResourceState masked =
      options.resources != nullptr ? *options.resources : nfv::ResourceState(topo);
  nfv::Footprint mask;
  for (const auto& [e, mult] : primary.edge_uses) {
    mask.bandwidth.emplace_back(e, masked.residual_bandwidth(e));
  }
  masked.allocate(mask);

  ApproMultiOptions opts;
  opts.max_servers = options.max_servers;
  opts.steiner_engine = options.steiner_engine;
  opts.engine = options.engine;
  opts.resources = &masked;
  OfflineSolution sol = appro_multi(topo, costs, request, opts);
  if (sol.admitted && !link_disjoint(primary, sol.tree)) {
    // Cannot happen (masked links are pruned); guard against regressions.
    sol.admitted = false;
    sol.reject_reason = "internal error: backup shares a link with the primary";
  }
  return sol;
}

}  // namespace nfvm::core
