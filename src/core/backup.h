// Link-disjoint backup pseudo-multicast trees (1+1 protection).
//
// For a request already carried by a primary tree, compute a second
// pseudo-multicast tree that shares no link with the primary: if any primary
// link fails, traffic switches to the backup. Implemented by masking the
// primary's links (their residual bandwidth is zeroed in a scratch resource
// view) and re-running Appro_Multi_Cap, so the backup honors every other
// constraint (capacities, tables, delay bounds) against the supplied
// residual state.
//
// Feasibility caveat: a destination whose every route crosses a bridge of
// the topology (graph/bridges.h) cannot be protected; the computation then
// rejects with the standard unreachable reason.
#pragma once

#include "core/appro_multi.h"

namespace nfvm::core {

struct BackupOptions {
  /// K for the backup tree (defaults to the paper's 3).
  std::size_t max_servers = 3;
  graph::SteinerEngine steiner_engine = graph::SteinerEngine::kKmb;
  ApproMultiOptions::Engine engine = ApproMultiOptions::Engine::kReference;
  /// Residual state the backup must additionally fit into (nullptr = only
  /// the disjointness mask applies, on the full capacities).
  const nfv::ResourceState* resources = nullptr;
};

/// Computes a backup tree link-disjoint from `primary`. The same server may
/// host the chain in both trees (node-disjointness is not attempted).
/// Throws std::invalid_argument when `primary` references unknown links.
OfflineSolution compute_backup_tree(const topo::Topology& topo,
                                    const LinearCosts& costs,
                                    const nfv::Request& request,
                                    const PseudoMulticastTree& primary,
                                    const BackupOptions& options = {});

/// True iff the two trees share no link.
bool link_disjoint(const PseudoMulticastTree& a, const PseudoMulticastTree& b);

}  // namespace nfvm::core
