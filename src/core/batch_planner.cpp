#include "core/batch_planner.h"

#include <algorithm>
#include <numeric>

namespace nfvm::core {
namespace {

double demand_weight(const nfv::Request& r) {
  return r.bandwidth_mbps * static_cast<double>(r.destinations.size() + 1);
}

std::vector<std::size_t> plan_order(std::span<const nfv::Request> requests,
                                    BatchOrder order) {
  std::vector<std::size_t> idx(requests.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  switch (order) {
    case BatchOrder::kArrival:
      break;
    case BatchOrder::kFewestDestinationsFirst:
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return requests[a].destinations.size() < requests[b].destinations.size();
      });
      break;
    case BatchOrder::kSmallestDemandFirst:
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return demand_weight(requests[a]) < demand_weight(requests[b]);
      });
      break;
    case BatchOrder::kLargestDemandFirst:
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return demand_weight(requests[a]) > demand_weight(requests[b]);
      });
      break;
  }
  return idx;
}

}  // namespace

BatchPlanResult plan_batch(const topo::Topology& topo, const LinearCosts& costs,
                           std::span<const nfv::Request> requests,
                           const BatchPlanOptions& options) {
  BatchPlanResult result;
  result.admitted.assign(requests.size(), false);
  result.trees.resize(requests.size());

  nfv::ResourceState state(topo);
  ApproMultiOptions appro_opts;
  appro_opts.max_servers = options.max_servers;
  appro_opts.steiner_engine = options.steiner_engine;
  appro_opts.engine = options.engine;
  appro_opts.resources = &state;

  for (std::size_t i : plan_order(requests, options.order)) {
    OfflineSolution sol = appro_multi(topo, costs, requests[i], appro_opts);
    if (!sol.admitted) {
      ++result.num_rejected;
      continue;
    }
    state.allocate(sol.tree.footprint(requests[i], topo.graph));
    ++result.num_admitted;
    result.total_cost += sol.tree.cost;
    result.admitted[i] = true;
    result.trees[i] = std::move(sol.tree);
  }

  double util = 0.0;
  for (graph::EdgeId e = 0; e < state.num_links(); ++e) {
    util += state.bandwidth_utilization(e);
  }
  result.final_bandwidth_utilization =
      state.num_links() == 0 ? 0.0 : util / static_cast<double>(state.num_links());
  return result;
}

}  // namespace nfvm::core
