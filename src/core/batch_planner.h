// Batch admission planning.
//
// The paper treats requests either singly (offline) or in arrival order
// (online). An operator that collects requests per planning window can do
// better by choosing the *order* in which Appro_Multi_Cap admits them -
// small/compact requests first leave more residual headroom. This module
// runs a whole batch through the capacitated algorithm under a configurable
// ordering heuristic and reports per-request outcomes.
#pragma once

#include <span>
#include <vector>

#include "core/appro_multi.h"

namespace nfvm::core {

enum class BatchOrder {
  /// Process in the given order (arrival order).
  kArrival,
  /// Fewest destinations first (small trees first).
  kFewestDestinationsFirst,
  /// Smallest bandwidth-times-destinations product first (lightest load).
  kSmallestDemandFirst,
  /// Heaviest first (serve big customers while resources last).
  kLargestDemandFirst,
};

struct BatchPlanOptions {
  BatchOrder order = BatchOrder::kArrival;
  /// K and Steiner engine for the underlying Appro_Multi_Cap calls.
  std::size_t max_servers = 3;
  graph::SteinerEngine steiner_engine = graph::SteinerEngine::kKmb;
  /// Evaluation engine forwarded to Appro_Multi_Cap (kSharedDijkstra makes
  /// large batches ~|D| times faster, see ApproMultiOptions::Engine).
  ApproMultiOptions::Engine engine = ApproMultiOptions::Engine::kReference;
};

struct BatchPlanResult {
  std::size_t num_admitted = 0;
  std::size_t num_rejected = 0;
  /// Sum of admitted trees' costs.
  double total_cost = 0.0;
  /// Outcome per request, aligned with the *input* order.
  std::vector<bool> admitted;
  /// Admitted trees, aligned with the input order (empty tree if rejected).
  std::vector<PseudoMulticastTree> trees;
  /// Mean link-bandwidth utilization after the batch.
  double final_bandwidth_utilization = 0.0;
};

/// Plans a batch against fresh resource state (the topology's full
/// capacities). Requests are validated; throws std::invalid_argument on the
/// first malformed one.
BatchPlanResult plan_batch(const topo::Topology& topo, const LinearCosts& costs,
                           std::span<const nfv::Request> requests,
                           const BatchPlanOptions& options = {});

}  // namespace nfvm::core
