#include "core/chain_split.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>

#include "core/delay.h"
#include "graph/dijkstra.h"
#include "graph/tree.h"

namespace nfvm::core {
namespace {

/// Node of the layered graph: layer * n + vertex.
using LayeredId = std::size_t;

struct LayeredStep {
  LayeredId parent = static_cast<LayeredId>(-1);
  /// Movement edge (work-graph id) or kInvalidEdge for a processing step.
  graph::EdgeId via_edge = graph::kInvalidEdge;
};

}  // namespace

ChainSplitSolution chain_split_multicast(const topo::Topology& topo,
                                         const LinearCosts& costs,
                                         const nfv::Request& request,
                                         const ChainSplitOptions& options) {
  nfv::validate_request(request, topo.graph);
  ChainSplitSolution sol;
  const double b = request.bandwidth_mbps;
  const std::vector<nfv::NetworkFunction>& chain = request.chain.functions();
  const std::size_t m = chain.size();
  const std::size_t n = topo.num_switches();

  // Working graph: links with residual >= b_k, weighted c_e * b_k.
  graph::Graph work(n);
  std::vector<graph::EdgeId> to_physical;
  for (graph::EdgeId e = 0; e < topo.num_links(); ++e) {
    const graph::Edge& ed = topo.graph.edge(e);
    if (options.resources != nullptr) {
      if (options.resources->residual_bandwidth(e) < b) continue;
      if (options.resources->residual_table_entries(ed.u) < 1.0 ||
          options.resources->residual_table_entries(ed.v) < 1.0) {
        continue;
      }
    }
    work.add_edge(ed.u, ed.v, costs.edge_cost(e, b));
    to_physical.push_back(e);
  }

  // Per-NF demands and per-(NF, server) processing costs.
  std::vector<double> nf_demand(m);
  for (std::size_t i = 0; i < m; ++i) {
    nf_demand[i] = nfv::compute_demand_per_100mbps(chain[i]) * (b / 100.0);
  }
  const auto can_process = [&](std::size_t i, graph::VertexId v) {
    if (!topo.is_server(v)) return false;
    if (options.resources == nullptr) return true;
    // Per-NF check; aggregated overflow across several NFs on one server is
    // caught by the final footprint check.
    return options.resources->residual_compute(v) >= nf_demand[i];
  };

  // Layered Dijkstra from (layer 0, source).
  const std::size_t num_nodes = (m + 1) * n;
  std::vector<double> dist(num_nodes, graph::kInfiniteDistance);
  std::vector<LayeredStep> step(num_nodes);
  using Item = std::pair<double, LayeredId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  const LayeredId start = request.source;  // layer 0
  dist[start] = 0.0;
  heap.emplace(0.0, start);
  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d > dist[node]) continue;
    const std::size_t layer = node / n;
    const auto u = static_cast<graph::VertexId>(node % n);
    for (const graph::Adjacency& adj : work.neighbors(u)) {
      const LayeredId next = layer * n + adj.neighbor;
      const double nd = d + work.edge(adj.edge).weight;
      if (nd < dist[next]) {
        dist[next] = nd;
        step[next] = LayeredStep{node, adj.edge};
        heap.emplace(nd, next);
      }
    }
    if (layer < m && can_process(layer, u)) {
      const LayeredId next = (layer + 1) * n + u;
      const double nd = d + costs.server_cost(u, nf_demand[layer]);
      if (nd < dist[next]) {
        dist[next] = nd;
        step[next] = LayeredStep{node, graph::kInvalidEdge};
        heap.emplace(nd, next);
      }
    }
  }

  // Candidates: servers v where the *last* NF can be placed; rooting the
  // multicast tree at the last processing server dominates any post-
  // processing relocation (the tree itself provides all movement).
  struct Candidate {
    double total = 0.0;
    graph::VertexId root = graph::kInvalidVertex;
    double walk_cost = 0.0;
    graph::SteinerResult steiner;
  };
  std::vector<Candidate> candidates;
  std::vector<graph::VertexId> terminals_base(request.destinations);
  for (graph::VertexId v : topo.servers) {
    if (!can_process(m - 1, v)) continue;
    const LayeredId before = (m - 1) * n + v;
    if (dist[before] >= graph::kInfiniteDistance) continue;
    const double walk_cost = dist[before] + costs.server_cost(v, nf_demand[m - 1]);

    std::vector<graph::VertexId> terminals{v};
    terminals.insert(terminals.end(), terminals_base.begin(), terminals_base.end());
    graph::SteinerResult st =
        graph::steiner_tree(work, terminals, options.steiner_engine);
    if (!st.connected) continue;
    candidates.push_back(
        Candidate{walk_cost + st.weight, v, walk_cost, std::move(st)});
  }
  if (candidates.empty()) {
    sol.reject_reason = "no feasible placement walk reaches the destinations";
    return sol;
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.total < b.total;
                   });

  for (const Candidate& cand : candidates) {
    // Reconstruct the layered walk ending right after the final placement.
    std::vector<graph::VertexId> walk;           // physical vertices
    std::vector<graph::EdgeId> walk_edges;       // work-graph ids, traversal order
    std::vector<std::pair<nfv::NetworkFunction, graph::VertexId>> placements;
    {
      // The end node is (m, root) reached via the processing step.
      std::vector<LayeredId> rev;
      LayeredId node = m * n + cand.root;
      // The final processing step may not be the stored predecessor of
      // (m, root) (movement could be cheaper); force the interpretation
      // "walk to (m-1, root), then process" which cand.walk_cost priced.
      rev.push_back(node);
      node = (m - 1) * n + cand.root;
      for (;;) {
        rev.push_back(node);
        if (node == start) break;
        node = step[node].parent;
      }
      std::reverse(rev.begin(), rev.end());
      for (std::size_t i = 0; i < rev.size(); ++i) {
        const std::size_t layer = rev[i] / n;
        const auto u = static_cast<graph::VertexId>(rev[i] % n);
        if (i == 0) {
          walk.push_back(u);
          continue;
        }
        const std::size_t prev_layer = rev[i - 1] / n;
        if (layer != prev_layer) {
          placements.emplace_back(chain[prev_layer], u);  // processing step
        } else {
          walk_edges.push_back(step[rev[i]].via_edge);
          walk.push_back(u);
        }
      }
    }

    // Assemble the pseudo-multicast tree.
    PseudoMulticastTree tree;
    tree.source = request.source;
    tree.cost = cand.total;
    for (const auto& [nf, v] : placements) tree.servers.push_back(v);
    std::sort(tree.servers.begin(), tree.servers.end());
    tree.servers.erase(std::unique(tree.servers.begin(), tree.servers.end()),
                       tree.servers.end());

    std::map<graph::EdgeId, int> mult;
    for (graph::EdgeId e : walk_edges) ++mult[to_physical[e]];
    for (graph::EdgeId e : cand.steiner.edges) ++mult[to_physical[e]];
    tree.edge_uses.assign(mult.begin(), mult.end());

    const graph::RootedTree rooted(work, cand.steiner.edges, cand.root);
    for (graph::VertexId d : request.destinations) {
      DestinationRoute route;
      route.destination = d;
      route.server = cand.root;
      route.walk = walk;
      route.server_index = route.walk.size() - 1;
      const std::vector<graph::VertexId> down = rooted.path_vertices(cand.root, d);
      route.walk.insert(route.walk.end(), down.begin() + 1, down.end());
      tree.routes.push_back(std::move(route));
    }

    if (!meets_delay_bound(topo, request, tree)) continue;

    nfv::Footprint footprint;
    for (const auto& [edge, count] : tree.edge_uses) {
      footprint.bandwidth.emplace_back(edge, b * count);
    }
    for (std::size_t i = 0; i < placements.size(); ++i) {
      footprint.compute.emplace_back(placements[i].second, nf_demand[i]);
    }
    footprint.table_entries = tree.touched_switches(topo.graph);
    if (options.resources != nullptr && !options.resources->can_allocate(footprint)) {
      continue;
    }

    sol.admitted = true;
    sol.tree = std::move(tree);
    sol.footprint = std::move(footprint);
    sol.placements = std::move(placements);
    return sol;
  }

  sol.reject_reason = "every placement walk violates capacity or delay constraints";
  return sol;
}

}  // namespace nfvm::core
