// Chain splitting - relaxing the paper's consolidation assumption.
//
// The paper assumes "without loss of generality" that a request's whole
// service chain is consolidated onto one VM (Section III-B). In practice a
// chain may not fit one server's residual capacity, or different servers may
// price resources differently. This module places the chain's functions
// *individually*, in order, along a walk from the source:
//
//   s_k --walk--> v_1 [NF_1] --walk--> v_2 [NF_2] ... v_m [NF_m] --tree--> D_k
//
// via a layered-graph shortest path: layer i holds the network state "first
// i functions applied"; movement edges stay within a layer, processing edges
// (v, i) -> (v, i+1) exist at servers with enough residual computing for
// NF_{i+1} and cost its computing price. After the last function, a Steiner
// tree (KMB) from the final server spans the destinations.
//
// Cost model and traversal accounting follow the rest of the library: every
// link traversal of the walk and the tree pays c_e * b_k; each placement
// pays that server's unit price for that NF's demand only.
#pragma once

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/pseudo_tree.h"
#include "graph/steiner.h"
#include "nfv/request.h"
#include "nfv/resources.h"
#include "topology/topology.h"

namespace nfvm::core {

struct ChainSplitOptions {
  /// Non-null enables capacity-aware pruning (links below b_k, and
  /// processing edges only where the per-NF demand fits the residual).
  const nfv::ResourceState* resources = nullptr;
  /// Steiner engine for the final multicast tree.
  graph::SteinerEngine steiner_engine = graph::SteinerEngine::kKmb;
};

struct ChainSplitSolution {
  bool admitted = false;
  std::string reject_reason;
  /// tree.servers lists the distinct servers hosting at least one NF; the
  /// per-destination walks include the full placement walk.
  PseudoMulticastTree tree;
  /// Correct per-NF resource charging (PseudoMulticastTree::footprint would
  /// charge the whole chain per server, which is wrong for splits).
  nfv::Footprint footprint;
  /// (function, server) in chain order; length == chain length.
  std::vector<std::pair<nfv::NetworkFunction, graph::VertexId>> placements;
};

/// Computes a split-chain pseudo-multicast tree. Honors
/// `request.max_delay_ms` like the consolidated algorithms (candidate
/// filter). Throws std::invalid_argument on malformed input.
ChainSplitSolution chain_split_multicast(const topo::Topology& topo,
                                         const LinearCosts& costs,
                                         const nfv::Request& request,
                                         const ChainSplitOptions& options = {});

}  // namespace nfvm::core
