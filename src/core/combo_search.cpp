#include "core/combo_search.h"

#include <algorithm>
#include <utility>

#include "obs/hdr_histogram.h"
#include "obs/metrics.h"
#include "util/combinatorics.h"
#include "util/thread_pool.h"

namespace nfvm::core {
namespace {

/// Candidates are skipped/committed in fixed-size chunks so the skip
/// decisions (which read the incumbent) and the commits (which write it)
/// stay sequential while evaluations inside a chunk run on the pool. The
/// chunk size must NOT depend on the thread count, or the set of evaluated
/// combinations — and with it the pruning counters — would too. Smaller
/// chunks refresh the incumbent more often (more pruning), larger chunks
/// expose more parallelism per round; 8 keeps the bound-sorted tail cut
/// sharp while still feeding the common 4-8 thread pools.
constexpr std::size_t kChunk = 8;

}  // namespace

bool combo_key_less(const ComboKey& a, const ComboKey& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.idx.size() != b.idx.size()) return a.idx.size() < b.idx.size();
  return a.idx < b.idx;
}

ComboSearch::ComboSearch(std::size_t pool_size, const ComboBounds& bounds,
                         std::size_t max_servers, Evaluator evaluator)
    : pool_size_(pool_size),
      bounds_(&bounds),
      max_servers_(std::min(max_servers, pool_size)),
      evaluator_(std::move(evaluator)) {}

ComboSearchResult ComboSearch::next_best(const ComboKey* floor,
                                         std::size_t max_evaluations) {
  ComboSearchResult res;
  const std::size_t n = pool_size_;

  struct Node {
    std::vector<std::size_t> idx;
    ComboBounds::Partial partial;
  };
  struct Cand {
    std::vector<std::size_t> idx;
    ComboBounds::Partial partial;
    double bound = 0.0;
    bool eval = false;
    ComboEvaluation result;
  };

  // Level-synchronous walk: the frontier holds the size-(k-1) prefixes that
  // survived the expansion filter. Extending each by every larger pool index
  // yields the level-k candidate set; within a level the candidates are
  // evaluated in ascending lower-bound order (ties toward the
  // lexicographically smaller index vector) so the incumbent tightens as
  // early as possible and — the bounds being sorted — every candidate past
  // the first one exceeding the incumbent can be pruned in bulk. The final
  // argmin does not depend on the evaluation order (see the header), and
  // the order itself is a pure function of the bounds, so the counters stay
  // thread-count invariant.
  std::vector<Node> frontier;
  frontier.push_back(Node{{}, bounds_->root()});
  bool stop = false;
  for (std::size_t k = 1; k <= max_servers_ && !frontier.empty() && !stop;
       ++k) {
    std::vector<Cand> cands;
    for (const Node& node : frontier) {
      const std::size_t start = node.idx.empty() ? 0 : node.idx.back() + 1;
      for (std::size_t i = start; i < n; ++i) {
        Cand c;
        c.idx = node.idx;
        c.idx.push_back(i);
        c.partial = bounds_->extend(node.partial, i);
        c.bound = bounds_->candidate_bound(c.idx);
        cands.push_back(std::move(c));
      }
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.bound != b.bound) return a.bound < b.bound;
      return a.idx < b.idx;
    });

    bool level_done = false;
    for (std::size_t base = 0; base < cands.size() && !stop && !level_done;
         base += kChunk) {
      const std::size_t end = std::min(base + kChunk, cands.size());
      // Skip decisions are taken sequentially against the incumbent as of
      // the previous chunk; commits below update it in canonical order.
      std::vector<std::size_t> to_eval;
      for (std::size_t c = base; c < end; ++c) {
        if (res.found && cands[c].bound > res.key.cost) {
          // Ascending bound order: every remaining candidate in this level
          // is bounded at least as high, so the whole tail is pruned. The
          // level is done, but deeper levels are not covered by these
          // bounds and still get their turn.
          res.pruned =
              util::saturating_add(res.pruned, cands.size() - c);
          level_done = true;
          break;
        }
        if (res.evaluated + to_eval.size() >= max_evaluations) {
          res.budget_exhausted = true;
          stop = true;
          break;
        }
        cands[c].eval = true;
        to_eval.push_back(c);
      }

      util::ThreadPool::global().parallel_for(
          to_eval.size(), [&](std::size_t t) {
            Cand& c = cands[to_eval[t]];
            c.result = evaluator_(c.idx);
          });

      for (const std::size_t c : to_eval) {
        Cand& cand = cands[c];
        ++res.evaluated;
        if (!cand.result.connected) continue;
        NFVM_OBS_ONLY(if (cand.result.cost > 0.0) {
          NFVM_HDR_OBSERVE("core.appro_multi.lb_tightness",
                           100.0 * cand.bound / cand.result.cost);
        })
        ComboKey key{cand.result.cost, cand.idx};
        if (floor != nullptr && !combo_key_less(*floor, key)) continue;
        if (!res.found || combo_key_less(key, res.key)) {
          res.found = true;
          res.key = std::move(key);
          res.tree_edges = std::move(cand.result.tree_edges);
        }
      }
    }

    if (stop || k == max_servers_) break;

    std::vector<Node> next;
    for (Cand& c : cands) {
      const std::size_t last = c.idx.back();
      if (last + 1 >= n) continue;
      if (res.found &&
          bounds_->subtree_bound(c.partial, last + 1) > res.key.cost) {
        // Every completion draws 1..(max_k - k) more servers from the
        // n - 1 - last remaining pool indices.
        res.pruned = util::saturating_add(
            res.pruned,
            util::count_combinations_upto(n - 1 - last, max_servers_ - k));
        continue;
      }
      next.push_back(Node{std::move(c.idx), std::move(c.partial)});
    }
    frontier = std::move(next);
  }
  return res;
}

}  // namespace nfvm::core
