// Deterministic branch-and-bound over Appro_Multi server-combination
// prefixes.
//
// The legacy sweep materializes every combination of at most K servers and
// evaluates all of them. This search walks the same combination space as a
// prefix tree level by level (size-major; within a level candidates are
// taken in ascending lower-bound order so the incumbent tightens early),
// seeds the incumbent with the K = 1 level, and uses the admissible
// ComboBounds lower bounds to
//   * skip evaluating a combination whose bound already exceeds the
//     incumbent cost — the per-level bound ordering makes this a single
//     bulk cut of the level's tail, and
//   * stop extending a prefix when every completion from the remaining
//     server pool is bounded above the incumbent.
// Exactness does not depend on the evaluation order: pruning uses strict
// inequality (a pruned candidate has true cost >= bound > incumbent cost,
// so its canonical key exceeds the incumbent's regardless of indices),
// equal-cost candidates are never pruned and the sequential commits keep
// the full canonical-key minimum. The search therefore returns the SAME
// cost and SAME argmin combination as exhaustive enumeration — including
// exact floating-point ties — at any thread count (evaluations run in
// parallel, commits replay in a fixed order; the candidate order is a pure
// function of the bounds, never of timing).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/shared_closure.h"
#include "graph/graph.h"

namespace nfvm::core {

/// One combination's evaluation: the (deterministic) Steiner tree in the
/// auxiliary graph for that combination.
struct ComboEvaluation {
  bool connected = false;
  double cost = 0.0;
  std::vector<graph::EdgeId> tree_edges;
};

/// Canonical ranking key for a combination: cost, then combination size,
/// then lexicographic pool indices. The legacy sweep's stable sort by cost
/// over size-major/lex enumeration order ranks candidates by exactly this
/// key, so agreeing on the minimum key reproduces the legacy argmin.
struct ComboKey {
  double cost = 0.0;
  /// Strictly increasing indices into the server pool.
  std::vector<std::size_t> idx;
};

bool combo_key_less(const ComboKey& a, const ComboKey& b);

struct ComboSearchResult {
  /// True when some evaluated combination was connected (and above the
  /// floor, when one was given).
  bool found = false;
  ComboKey key;
  /// Steiner tree edges (auxiliary-graph ids) of the found combination.
  std::vector<graph::EdgeId> tree_edges;
  /// Combinations actually evaluated during this search pass.
  std::size_t evaluated = 0;
  /// Combinations discarded by the bound without evaluation — skipped
  /// candidates count one each, a killed prefix counts every unvisited
  /// completion (saturating).
  std::size_t pruned = 0;
  /// True when the evaluation budget stopped the search before the
  /// combination space was exhausted; the result is then the best among the
  /// combinations evaluated so far (matching the legacy budget valve).
  bool budget_exhausted = false;
};

class ComboSearch {
 public:
  /// The evaluator maps strictly increasing pool indices to the
  /// combination's Steiner tree. It must be deterministic (bitwise-equal
  /// results for equal inputs) and safe to call from worker threads.
  using Evaluator = std::function<ComboEvaluation(std::span<const std::size_t>)>;

  ComboSearch(std::size_t pool_size, const ComboBounds& bounds,
              std::size_t max_servers, Evaluator evaluator);

  /// The minimum-key combination, or — when `floor` is non-null — the
  /// minimum-key combination with key strictly greater than `*floor`.
  /// The floor reproduces the legacy realize-fallthrough: callers re-search
  /// with the rejected candidate's key to obtain the next-cheapest
  /// candidate. The floor cannot tighten pruning (an equal-cost,
  /// larger-index candidate still qualifies), so bounds only compare
  /// against this pass's own incumbent. At most `max_evaluations`
  /// evaluator calls are spent.
  ComboSearchResult next_best(const ComboKey* floor,
                              std::size_t max_evaluations);

 private:
  std::size_t pool_size_ = 0;
  const ComboBounds* bounds_ = nullptr;
  std::size_t max_servers_ = 0;
  Evaluator evaluator_;
};

}  // namespace nfvm::core
