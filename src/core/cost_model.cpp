#include "core/cost_model.h"

#include <cmath>
#include <stdexcept>

namespace nfvm::core {

LinearCosts uniform_costs(const topo::Topology& topo, double link_cost,
                          double server_cost) {
  if (!(link_cost >= 0) || !(server_cost >= 0)) {
    throw std::invalid_argument("uniform_costs: costs must be non-negative");
  }
  LinearCosts costs;
  costs.link_unit_cost.assign(topo.num_links(), link_cost);
  costs.server_unit_cost.assign(topo.num_switches(), server_cost);
  return costs;
}

LinearCosts random_costs(const topo::Topology& topo, util::Rng& rng,
                         const RandomCostOptions& options) {
  if (options.min_link_cost < 0 || options.min_link_cost > options.max_link_cost ||
      options.min_server_cost < 0 ||
      options.min_server_cost > options.max_server_cost) {
    throw std::invalid_argument("random_costs: invalid ranges");
  }
  LinearCosts costs;
  costs.link_unit_cost.resize(topo.num_links());
  for (double& c : costs.link_unit_cost) {
    c = rng.uniform_real(options.min_link_cost, options.max_link_cost);
  }
  costs.server_unit_cost.assign(topo.num_switches(), 0.0);
  for (graph::VertexId v : topo.servers) {
    costs.server_unit_cost[v] =
        rng.uniform_real(options.min_server_cost, options.max_server_cost);
  }
  return costs;
}

ExponentialCostModel::ExponentialCostModel(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  if (!(alpha > 1.0) || !(beta > 1.0)) {
    throw std::invalid_argument("ExponentialCostModel: alpha and beta must be > 1");
  }
}

ExponentialCostModel ExponentialCostModel::paper_default(std::size_t num_vertices) {
  const double a = 2.0 * static_cast<double>(num_vertices);
  // alpha = beta = 2|V|; require |V| >= 1 so the base exceeds 1.
  if (num_vertices == 0) {
    throw std::invalid_argument("ExponentialCostModel: empty network");
  }
  return ExponentialCostModel(a, a);
}

double ExponentialCostModel::server_weight(graph::VertexId v,
                                           const nfv::ResourceState& state) const {
  return std::pow(alpha_, state.compute_utilization(v)) - 1.0;
}

double ExponentialCostModel::edge_weight(graph::EdgeId e,
                                         const nfv::ResourceState& state) const {
  return std::pow(beta_, state.bandwidth_utilization(e)) - 1.0;
}

double ExponentialCostModel::server_cost(graph::VertexId v,
                                         const nfv::ResourceState& state) const {
  return state.compute_capacity(v) * server_weight(v, state);
}

double ExponentialCostModel::edge_cost(graph::EdgeId e,
                                       const nfv::ResourceState& state) const {
  return state.bandwidth_capacity(e) * edge_weight(e, state);
}

}  // namespace nfvm::core
