// Cost models.
//
// * `LinearCosts` — the pay-as-you-go operational-cost model of the offline
//   problems (Section III-C, Case 1): a usage cost per unit of bandwidth on
//   every link (c_e) and per unit of computing on every server (c_v).
// * `ExponentialCostModel` — the online cost model of Section V-A
//   (Equations 1 and 2): underloaded resources are cheap, overloaded ones
//   exponentially expensive, steering admissions toward balanced utilization.
#pragma once

#include <vector>

#include "nfv/resources.h"
#include "topology/topology.h"
#include "util/rng.h"

namespace nfvm::core {

/// Per-unit usage costs for the offline (operational-cost) experiments.
struct LinearCosts {
  /// c_e: cost of one Mbps on link e, indexed by EdgeId.
  std::vector<double> link_unit_cost;
  /// c_v: cost of one MHz on the server at switch v, indexed by VertexId
  /// (meaningful only for server switches).
  std::vector<double> server_unit_cost;

  /// c_e * mbps for routing `mbps` over link `e`.
  double edge_cost(graph::EdgeId e, double mbps) const {
    return link_unit_cost.at(e) * mbps;
  }
  /// c_v * mhz for running a chain that demands `mhz` at switch `v`.
  double server_cost(graph::VertexId v, double mhz) const {
    return server_unit_cost.at(v) * mhz;
  }
};

/// All links cost `link_cost` per Mbps, all servers `server_cost` per MHz.
LinearCosts uniform_costs(const topo::Topology& topo, double link_cost = 1.0,
                          double server_cost = 1.0);

struct RandomCostOptions {
  // Defaults chosen so that, for the paper's request mix (b_k in [50,200]
  // Mbps, chains of 1-3 NFs), bandwidth and computing costs are the same
  // order of magnitude - the regime where the K-server tradeoff is
  // interesting.
  double min_link_cost = 0.01;   // per Mbps
  double max_link_cost = 0.10;
  double min_server_cost = 0.002;  // per MHz
  double max_server_cost = 0.010;
};

/// Draws per-link and per-server unit costs uniformly from the ranges.
LinearCosts random_costs(const topo::Topology& topo, util::Rng& rng,
                         const RandomCostOptions& options = {});

/// The online exponential cost model. With utilization u_v = 1 - C_v(k)/C_v:
///   c_v(k) = C_v (alpha^{u_v} - 1)            (Eq. 1)
///   c_e(k) = B_e (beta^{u_e} - 1)             (Eq. 2)
/// and the normalized weights used by Online_CP:
///   w_v(k) = c_v(k) / C_v = alpha^{u_v} - 1
///   w_e(k) = c_e(k) / B_e = beta^{u_e} - 1.
class ExponentialCostModel {
 public:
  /// Throws std::invalid_argument unless alpha > 1 and beta > 1.
  ExponentialCostModel(double alpha, double beta);

  /// The paper's choice alpha = beta = 2|V| (Theorem 2).
  static ExponentialCostModel paper_default(std::size_t num_vertices);

  double alpha() const noexcept { return alpha_; }
  double beta() const noexcept { return beta_; }

  double server_cost(graph::VertexId v, const nfv::ResourceState& state) const;
  double edge_cost(graph::EdgeId e, const nfv::ResourceState& state) const;
  double server_weight(graph::VertexId v, const nfv::ResourceState& state) const;
  double edge_weight(graph::EdgeId e, const nfv::ResourceState& state) const;

 private:
  double alpha_;
  double beta_;
};

}  // namespace nfvm::core
