#include "core/delay.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace nfvm::core {

double route_delay_ms(const topo::Topology& topo, const nfv::ServiceChain& chain,
                      const DestinationRoute& route) {
  if (!topo.has_delays()) {
    throw std::invalid_argument("route_delay_ms: topology has no link delays");
  }
  double total = chain.processing_delay_ms();
  for (std::size_t i = 0; i + 1 < route.walk.size(); ++i) {
    const graph::VertexId a = route.walk[i];
    const graph::VertexId b = route.walk[i + 1];
    // Multiple parallel links: the walk does not identify which one, so use
    // the lowest-latency option (parallel physical links are rare; every
    // generated topology is simple).
    double best = std::numeric_limits<double>::infinity();
    for (const graph::Adjacency& adj : topo.graph.neighbors(a)) {
      if (adj.neighbor == b) {
        best = std::min(best, topo.link_delay_ms.at(adj.edge));
      }
    }
    if (!std::isfinite(best)) {
      throw std::invalid_argument("route_delay_ms: walk uses a non-existent link");
    }
    total += best;
  }
  return total;
}

double worst_route_delay_ms(const topo::Topology& topo, const nfv::Request& request,
                            const PseudoMulticastTree& tree) {
  double worst = 0.0;
  for (const DestinationRoute& route : tree.routes) {
    worst = std::max(worst, route_delay_ms(topo, request.chain, route));
  }
  return worst;
}

bool meets_delay_bound(const topo::Topology& topo, const nfv::Request& request,
                       const PseudoMulticastTree& tree) {
  if (!request.has_delay_bound()) return true;
  return worst_route_delay_ms(topo, request, tree) <= request.max_delay_ms + 1e-9;
}

}  // namespace nfvm::core
