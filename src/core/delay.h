// End-to-end delay accounting for pseudo-multicast trees - the
// delay-constrained extension (the paper's related work points at Kuo et
// al. [13]; the base algorithms ignore delay).
//
// A destination's latency is the sum of propagation delays along its walk
// (including backhaul detours, which is why pseudo-multicast trees can be
// delay-expensive) plus the service chain's processing latency. Algorithms
// honor `Request::max_delay_ms` by skipping candidate trees whose worst
// destination violates the bound - a feasibility filter, not an optimized
// delay-aware routing (finding the cheapest delay-bounded tree is NP-hard
// already for unicast).
#pragma once

#include "core/pseudo_tree.h"
#include "topology/topology.h"

namespace nfvm::core {

/// Latency of one destination's route, ms. Requires topo.has_delays();
/// throws std::invalid_argument otherwise or when the walk uses links that
/// do not exist.
double route_delay_ms(const topo::Topology& topo, const nfv::ServiceChain& chain,
                      const DestinationRoute& route);

/// max over destinations of route_delay_ms; 0 for a tree with no routes.
double worst_route_delay_ms(const topo::Topology& topo, const nfv::Request& request,
                            const PseudoMulticastTree& tree);

/// True when the request has no bound, or every destination meets it.
bool meets_delay_bound(const topo::Topology& topo, const nfv::Request& request,
                       const PseudoMulticastTree& tree);

}  // namespace nfvm::core
