#include "core/exact_offline.h"

#include <algorithm>
#include <limits>
#include <map>

#include "core/aux_graph.h"
#include "graph/steiner.h"
#include "graph/tree.h"
#include "util/combinatorics.h"

namespace nfvm::core {

using util::next_combination;

OfflineSolution exact_one_server(const topo::Topology& topo, const LinearCosts& costs,
                                 const nfv::Request& request,
                                 const ExactOfflineOptions& options) {
  if (request.destinations.size() + 1 > options.max_terminals) {
    throw std::invalid_argument("exact_one_server: too many destinations");
  }
  OfflineSolution sol;
  const WorkContext ctx = build_work_context(topo, costs, request, options.resources);
  if (!ctx.destinations_reachable) {
    sol.reject_reason = "a destination is unreachable with the demanded bandwidth";
    return sol;
  }
  if (ctx.eligible_servers.empty()) {
    sol.reject_reason = "no server can host the service chain";
    return sol;
  }

  double best_cost = std::numeric_limits<double>::infinity();
  graph::VertexId best_server = graph::kInvalidVertex;
  graph::SteinerResult best_tree;
  for (graph::VertexId v : ctx.eligible_servers) {
    ++sol.combinations_explored;
    std::vector<graph::VertexId> terminals{v};
    terminals.insert(terminals.end(), request.destinations.begin(),
                     request.destinations.end());
    graph::SteinerResult st = graph::exact_steiner(ctx.cost_graph, terminals);
    if (!st.connected) continue;
    const double cost =
        ctx.sp_source.dist[v] + ctx.server_chain_cost[v] + st.weight;
    if (cost < best_cost) {
      best_cost = cost;
      best_server = v;
      best_tree = std::move(st);
    }
  }
  if (best_server == graph::kInvalidVertex) {
    sol.reject_reason = "no server reaches all destinations";
    return sol;
  }

  PseudoMulticastTree tree;
  tree.source = request.source;
  tree.servers = {best_server};
  tree.cost = best_cost;
  std::map<graph::EdgeId, int> mult;
  for (graph::EdgeId e : graph::path_edges(ctx.sp_source, best_server)) {
    ++mult[ctx.to_physical[e]];
  }
  for (graph::EdgeId e : best_tree.edges) ++mult[ctx.to_physical[e]];
  tree.edge_uses.assign(mult.begin(), mult.end());

  const graph::RootedTree rooted(ctx.cost_graph, best_tree.edges, best_server);
  const std::vector<graph::VertexId> to_server =
      graph::path_vertices(ctx.sp_source, best_server);
  for (graph::VertexId d : request.destinations) {
    DestinationRoute route;
    route.destination = d;
    route.server = best_server;
    route.walk = to_server;
    route.server_index = route.walk.size() - 1;
    const std::vector<graph::VertexId> down = rooted.path_vertices(best_server, d);
    route.walk.insert(route.walk.end(), down.begin() + 1, down.end());
    tree.routes.push_back(std::move(route));
  }
  sol.admitted = true;
  sol.tree = std::move(tree);
  return sol;
}

OfflineSolution exact_auxiliary(const topo::Topology& topo, const LinearCosts& costs,
                                const nfv::Request& request,
                                const ExactOfflineOptions& options) {
  if (options.max_servers == 0) {
    throw std::invalid_argument("exact_auxiliary: max_servers must be >= 1");
  }
  if (request.destinations.size() + 1 > options.max_terminals) {
    throw std::invalid_argument("exact_auxiliary: too many destinations");
  }
  OfflineSolution sol;
  const WorkContext ctx = build_work_context(topo, costs, request, options.resources);
  if (!ctx.destinations_reachable) {
    sol.reject_reason = "a destination is unreachable with the demanded bandwidth";
    return sol;
  }
  if (ctx.eligible_servers.empty()) {
    sol.reject_reason = "no server can host the service chain";
    return sol;
  }

  std::vector<graph::VertexId> terminals;
  terminals.push_back(static_cast<graph::VertexId>(ctx.cost_graph.num_vertices()));
  terminals.insert(terminals.end(), request.destinations.begin(),
                   request.destinations.end());

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<graph::VertexId> best_combo;
  std::vector<graph::EdgeId> best_edges;

  const std::size_t max_k = std::min(options.max_servers, ctx.eligible_servers.size());
  for (std::size_t k = 1; k <= max_k; ++k) {
    std::vector<std::size_t> idx(k);
    for (std::size_t i = 0; i < k; ++i) idx[i] = i;
    do {
      ++sol.combinations_explored;
      std::vector<graph::VertexId> combo(k);
      for (std::size_t i = 0; i < k; ++i) combo[i] = ctx.eligible_servers[idx[i]];
      const AuxiliaryGraph aux = build_auxiliary_graph(ctx, request.source, combo);
      graph::SteinerResult st = graph::exact_steiner(aux.graph, terminals);
      if (!st.connected) continue;
      if (st.weight < best_cost) {
        best_cost = st.weight;
        best_combo = std::move(combo);
        best_edges = std::move(st.edges);
      }
    } while (next_combination(idx, ctx.eligible_servers.size()));
  }

  if (best_combo.empty()) {
    sol.reject_reason = "no server combination connects the source to all destinations";
    return sol;
  }
  const AuxiliaryGraph aux = build_auxiliary_graph(ctx, request.source, best_combo);
  sol.tree = realize_pseudo_tree(ctx, aux, best_edges, request);
  sol.admitted = true;
  return sol;
}

}  // namespace nfvm::core
