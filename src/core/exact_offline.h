// Exact reference solvers for small NFV-multicast instances.
//
// These are exponential-time oracles the test suite and the ratio benchmarks
// compare the approximation algorithms against; they are NOT meant for
// production-size networks.
//
// * `exact_one_server` — the true optimum for K = 1. The one-server problem
//   decomposes exactly: pick the server v minimizing
//     sp_cost(s, v) + c_v(SC) + exactSteiner({v} ∪ D)
//   in the c_e * b_k weighted graph, because the unprocessed path and the
//   processed tree are charged independently per traversal.
// * `exact_auxiliary` — the optimum of Algorithm 1's auxiliary-graph
//   formulation for any K: enumerate every server combination of size <= K
//   and solve each auxiliary graph with the Dreyfus-Wagner DP. Appro_Multi's
//   reported cost is within 2x of this value (the KMB guarantee), which the
//   test suite verifies directly.
#pragma once

#include "core/appro_multi.h"

namespace nfvm::core {

struct ExactOfflineOptions {
  /// K for exact_auxiliary (exact_one_server is K = 1 by definition).
  std::size_t max_servers = 1;
  /// Guard: the Dreyfus-Wagner DP is Theta(3^t); reject instances with more
  /// terminals than this (|D| + 1 per auxiliary graph).
  std::size_t max_terminals = 12;
  /// Non-null enables capacity-aware pruning, mirroring Appro_Multi_Cap.
  const nfv::ResourceState* resources = nullptr;
};

/// True optimum for the one-server (K = 1) problem. Throws
/// std::invalid_argument when |D| + 1 exceeds options.max_terminals.
OfflineSolution exact_one_server(const topo::Topology& topo, const LinearCosts& costs,
                                 const nfv::Request& request,
                                 const ExactOfflineOptions& options = {});

/// Optimum of the auxiliary-graph formulation with combinations of size
/// <= options.max_servers (includes the paper's zero-cost source-edge
/// correction, like Appro_Multi). Throws std::invalid_argument on guard
/// violations.
OfflineSolution exact_auxiliary(const topo::Topology& topo, const LinearCosts& costs,
                                const nfv::Request& request,
                                const ExactOfflineOptions& options = {});

}  // namespace nfvm::core
