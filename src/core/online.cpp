#include "core/online.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nfvm::core {

std::string_view to_string(RejectCause cause) {
  switch (cause) {
    case RejectCause::kNone: return "none";
    case RejectCause::kBandwidth: return "bandwidth";
    case RejectCause::kCompute: return "compute";
    case RejectCause::kThreshold: return "threshold";
    case RejectCause::kDelay: return "delay";
    case RejectCause::kOther: return "other";
  }
  return "other";
}

OnlineAlgorithm::OnlineAlgorithm(const topo::Topology& topo)
    : topo_(&topo), state_(topo) {
#if NFVM_OBS
  // Pre-register the full rejection breakdown so a metrics export always
  // carries every online.reject.* key, including the zero ones - consumers
  // can sum the family without special-casing absent counters.
  obs::Registry& registry = obs::Registry::global();
  registry.counter("online.reject.bandwidth");
  registry.counter("online.reject.compute");
  registry.counter("online.reject.threshold");
  registry.counter("online.reject.delay");
  registry.counter("online.reject.other");
#endif
}

AdmissionDecision OnlineAlgorithm::process(const nfv::Request& request) {
  NFVM_SPAN("online/admit");
  nfv::validate_request(request, topo_->graph);
  AdmissionDecision decision = try_admit(request);
  if (decision.admitted) {
    // try_admit must hand back a footprint that fits; allocate() re-checks
    // and throws on a contract violation rather than over-committing.
    state_.allocate(decision.footprint);
    after_allocate(decision.footprint);
    ++num_admitted_;
    decision.reject_cause = RejectCause::kNone;
    NFVM_COUNTER_INC("online.admitted");
  } else {
    ++num_rejected_;
    if (decision.reject_cause == RejectCause::kNone) {
      decision.reject_cause = RejectCause::kOther;
    }
    NFVM_COUNTER_INC("online.rejected");
    switch (decision.reject_cause) {
      case RejectCause::kBandwidth:
        NFVM_COUNTER_INC("online.reject.bandwidth");
        break;
      case RejectCause::kCompute:
        NFVM_COUNTER_INC("online.reject.compute");
        break;
      case RejectCause::kThreshold:
        NFVM_COUNTER_INC("online.reject.threshold");
        break;
      case RejectCause::kDelay:
        NFVM_COUNTER_INC("online.reject.delay");
        break;
      default:
        NFVM_COUNTER_INC("online.reject.other");
        break;
    }
  }
  NFVM_COUNTER_INC("online.requests");
  return decision;
}

void OnlineAlgorithm::release(const nfv::Footprint& footprint) {
  state_.release(footprint);
  after_release(footprint);
}

void OnlineAlgorithm::after_allocate(const nfv::Footprint& /*footprint*/) {}
void OnlineAlgorithm::after_release(const nfv::Footprint& /*footprint*/) {}

}  // namespace nfvm::core
