#include "core/online.h"

#include <stdexcept>

namespace nfvm::core {

OnlineAlgorithm::OnlineAlgorithm(const topo::Topology& topo)
    : topo_(&topo), state_(topo) {}

AdmissionDecision OnlineAlgorithm::process(const nfv::Request& request) {
  nfv::validate_request(request, topo_->graph);
  AdmissionDecision decision = try_admit(request);
  if (decision.admitted) {
    // try_admit must hand back a footprint that fits; allocate() re-checks
    // and throws on a contract violation rather than over-committing.
    state_.allocate(decision.footprint);
    ++num_admitted_;
  } else {
    ++num_rejected_;
  }
  return decision;
}

void OnlineAlgorithm::release(const nfv::Footprint& footprint) {
  state_.release(footprint);
}

}  // namespace nfvm::core
