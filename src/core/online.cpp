#include "core/online.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace nfvm::core {

std::string_view to_string(RejectCause cause) {
  switch (cause) {
    case RejectCause::kNone: return "none";
    case RejectCause::kBandwidth: return "bandwidth";
    case RejectCause::kCompute: return "compute";
    case RejectCause::kThreshold: return "threshold";
    case RejectCause::kDelay: return "delay";
    case RejectCause::kOther: return "other";
  }
  return "other";
}

OnlineAlgorithm::OnlineAlgorithm(const topo::Topology& topo)
    : topo_(&topo), state_(topo) {
#if NFVM_OBS
  // Pre-register the full rejection breakdown so a metrics export always
  // carries every online.reject.* key, including the zero ones - consumers
  // can sum the family without special-casing absent counters.
  obs::Registry& registry = obs::Registry::global();
  registry.counter("online.reject.bandwidth");
  registry.counter("online.reject.compute");
  registry.counter("online.reject.threshold");
  registry.counter("online.reject.delay");
  registry.counter("online.reject.other");
  spcache_hits_counter_ = registry.counter("graph.spcache.hits");
  spcache_misses_counter_ = registry.counter("graph.spcache.misses");
#endif
}

AdmissionDecision OnlineAlgorithm::process(const nfv::Request& request) {
  NFVM_SPAN("online/admit");
  nfv::validate_request(request, topo_->graph);
#if NFVM_OBS
  RequestRecord record;
  util::Stopwatch total_watch;
  std::uint64_t spcache_hits_before = 0;
  std::uint64_t spcache_misses_before = 0;
  if (record_provenance_) {
    record.request_id = request.id;
    record.servers_total = topo_->servers.size();
    spcache_hits_before = spcache_hits_counter_->value();
    spcache_misses_before = spcache_misses_counter_->value();
    active_record_ = &record;
  }
#endif
  AdmissionDecision decision = try_admit(request);
  NFVM_OBS_ONLY(active_record_ = nullptr;)
  if (decision.admitted) {
    // try_admit must hand back a footprint that fits; allocate() re-checks
    // and throws on a contract violation rather than over-committing.
    state_.allocate(decision.footprint);
#if NFVM_OBS
    if (record_provenance_) {
      const util::Stopwatch patch_watch;
      after_allocate(decision.footprint);
      record.view_patch_us = patch_watch.elapsed_us();
    } else {
      after_allocate(decision.footprint);
    }
#else
    after_allocate(decision.footprint);
#endif
    ++num_admitted_;
    decision.reject_cause = RejectCause::kNone;
    NFVM_COUNTER_INC("online.admitted");
  } else {
    ++num_rejected_;
    if (decision.reject_cause == RejectCause::kNone) {
      decision.reject_cause = RejectCause::kOther;
    }
    NFVM_COUNTER_INC("online.rejected");
    switch (decision.reject_cause) {
      case RejectCause::kBandwidth:
        NFVM_COUNTER_INC("online.reject.bandwidth");
        break;
      case RejectCause::kCompute:
        NFVM_COUNTER_INC("online.reject.compute");
        break;
      case RejectCause::kThreshold:
        NFVM_COUNTER_INC("online.reject.threshold");
        break;
      case RejectCause::kDelay:
        NFVM_COUNTER_INC("online.reject.delay");
        break;
      default:
        NFVM_COUNTER_INC("online.reject.other");
        break;
    }
  }
  NFVM_COUNTER_INC("online.requests");
#if NFVM_OBS
  if (record_provenance_) {
    record.admitted = decision.admitted;
    record.total_us = total_watch.elapsed_us();
    record.spcache_hits = spcache_hits_counter_->value() - spcache_hits_before;
    record.spcache_misses =
        spcache_misses_counter_->value() - spcache_misses_before;
    decision.record = std::make_shared<const RequestRecord>(std::move(record));
  }
#endif
  return decision;
}

void OnlineAlgorithm::release(const nfv::Footprint& footprint) {
  state_.release(footprint);
  after_release(footprint);
}

void OnlineAlgorithm::restore_resources(const nfv::ResourceResiduals& residuals) {
  state_.restore_residuals(residuals);
  after_restore();
}

void OnlineAlgorithm::after_allocate(const nfv::Footprint& /*footprint*/) {}
void OnlineAlgorithm::after_release(const nfv::Footprint& /*footprint*/) {}
void OnlineAlgorithm::after_restore() {}

}  // namespace nfvm::core
