// Shared interface for online NFV-enabled multicast admission algorithms.
//
// Requests arrive one by one; the algorithm decides admit/reject without
// knowledge of future arrivals, and admitted requests permanently consume
// resources (the paper's throughput experiments have no departures; the
// interface still supports release for long-running deployments).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pseudo_tree.h"
#include "nfv/request.h"
#include "nfv/resources.h"
#include "topology/topology.h"

namespace nfvm::core {

struct AdmissionDecision {
  bool admitted = false;
  std::string reject_reason;
  /// Valid iff admitted.
  PseudoMulticastTree tree;
  /// Resources charged for the request; valid iff admitted.
  nfv::Footprint footprint;
};

class OnlineAlgorithm {
 public:
  /// The algorithm owns a ResourceState initialized to the topology's full
  /// capacities. The topology must outlive the algorithm.
  explicit OnlineAlgorithm(const topo::Topology& topo);
  virtual ~OnlineAlgorithm() = default;

  OnlineAlgorithm(const OnlineAlgorithm&) = delete;
  OnlineAlgorithm& operator=(const OnlineAlgorithm&) = delete;

  virtual std::string_view name() const = 0;

  /// Processes one arriving request: decides, and on admission allocates the
  /// footprint. Throws std::invalid_argument for malformed requests.
  AdmissionDecision process(const nfv::Request& request);

  /// Releases a previously admitted request's resources (departures).
  void release(const nfv::Footprint& footprint);

  const topo::Topology& topology() const noexcept { return *topo_; }
  const nfv::ResourceState& resources() const noexcept { return state_; }
  std::size_t num_admitted() const noexcept { return num_admitted_; }
  std::size_t num_rejected() const noexcept { return num_rejected_; }
  std::size_t num_processed() const noexcept { return num_admitted_ + num_rejected_; }

 protected:
  /// Decide without mutating resource state; `process` handles allocation.
  virtual AdmissionDecision try_admit(const nfv::Request& request) = 0;

  const topo::Topology* topo_;
  nfv::ResourceState state_;

 private:
  std::size_t num_admitted_ = 0;
  std::size_t num_rejected_ = 0;
};

}  // namespace nfvm::core
