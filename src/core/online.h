// Shared interface for online NFV-enabled multicast admission algorithms.
//
// Requests arrive one by one; the algorithm decides admit/reject without
// knowledge of future arrivals, and admitted requests permanently consume
// resources (the paper's throughput experiments have no departures; the
// interface still supports release for long-running deployments).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pseudo_tree.h"
#include "core/request_record.h"
#include "nfv/request.h"
#include "nfv/resources.h"
#include "obs/metrics.h"
#include "topology/topology.h"

namespace nfvm::core {

/// Machine-readable rejection classification. `reject_reason` keeps the
/// human-oriented sentence; this enum is what metrics breakdowns
/// (`online.reject.*` counters, SimulationMetrics::rejects_by_cause) key on.
enum class RejectCause : std::uint8_t {
  kNone = 0,   ///< admitted (or cause not recorded)
  kBandwidth,  ///< residual link bandwidth / connectivity at b_k
  kCompute,    ///< residual server computing capacity
  kThreshold,  ///< Online_CP's sigma_v / sigma_e admission thresholds
  kDelay,      ///< end-to-end delay bound
  kOther,      ///< anything else
};
inline constexpr std::size_t kNumRejectCauses = 6;

/// Stable lowercase token ("none", "bandwidth", "compute", "threshold",
/// "delay", "other") - used as the `online.reject.<token>` metric suffix and
/// in event logs.
std::string_view to_string(RejectCause cause);

/// Reject-reason bookkeeping for a candidate-server scan with explicit
/// precedence, replacing the old string-comparison special case in
/// OnlineCp::try_admit. Candidates are examined in order; an update is
/// applied iff its rank is >= the current value's rank, so equal ranks keep
/// the historical last-writer-wins semantics while a low-rank gate (e.g. the
/// sigma_v pre-scan threshold) can never overwrite a more specific
/// evaluated-candidate failure.
class RejectTracker {
 public:
  /// The initial reason before any server reported anything.
  static constexpr int kRankDefault = 0;
  /// A pre-evaluation gate skipped the server (Online_CP's sigma_v check).
  static constexpr int kRankThreshold = 1;
  /// An evaluated candidate failed (disconnection, sigma_e, delay, capacity).
  static constexpr int kRankCandidate = 2;

  RejectTracker(std::string_view reason, RejectCause cause)
      : reason_(reason), cause_(cause) {}

  /// Applies (reason, cause) iff `rank` >= the rank of the current value.
  void update(int rank, std::string_view reason, RejectCause cause) {
    if (rank < rank_) return;
    rank_ = rank;
    reason_ = reason;
    cause_ = cause;
  }

  std::string_view reason() const noexcept { return reason_; }
  RejectCause cause() const noexcept { return cause_; }
  int rank() const noexcept { return rank_; }

 private:
  int rank_ = kRankDefault;
  std::string_view reason_;
  RejectCause cause_;
};

struct AdmissionDecision {
  bool admitted = false;
  std::string reject_reason;
  /// Classification of reject_reason; kNone iff admitted.
  RejectCause reject_cause = RejectCause::kNone;
  /// Valid iff admitted.
  PseudoMulticastTree tree;
  /// Resources charged for the request; valid iff admitted.
  nfv::Footprint footprint;
  /// Decision provenance (core/request_record.h). Null unless the algorithm
  /// has set_record_provenance(true) and the build has NFVM_OBS=1; shared so
  /// copying decisions stays cheap.
  std::shared_ptr<const RequestRecord> record;
};

class OnlineAlgorithm {
 public:
  /// The algorithm owns a ResourceState initialized to the topology's full
  /// capacities. The topology must outlive the algorithm.
  explicit OnlineAlgorithm(const topo::Topology& topo);
  virtual ~OnlineAlgorithm() = default;

  OnlineAlgorithm(const OnlineAlgorithm&) = delete;
  OnlineAlgorithm& operator=(const OnlineAlgorithm&) = delete;

  virtual std::string_view name() const = 0;

  /// Processes one arriving request: decides, and on admission allocates the
  /// footprint. Throws std::invalid_argument for malformed requests.
  AdmissionDecision process(const nfv::Request& request);

  /// Releases a previously admitted request's resources (departures).
  void release(const nfv::Footprint& footprint);

  /// Snapshot-restore support (serve/snapshot.h): installs the residual
  /// vectors recorded in a snapshot bit-for-bit and rebuilds
  /// residual-derived state (after_restore hook; e.g. OnlineCp's weighted
  /// view, whose weights are a pure function of the residuals). Replaying
  /// the active footprints instead would reassociate the floating-point
  /// accumulation and drift from the uninterrupted run by an ulp - carrying
  /// the residual doubles themselves is what makes the subsequent decision
  /// stream byte-identical. Throws std::runtime_error on a shape or range
  /// mismatch (snapshot from a different network).
  void restore_resources(const nfv::ResourceResiduals& residuals);

  /// Restores the lifetime admitted/rejected counters recorded in a
  /// snapshot (restore_admitted deliberately does not count).
  void restore_counts(std::size_t admitted, std::size_t rejected) noexcept {
    num_admitted_ = admitted;
    num_rejected_ = rejected;
  }

  /// When enabled, every process() call attaches a RequestRecord (phase
  /// timings, scan provenance, reject context) to the returned decision.
  /// Costs a few clock reads and one small allocation per request; under
  /// -DNFVM_OBS=0 the flag is ignored and decisions never carry a record.
  /// Recording never influences the decisions themselves.
  void set_record_provenance(bool on) noexcept { record_provenance_ = on; }
  bool record_provenance() const noexcept {
#if NFVM_OBS
    return record_provenance_;
#else
    return false;
#endif
  }

  const topo::Topology& topology() const noexcept { return *topo_; }
  const nfv::ResourceState& resources() const noexcept { return state_; }
  std::size_t num_admitted() const noexcept { return num_admitted_; }
  std::size_t num_rejected() const noexcept { return num_rejected_; }
  std::size_t num_processed() const noexcept { return num_admitted_ + num_rejected_; }

 protected:
  /// Decide without mutating resource state; `process` handles allocation.
  virtual AdmissionDecision try_admit(const nfv::Request& request) = 0;

  /// Called by process() right after an admitted footprint was allocated,
  /// and by release() right after a footprint was returned. Default: no-op.
  /// Algorithms maintaining incremental state derived from the residuals
  /// (e.g. OnlineCp's weighted working view) patch it here.
  virtual void after_allocate(const nfv::Footprint& footprint);
  virtual void after_release(const nfv::Footprint& footprint);

  /// Called by restore_resources() after the residual vectors were
  /// installed. Algorithms maintaining residual-derived state rebuild it
  /// from scratch here (incremental patching has nothing to patch from -
  /// the residuals just changed wholesale). Default: no-op.
  virtual void after_restore();

  /// The record the current process() call is populating, or null when
  /// recording is off. try_admit implementations fill scan provenance
  /// through this; under -DNFVM_OBS=0 it is a compile-time null so guarded
  /// population code folds away entirely.
#if NFVM_OBS
  RequestRecord* active_record() noexcept { return active_record_; }
#else
  static constexpr RequestRecord* active_record() noexcept { return nullptr; }
#endif

  const topo::Topology* topo_;
  nfv::ResourceState state_;

 private:
  std::size_t num_admitted_ = 0;
  std::size_t num_rejected_ = 0;
  bool record_provenance_ = false;
#if NFVM_OBS
  RequestRecord* active_record_ = nullptr;
  /// Cached graph.spcache.{hits,misses} counters for cache attribution.
  obs::Counter* spcache_hits_counter_ = nullptr;
  obs::Counter* spcache_misses_counter_ = nullptr;
#endif
};

}  // namespace nfvm::core
