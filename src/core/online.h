// Shared interface for online NFV-enabled multicast admission algorithms.
//
// Requests arrive one by one; the algorithm decides admit/reject without
// knowledge of future arrivals, and admitted requests permanently consume
// resources (the paper's throughput experiments have no departures; the
// interface still supports release for long-running deployments).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pseudo_tree.h"
#include "nfv/request.h"
#include "nfv/resources.h"
#include "topology/topology.h"

namespace nfvm::core {

/// Machine-readable rejection classification. `reject_reason` keeps the
/// human-oriented sentence; this enum is what metrics breakdowns
/// (`online.reject.*` counters, SimulationMetrics::rejects_by_cause) key on.
enum class RejectCause : std::uint8_t {
  kNone = 0,   ///< admitted (or cause not recorded)
  kBandwidth,  ///< residual link bandwidth / connectivity at b_k
  kCompute,    ///< residual server computing capacity
  kThreshold,  ///< Online_CP's sigma_v / sigma_e admission thresholds
  kDelay,      ///< end-to-end delay bound
  kOther,      ///< anything else
};
inline constexpr std::size_t kNumRejectCauses = 6;

/// Stable lowercase token ("none", "bandwidth", "compute", "threshold",
/// "delay", "other") - used as the `online.reject.<token>` metric suffix and
/// in event logs.
std::string_view to_string(RejectCause cause);

struct AdmissionDecision {
  bool admitted = false;
  std::string reject_reason;
  /// Classification of reject_reason; kNone iff admitted.
  RejectCause reject_cause = RejectCause::kNone;
  /// Valid iff admitted.
  PseudoMulticastTree tree;
  /// Resources charged for the request; valid iff admitted.
  nfv::Footprint footprint;
};

class OnlineAlgorithm {
 public:
  /// The algorithm owns a ResourceState initialized to the topology's full
  /// capacities. The topology must outlive the algorithm.
  explicit OnlineAlgorithm(const topo::Topology& topo);
  virtual ~OnlineAlgorithm() = default;

  OnlineAlgorithm(const OnlineAlgorithm&) = delete;
  OnlineAlgorithm& operator=(const OnlineAlgorithm&) = delete;

  virtual std::string_view name() const = 0;

  /// Processes one arriving request: decides, and on admission allocates the
  /// footprint. Throws std::invalid_argument for malformed requests.
  AdmissionDecision process(const nfv::Request& request);

  /// Releases a previously admitted request's resources (departures).
  void release(const nfv::Footprint& footprint);

  const topo::Topology& topology() const noexcept { return *topo_; }
  const nfv::ResourceState& resources() const noexcept { return state_; }
  std::size_t num_admitted() const noexcept { return num_admitted_; }
  std::size_t num_rejected() const noexcept { return num_rejected_; }
  std::size_t num_processed() const noexcept { return num_admitted_ + num_rejected_; }

 protected:
  /// Decide without mutating resource state; `process` handles allocation.
  virtual AdmissionDecision try_admit(const nfv::Request& request) = 0;

  const topo::Topology* topo_;
  nfv::ResourceState state_;

 private:
  std::size_t num_admitted_ = 0;
  std::size_t num_rejected_ = 0;
};

}  // namespace nfvm::core
