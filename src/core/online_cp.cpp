#include "core/online_cp.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "core/delay.h"
#include "core/shared_closure.h"
#include "graph/steiner.h"
#include "graph/subgraph.h"
#include "graph/tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace nfvm::core {

OnlineCp::OnlineCp(const topo::Topology& topo, const OnlineCpOptions& options)
    : OnlineAlgorithm(topo),
      model_(options.alpha > 1.0 && options.beta > 1.0
                 ? ExponentialCostModel(options.alpha, options.beta)
                 : ExponentialCostModel::paper_default(topo.num_switches())),
      sigma_v_(options.sigma_v > 0.0
                   ? options.sigma_v
                   : static_cast<double>(topo.num_switches()) - 1.0),
      sigma_e_(options.sigma_e > 0.0
                   ? options.sigma_e
                   : static_cast<double>(topo.num_switches()) - 1.0),
      linear_weights_(options.linear_weights),
      steiner_engine_(options.steiner_engine),
      name_(options.linear_weights ? "Online_CP(linear)" : "Online_CP") {
  // The fast path replaces the per-candidate Steiner call with a
  // shared-closure KMB; other engines keep the rebuild path so ablations
  // still exercise exactly the engine they ask for.
  if (options.incremental_view &&
      steiner_engine_ == graph::SteinerEngine::kKmb) {
    view_.emplace(topo, [this](graph::EdgeId e) { return edge_weight(e); });
  }
}

double OnlineCp::edge_weight(graph::EdgeId e) const {
  if (linear_weights_) return state_.bandwidth_utilization(e);
  return model_.edge_weight(e, state_);
}

double OnlineCp::server_weight(graph::VertexId v) const {
  if (linear_weights_) return state_.compute_utilization(v);
  return model_.server_weight(v, state_);
}

void OnlineCp::after_allocate(const nfv::Footprint& footprint) {
  if (view_.has_value()) view_->apply_allocate(footprint);
}

void OnlineCp::after_release(const nfv::Footprint& footprint) {
  if (view_.has_value()) view_->apply_release(footprint);
}

void OnlineCp::after_restore() {
  // Every weight is a pure function of its residual, so a full rebuild from
  // the restored residuals reproduces the uninterrupted run's view exactly;
  // the dropped tree cache and era counter never influence decisions.
  if (view_.has_value()) view_->rebuild();
}

AdmissionDecision OnlineCp::try_admit(const nfv::Request& request) {
  NFVM_SPAN("online_cp/try_admit");
  if (view_.has_value()) return try_admit_fast(request);
  return try_admit_rebuild(request);
}

namespace {

/// What a candidate-server evaluation produces, written into its own slot by
/// the parallel scan; the sequential replay loop consumes the slots in true
/// server order, so reasons and the admitted candidate are identical to the
/// sequential rebuild path. Only the Steiner evaluation and the candidate's
/// cost live here — route assembly, the delay check and the footprint are
/// deferred to the replay loop, which (like the rebuild scan) only pays them
/// for candidates surviving the cost prune.
struct CpCandidateSlot {
  bool connected = false;
  bool over_sigma_e = false;
  double cost = 0.0;
  double steiner_weight = 0.0;  // st.weight share of cost, for provenance
  std::vector<graph::EdgeId> edges;  // physical ids
};

}  // namespace

AdmissionDecision OnlineCp::try_admit_fast(const nfv::Request& request) {
  AdmissionDecision decision;
  const double b = request.bandwidth_mbps;
  const double demand = request.compute_demand_mhz();

  RejectTracker reject("no server has sufficient residual computing",
                       RejectCause::kCompute);
  NFVM_OBS_ONLY(RequestRecord* const rec = active_record();
                util::Stopwatch phase_watch;)

  // Phase A: classify the servers. Compute-skips stay silent and the sigma_v
  // gate records its (low-rank) reason; survivors form the evaluation list.
  std::vector<graph::VertexId> eval;
  std::vector<double> eval_wv;
  for (graph::VertexId v : topo_->servers) {
    if (state_.residual_compute(v) < demand) {
      NFVM_OBS_ONLY(if (rec) ++rec->skipped_compute;)
      continue;
    }
    const double wv = server_weight(v);
    if (wv >= sigma_v_) {
      reject.update(RejectTracker::kRankThreshold,
                    "all candidate servers exceed the computing threshold",
                    RejectCause::kThreshold);
      NFVM_OBS_ONLY(if (rec) ++rec->skipped_sigma_v;)
      continue;
    }
    eval.push_back(v);
    eval_wv.push_back(wv);
  }
  NFVM_COUNTER_ADD("core.online_cp.candidates_evaluated", eval.size());
  NFVM_OBS_ONLY(if (rec) {
    rec->fast_path = true;
    rec->servers_eligible = eval.size();
    rec->classify_us = phase_watch.elapsed_us();
  })

  if (eval.empty()) {
    decision.reject_reason = std::string(reject.reason());
    decision.reject_cause = reject.cause();
    return decision;
  }
  NFVM_COUNTER_INC("core.online.closure_scans");

  // Phase B: one shortest-path tree per distinct terminal for the WHOLE
  // scan — O(|servers| + |D_k| + 1) Dijkstras instead of
  // O(|servers| * (|D_k| + 2)) — primed in parallel through the view's
  // tree cache.
  std::vector<graph::VertexId> sources;
  sources.reserve(1 + request.destinations.size() + eval.size());
  sources.push_back(request.source);
  sources.insert(sources.end(), request.destinations.begin(),
                 request.destinations.end());
  sources.insert(sources.end(), eval.begin(), eval.end());
  NFVM_OBS_ONLY(phase_watch.reset();)
  const auto trees = view_->trees_for(state_, sources, b);
  TerminalTables tables(topo_->graph.num_vertices());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    tables.set(sources[i], trees[i]);
  }
  NFVM_OBS_ONLY(if (rec) rec->closure_us = phase_watch.elapsed_us();)
  const std::function<const graph::ShortestPaths&(graph::VertexId)> table_for =
      [&tables](graph::VertexId v) -> const graph::ShortestPaths& {
    return tables.from(v);
  };

  // Phase C: evaluate every surviving candidate's Steiner tree and cost in
  // parallel. Each evaluation is pure (reads the view + tables, writes its
  // slot); the cost prune of the sequential scan is deliberately NOT applied
  // here — it only suppresses work, never changes the admitted candidate,
  // and the replay loop below re-applies it for reason parity.
  std::vector<CpCandidateSlot> slots(eval.size());
  {
    NFVM_SPAN("online_cp/server_scan");
    NFVM_OBS_ONLY(phase_watch.reset();)
    util::ThreadPool::global().parallel_for(eval.size(), [&](std::size_t i) {
      const graph::VertexId v = eval[i];
      CpCandidateSlot& slot = slots[i];

      // Steiner tree over {s_k, v} ∪ D_k (Algorithm 2, step 8), straight
      // from the shared tables — edge ids are physical.
      std::vector<graph::VertexId> terminals;
      terminals.reserve(request.destinations.size() + 2);
      terminals.push_back(request.source);
      terminals.push_back(v);
      terminals.insert(terminals.end(), request.destinations.begin(),
                       request.destinations.end());
      graph::SteinerResult st =
          graph::kmb_steiner_from_tables(view_->graph(), terminals, table_for);
      if (!st.connected) return;
      slot.connected = true;
      if (st.weight >= sigma_e_) {
        slot.over_sigma_e = true;
        return;
      }

      // Backhaul from v to the LCA of {v} ∪ D_k (Algorithm 2, steps 10-12)
      // prices the candidate; route assembly waits for the replay loop.
      const graph::RootedTree rooted(view_->graph(), st.edges, request.source);
      std::vector<graph::VertexId> lca_args;
      lca_args.push_back(v);
      lca_args.insert(lca_args.end(), request.destinations.begin(),
                      request.destinations.end());
      const graph::VertexId meet = rooted.lca(lca_args);
      const double w_back = rooted.path_weight(v, meet);
      slot.cost = st.weight + eval_wv[i] + w_back;
      slot.steiner_weight = st.weight;
      slot.edges = std::move(st.edges);
    });
    NFVM_OBS_ONLY(if (rec) {
      rec->servers_evaluated = eval.size();
      rec->eval_us = phase_watch.elapsed_us();
    })
  }

  // Phase D: sequential replay in true server order — identical branch
  // structure to the rebuild scan, so the winner, the reject reason and the
  // cause match it bit for bit at any thread count. Candidates surviving the
  // cost prune (a strictly decreasing cost chain, typically a handful) get
  // their routes, delay check and footprint here, exactly like the rebuild
  // scan's post-prune body.
  struct Candidate {
    double cost = 0.0;
    PseudoMulticastTree tree;
    nfv::Footprint footprint;
  };
  std::optional<Candidate> best;
  NFVM_OBS_ONLY(phase_watch.reset();)
  for (std::size_t i = 0; i < eval.size(); ++i) {
    CpCandidateSlot& slot = slots[i];
    const graph::VertexId v = eval[i];
    if (!slot.connected) {
      reject.update(RejectTracker::kRankCandidate,
                    "source, server and destinations are disconnected at b_k",
                    RejectCause::kBandwidth);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_disconnected;)
      continue;
    }
    if (slot.over_sigma_e) {
      reject.update(RejectTracker::kRankCandidate,
                    "every candidate tree exceeds the bandwidth threshold",
                    RejectCause::kThreshold);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_sigma_e;)
      continue;
    }
    if (best.has_value() && slot.cost >= best->cost) {
      NFVM_OBS_ONLY(if (rec) ++rec->cost_pruned;)
      continue;
    }

    const graph::RootedTree rooted(view_->graph(), slot.edges, request.source);
    std::vector<graph::VertexId> lca_args;
    lca_args.push_back(v);
    lca_args.insert(lca_args.end(), request.destinations.begin(),
                    request.destinations.end());
    const graph::VertexId meet = rooted.lca(lca_args);

    Candidate cand;
    cand.cost = slot.cost;
    cand.tree.source = request.source;
    cand.tree.servers = {v};
    cand.tree.cost = slot.cost;
    std::vector<graph::EdgeId> traversals = std::move(slot.edges);
    const std::vector<graph::EdgeId> backhaul = rooted.path_edges(v, meet);
    traversals.insert(traversals.end(), backhaul.begin(), backhaul.end());
    cand.tree.edge_uses = accumulate_edge_uses(std::move(traversals));

    const std::vector<graph::VertexId> to_server =
        rooted.path_vertices(request.source, v);
    for (graph::VertexId d : request.destinations) {
      DestinationRoute route;
      route.destination = d;
      route.server = v;
      route.walk = to_server;
      route.server_index = route.walk.size() - 1;
      const std::vector<graph::VertexId> down = rooted.path_vertices(v, d);
      route.walk.insert(route.walk.end(), down.begin() + 1, down.end());
      cand.tree.routes.push_back(std::move(route));
    }

    if (!meets_delay_bound(*topo_, request, cand.tree)) {
      reject.update(RejectTracker::kRankCandidate,
                    "no candidate tree meets the delay bound",
                    RejectCause::kDelay);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_delay;)
      continue;
    }
    cand.footprint = cand.tree.footprint(request, topo_->graph);
    if (!state_.can_allocate(cand.footprint)) {
      // Double-traversed backhaul links can need 2 b_k; charge honestly and
      // skip candidates that no longer fit.
      reject.update(RejectTracker::kRankCandidate,
                    "backhaul multiplicities exceed residual bandwidth",
                    RejectCause::kBandwidth);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_capacity;)
      continue;
    }
    NFVM_OBS_ONLY(if (rec) {
      ++rec->candidates_feasible;
      rec->chosen_server = static_cast<std::int64_t>(v);
      rec->cost_total = slot.cost;
      rec->cost_steiner = slot.steiner_weight;
      rec->cost_server = eval_wv[i];
      rec->cost_backhaul = slot.cost - slot.steiner_weight - eval_wv[i];
    })
    best = std::move(cand);
  }
  NFVM_OBS_ONLY(if (rec) rec->realize_us = phase_watch.elapsed_us();)

  if (!best.has_value()) {
    decision.reject_reason = std::string(reject.reason());
    decision.reject_cause = reject.cause();
    return decision;
  }
  decision.admitted = true;
  decision.tree = std::move(best->tree);
  decision.footprint = std::move(best->footprint);
  return decision;
}

AdmissionDecision OnlineCp::try_admit_rebuild(const nfv::Request& request) {
  AdmissionDecision decision;
  const double b = request.bandwidth_mbps;
  const double demand = request.compute_demand_mhz();

  NFVM_OBS_ONLY(RequestRecord* const rec = active_record();
                util::Stopwatch phase_watch;)

  // Step 5 of Algorithm 2: the weighted graph G_k, restricted to links that
  // can still carry b_k.
  graph::Subgraph sub = [&] {
    NFVM_SPAN("online_cp/build_weighted_graph");
    graph::Subgraph filtered =
        graph::filter_edges(topo_->graph, [&](graph::EdgeId e) {
          return nfv::edge_eligible(state_, topo_->graph, e, b);
        });
    for (graph::EdgeId e = 0; e < filtered.graph.num_edges(); ++e) {
      filtered.graph.set_weight(e, edge_weight(filtered.original_edge[e]));
    }
    return filtered;
  }();
  NFVM_OBS_ONLY(if (rec) rec->classify_us = phase_watch.elapsed_us();
                phase_watch.reset();)

  struct Candidate {
    double cost = 0.0;
    graph::VertexId server = graph::kInvalidVertex;
    PseudoMulticastTree tree;
    nfv::Footprint footprint;
  };
  std::optional<Candidate> best;
  RejectTracker reject("no server has sufficient residual computing",
                       RejectCause::kCompute);
  NFVM_OBS_ONLY(std::uint64_t candidates_evaluated = 0;)

  NFVM_SPAN("online_cp/server_scan");
  for (graph::VertexId v : topo_->servers) {
    if (state_.residual_compute(v) < demand) {
      NFVM_OBS_ONLY(if (rec) ++rec->skipped_compute;)
      continue;
    }
    const double wv = server_weight(v);
    if (wv >= sigma_v_) {
      reject.update(RejectTracker::kRankThreshold,
                    "all candidate servers exceed the computing threshold",
                    RejectCause::kThreshold);
      NFVM_OBS_ONLY(if (rec) ++rec->skipped_sigma_v;)
      continue;
    }
    NFVM_OBS_ONLY(++candidates_evaluated;)

    // Steiner tree over {s_k, v} ∪ D_k (Algorithm 2, step 8).
    std::vector<graph::VertexId> terminals;
    terminals.reserve(request.destinations.size() + 2);
    terminals.push_back(request.source);
    terminals.push_back(v);
    terminals.insert(terminals.end(), request.destinations.begin(),
                     request.destinations.end());
    const graph::SteinerResult st =
        graph::steiner_tree(sub.graph, terminals, steiner_engine_);
    if (!st.connected) {
      reject.update(RejectTracker::kRankCandidate,
                    "source, server and destinations are disconnected at b_k",
                    RejectCause::kBandwidth);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_disconnected;)
      continue;
    }
    if (st.weight >= sigma_e_) {
      reject.update(RejectTracker::kRankCandidate,
                    "every candidate tree exceeds the bandwidth threshold",
                    RejectCause::kThreshold);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_sigma_e;)
      continue;
    }

    // Pseudo-multicast tree: root at s_k, backhaul from v to the LCA of
    // {v} ∪ D_k (Algorithm 2, steps 10-12).
    const graph::RootedTree rooted(sub.graph, st.edges, request.source);
    std::vector<graph::VertexId> lca_args;
    lca_args.push_back(v);
    lca_args.insert(lca_args.end(), request.destinations.begin(),
                    request.destinations.end());
    const graph::VertexId meet = rooted.lca(lca_args);
    const double w_back = rooted.path_weight(v, meet);
    const double cost = st.weight + wv + w_back;
    if (best.has_value() && cost >= best->cost) {
      NFVM_OBS_ONLY(if (rec) ++rec->cost_pruned;)
      continue;
    }

    Candidate cand;
    cand.cost = cost;
    cand.server = v;
    cand.tree.source = request.source;
    cand.tree.servers = {v};
    cand.tree.cost = cost;

    std::vector<graph::EdgeId> traversals;  // physical ids
    traversals.reserve(st.edges.size());
    for (graph::EdgeId e : st.edges) traversals.push_back(sub.original_edge[e]);
    for (graph::EdgeId e : rooted.path_edges(v, meet)) {
      traversals.push_back(sub.original_edge[e]);
    }
    cand.tree.edge_uses = accumulate_edge_uses(std::move(traversals));

    const std::vector<graph::VertexId> to_server =
        rooted.path_vertices(request.source, v);
    for (graph::VertexId d : request.destinations) {
      DestinationRoute route;
      route.destination = d;
      route.server = v;
      route.walk = to_server;
      route.server_index = route.walk.size() - 1;
      const std::vector<graph::VertexId> down = rooted.path_vertices(v, d);
      route.walk.insert(route.walk.end(), down.begin() + 1, down.end());
      cand.tree.routes.push_back(std::move(route));
    }

    if (!meets_delay_bound(*topo_, request, cand.tree)) {
      reject.update(RejectTracker::kRankCandidate,
                    "no candidate tree meets the delay bound",
                    RejectCause::kDelay);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_delay;)
      continue;
    }
    cand.footprint = cand.tree.footprint(request, topo_->graph);
    if (!state_.can_allocate(cand.footprint)) {
      // Double-traversed backhaul links can need 2 b_k; charge honestly and
      // skip candidates that no longer fit.
      reject.update(RejectTracker::kRankCandidate,
                    "backhaul multiplicities exceed residual bandwidth",
                    RejectCause::kBandwidth);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_capacity;)
      continue;
    }
    NFVM_OBS_ONLY(if (rec) {
      ++rec->candidates_feasible;
      rec->chosen_server = static_cast<std::int64_t>(v);
      rec->cost_total = cost;
      rec->cost_steiner = st.weight;
      rec->cost_server = wv;
      rec->cost_backhaul = w_back;
    })
    best = std::move(cand);
  }
  NFVM_COUNTER_ADD("core.online_cp.candidates_evaluated", candidates_evaluated);
  NFVM_OBS_ONLY(if (rec) {
    rec->servers_eligible = candidates_evaluated;
    rec->servers_evaluated = candidates_evaluated;
    rec->eval_us = phase_watch.elapsed_us();
  })

  if (!best.has_value()) {
    decision.reject_reason = std::string(reject.reason());
    decision.reject_cause = reject.cause();
    return decision;
  }
  decision.admitted = true;
  decision.tree = std::move(best->tree);
  decision.footprint = std::move(best->footprint);
  return decision;
}

}  // namespace nfvm::core
