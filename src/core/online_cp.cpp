#include "core/online_cp.h"

#include <algorithm>
#include <map>
#include <optional>

#include "core/delay.h"
#include "graph/steiner.h"
#include "graph/subgraph.h"
#include "graph/tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nfvm::core {

OnlineCp::OnlineCp(const topo::Topology& topo, const OnlineCpOptions& options)
    : OnlineAlgorithm(topo),
      model_(options.alpha > 1.0 && options.beta > 1.0
                 ? ExponentialCostModel(options.alpha, options.beta)
                 : ExponentialCostModel::paper_default(topo.num_switches())),
      sigma_v_(options.sigma_v > 0.0
                   ? options.sigma_v
                   : static_cast<double>(topo.num_switches()) - 1.0),
      sigma_e_(options.sigma_e > 0.0
                   ? options.sigma_e
                   : static_cast<double>(topo.num_switches()) - 1.0),
      linear_weights_(options.linear_weights),
      steiner_engine_(options.steiner_engine),
      name_(options.linear_weights ? "Online_CP(linear)" : "Online_CP") {}

double OnlineCp::edge_weight(graph::EdgeId e) const {
  if (linear_weights_) return state_.bandwidth_utilization(e);
  return model_.edge_weight(e, state_);
}

double OnlineCp::server_weight(graph::VertexId v) const {
  if (linear_weights_) return state_.compute_utilization(v);
  return model_.server_weight(v, state_);
}

AdmissionDecision OnlineCp::try_admit(const nfv::Request& request) {
  NFVM_SPAN("online_cp/try_admit");
  AdmissionDecision decision;
  const double b = request.bandwidth_mbps;
  const double demand = request.compute_demand_mhz();

  // Step 5 of Algorithm 2: the weighted graph G_k, restricted to links that
  // can still carry b_k.
  graph::Subgraph sub = [&] {
    NFVM_SPAN("online_cp/build_weighted_graph");
    graph::Subgraph filtered =
        graph::filter_edges(topo_->graph, [&](graph::EdgeId e) {
          if (state_.residual_bandwidth(e) < b) return false;
          const graph::Edge& ed = topo_->graph.edge(e);
          return state_.residual_table_entries(ed.u) >= 1.0 &&
                 state_.residual_table_entries(ed.v) >= 1.0;
        });
    for (graph::EdgeId e = 0; e < filtered.graph.num_edges(); ++e) {
      filtered.graph.set_weight(e, edge_weight(filtered.original_edge[e]));
    }
    return filtered;
  }();

  struct Candidate {
    double cost = 0.0;
    graph::VertexId server = graph::kInvalidVertex;
    PseudoMulticastTree tree;
    nfv::Footprint footprint;
  };
  std::optional<Candidate> best;
  std::string_view reason = "no server has sufficient residual computing";
  RejectCause cause = RejectCause::kCompute;
  NFVM_OBS_ONLY(std::uint64_t candidates_evaluated = 0;)

  NFVM_SPAN("online_cp/server_scan");
  for (graph::VertexId v : topo_->servers) {
    if (state_.residual_compute(v) < demand) continue;
    const double wv = server_weight(v);
    if (wv >= sigma_v_) {
      if (reason == "no server has sufficient residual computing") {
        reason = "all candidate servers exceed the computing threshold";
        cause = RejectCause::kThreshold;
      }
      continue;
    }
    NFVM_OBS_ONLY(++candidates_evaluated;)

    // Steiner tree over {s_k, v} ∪ D_k (Algorithm 2, step 8).
    std::vector<graph::VertexId> terminals;
    terminals.reserve(request.destinations.size() + 2);
    terminals.push_back(request.source);
    terminals.push_back(v);
    terminals.insert(terminals.end(), request.destinations.begin(),
                     request.destinations.end());
    const graph::SteinerResult st =
        graph::steiner_tree(sub.graph, terminals, steiner_engine_);
    if (!st.connected) {
      reason = "source, server and destinations are disconnected at b_k";
      cause = RejectCause::kBandwidth;
      continue;
    }
    if (st.weight >= sigma_e_) {
      reason = "every candidate tree exceeds the bandwidth threshold";
      cause = RejectCause::kThreshold;
      continue;
    }

    // Pseudo-multicast tree: root at s_k, backhaul from v to the LCA of
    // {v} ∪ D_k (Algorithm 2, steps 10-12).
    const graph::RootedTree rooted(sub.graph, st.edges, request.source);
    std::vector<graph::VertexId> lca_args;
    lca_args.push_back(v);
    lca_args.insert(lca_args.end(), request.destinations.begin(),
                    request.destinations.end());
    const graph::VertexId meet = rooted.lca(lca_args);
    const double w_back = rooted.path_weight(v, meet);
    const double cost = st.weight + wv + w_back;
    if (best.has_value() && cost >= best->cost) continue;

    Candidate cand;
    cand.cost = cost;
    cand.server = v;
    cand.tree.source = request.source;
    cand.tree.servers = {v};
    cand.tree.cost = cost;

    std::map<graph::EdgeId, int> mult;  // physical ids
    for (graph::EdgeId e : st.edges) ++mult[sub.original_edge[e]];
    for (graph::EdgeId e : rooted.path_edges(v, meet)) ++mult[sub.original_edge[e]];
    cand.tree.edge_uses.assign(mult.begin(), mult.end());

    const std::vector<graph::VertexId> to_server =
        rooted.path_vertices(request.source, v);
    for (graph::VertexId d : request.destinations) {
      DestinationRoute route;
      route.destination = d;
      route.server = v;
      route.walk = to_server;
      route.server_index = route.walk.size() - 1;
      const std::vector<graph::VertexId> down = rooted.path_vertices(v, d);
      route.walk.insert(route.walk.end(), down.begin() + 1, down.end());
      cand.tree.routes.push_back(std::move(route));
    }

    if (!meets_delay_bound(*topo_, request, cand.tree)) {
      reason = "no candidate tree meets the delay bound";
      cause = RejectCause::kDelay;
      continue;
    }
    cand.footprint = cand.tree.footprint(request, topo_->graph);
    if (!state_.can_allocate(cand.footprint)) {
      // Double-traversed backhaul links can need 2 b_k; charge honestly and
      // skip candidates that no longer fit.
      reason = "backhaul multiplicities exceed residual bandwidth";
      cause = RejectCause::kBandwidth;
      continue;
    }
    best = std::move(cand);
  }
  NFVM_COUNTER_ADD("core.online_cp.candidates_evaluated", candidates_evaluated);

  if (!best.has_value()) {
    decision.reject_reason = std::string(reason);
    decision.reject_cause = cause;
    return decision;
  }
  decision.admitted = true;
  decision.tree = std::move(best->tree);
  decision.footprint = std::move(best->footprint);
  return decision;
}

}  // namespace nfvm::core
