// Online_CP (paper Algorithm 2): online NFV-enabled multicast admission with
// the exponential cost model and threshold-based admission control, K = 1.
//
// For each arriving request r_k:
//   1. Weight every link with w_e(k) = beta^{u_e} - 1 and every server with
//      w_v(k) = alpha^{u_v} - 1 (u = utilization before r_k).
//   2. For every server v with enough residual computing and w_v(k) < sigma_v,
//      find a KMB Steiner tree T over {s_k, v} ∪ D_k in the subgraph of links
//      with residual bandwidth >= b_k; skip when sum_{e in T} w_e(k) >= sigma_e.
//   3. Derive the pseudo-multicast tree: root T at s_k, compute
//      u = LCA(v, d_1, ..., d_|D_k|); processed traffic is backhauled from v
//      to u, so edges on the tree path v -> u are traversed twice.
//      cost(k) = w(T) + w_v(k) + w(p_{v,u}).
//   4. Admit with the cheapest feasible candidate, else reject.
// Competitive ratio O(log |V|) with alpha = beta = 2|V| and
// sigma_v = sigma_e = |V| - 1 (Theorem 2).
#pragma once

#include <optional>

#include "core/cost_model.h"
#include "core/online.h"
#include "core/online_view.h"
#include "graph/steiner.h"

namespace nfvm::core {

struct OnlineCpOptions {
  /// alpha and beta; <= 1 means "use the paper default 2|V|".
  double alpha = 0.0;
  double beta = 0.0;
  /// Admission thresholds; <= 0 means "use the paper default |V| - 1".
  double sigma_v = 0.0;
  double sigma_e = 0.0;
  /// Ablation switch: replace the exponential weights with linear ones
  /// (w proportional to utilization), keeping everything else identical.
  /// Used by bench_ablation_cost_model to isolate the cost model's effect.
  bool linear_weights = false;
  /// Steiner approximation used per candidate server (paper: KMB).
  graph::SteinerEngine steiner_engine = graph::SteinerEngine::kKmb;
  /// Admission fast path: keep a persistent incremental weighted view of the
  /// network (patched after each admission instead of rebuilt per request)
  /// and evaluate the server scan from one shared shortest-path tree per
  /// terminal. Bit-identical decisions to the rebuild path at any thread
  /// count; only effective with the KMB Steiner engine (other engines fall
  /// back to the rebuild path). See docs/performance.md, "The online fast
  /// path".
  bool incremental_view = true;
};

class OnlineCp final : public OnlineAlgorithm {
 public:
  explicit OnlineCp(const topo::Topology& topo, const OnlineCpOptions& options = {});

  std::string_view name() const override { return name_; }
  double alpha() const noexcept { return model_.alpha(); }
  double beta() const noexcept { return model_.beta(); }
  double sigma_v() const noexcept { return sigma_v_; }
  double sigma_e() const noexcept { return sigma_e_; }

 protected:
  AdmissionDecision try_admit(const nfv::Request& request) override;
  void after_allocate(const nfv::Footprint& footprint) override;
  void after_release(const nfv::Footprint& footprint) override;
  void after_restore() override;

 private:
  /// Legacy path: rebuild the filtered weighted subgraph per request and run
  /// one KMB (|D_k| + 2 Dijkstras) per candidate server.
  AdmissionDecision try_admit_rebuild(const nfv::Request& request);
  /// Fast path: patch-maintained weighted view + shared-closure server scan
  /// (one shortest-path tree per terminal for the whole scan).
  AdmissionDecision try_admit_fast(const nfv::Request& request);
  double edge_weight(graph::EdgeId e) const;
  double server_weight(graph::VertexId v) const;

  ExponentialCostModel model_;
  double sigma_v_;
  double sigma_e_;
  bool linear_weights_;
  graph::SteinerEngine steiner_engine_;
  std::string name_;
  /// Engaged iff the fast path is active (options.incremental_view with the
  /// KMB engine).
  std::optional<OnlineWeightedView> view_;
};

}  // namespace nfvm::core
