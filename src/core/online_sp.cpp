#include "core/online_sp.h"

#include <optional>

#include "core/delay.h"
#include "graph/dijkstra.h"
#include "graph/subgraph.h"

namespace nfvm::core {

OnlineSp::OnlineSp(const topo::Topology& topo) : OnlineAlgorithm(topo) {}

AdmissionDecision OnlineSp::try_admit(const nfv::Request& request) {
  AdmissionDecision decision;
  const double b = request.bandwidth_mbps;
  const double demand = request.compute_demand_mhz();

  // Remove links and servers without enough available resources; all
  // remaining links weigh 1.
  const graph::Subgraph sub = graph::filter_edges(topo_->graph, [&](graph::EdgeId e) {
    if (state_.residual_bandwidth(e) < b) return false;
    const graph::Edge& ed = topo_->graph.edge(e);
    return state_.residual_table_entries(ed.u) >= 1.0 &&
           state_.residual_table_entries(ed.v) >= 1.0;
  });

  const graph::ShortestPaths from_source = graph::dijkstra(sub.graph, request.source);

  struct Candidate {
    double cost = 0.0;
    PseudoMulticastTree tree;
    nfv::Footprint footprint;
  };
  std::optional<Candidate> best;
  std::string_view reason = "no server has sufficient residual computing";
  RejectCause cause = RejectCause::kCompute;

  for (graph::VertexId v : topo_->servers) {
    if (state_.residual_compute(v) < demand) continue;
    if (!from_source.reachable(v)) {
      reason = "server unreachable at the demanded bandwidth";
      cause = RejectCause::kBandwidth;
      continue;
    }
    const graph::ShortestPaths from_server = graph::dijkstra(sub.graph, v);
    bool all_reachable = true;
    for (graph::VertexId d : request.destinations) {
      if (!from_server.reachable(d)) {
        all_reachable = false;
        break;
      }
    }
    if (!all_reachable) {
      reason = "a destination is unreachable at the demanded bandwidth";
      cause = RejectCause::kBandwidth;
      continue;
    }

    PseudoMulticastTree tree = make_one_server_spt_tree(
        request, v, from_source, from_server, &sub.original_edge, /*cost=*/0.0);
    // Cost = number of link traversals (unit weights on links).
    tree.cost = static_cast<double>(tree.total_link_traversals());
    if (best.has_value() && tree.cost >= best->cost) continue;
    if (!meets_delay_bound(*topo_, request, tree)) {
      reason = "no candidate tree meets the delay bound";
      cause = RejectCause::kDelay;
      continue;
    }

    nfv::Footprint footprint = tree.footprint(request, topo_->graph);
    if (!state_.can_allocate(footprint)) {
      reason = "path overlaps exceed residual bandwidth";
      cause = RejectCause::kBandwidth;
      continue;
    }
    best = Candidate{tree.cost, std::move(tree), std::move(footprint)};
  }

  if (!best.has_value()) {
    decision.reject_reason = std::string(reason);
    decision.reject_cause = cause;
    return decision;
  }
  decision.admitted = true;
  decision.tree = std::move(best->tree);
  decision.footprint = std::move(best->footprint);
  return decision;
}

}  // namespace nfvm::core
