#include "core/online_sp.h"

#include <vector>

#include "core/delay.h"
#include "graph/dijkstra.h"
#include "graph/subgraph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace nfvm::core {

OnlineSp::OnlineSp(const topo::Topology& topo) : OnlineSp(topo, OnlineSpOptions{}) {}

OnlineSp::OnlineSp(const topo::Topology& topo, const OnlineSpOptions& options)
    : OnlineAlgorithm(topo) {
  if (options.incremental_view) {
    // The scan's Dijkstras run on the physical link weights (the per-request
    // pruning only removes edges, it never reweights), so the view's weight
    // function is residual-independent: admissions keep every cached tree.
    view_.emplace(topo, [this](graph::EdgeId e) { return topo_->graph.weight(e); });
  }
}

void OnlineSp::after_allocate(const nfv::Footprint& footprint) {
  if (view_.has_value()) view_->apply_allocate(footprint);
}

void OnlineSp::after_release(const nfv::Footprint& footprint) {
  if (view_.has_value()) view_->apply_release(footprint);
}

AdmissionDecision OnlineSp::try_admit(const nfv::Request& request) {
  if (view_.has_value()) return try_admit_fast(request);
  return try_admit_rebuild(request);
}

namespace {

/// Per-candidate evaluation written by the parallel scan, replayed
/// sequentially in true server order for reason/winner parity with the
/// rebuild path. The delay check and footprint are deferred to the replay
/// loop, which (like the rebuild scan) only pays them for candidates
/// surviving the cost prune.
struct SpCandidateSlot {
  bool server_reachable = false;
  bool dests_reachable = false;
  double cost = 0.0;
  PseudoMulticastTree tree;
};

}  // namespace

AdmissionDecision OnlineSp::try_admit_fast(const nfv::Request& request) {
  AdmissionDecision decision;
  const double b = request.bandwidth_mbps;
  const double demand = request.compute_demand_mhz();

  RejectTracker reject("no server has sufficient residual computing",
                       RejectCause::kCompute);
  NFVM_OBS_ONLY(RequestRecord* const rec = active_record();
                util::Stopwatch phase_watch;)

  // Phase A: the compute gate (the only resource pruning done per server
  // before path evaluation).
  std::vector<graph::VertexId> eval;
  for (graph::VertexId v : topo_->servers) {
    if (state_.residual_compute(v) < demand) {
      NFVM_OBS_ONLY(if (rec) ++rec->skipped_compute;)
      continue;
    }
    eval.push_back(v);
  }
  NFVM_OBS_ONLY(if (rec) {
    rec->fast_path = true;
    rec->servers_eligible = eval.size();
    rec->classify_us = phase_watch.elapsed_us();
  })
  if (eval.empty()) {
    decision.reject_reason = std::string(reject.reason());
    decision.reject_cause = reject.cause();
    return decision;
  }
  NFVM_COUNTER_INC("core.online.closure_scans");

  // Phase B: one shortest-path tree per terminal (source + candidate
  // servers), served from / primed into the view's cache.
  std::vector<graph::VertexId> sources;
  sources.reserve(1 + eval.size());
  sources.push_back(request.source);
  sources.insert(sources.end(), eval.begin(), eval.end());
  NFVM_OBS_ONLY(phase_watch.reset();)
  const auto trees = view_->trees_for(state_, sources, b);
  const graph::ShortestPaths& from_source = *trees[0];
  NFVM_OBS_ONLY(if (rec) rec->closure_us = phase_watch.elapsed_us();
                phase_watch.reset();)

  // Phase C: evaluate candidates in parallel, each writing only its slot.
  std::vector<SpCandidateSlot> slots(eval.size());
  util::ThreadPool::global().parallel_for(eval.size(), [&](std::size_t i) {
    const graph::VertexId v = eval[i];
    SpCandidateSlot& slot = slots[i];
    slot.server_reachable = from_source.reachable(v);
    if (!slot.server_reachable) return;
    const graph::ShortestPaths& from_server = *trees[1 + i];
    slot.dests_reachable = true;
    for (graph::VertexId d : request.destinations) {
      if (!from_server.reachable(d)) {
        slot.dests_reachable = false;
        break;
      }
    }
    if (!slot.dests_reachable) return;

    // Edge ids are physical already (the view mirrors the topology), so no
    // subgraph remap is needed.
    slot.tree = make_one_server_spt_tree(request, v, from_source, from_server,
                                         /*to_physical=*/nullptr, /*cost=*/0.0);
    // Cost = number of link traversals (unit weights on links).
    slot.tree.cost = static_cast<double>(slot.tree.total_link_traversals());
    slot.cost = slot.tree.cost;
  });
  NFVM_OBS_ONLY(if (rec) {
    rec->servers_evaluated = eval.size();
    rec->eval_us = phase_watch.elapsed_us();
  } phase_watch.reset();)

  // Phase D: sequential replay — the same branch ladder as the rebuild scan
  // (note the cost prune sits BEFORE the delay check, silently). Delay and
  // footprint are only paid by prune survivors, like the rebuild scan.
  struct Candidate {
    double cost = 0.0;
    PseudoMulticastTree tree;
    nfv::Footprint footprint;
  };
  std::optional<Candidate> best;
  for (std::size_t i = 0; i < eval.size(); ++i) {
    SpCandidateSlot& slot = slots[i];
    if (!slot.server_reachable) {
      reject.update(RejectTracker::kRankCandidate,
                    "server unreachable at the demanded bandwidth",
                    RejectCause::kBandwidth);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_disconnected;)
      continue;
    }
    if (!slot.dests_reachable) {
      reject.update(RejectTracker::kRankCandidate,
                    "a destination is unreachable at the demanded bandwidth",
                    RejectCause::kBandwidth);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_disconnected;)
      continue;
    }
    if (best.has_value() && slot.cost >= best->cost) {
      NFVM_OBS_ONLY(if (rec) ++rec->cost_pruned;)
      continue;
    }
    if (!meets_delay_bound(*topo_, request, slot.tree)) {
      reject.update(RejectTracker::kRankCandidate,
                    "no candidate tree meets the delay bound",
                    RejectCause::kDelay);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_delay;)
      continue;
    }
    nfv::Footprint footprint = slot.tree.footprint(request, topo_->graph);
    if (!state_.can_allocate(footprint)) {
      reject.update(RejectTracker::kRankCandidate,
                    "path overlaps exceed residual bandwidth",
                    RejectCause::kBandwidth);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_capacity;)
      continue;
    }
    NFVM_OBS_ONLY(if (rec) {
      ++rec->candidates_feasible;
      rec->chosen_server = static_cast<std::int64_t>(eval[i]);
      rec->cost_total = slot.cost;
    })
    best = Candidate{slot.cost, std::move(slot.tree), std::move(footprint)};
  }
  NFVM_OBS_ONLY(if (rec) rec->realize_us = phase_watch.elapsed_us();)

  if (!best.has_value()) {
    decision.reject_reason = std::string(reject.reason());
    decision.reject_cause = reject.cause();
    return decision;
  }
  decision.admitted = true;
  decision.tree = std::move(best->tree);
  decision.footprint = std::move(best->footprint);
  return decision;
}

AdmissionDecision OnlineSp::try_admit_rebuild(const nfv::Request& request) {
  AdmissionDecision decision;
  const double b = request.bandwidth_mbps;
  const double demand = request.compute_demand_mhz();

  NFVM_OBS_ONLY(RequestRecord* const rec = active_record();
                util::Stopwatch phase_watch;)

  // Remove links and servers without enough available resources; all
  // remaining links weigh 1.
  const graph::Subgraph sub = graph::filter_edges(topo_->graph, [&](graph::EdgeId e) {
    return nfv::edge_eligible(state_, topo_->graph, e, b);
  });

  const graph::ShortestPaths from_source = graph::dijkstra(sub.graph, request.source);
  NFVM_OBS_ONLY(if (rec) rec->classify_us = phase_watch.elapsed_us();
                phase_watch.reset();)

  struct Candidate {
    double cost = 0.0;
    PseudoMulticastTree tree;
    nfv::Footprint footprint;
  };
  std::optional<Candidate> best;
  RejectTracker reject("no server has sufficient residual computing",
                       RejectCause::kCompute);

  for (graph::VertexId v : topo_->servers) {
    if (state_.residual_compute(v) < demand) {
      NFVM_OBS_ONLY(if (rec) ++rec->skipped_compute;)
      continue;
    }
    NFVM_OBS_ONLY(if (rec) ++rec->servers_eligible;)
    if (!from_source.reachable(v)) {
      reject.update(RejectTracker::kRankCandidate,
                    "server unreachable at the demanded bandwidth",
                    RejectCause::kBandwidth);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_disconnected;)
      continue;
    }
    const graph::ShortestPaths from_server = graph::dijkstra(sub.graph, v);
    NFVM_OBS_ONLY(if (rec) ++rec->servers_evaluated;)
    bool all_reachable = true;
    for (graph::VertexId d : request.destinations) {
      if (!from_server.reachable(d)) {
        all_reachable = false;
        break;
      }
    }
    if (!all_reachable) {
      reject.update(RejectTracker::kRankCandidate,
                    "a destination is unreachable at the demanded bandwidth",
                    RejectCause::kBandwidth);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_disconnected;)
      continue;
    }

    PseudoMulticastTree tree = make_one_server_spt_tree(
        request, v, from_source, from_server, &sub.original_edge, /*cost=*/0.0);
    // Cost = number of link traversals (unit weights on links).
    tree.cost = static_cast<double>(tree.total_link_traversals());
    if (best.has_value() && tree.cost >= best->cost) {
      NFVM_OBS_ONLY(if (rec) ++rec->cost_pruned;)
      continue;
    }
    if (!meets_delay_bound(*topo_, request, tree)) {
      reject.update(RejectTracker::kRankCandidate,
                    "no candidate tree meets the delay bound",
                    RejectCause::kDelay);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_delay;)
      continue;
    }

    nfv::Footprint footprint = tree.footprint(request, topo_->graph);
    if (!state_.can_allocate(footprint)) {
      reject.update(RejectTracker::kRankCandidate,
                    "path overlaps exceed residual bandwidth",
                    RejectCause::kBandwidth);
      NFVM_OBS_ONLY(if (rec) ++rec->failed_capacity;)
      continue;
    }
    NFVM_OBS_ONLY(if (rec) {
      ++rec->candidates_feasible;
      rec->chosen_server = static_cast<std::int64_t>(v);
      rec->cost_total = tree.cost;
    })
    best = Candidate{tree.cost, std::move(tree), std::move(footprint)};
  }
  NFVM_OBS_ONLY(if (rec) rec->eval_us = phase_watch.elapsed_us();)

  if (!best.has_value()) {
    decision.reject_reason = std::string(reject.reason());
    decision.reject_cause = reject.cause();
    return decision;
  }
  decision.admitted = true;
  decision.tree = std::move(best->tree);
  decision.footprint = std::move(best->footprint);
  return decision;
}

}  // namespace nfvm::core
