// SP - the baseline online heuristic of the paper's evaluation (Section
// VI-A): prune links/servers without enough residual resources, give every
// remaining link the same unit weight, and for each candidate server take
// the shortest path s_k -> v plus a shortest-path tree rooted at v spanning
// the destinations; the candidate using the fewest link traversals wins.
// No admission thresholds: SP admits whenever some candidate is feasible.
#pragma once

#include "core/online.h"

namespace nfvm::core {

class OnlineSp final : public OnlineAlgorithm {
 public:
  explicit OnlineSp(const topo::Topology& topo);

  std::string_view name() const override { return "SP"; }

 protected:
  AdmissionDecision try_admit(const nfv::Request& request) override;
};

}  // namespace nfvm::core
