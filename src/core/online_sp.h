// SP - the baseline online heuristic of the paper's evaluation (Section
// VI-A): prune links/servers without enough residual resources, give every
// remaining link the same unit weight, and for each candidate server take
// the shortest path s_k -> v plus a shortest-path tree rooted at v spanning
// the destinations; the candidate using the fewest link traversals wins.
// No admission thresholds: SP admits whenever some candidate is feasible.
#pragma once

#include <optional>

#include "core/online.h"
#include "core/online_view.h"

namespace nfvm::core {

struct OnlineSpOptions {
  /// Admission fast path: evaluate the server scan against a persistent
  /// working view with one cached shortest-path tree per terminal instead of
  /// filtering the graph and running per-server Dijkstras from scratch each
  /// request. Bit-identical decisions to the rebuild path at any thread
  /// count. See docs/performance.md, "The online fast path".
  bool incremental_view = true;
};

class OnlineSp final : public OnlineAlgorithm {
 public:
  explicit OnlineSp(const topo::Topology& topo);
  OnlineSp(const topo::Topology& topo, const OnlineSpOptions& options);

  std::string_view name() const override { return "SP"; }

 protected:
  AdmissionDecision try_admit(const nfv::Request& request) override;
  void after_allocate(const nfv::Footprint& footprint) override;
  void after_release(const nfv::Footprint& footprint) override;

 private:
  AdmissionDecision try_admit_rebuild(const nfv::Request& request);
  AdmissionDecision try_admit_fast(const nfv::Request& request);

  /// Engaged iff options.incremental_view. SP's working weights are the
  /// physical link weights (constant), so allocations never dirty cached
  /// trees — only releases drop them.
  std::optional<OnlineWeightedView> view_;
};

}  // namespace nfvm::core
