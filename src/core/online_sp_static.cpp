#include "core/online_sp_static.h"

#include "core/delay.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace nfvm::core {

OnlineSpStatic::OnlineSpStatic(const topo::Topology& topo)
    : OnlineAlgorithm(topo) {}

std::shared_ptr<const graph::ShortestPaths> OnlineSpStatic::paths_from(
    graph::VertexId v) {
  return cache_.paths_from(topo_->graph, v);
}

AdmissionDecision OnlineSpStatic::try_admit(const nfv::Request& request) {
  AdmissionDecision decision;
  const double demand = request.compute_demand_mhz();
  const auto from_source_tree = paths_from(request.source);
  const graph::ShortestPaths& from_source = *from_source_tree;

  struct Candidate {
    double cost = 0.0;
    PseudoMulticastTree tree;
    nfv::Footprint footprint;
  };
  std::optional<Candidate> best;
  std::string_view reason = "no server has sufficient residual computing";
  RejectCause cause = RejectCause::kCompute;
  NFVM_OBS_ONLY(RequestRecord* const rec = active_record();
                util::Stopwatch phase_watch;)

  for (graph::VertexId v : topo_->servers) {
    if (state_.residual_compute(v) < demand) {
      NFVM_OBS_ONLY(if (rec) ++rec->skipped_compute;)
      continue;
    }
    NFVM_OBS_ONLY(if (rec) ++rec->servers_eligible;)
    if (!from_source.reachable(v)) {
      reason = "server disconnected from the source";
      cause = RejectCause::kBandwidth;
      NFVM_OBS_ONLY(if (rec) ++rec->failed_disconnected;)
      continue;
    }
    const auto from_server_tree = paths_from(v);
    const graph::ShortestPaths& from_server = *from_server_tree;
    NFVM_OBS_ONLY(if (rec) ++rec->servers_evaluated;)
    bool all_reachable = true;
    for (graph::VertexId d : request.destinations) {
      if (!from_server.reachable(d)) {
        all_reachable = false;
        break;
      }
    }
    if (!all_reachable) {
      reason = "a destination is disconnected";
      cause = RejectCause::kBandwidth;
      NFVM_OBS_ONLY(if (rec) ++rec->failed_disconnected;)
      continue;
    }

    PseudoMulticastTree tree = make_one_server_spt_tree(
        request, v, from_source, from_server, /*to_physical=*/nullptr,
        /*cost=*/0.0);
    tree.cost = static_cast<double>(tree.total_link_traversals());
    if (best.has_value() && tree.cost >= best->cost) {
      NFVM_OBS_ONLY(if (rec) ++rec->cost_pruned;)
      continue;
    }
    if (!meets_delay_bound(*topo_, request, tree)) {
      reason = "no candidate tree meets the delay bound";
      cause = RejectCause::kDelay;
      NFVM_OBS_ONLY(if (rec) ++rec->failed_delay;)
      continue;
    }

    nfv::Footprint footprint = tree.footprint(request, topo_->graph);
    if (!state_.can_allocate(footprint)) {
      // The fixed route no longer fits; a static policy does not reroute.
      reason = "fixed route exceeds residual bandwidth";
      cause = RejectCause::kBandwidth;
      NFVM_OBS_ONLY(if (rec) ++rec->failed_capacity;)
      continue;
    }
    NFVM_OBS_ONLY(if (rec) {
      ++rec->candidates_feasible;
      rec->chosen_server = static_cast<std::int64_t>(v);
      rec->cost_total = tree.cost;
    })
    best = Candidate{tree.cost, std::move(tree), std::move(footprint)};
  }
  NFVM_OBS_ONLY(if (rec) rec->eval_us = phase_watch.elapsed_us();)

  if (!best.has_value()) {
    decision.reject_reason = std::string(reason);
    decision.reject_cause = cause;
    return decision;
  }
  decision.admitted = true;
  decision.tree = std::move(best->tree);
  decision.footprint = std::move(best->footprint);
  return decision;
}

}  // namespace nfvm::core
