// SP_static - the load-blind reading of the paper's SP baseline.
//
// Routes are fixed once on the empty network: unit-weight shortest paths
// from every switch, never recomputed as load accumulates. A request is
// admitted iff the cheapest fixed (source -> server -> destinations)
// structure still fits the residual resources; there is no rerouting around
// saturated links. The adaptive reading (recompute on the residual graph,
// class OnlineSp) is strictly stronger; the throughput the paper reports for
// "SP" matches this static variant (see EXPERIMENTS.md, Fig. 8/9 notes).
#pragma once

#include <memory>

#include "core/online.h"
#include "graph/dijkstra.h"
#include "graph/sp_engine.h"

namespace nfvm::core {

class OnlineSpStatic final : public OnlineAlgorithm {
 public:
  explicit OnlineSpStatic(const topo::Topology& topo);

  std::string_view name() const override { return "SP_static"; }

 protected:
  AdmissionDecision try_admit(const nfv::Request& request) override;

 private:
  /// Unit-weight shortest paths from `v` on the full topology, computed on
  /// first use and cached for the lifetime of the run (the topology graph
  /// never mutates, so the cache never self-invalidates).
  std::shared_ptr<const graph::ShortestPaths> paths_from(graph::VertexId v);

  graph::SpCache cache_{/*capacity=*/0};  // unbounded: one tree per switch
};

}  // namespace nfvm::core
