// SP_static - the load-blind reading of the paper's SP baseline.
//
// Routes are fixed once on the empty network: unit-weight shortest paths
// from every switch, never recomputed as load accumulates. A request is
// admitted iff the cheapest fixed (source -> server -> destinations)
// structure still fits the residual resources; there is no rerouting around
// saturated links. The adaptive reading (recompute on the residual graph,
// class OnlineSp) is strictly stronger; the throughput the paper reports for
// "SP" matches this static variant (see EXPERIMENTS.md, Fig. 8/9 notes).
#pragma once

#include <optional>
#include <vector>

#include "core/online.h"
#include "graph/dijkstra.h"

namespace nfvm::core {

class OnlineSpStatic final : public OnlineAlgorithm {
 public:
  explicit OnlineSpStatic(const topo::Topology& topo);

  std::string_view name() const override { return "SP_static"; }

 protected:
  AdmissionDecision try_admit(const nfv::Request& request) override;

 private:
  /// Unit-weight shortest paths from `v` on the full topology, computed on
  /// first use and cached for the lifetime of the run.
  const graph::ShortestPaths& paths_from(graph::VertexId v);

  std::vector<std::optional<graph::ShortestPaths>> cache_;
};

}  // namespace nfvm::core
