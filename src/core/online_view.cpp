#include "core/online_view.h"

#include <algorithm>
#include <utility>

#include "graph/dijkstra.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace nfvm::core {

OnlineWeightedView::OnlineWeightedView(const topo::Topology& topo,
                                       EdgeWeightFn edge_weight)
    : topo_(&topo),
      edge_weight_(std::move(edge_weight)),
      view_(topo.graph.num_vertices()) {
  for (graph::EdgeId e = 0; e < topo_->graph.num_edges(); ++e) {
    const graph::Edge& ed = topo_->graph.edge(e);
    view_.add_edge(ed.u, ed.v, edge_weight_(e));
  }
  ++era_;
  NFVM_COUNTER_INC("core.online.view_rebuilds");
}

void OnlineWeightedView::rebuild() {
  NFVM_SPAN("online/view_rebuild");
  for (graph::EdgeId e = 0; e < view_.num_edges(); ++e) {
    const double w = edge_weight_(e);
    if (view_.weight(e) != w) view_.set_weight(e, w);
  }
  cache_.clear();
  built_at_b_.clear();
  ++era_;
  NFVM_COUNTER_INC("core.online.view_rebuilds");
}

void OnlineWeightedView::apply_allocate(const nfv::Footprint& footprint) {
  NFVM_SPAN("online/view_patch");
  std::vector<graph::EdgeId> changed;
  changed.reserve(footprint.bandwidth.size());
  for (const auto& [e, amount] : footprint.bandwidth) {
    const double w = edge_weight_(e);
    if (view_.weight(e) != w) {
      view_.set_weight(e, w);
      changed.push_back(e);
    }
  }
  ++patches_applied_;
  NFVM_COUNTER_INC("core.online.view_patches");
  churn_ewma_ += 0.125 * (static_cast<double>(changed.size()) - churn_ewma_);
  if (!policy_incremental()) {
    // Rebuild mode bypasses the cache entirely, so skip the rebind scan and
    // keep the cache empty — a later flip back to incremental then starts
    // cold instead of serving trees that were never maintained.
    cache_.clear();
    built_at_b_.clear();
    return;
  }
  if (changed.empty()) return;  // no weight moved: cached trees stay exact
  std::sort(changed.begin(), changed.end());
  // Eager weight-invalidation: drop exactly the trees containing a patched
  // edge. Surviving trees are weight-clean, so lookups only re-check
  // eligibility (see the era invariant in the header).
  cache_.rebind_keep(view_, [&](graph::VertexId, const graph::ShortestPaths& tree) {
    for (graph::EdgeId pe : tree.parent_edge) {
      if (pe != graph::kInvalidEdge &&
          std::binary_search(changed.begin(), changed.end(), pe)) {
        return false;
      }
    }
    return true;
  });
}

void OnlineWeightedView::apply_release(const nfv::Footprint& footprint) {
  NFVM_SPAN("online/view_release");
  for (const auto& [e, amount] : footprint.bandwidth) {
    const double w = edge_weight_(e);
    if (view_.weight(e) != w) view_.set_weight(e, w);
  }
  // Residuals grew back: previously ineligible/expensive edges may now lie
  // on shorter paths, which per-edge validation cannot detect. New era.
  cache_.clear();
  built_at_b_.clear();
  ++era_;
  NFVM_COUNTER_INC("core.online.view_rebuilds");
}

bool OnlineWeightedView::policy_incremental() const noexcept {
  if (policy_ == ViewPolicy::kForceIncremental) return true;
  if (policy_ == ViewPolicy::kForceRebuild) return false;
  const std::size_t m = view_.num_edges();
  if (m < kPolicyMinEdges) return false;
  return churn_ewma_ <= kPolicyMaxChurnFraction * static_cast<double>(m);
}

void OnlineWeightedView::build_eligibility_mask(const nfv::ResourceState& state,
                                                double b) {
  const std::size_t m = topo_->graph.num_edges();
  mask_.resize(m);
  for (graph::EdgeId e = 0; e < m; ++e) {
    mask_[e] = nfv::edge_eligible(state, topo_->graph, e, b) ? 1 : 0;
  }
}

bool OnlineWeightedView::tree_valid(const nfv::ResourceState& state,
                                    graph::VertexId source,
                                    const graph::ShortestPaths& tree,
                                    double b) const {
  const auto it = built_at_b_.find(source);
  if (it == built_at_b_.end() || b < it->second) return false;
  for (graph::EdgeId pe : tree.parent_edge) {
    if (pe != graph::kInvalidEdge &&
        !nfv::edge_eligible(state, topo_->graph, pe, b)) {
      return false;
    }
  }
  return true;
}

std::vector<std::shared_ptr<const graph::ShortestPaths>>
OnlineWeightedView::trees_for(const nfv::ResourceState& state,
                              std::span<const graph::VertexId> sources,
                              double b) {
  NFVM_SPAN("online/view_trees");
  std::vector<std::shared_ptr<const graph::ShortestPaths>> trees(sources.size());

  if (!policy_incremental()) {
    // Rebuild mode: no cache probe, no validity walk — one eligibility
    // sweep and one batched masked SSSP for every slot. Bit-identical to
    // the incremental path because a valid cached tree IS a fresh filtered
    // Dijkstra (era invariant).
    NFVM_COUNTER_INC("core.online.view_policy_rebuild");
    build_eligibility_mask(state, b);
    std::vector<graph::ShortestPaths> batch =
        graph::batch_dijkstra(view_, sources, mask_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      trees[i] =
          std::make_shared<const graph::ShortestPaths>(std::move(batch[i]));
    }
    return trees;
  }

  NFVM_COUNTER_INC("core.online.view_policy_incremental");
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    // A repeated source lands in `missing` more than once before the first
    // computation is cached; the slots get identical trees either way.
    auto cached = cache_.try_get(view_, sources[i]);
    if (cached && tree_valid(state, sources[i], *cached, b)) {
      trees[i] = std::move(cached);
    } else {
      missing.push_back(i);
    }
  }
  if (!missing.empty()) {
    build_eligibility_mask(state, b);
    std::vector<graph::VertexId> miss_sources;
    miss_sources.reserve(missing.size());
    for (std::size_t i : missing) miss_sources.push_back(sources[i]);
    std::vector<graph::ShortestPaths> batch =
        graph::batch_dijkstra(view_, miss_sources, mask_);
    for (std::size_t j = 0; j < missing.size(); ++j) {
      trees[missing[j]] =
          std::make_shared<const graph::ShortestPaths>(std::move(batch[j]));
    }
  }
  // Insert in `sources` order so cache state is thread-count independent.
  for (std::size_t i : missing) {
    cache_.put(view_, sources[i], trees[i]);
    built_at_b_[sources[i]] = b;
  }
  return trees;
}

}  // namespace nfvm::core
