// Persistent weighted working view for the online admission fast path.
//
// Online_CP's weighted graph G_k (w_e = beta^{u_e} - 1) is a pure function
// of each link's residual bandwidth, so after an admission only the edges of
// the admitted footprint change weight. Instead of rebuilding the filtered,
// reweighted graph from scratch for every request, this class keeps one
// Graph mirroring the physical topology edge-for-edge (edge id == physical
// edge id) and *patches* the touched weights after each allocation.
//
// Bandwidth/table eligibility is deliberately NOT baked into the view:
// queries run a filtered Dijkstra with the per-request predicate
// nfv::edge_eligible(state, g, e, b_k). That is what makes a shortest-path
// tree computed for one request reusable by later ones.
//
// Cached-tree reuse invariant (the correctness core — see
// docs/performance.md, "The online fast path"): within an *era* (no release
// since the last rebuild), residuals only shrink, so weights only grow and
// the eligible edge set at threshold b' is a subset of the set at b_T <= b'.
// A cached tree from `source` is therefore bit-identical to a freshly
// computed filtered Dijkstra iff
//   (1) it was computed this era,
//   (2) b' >= b_T (the threshold recorded when it was computed), and
//   (3) every tree edge is still eligible at b' and weight-unchanged.
// Condition (3)'s weight half is enforced eagerly: apply_allocate evicts
// exactly the cached trees containing a patched edge (SpCache::rebind_keep),
// so surviving entries are weight-clean by induction and the per-lookup
// validation only walks eligibility. Releases break the era's monotonicity
// (residuals grow back, shorter paths may appear), so apply_release drops
// the whole cache.
//
// Adaptive policy: the cache only pays for itself when the Dijkstra work it
// saves exceeds the bookkeeping it adds — rebind_keep scans every cached
// tree's parent_edge array per admission and tree_valid walks it again per
// lookup, both O(|V|) per tree, while the saved Dijkstra is O(|E| log |V|).
// On small graphs (GEANT: 61 links) the bookkeeping loses; on large Waxman
// configs it wins ~10x. trees_for therefore measures graph size against
// patch churn (EWMA of edges patched per admission) and below the threshold
// runs in REBUILD mode: weights are still patched in place, but every tree
// is computed fresh via one batched masked SSSP and the cache is bypassed
// and kept empty. Both modes produce bit-identical trees (a valid cached
// tree equals a fresh filtered Dijkstra by the era invariant), so the
// policy can never change a decision — only what it costs. Counted by
// core.online.view_policy_{incremental,rebuild}.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/sp_engine.h"
#include "nfv/resources.h"
#include "topology/topology.h"

namespace nfvm::core {

/// Adaptive-policy override. kAdaptive (the default) picks per call from
/// graph size and patch churn; the force modes exist for tests that pin the
/// cache machinery and for benchmarks that measure one mode in isolation.
enum class ViewPolicy { kAdaptive, kForceIncremental, kForceRebuild };

class OnlineWeightedView {
 public:
  /// `edge_weight(e)` must be a pure function of edge e's CURRENT residual
  /// state (it is called for every edge at construction / rebuild and for
  /// the touched edges after allocations and releases). The topology must
  /// outlive the view.
  using EdgeWeightFn = std::function<double(graph::EdgeId)>;
  OnlineWeightedView(const topo::Topology& topo, EdgeWeightFn edge_weight);

  /// The weighted mirror graph. Edge ids coincide with physical edge ids
  /// and adjacency order matches the topology graph, so trees computed here
  /// need no id remapping.
  const graph::Graph& graph() const noexcept { return view_; }

  /// Recomputes every edge weight and drops all cached trees
  /// (`core.online.view_rebuilds`). Constructor-equivalent reset.
  void rebuild();

  /// Patches the weights of the footprint's edges after an admission and
  /// evicts exactly the cached trees containing a changed edge
  /// (`core.online.view_patches`).
  void apply_allocate(const nfv::Footprint& footprint);

  /// Patches the footprint's edge weights after a release and drops the
  /// whole tree cache: a release starts a new era (counted by
  /// `core.online.view_rebuilds`).
  void apply_release(const nfv::Footprint& footprint);

  /// Shortest-path trees from each of `sources` on the view, restricted to
  /// edges eligible at bandwidth threshold `b` (nfv::edge_eligible against
  /// `state`). Cached trees are reused only when the era invariant above
  /// guarantees bit-identity with a fresh filtered Dijkstra; the misses are
  /// computed in parallel on util::ThreadPool::global() and inserted in
  /// `sources` order, so results and cache state are thread-count
  /// independent. Repeated sources yield identical trees in each slot.
  std::vector<std::shared_ptr<const graph::ShortestPaths>> trees_for(
      const nfv::ResourceState& state, std::span<const graph::VertexId> sources,
      double b);

  // --- State export (serve snapshot/restore + tests) ------------------------
  // The view's *decision-relevant* state is entirely derivable from the
  // residuals (weights are a pure function of them); the era counter and
  // tree cache are performance state only. These accessors exist so
  // snapshot round-trip tests can assert exactly that: after a restore the
  // weights must match the uninterrupted run edge-for-edge, while era/cache
  // may legitimately differ without perturbing a single decision.

  /// Eras completed: construction + every rebuild() / apply_release().
  std::uint64_t era() const noexcept { return era_; }
  /// Cached shortest-path trees currently held.
  std::size_t cached_trees() const noexcept { return cache_.size(); }
  /// Patched-weight applications since construction (apply_allocate calls).
  std::uint64_t patches_applied() const noexcept { return patches_applied_; }

  /// True when the adaptive policy currently selects the incremental cache
  /// (performance state only — the decision stream is identical either way).
  bool policy_incremental() const noexcept;

  /// Pins or restores the adaptive policy (performance state only).
  void set_policy(ViewPolicy policy) noexcept { policy_ = policy; }

  /// Calibrated policy floor: below this many edges the cache bookkeeping
  /// costs more than the Dijkstras it saves (GEANT's 61 links fall under,
  /// the smallest Waxman config's ~200 stay over).
  static constexpr std::size_t kPolicyMinEdges = 128;
  /// If a typical admission patches more than this fraction of all edges,
  /// rebind_keep evicts most of the cache every request and caching loses
  /// regardless of size.
  static constexpr double kPolicyMaxChurnFraction = 0.5;

 private:
  bool tree_valid(const nfv::ResourceState& state, graph::VertexId source,
                  const graph::ShortestPaths& tree, double b) const;
  /// Fills mask_ with nfv::edge_eligible(state, e, b) for every edge — the
  /// predicate is a pure function of (state, b), so one O(|E|) sweep
  /// replaces a per-scanned-edge std::function call in every Dijkstra.
  void build_eligibility_mask(const nfv::ResourceState& state, double b);

  const topo::Topology* topo_;
  EdgeWeightFn edge_weight_;
  graph::Graph view_;
  graph::SpCache cache_;
  /// Per-edge eligibility bitmap scratch, rebuilt once per trees_for call.
  std::vector<std::uint8_t> mask_;
  /// EWMA of edges whose weight actually changed per apply_allocate.
  double churn_ewma_ = 0.0;
  ViewPolicy policy_ = ViewPolicy::kAdaptive;
  /// b_T per cached source: the eligibility threshold the tree was computed
  /// at. Stale entries for evicted sources are harmless (overwritten on the
  /// next insert, ignored when try_get misses).
  std::unordered_map<graph::VertexId, double> built_at_b_;
  std::uint64_t era_ = 0;
  std::uint64_t patches_applied_ = 0;
};

}  // namespace nfvm::core
