#include "core/pseudo_tree.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace nfvm::core {
namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

std::size_t PseudoMulticastTree::total_link_traversals() const {
  std::size_t total = 0;
  for (const auto& [edge, mult] : edge_uses) total += static_cast<std::size_t>(mult);
  return total;
}

std::vector<graph::VertexId> PseudoMulticastTree::touched_switches(
    const graph::Graph& g) const {
  std::set<graph::VertexId> touched;
  touched.insert(source);
  for (graph::VertexId s : servers) touched.insert(s);
  for (const auto& [edge, mult] : edge_uses) {
    const graph::Edge& ed = g.edge(edge);
    touched.insert(ed.u);
    touched.insert(ed.v);
  }
  return {touched.begin(), touched.end()};
}

nfv::Footprint PseudoMulticastTree::footprint(const nfv::Request& request,
                                              const graph::Graph& g) const {
  nfv::Footprint fp = footprint(request);
  fp.table_entries = touched_switches(g);
  return fp;
}

nfv::Footprint PseudoMulticastTree::footprint(const nfv::Request& request) const {
  nfv::Footprint fp;
  fp.bandwidth.reserve(edge_uses.size());
  for (const auto& [edge, mult] : edge_uses) {
    fp.bandwidth.emplace_back(edge, request.bandwidth_mbps * mult);
  }
  const double demand = request.compute_demand_mhz();
  fp.compute.reserve(servers.size());
  for (graph::VertexId s : servers) fp.compute.emplace_back(s, demand);
  return fp;
}

std::vector<std::pair<graph::EdgeId, int>> accumulate_edge_uses(
    std::vector<graph::EdgeId> traversals) {
  std::sort(traversals.begin(), traversals.end());
  std::vector<std::pair<graph::EdgeId, int>> uses;
  for (std::size_t i = 0; i < traversals.size();) {
    std::size_t j = i;
    while (j < traversals.size() && traversals[j] == traversals[i]) ++j;
    uses.emplace_back(traversals[i], static_cast<int>(j - i));
    i = j;
  }
  return uses;
}

PseudoMulticastTree make_one_server_spt_tree(
    const nfv::Request& request, graph::VertexId server,
    const graph::ShortestPaths& from_source, const graph::ShortestPaths& from_server,
    const std::vector<graph::EdgeId>* to_physical, double cost) {
  if (!from_source.reachable(server)) {
    throw std::invalid_argument("make_one_server_spt_tree: server unreachable");
  }
  for (graph::VertexId d : request.destinations) {
    if (!from_server.reachable(d)) {
      throw std::invalid_argument("make_one_server_spt_tree: destination unreachable");
    }
  }
  const auto map_edge = [to_physical](graph::EdgeId e) {
    return to_physical == nullptr ? e : to_physical->at(e);
  };

  PseudoMulticastTree tree;
  tree.source = request.source;
  tree.servers = {server};
  tree.cost = cost;

  std::map<graph::EdgeId, int> mult;  // physical ids
  for (graph::EdgeId e : graph::path_edges(from_source, server)) ++mult[map_edge(e)];
  std::set<graph::EdgeId> spt_edges;  // g-local ids, deduped across dests
  for (graph::VertexId d : request.destinations) {
    for (graph::EdgeId e : graph::path_edges(from_server, d)) spt_edges.insert(e);
  }
  for (graph::EdgeId e : spt_edges) ++mult[map_edge(e)];
  tree.edge_uses.assign(mult.begin(), mult.end());

  const std::vector<graph::VertexId> to_server =
      graph::path_vertices(from_source, server);
  for (graph::VertexId d : request.destinations) {
    DestinationRoute route;
    route.destination = d;
    route.server = server;
    route.walk = to_server;
    route.server_index = route.walk.size() - 1;
    const std::vector<graph::VertexId> down = graph::path_vertices(from_server, d);
    route.walk.insert(route.walk.end(), down.begin() + 1, down.end());
    tree.routes.push_back(std::move(route));
  }
  return tree;
}

bool validate_pseudo_tree(const graph::Graph& g, const nfv::Request& request,
                          const PseudoMulticastTree& tree, std::string* error) {
  if (tree.source != request.source) {
    return fail(error, "source mismatch");
  }
  if (!(tree.cost >= 0)) return fail(error, "negative cost");
  if (tree.servers.empty()) return fail(error, "no servers used");

  std::unordered_set<graph::VertexId> server_set(tree.servers.begin(),
                                                 tree.servers.end());
  if (server_set.size() != tree.servers.size()) {
    return fail(error, "duplicate server entries");
  }

  // Edge-use table.
  std::unordered_map<graph::EdgeId, int> uses;
  for (const auto& [edge, mult] : tree.edge_uses) {
    if (!g.has_edge(edge)) return fail(error, "edge_uses references unknown edge");
    if (mult < 1) return fail(error, "edge multiplicity < 1");
    if (!uses.emplace(edge, mult).second) {
      return fail(error, "duplicate edge in edge_uses");
    }
  }

  // One route per destination, in request order or any order but complete.
  std::set<graph::VertexId> wanted(request.destinations.begin(),
                                   request.destinations.end());
  std::set<graph::VertexId> routed;
  for (const DestinationRoute& route : tree.routes) {
    if (wanted.find(route.destination) == wanted.end()) {
      return fail(error, "route for a vertex that is not a destination");
    }
    if (!routed.insert(route.destination).second) {
      return fail(error, "duplicate route for a destination");
    }
    if (route.walk.empty() || route.walk.front() != request.source) {
      return fail(error, "route walk does not start at the source");
    }
    if (route.walk.back() != route.destination) {
      return fail(error, "route walk does not end at the destination");
    }
    if (route.server_index >= route.walk.size()) {
      return fail(error, "server_index out of range");
    }
    if (route.walk[route.server_index] != route.server) {
      return fail(error, "walk[server_index] is not the route's server");
    }
    if (server_set.find(route.server) == server_set.end()) {
      return fail(error, "route server not listed in tree.servers");
    }
    // The destination must not be reached before processing. (It may appear
    // earlier as a relay vertex only strictly before the end; the delivery
    // point is the final element, which is >= server_index by construction.)
    for (std::size_t i = 0; i + 1 < route.walk.size(); ++i) {
      const graph::VertexId a = route.walk[i];
      const graph::VertexId b = route.walk[i + 1];
      bool adjacent = false;
      for (const graph::Adjacency& adj : g.neighbors(a)) {
        if (adj.neighbor == b && uses.find(adj.edge) != uses.end()) {
          adjacent = true;
          break;
        }
      }
      if (!adjacent) {
        return fail(error,
                    "route walk uses a link that is absent from edge_uses or "
                    "not in the graph");
      }
    }
  }
  if (routed != wanted) return fail(error, "some destination has no route");
  return true;
}

}  // namespace nfvm::core
