// Pseudo-multicast trees (paper Section III-B, Fig. 3).
//
// A pseudo-multicast tree is the routing structure realizing one NFV-enabled
// multicast request: a multicast tree plus the extra traversals needed so
// every destination receives traffic *after* it passed a service-chain
// server (e.g. processed packets sent back up a tree path and re-forwarded).
// Physically the same link can therefore carry the request's traffic more
// than once; `edge_uses` records that multiplicity, which is what capacity
// accounting charges.
#pragma once

#include <string>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph.h"
#include "nfv/request.h"
#include "nfv/resources.h"

namespace nfvm::core {

/// The realized path of one destination: the walk source -> destination and
/// where on that walk the service chain processes the traffic.
struct DestinationRoute {
  graph::VertexId destination = graph::kInvalidVertex;
  /// Server whose VM processes this destination's traffic.
  graph::VertexId server = graph::kInvalidVertex;
  /// Walk from the source to the destination (vertices, inclusive). May
  /// revisit vertices: backhaul detours are part of the walk.
  std::vector<graph::VertexId> walk;
  /// Index into `walk` of the processing point; walk[server_index] == server
  /// and every destination appears at or after this index.
  std::size_t server_index = 0;
};

struct PseudoMulticastTree {
  graph::VertexId source = graph::kInvalidVertex;
  /// Distinct servers hosting an instance of the request's chain (<= K).
  std::vector<graph::VertexId> servers;
  /// (edge, multiplicity) with multiplicity >= 1: how many times the
  /// request's traffic traverses the link. Distinct edges only.
  std::vector<std::pair<graph::EdgeId, int>> edge_uses;
  /// Per-destination realized routes.
  std::vector<DestinationRoute> routes;
  /// Implementation cost in the constructing algorithm's units (linear
  /// operational cost for the offline algorithms, normalized exponential
  /// weight for Online_CP, hops for SP).
  double cost = 0.0;

  /// Total number of link traversals (sum of multiplicities).
  std::size_t total_link_traversals() const;

  /// Distinct switches the tree touches (edge endpoints, the source and the
  /// chain servers), sorted ascending. These are the switches that need a
  /// forwarding-table entry for this multicast group.
  std::vector<graph::VertexId> touched_switches(const graph::Graph& g) const;

  /// The resources this tree consumes for `request`: bandwidth_mbps per
  /// traversal on every edge, the chain's computing demand on every server,
  /// and one forwarding-table entry per touched switch (`g` resolves edge
  /// endpoints).
  nfv::Footprint footprint(const nfv::Request& request, const graph::Graph& g) const;

  /// Backward-compatible overload without table entries (for deployments
  /// that do not track forwarding-table capacities).
  nfv::Footprint footprint(const nfv::Request& request) const;
};

/// Assembles the one-server pseudo-multicast tree used by the SP baselines:
/// the shortest path source -> server plus, for every destination, the
/// shortest path server -> destination (a shortest-path tree rooted at the
/// server). Overlapping links accumulate multiplicity. `from_source` and
/// `from_server` must be shortest-path results on the same working graph;
/// `to_physical` (optional) remaps that graph's edge ids to physical ids
/// when it is a filtered subgraph. Throws std::invalid_argument when the
/// server or a destination is unreachable.
PseudoMulticastTree make_one_server_spt_tree(
    const nfv::Request& request, graph::VertexId server,
    const graph::ShortestPaths& from_source, const graph::ShortestPaths& from_server,
    const std::vector<graph::EdgeId>* to_physical, double cost);

/// Sorted-vector accumulator for `edge_uses`: sorts the traversal list
/// (one entry per traversal, duplicates allowed) and run-length-counts it
/// into (edge, multiplicity) pairs with ascending distinct ids — the same
/// output as a std::map<EdgeId, int> accumulation without the per-node
/// allocations.
std::vector<std::pair<graph::EdgeId, int>> accumulate_edge_uses(
    std::vector<graph::EdgeId> traversals);

/// Structural validation of a pseudo-multicast tree against the physical
/// graph and the request:
///  - exactly one route per destination, each a contiguous walk in `g`
///    from the source to the destination,
///  - the service chain processes before delivery (server_index sound,
///    server is listed in `servers`),
///  - every edge a route walks is present in `edge_uses`,
///  - multiplicities are >= 1 and cost >= 0.
/// Returns true when valid; otherwise false with a diagnostic in `error`
/// (when non-null).
bool validate_pseudo_tree(const graph::Graph& g, const nfv::Request& request,
                          const PseudoMulticastTree& tree, std::string* error);

}  // namespace nfvm::core
