// Per-request decision provenance: what the admission path looked at, how
// long each phase took, and why the request ended up admitted or rejected.
//
// A RequestRecord is attached to AdmissionDecision (shared_ptr, null unless
// OnlineAlgorithm::set_record_provenance(true) was called) and flows out
// through the simulator's JSONL event log, where `nfvm-report latency`
// aggregates the phase timings and `nfvm-report explain` prints one
// request's record verbatim. Population sites compile out under
// -DNFVM_OBS=0; the struct itself stays available so plumbing code builds
// either way.
//
// Phase names (the contract shared with sim/simulator.cpp's event fields
// and obs/request_events.cpp's aggregation):
//   classify   server classification / weighted working-graph build
//   closure    shared-closure shortest-path tree family (view trees_for)
//   eval       candidate-server / combination evaluation scan
//   realize    sequential replay: route assembly, delay + capacity checks
//   view_patch incremental weighted-view patch after an admission
// Phases that a path does not run stay 0; phases need not sum to total_us
// (validation and resource allocation sit between them).
#pragma once

#include <cstdint>

namespace nfvm::core {

struct RequestRecord {
  std::uint64_t request_id = 0;
  bool admitted = false;
  /// Decided on the incremental shared-closure fast path (vs. the
  /// rebuild-from-scratch path).
  bool fast_path = false;

  // --- Phase wall-clock, microseconds ---------------------------------------
  double classify_us = 0.0;
  double closure_us = 0.0;
  double eval_us = 0.0;
  double realize_us = 0.0;
  double view_patch_us = 0.0;
  /// The whole process() call (try_admit + allocation + view patch).
  double total_us = 0.0;

  // --- Candidate-scan provenance --------------------------------------------
  /// Servers in the topology (the scan's universe).
  std::uint64_t servers_total = 0;
  /// Survived the pre-evaluation gates (residual compute, sigma_v).
  std::uint64_t servers_eligible = 0;
  /// Tree/path evaluations actually performed.
  std::uint64_t servers_evaluated = 0;
  /// Passed every feasibility check (each one improved on the best so far).
  std::uint64_t candidates_feasible = 0;
  /// The admitted candidate's server; -1 when rejected.
  std::int64_t chosen_server = -1;

  // --- Pseudo-tree cost breakdown (admitted only) ---------------------------
  /// cost_total = cost_steiner + cost_server + cost_backhaul for Online_CP;
  /// SP variants price trees by link traversals and only fill cost_total.
  double cost_total = 0.0;
  double cost_steiner = 0.0;
  double cost_server = 0.0;
  double cost_backhaul = 0.0;

  // --- SP-tree cache attribution --------------------------------------------
  /// Global graph.spcache.{hits,misses} counter deltas across this decision.
  /// Observational: parallel tree priming batches misses, so the split (not
  /// the decision) may shift with the thread count.
  std::uint64_t spcache_hits = 0;
  std::uint64_t spcache_misses = 0;

  // --- Reject context: candidates stopped per gate --------------------------
  std::uint64_t skipped_compute = 0;      ///< residual-compute pre-gate
  std::uint64_t skipped_sigma_v = 0;      ///< sigma_v threshold pre-gate
  std::uint64_t failed_disconnected = 0;  ///< terminals disconnected at b_k
  std::uint64_t failed_sigma_e = 0;       ///< tree weight >= sigma_e
  std::uint64_t failed_delay = 0;         ///< delay bound violated
  std::uint64_t failed_capacity = 0;      ///< footprint no longer fits
  std::uint64_t cost_pruned = 0;          ///< dominated by a cheaper candidate
};

}  // namespace nfvm::core
