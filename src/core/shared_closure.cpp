#include "core/shared_closure.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/hdr_histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace nfvm::core {

const graph::ShortestPaths& TerminalTables::from(graph::VertexId v) const {
  const graph::ShortestPaths* table = by_vertex_.at(v);
  if (table == nullptr) {
    throw std::logic_error("TerminalTables: no shortest-path table for vertex");
  }
  return *table;
}

SharedOracle build_shared_oracle(const WorkContext& ctx,
                                 const nfv::Request& request,
                                 std::span<const graph::VertexId> servers) {
  NFVM_SPAN("appro_multi/build_shared_oracle");
  NFVM_OBS_ONLY(util::Stopwatch oracle_watch;)
  SharedOracle oracle;
  oracle.ctx = &ctx;
  oracle.request = &request;
  oracle.tables = TerminalTables(ctx.cost_graph.num_vertices());
  // One parallel fan-out over destination + server trees, primed into (and
  // served from) the context's shared SP-tree cache.
  std::vector<graph::VertexId> sources(request.destinations.begin(),
                                       request.destinations.end());
  sources.insert(sources.end(), servers.begin(), servers.end());
  auto trees = context_trees(ctx, sources);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    oracle.tables.set(sources[i], std::move(trees[i]));
  }
  // Registered last so the source always resolves to ctx.sp_source, even
  // when it doubles as a destination or an eligible server.
  oracle.tables.set_unowned(request.source, &ctx.sp_source);
  NFVM_HDR_OBSERVE("core.shared_closure.oracle_us", oracle_watch.elapsed_us());
  return oracle;
}

SharedOracle build_shared_oracle(const WorkContext& ctx,
                                 const nfv::Request& request) {
  return build_shared_oracle(ctx, request, ctx.eligible_servers);
}

std::size_t nearest_table_root(
    std::span<const std::shared_ptr<const graph::ShortestPaths>> tables,
    graph::VertexId v) {
  std::size_t nearest = tables.size();
  double nearest_dist = graph::kInfiniteDistance;
  for (std::size_t i = 0; i < tables.size(); ++i) {
    if (tables[i]->dist[v] < nearest_dist) {
      nearest_dist = tables[i]->dist[v];
      nearest = i;
    }
  }
  return nearest;
}

std::vector<graph::VertexId> beam_server_pool(
    const WorkContext& ctx,
    std::span<const std::shared_ptr<const graph::ShortestPaths>> dest_trees,
    std::size_t beam_width) {
  std::vector<graph::VertexId> pool(ctx.eligible_servers.begin(),
                                    ctx.eligible_servers.end());
  if (beam_width == 0 || beam_width >= pool.size()) return pool;
  std::vector<std::pair<double, graph::VertexId>> scored;
  scored.reserve(pool.size());
  for (const graph::VertexId v : pool) {
    double dest_sum = 0.0;
    for (const auto& tree : dest_trees) dest_sum += tree->dist[v];
    const double score = ctx.sp_source.dist[v] + ctx.server_chain_cost[v] +
                         dest_sum / static_cast<double>(dest_trees.size());
    scored.emplace_back(score, v);
  }
  // (score, vertex) pairs give a deterministic total order, so the top-m
  // sets are nested as m grows.
  std::sort(scored.begin(), scored.end());
  pool.clear();
  for (std::size_t i = 0; i < beam_width; ++i) pool.push_back(scored[i].second);
  std::sort(pool.begin(), pool.end());
  return pool;
}

ComboBounds::ComboBounds(
    const WorkContext& ctx, const nfv::Request& request,
    std::span<const graph::VertexId> pool,
    std::span<const std::shared_ptr<const graph::ShortestPaths>> dest_trees)
    : num_servers_(pool.size()), num_dests_(dest_trees.size()) {
  const std::size_t n = num_servers_;
  const std::size_t nd = num_dests_;
  constexpr double kInf = graph::kInfiniteDistance;

  // Widened zero-cost star: the source plus every POOL server adjacent to
  // it (a superset of any single combination's star — shortcuts can only
  // get shorter, so distance bounds stay admissible).
  std::vector<graph::VertexId> star{request.source};
  for (const graph::Adjacency& adj : ctx.cost_graph.neighbors(request.source)) {
    if (!std::binary_search(pool.begin(), pool.end(), adj.neighbor)) continue;
    if (std::find(star.begin(), star.end(), adj.neighbor) == star.end()) {
      star.push_back(adj.neighbor);
    }
  }
  double maxstar = 0.0;
  for (const graph::VertexId a : star) {
    maxstar = std::max(maxstar, ctx.sp_source.dist[a]);
  }
  // snear[d]: exact distance from destination d to the widened star.
  std::vector<double> snear(nd, kInf);
  for (std::size_t d = 0; d < nd; ++d) {
    for (const graph::VertexId a : star) {
      snear[d] = std::min(snear[d], dest_trees[d]->dist[a]);
    }
  }

  virt_.resize(n);
  reach_.resize(n * nd);
  sdist_.resize(n);
  ddirect_.resize(n * nd);
  star_member_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const graph::VertexId v = pool[i];
    virt_[i] = ctx.sp_source.dist[v] + ctx.server_chain_cost[v];
    sdist_[i] = ctx.sp_source.dist[v];
    star_member_[i] =
        std::find(star.begin(), star.end(), v) != star.end() ? 1 : 0;
    // Triangle inequality through the source: d(v, star) >= d(s_k, v) -
    // max_a d(s_k, a). Keeps the bound free of per-server tables.
    const double server_snear = std::max(0.0, ctx.sp_source.dist[v] - maxstar);
    for (std::size_t d = 0; d < nd; ++d) {
      ddirect_[i * nd + d] = dest_trees[d]->dist[v];
      reach_[i * nd + d] =
          std::min(dest_trees[d]->dist[v], server_snear + snear[d]);
    }
  }

  dsrc_.resize(nd);
  ddraw_.assign(nd * nd, 0.0);
  for (std::size_t d = 0; d < nd; ++d) {
    dsrc_[d] = dest_trees[d]->dist[request.source];
    for (std::size_t e = 0; e < nd; ++e) {
      ddraw_[d * nd + e] = dest_trees[d]->dist[request.destinations[e]];
    }
  }

  rdist_.resize(nd * nd, kInf);
  rmin_.assign(nd, kInf);
  for (std::size_t d = 0; d < nd; ++d) {
    for (std::size_t e = 0; e < nd; ++e) {
      if (e == d) continue;
      rdist_[d * nd + e] =
          std::min(dest_trees[d]->dist[request.destinations[e]],
                   snear[d] + snear[e]);
      rmin_[d] = std::min(rmin_[d], rdist_[d * nd + e]);
    }
  }

  suffix_min_virt_.assign(n + 1, kInf);
  suffix_min_sv_.assign((n + 1) * nd, kInf);
  suffix_min_reach_.assign((n + 1) * nd, kInf);
  for (std::size_t j = n; j-- > 0;) {
    suffix_min_virt_[j] = std::min(virt_[j], suffix_min_virt_[j + 1]);
    for (std::size_t d = 0; d < nd; ++d) {
      suffix_min_sv_[j * nd + d] =
          std::min(virt_[j] + reach_[j * nd + d], suffix_min_sv_[(j + 1) * nd + d]);
      suffix_min_reach_[j * nd + d] =
          std::min(reach_[j * nd + d], suffix_min_reach_[(j + 1) * nd + d]);
    }
  }
}

ComboBounds::Partial ComboBounds::root() const {
  Partial p;
  p.min_sv.assign(num_dests_, graph::kInfiniteDistance);
  p.min_reach.assign(num_dests_, graph::kInfiniteDistance);
  return p;
}

ComboBounds::Partial ComboBounds::extend(const Partial& prefix,
                                         std::size_t i) const {
  Partial p = prefix;
  p.min_virt = std::min(p.min_virt, virt_[i]);
  for (std::size_t d = 0; d < num_dests_; ++d) {
    p.min_sv[d] = std::min(p.min_sv[d], virt_[i] + reach_[i * num_dests_ + d]);
    p.min_reach[d] = std::min(p.min_reach[d], reach_[i * num_dests_ + d]);
  }
  return p;
}

double ComboBounds::candidate_bound(std::span<const std::size_t> idx) const {
  const std::size_t nd = num_dests_;
  // The combination is complete, so its zero-cost star is exactly
  // {s_k} ∪ (combo ∩ N(s_k)) — usually far smaller than the pool-level
  // star the prefix bounds must assume. Rebuild the closure entries
  // against it; every entry only grows versus the pool-level relaxation,
  // so this bound dominates bound_from over the prefix minima (and when
  // the combo has no source-adjacent server the star degenerates to
  // {s_k}, where the triangle inequality makes the entries exact).
  double maxstar = 0.0;
  bool any_star = false;
  for (const std::size_t i : idx) {
    if (star_member_[i] != 0) {
      any_star = true;
      maxstar = std::max(maxstar, sdist_[i]);
    }
  }
  std::vector<double>& snear = scratch_snear_;
  snear.assign(dsrc_.begin(), dsrc_.end());
  if (any_star) {
    for (const std::size_t i : idx) {
      if (star_member_[i] == 0) continue;
      for (std::size_t d = 0; d < nd; ++d) {
        snear[d] = std::min(snear[d], ddirect_[i * nd + d]);
      }
    }
  }

  double min_virt = graph::kInfiniteDistance;
  std::vector<double>& min_sv = scratch_min_sv_;
  std::vector<double>& min_reach = scratch_min_reach_;
  min_sv.assign(nd, graph::kInfiniteDistance);
  min_reach.assign(nd, graph::kInfiniteDistance);
  for (const std::size_t i : idx) {
    min_virt = std::min(min_virt, virt_[i]);
    const double server_snear = std::max(0.0, sdist_[i] - maxstar);
    for (std::size_t d = 0; d < nd; ++d) {
      const double reach =
          std::min(ddirect_[i * nd + d], server_snear + snear[d]);
      min_sv[d] = std::min(min_sv[d], virt_[i] + reach);
      min_reach[d] = std::min(min_reach[d], reach);
    }
  }

  std::vector<double>& rdist = scratch_rdist_;
  std::vector<double>& rmin = scratch_rmin_;
  rdist.assign(nd * nd, graph::kInfiniteDistance);
  rmin.assign(nd, graph::kInfiniteDistance);
  for (std::size_t d = 0; d < nd; ++d) {
    for (std::size_t e = 0; e < nd; ++e) {
      if (e == d) continue;
      rdist[d * nd + e] = std::min(ddraw_[d * nd + e], snear[d] + snear[e]);
      rmin[d] = std::min(rmin[d], rdist[d * nd + e]);
    }
  }
  return bound_from(min_virt, min_sv, min_reach, rdist, rmin);
}

double ComboBounds::subtree_bound(const Partial& prefix,
                                  std::size_t next) const {
  const std::size_t nd = num_dests_;
  std::vector<double>& min_sv = scratch_min_sv_;
  std::vector<double>& min_reach = scratch_min_reach_;
  min_sv.resize(nd);
  min_reach.resize(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    min_sv[d] = std::min(prefix.min_sv[d], suffix_min_sv_[next * nd + d]);
    min_reach[d] =
        std::min(prefix.min_reach[d], suffix_min_reach_[next * nd + d]);
  }
  return bound_from(std::min(prefix.min_virt, suffix_min_virt_[next]), min_sv,
                    min_reach, rdist_, rmin_);
}

/// Scaled subset-MST sweep over the (|D| + 1)-terminal closure-matrix
/// lower bounds M (terminal 0 = s', j >= 1 = dest j-1).
///
/// For ANY subset S of the terminals, the admitted tree T contains a
/// subtree spanning S, so w(T) >= SMT(S); the classic Steiner-ratio
/// argument (double the tree, Euler tour, shortcut, drop the heaviest of
/// the |S| cycle edges) gives MST(closure|S) <= 2(1 - 1/|S|) * SMT(S), and
/// entrywise M <= closure makes MST(M|S) a usable stand-in. Hence
///   w(T) >= MST(M|S) * |S| / (2(|S| - 1)).
/// Small, spread-out subsets enjoy a multiplier far better than the
/// full-set 1/2 (|S| = 2 gives 1, |S| = 3 gives 3/4, ...), so the sweep
/// takes the max over the farthest-point-insertion prefixes S_1 ⊂ S_2 ⊂ …
/// seeded at s' — the prefixes that pack the most metric spread into the
/// fewest terminals. |S| = 2 reproduces the single-path bound; |S| = |D|+1
/// sharpens the old half-MST bound by (|D|+1)/|D|.
double ComboBounds::scaled_subset_mst_bound(
    std::span<const double> min_sv, std::span<const double> rdist) const {
  const std::size_t t = num_dests_ + 1;
  const auto entry = [&](std::size_t a, std::size_t b) {
    if (a > b) std::swap(a, b);
    if (a == 0) return min_sv[b - 1];
    return std::min(rdist[(a - 1) * num_dests_ + (b - 1)],
                    min_sv[a - 1] + min_sv[b - 1]);
  };

  // Farthest-point insertion order from s'. to_set[j] tracks each pending
  // destination's distance to the chosen set; ties break toward the
  // smaller terminal index, so the order — and with it the bound — is a
  // pure function of the matrix entries (thread-count invariant).
  std::vector<std::size_t>& order = scratch_order_;
  std::vector<double>& to_set = scratch_to_set_;
  std::vector<char>& chosen = scratch_chosen_;
  order.assign(1, 0);
  to_set.assign(t, graph::kInfiniteDistance);
  chosen.assign(t, 0);
  chosen[0] = 1;
  for (std::size_t j = 1; j < t; ++j) to_set[j] = min_sv[j - 1];
  // MST weight of each chosen prefix via Prim restricted to `order`.
  std::vector<double>& prim = scratch_prim_;
  std::vector<char>& in_tree = scratch_in_tree_;
  prim.assign(t, graph::kInfiniteDistance);
  double best_bound = 0.0;
  for (std::size_t step = 1; step < t; ++step) {
    std::size_t pick = 0;
    double far = -1.0;
    for (std::size_t j = 1; j < t; ++j) {
      if (!chosen[j] && to_set[j] > far) {
        far = to_set[j];
        pick = j;
      }
    }
    if (far >= graph::kInfiniteDistance) return graph::kInfiniteDistance;
    chosen[pick] = 1;
    order.push_back(pick);
    for (std::size_t j = 1; j < t; ++j) {
      if (!chosen[j]) to_set[j] = std::min(to_set[j], entry(pick, j));
    }

    const std::size_t s = order.size();  // |S| terminals in this prefix
    double mst = 0.0;
    std::fill(prim.begin(), prim.begin() + s, graph::kInfiniteDistance);
    prim[0] = 0.0;  // indices into `order`; seed at s'
    in_tree.assign(s, 0);
    for (std::size_t grown = 0; grown < s; ++grown) {
      std::size_t next = s;
      for (std::size_t i = 0; i < s; ++i) {
        if (!in_tree[i] && (next == s || prim[i] < prim[next])) next = i;
      }
      mst += prim[next];
      in_tree[next] = 1;
      for (std::size_t i = 0; i < s; ++i) {
        if (!in_tree[i]) {
          prim[i] = std::min(prim[i], entry(order[next], order[i]));
        }
      }
    }
    best_bound = std::max(best_bound, mst * static_cast<double>(s) /
                                          (2.0 * static_cast<double>(s - 1)));
  }
  return best_bound;
}

double ComboBounds::bound_from(double min_virt, std::span<const double> min_sv,
                               std::span<const double> min_reach,
                               std::span<const double> rdist,
                               std::span<const double> rmin) const {
  const std::size_t nd = num_dests_;
  // (a) Single-path: any spanning tree contains an s'-to-d path of weight
  // >= min_sv[d] for every destination.
  double single_path = 0.0;
  double min_sv_all = graph::kInfiniteDistance;
  for (std::size_t d = 0; d < nd; ++d) {
    single_path = std::max(single_path, min_sv[d]);
    min_sv_all = std::min(min_sv_all, min_sv[d]);
  }
  if (single_path >= graph::kInfiniteDistance) return graph::kInfiniteDistance;
  // (b) One virtual edge (s' has positive degree, all its edges virtual)
  // plus half-radius ball packing over the destinations in the real forest
  // left by removing s'.
  double forest = min_virt;
  for (std::size_t d = 0; d < nd; ++d) {
    forest += 0.5 * std::min(rmin[d], min_reach[d]);
  }
  // (c) Ball packing over all terminals {s'} ∪ D in the auxiliary metric.
  double packing = min_sv_all;
  for (std::size_t d = 0; d < nd; ++d) {
    packing += std::min(rmin[d], min_sv[d]);
  }
  packing *= 0.5;
  // (d) Scaled subset-MST sweep over the closure lower bounds; subsumes
  // the single-path bound (a) via its |S| = 2 prefix.
  const double subset_mst = scaled_subset_mst_bound(min_sv, rdist);
  const double bound =
      std::max(std::max(single_path, forest), std::max(packing, subset_mst));
  // Tiny relative slack so float rounding in the bound arithmetic can never
  // nudge a mathematically-tight bound above the (differently-ordered)
  // evaluated sum — strict-inequality pruning then provably keeps the exact
  // argmin. Costs carry ~1e-14 relative noise; 1e-9 dwarfs it while giving
  // up a negligible sliver of pruning power.
  return bound * (1.0 - 1e-9);
}

SharedComboSolver::SharedComboSolver(const SharedOracle& oracle,
                                     const AuxOverlay& aux)
    : oracle_(oracle), aux_(aux), request_(*oracle.request) {
  // Zero-cost star: the source plus combo servers adjacent to it.
  star_.push_back({request_.source, graph::kInvalidEdge});
  for (const graph::Adjacency& adj :
       oracle_.ctx->cost_graph.neighbors(request_.source)) {
    if (std::find(aux.combo.begin(), aux.combo.end(), adj.neighbor) ==
        aux.combo.end()) {
      continue;
    }
    bool seen = false;
    for (const StarEntry& e : star_) seen |= (e.vertex == adj.neighbor);
    if (!seen) star_.push_back({adj.neighbor, adj.edge});
  }
  via_sprime_.resize(request_.destinations.size());
  for (std::size_t j = 0; j < request_.destinations.size(); ++j) {
    via_sprime_[j] = best_via_sprime(request_.destinations[j]);
  }
}

graph::SteinerResult SharedComboSolver::solve() {
  const std::size_t t = request_.destinations.size() + 1;  // s' + dests
  std::vector<bool> in_tree(t, false);
  std::vector<double> best(t, graph::kInfiniteDistance);
  std::vector<std::size_t> best_from(t, 0);
  best[0] = 0.0;
  std::vector<std::pair<std::size_t, std::size_t>> mst;
  for (std::size_t step = 0; step < t; ++step) {
    std::size_t pick = t;
    for (std::size_t i = 0; i < t; ++i) {
      if (!in_tree[i] && (pick == t || best[i] < best[pick])) pick = i;
    }
    if (best[pick] >= graph::kInfiniteDistance) {
      return graph::SteinerResult{};  // disconnected closure
    }
    in_tree[pick] = true;
    if (pick != 0) mst.emplace_back(best_from[pick], pick);
    for (std::size_t j = 0; j < t; ++j) {
      if (in_tree[j]) continue;
      const double d = closure_distance(pick, j);
      if (d < best[j]) {
        best[j] = d;
        best_from[j] = pick;
      }
    }
  }

  edge_set_.clear();
  for (const auto& [a, b] : mst) expand(a, b);
  std::vector<graph::EdgeRecord> union_edges;
  union_edges.reserve(edge_set_.size());
  for (graph::EdgeId e : edge_set_) union_edges.push_back(aux_.record(e));

  std::vector<graph::VertexId> terminals;
  terminals.push_back(aux_.virtual_source);
  terminals.insert(terminals.end(), request_.destinations.begin(),
                   request_.destinations.end());
  return graph::kmb_finish(aux_.num_vertices(), union_edges, terminals);
}

SharedComboSolver::Via SharedComboSolver::vertex_distance(
    const graph::ShortestPaths& sp_x, graph::VertexId y) const {
  Via best;
  best.value = sp_x.dist[y];
  double in = graph::kInfiniteDistance;
  graph::VertexId pb = graph::kInvalidVertex;
  for (const StarEntry& e : star_) {
    if (sp_x.dist[e.vertex] < in) {
      in = sp_x.dist[e.vertex];
      pb = e.vertex;
    }
  }
  double out = graph::kInfiniteDistance;
  graph::VertexId qb = graph::kInvalidVertex;
  for (const StarEntry& e : star_) {
    const double d = oracle_.from(e.vertex).dist[y];
    if (d < out) {
      out = d;
      qb = e.vertex;
    }
  }
  if (in + out < best.value) {
    best.value = in + out;
    best.p = pb;
    best.q = qb;
  }
  return best;
}

SharedComboSolver::ViaSprime SharedComboSolver::best_via_sprime(
    graph::VertexId y) const {
  ViaSprime best;
  for (std::size_t i = 0; i < aux_.combo.size(); ++i) {
    const graph::VertexId v = aux_.combo[i];
    const double virt = aux_.virtual_weight[i];
    const Via via = vertex_distance(oracle_.from(v), y);
    if (virt + via.value < best.value) {
      best.value = virt + via.value;
      best.server = v;
      best.inner = via;
    }
  }
  return best;
}

/// Closure distance between terminal indices (0 = s', j >= 1 = dest j-1).
double SharedComboSolver::closure_distance(std::size_t a, std::size_t b) const {
  if (a > b) std::swap(a, b);
  if (a == 0) return via_sprime_[b - 1].value;
  const graph::VertexId x = request_.destinations[a - 1];
  const graph::VertexId y = request_.destinations[b - 1];
  const double direct = vertex_distance(oracle_.from(x), y).value;
  const double via_virtual = via_sprime_[a - 1].value + via_sprime_[b - 1].value;
  return std::min(direct, via_virtual);
}

void SharedComboSolver::emit_via(const graph::ShortestPaths& sp_x,
                                 graph::VertexId y, const Via& via) {
  if (via.p == graph::kInvalidVertex) {
    for (graph::EdgeId e : graph::path_edges(sp_x, y)) edge_set_.insert(e);
    return;
  }
  for (graph::EdgeId e : graph::path_edges(sp_x, via.p)) edge_set_.insert(e);
  for (const StarEntry& e : star_) {
    if ((e.vertex == via.p || e.vertex == via.q) &&
        e.edge != graph::kInvalidEdge) {
      edge_set_.insert(e.edge);
    }
  }
  for (graph::EdgeId e : graph::path_edges(oracle_.from(via.q), y)) {
    edge_set_.insert(e);
  }
}

void SharedComboSolver::emit_sprime(std::size_t dest_index) {
  const ViaSprime& vs = via_sprime_[dest_index];
  const std::size_t combo_index = static_cast<std::size_t>(
      std::find(aux_.combo.begin(), aux_.combo.end(), vs.server) -
      aux_.combo.begin());
  edge_set_.insert(static_cast<graph::EdgeId>(aux_.num_real_edges + combo_index));
  emit_via(oracle_.from(vs.server), request_.destinations[dest_index], vs.inner);
}

void SharedComboSolver::expand(std::size_t a, std::size_t b) {
  if (a > b) std::swap(a, b);
  if (a == 0) {
    emit_sprime(b - 1);
    return;
  }
  const graph::VertexId x = request_.destinations[a - 1];
  const graph::VertexId y = request_.destinations[b - 1];
  const Via direct = vertex_distance(oracle_.from(x), y);
  const double via_virtual = via_sprime_[a - 1].value + via_sprime_[b - 1].value;
  if (via_virtual < direct.value) {
    emit_sprime(a - 1);
    emit_sprime(b - 1);
  } else {
    emit_via(oracle_.from(x), y, direct);
  }
}

}  // namespace nfvm::core
