#include "core/shared_closure.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/hdr_histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace nfvm::core {

const graph::ShortestPaths& TerminalTables::from(graph::VertexId v) const {
  const graph::ShortestPaths* table = by_vertex_.at(v);
  if (table == nullptr) {
    throw std::logic_error("TerminalTables: no shortest-path table for vertex");
  }
  return *table;
}

SharedOracle build_shared_oracle(const WorkContext& ctx,
                                 const nfv::Request& request) {
  NFVM_SPAN("appro_multi/build_shared_oracle");
  NFVM_OBS_ONLY(util::Stopwatch oracle_watch;)
  SharedOracle oracle;
  oracle.ctx = &ctx;
  oracle.request = &request;
  oracle.tables = TerminalTables(ctx.cost_graph.num_vertices());
  // One parallel fan-out over destination + server trees, primed into (and
  // served from) the context's shared SP-tree cache.
  std::vector<graph::VertexId> sources(request.destinations.begin(),
                                       request.destinations.end());
  sources.insert(sources.end(), ctx.eligible_servers.begin(),
                 ctx.eligible_servers.end());
  auto trees = context_trees(ctx, sources);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    oracle.tables.set(sources[i], std::move(trees[i]));
  }
  // Registered last so the source always resolves to ctx.sp_source, even
  // when it doubles as a destination or an eligible server.
  oracle.tables.set_unowned(request.source, &ctx.sp_source);
  NFVM_HDR_OBSERVE("core.shared_closure.oracle_us", oracle_watch.elapsed_us());
  return oracle;
}

SharedComboSolver::SharedComboSolver(const SharedOracle& oracle,
                                     const AuxOverlay& aux)
    : oracle_(oracle), aux_(aux), request_(*oracle.request) {
  // Zero-cost star: the source plus combo servers adjacent to it.
  star_.push_back({request_.source, graph::kInvalidEdge});
  for (const graph::Adjacency& adj :
       oracle_.ctx->cost_graph.neighbors(request_.source)) {
    if (std::find(aux.combo.begin(), aux.combo.end(), adj.neighbor) ==
        aux.combo.end()) {
      continue;
    }
    bool seen = false;
    for (const StarEntry& e : star_) seen |= (e.vertex == adj.neighbor);
    if (!seen) star_.push_back({adj.neighbor, adj.edge});
  }
  via_sprime_.resize(request_.destinations.size());
  for (std::size_t j = 0; j < request_.destinations.size(); ++j) {
    via_sprime_[j] = best_via_sprime(request_.destinations[j]);
  }
}

graph::SteinerResult SharedComboSolver::solve() {
  const std::size_t t = request_.destinations.size() + 1;  // s' + dests
  std::vector<bool> in_tree(t, false);
  std::vector<double> best(t, graph::kInfiniteDistance);
  std::vector<std::size_t> best_from(t, 0);
  best[0] = 0.0;
  std::vector<std::pair<std::size_t, std::size_t>> mst;
  for (std::size_t step = 0; step < t; ++step) {
    std::size_t pick = t;
    for (std::size_t i = 0; i < t; ++i) {
      if (!in_tree[i] && (pick == t || best[i] < best[pick])) pick = i;
    }
    if (best[pick] >= graph::kInfiniteDistance) {
      return graph::SteinerResult{};  // disconnected closure
    }
    in_tree[pick] = true;
    if (pick != 0) mst.emplace_back(best_from[pick], pick);
    for (std::size_t j = 0; j < t; ++j) {
      if (in_tree[j]) continue;
      const double d = closure_distance(pick, j);
      if (d < best[j]) {
        best[j] = d;
        best_from[j] = pick;
      }
    }
  }

  edge_set_.clear();
  for (const auto& [a, b] : mst) expand(a, b);
  std::vector<graph::EdgeRecord> union_edges;
  union_edges.reserve(edge_set_.size());
  for (graph::EdgeId e : edge_set_) union_edges.push_back(aux_.record(e));

  std::vector<graph::VertexId> terminals;
  terminals.push_back(aux_.virtual_source);
  terminals.insert(terminals.end(), request_.destinations.begin(),
                   request_.destinations.end());
  return graph::kmb_finish(aux_.num_vertices(), union_edges, terminals);
}

SharedComboSolver::Via SharedComboSolver::vertex_distance(
    const graph::ShortestPaths& sp_x, graph::VertexId y) const {
  Via best;
  best.value = sp_x.dist[y];
  double in = graph::kInfiniteDistance;
  graph::VertexId pb = graph::kInvalidVertex;
  for (const StarEntry& e : star_) {
    if (sp_x.dist[e.vertex] < in) {
      in = sp_x.dist[e.vertex];
      pb = e.vertex;
    }
  }
  double out = graph::kInfiniteDistance;
  graph::VertexId qb = graph::kInvalidVertex;
  for (const StarEntry& e : star_) {
    const double d = oracle_.from(e.vertex).dist[y];
    if (d < out) {
      out = d;
      qb = e.vertex;
    }
  }
  if (in + out < best.value) {
    best.value = in + out;
    best.p = pb;
    best.q = qb;
  }
  return best;
}

SharedComboSolver::ViaSprime SharedComboSolver::best_via_sprime(
    graph::VertexId y) const {
  ViaSprime best;
  for (std::size_t i = 0; i < aux_.combo.size(); ++i) {
    const graph::VertexId v = aux_.combo[i];
    const double virt = aux_.virtual_weight[i];
    const Via via = vertex_distance(oracle_.from(v), y);
    if (virt + via.value < best.value) {
      best.value = virt + via.value;
      best.server = v;
      best.inner = via;
    }
  }
  return best;
}

/// Closure distance between terminal indices (0 = s', j >= 1 = dest j-1).
double SharedComboSolver::closure_distance(std::size_t a, std::size_t b) const {
  if (a > b) std::swap(a, b);
  if (a == 0) return via_sprime_[b - 1].value;
  const graph::VertexId x = request_.destinations[a - 1];
  const graph::VertexId y = request_.destinations[b - 1];
  const double direct = vertex_distance(oracle_.from(x), y).value;
  const double via_virtual = via_sprime_[a - 1].value + via_sprime_[b - 1].value;
  return std::min(direct, via_virtual);
}

void SharedComboSolver::emit_via(const graph::ShortestPaths& sp_x,
                                 graph::VertexId y, const Via& via) {
  if (via.p == graph::kInvalidVertex) {
    for (graph::EdgeId e : graph::path_edges(sp_x, y)) edge_set_.insert(e);
    return;
  }
  for (graph::EdgeId e : graph::path_edges(sp_x, via.p)) edge_set_.insert(e);
  for (const StarEntry& e : star_) {
    if ((e.vertex == via.p || e.vertex == via.q) &&
        e.edge != graph::kInvalidEdge) {
      edge_set_.insert(e.edge);
    }
  }
  for (graph::EdgeId e : graph::path_edges(oracle_.from(via.q), y)) {
    edge_set_.insert(e);
  }
}

void SharedComboSolver::emit_sprime(std::size_t dest_index) {
  const ViaSprime& vs = via_sprime_[dest_index];
  const std::size_t combo_index = static_cast<std::size_t>(
      std::find(aux_.combo.begin(), aux_.combo.end(), vs.server) -
      aux_.combo.begin());
  edge_set_.insert(static_cast<graph::EdgeId>(aux_.num_real_edges + combo_index));
  emit_via(oracle_.from(vs.server), request_.destinations[dest_index], vs.inner);
}

void SharedComboSolver::expand(std::size_t a, std::size_t b) {
  if (a > b) std::swap(a, b);
  if (a == 0) {
    emit_sprime(b - 1);
    return;
  }
  const graph::VertexId x = request_.destinations[a - 1];
  const graph::VertexId y = request_.destinations[b - 1];
  const Via direct = vertex_distance(oracle_.from(x), y);
  const double via_virtual = via_sprime_[a - 1].value + via_sprime_[b - 1].value;
  if (via_virtual < direct.value) {
    emit_sprime(a - 1);
    emit_sprime(b - 1);
  } else {
    emit_via(oracle_.from(x), y, direct);
  }
}

}  // namespace nfvm::core
