// Shared-Dijkstra closure machinery for server scans.
//
// Both Appro_Multi's shared engine and the online fast paths evaluate many
// candidate trees whose metric closures are all assembled from the SAME small
// family of shortest-path trees: one per terminal (source, destinations) plus
// one per candidate server. This header factors that family out:
//
//   * TerminalTables — a per-request registry of shortest-path tables keyed
//     by root vertex, pinning shared trees so cache eviction cannot free them
//     mid-scan.
//   * SharedOracle / build_shared_oracle — the Appro_Multi per-request
//     tables (source + destinations + eligible servers), primed in one
//     parallel fan-out through the WorkContext SP-tree cache.
//   * SharedComboSolver — evaluates one server combination's Steiner tree
//     from the tables over an AuxOverlay, never materializing the auxiliary
//     graph. Distances in G_k^i decompose into
//       d_i(x, y) = min( d_G'(x, y),                 # plain working graph
//                        star_in(x) + star_out(y),   # through the zero-cost
//                                                    # star {s_k} ∪ (combo ∩ N(s_k))
//                        d_i(s', x) + d_i(s', y) )   # through the virtual source
//     with d_i(s', y) = min over v in combo of (w_virtual(v) + d_i(v, y)).
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "core/aux_graph.h"
#include "graph/dijkstra.h"
#include "graph/steiner.h"
#include "nfv/request.h"

namespace nfvm::core {

/// Shortest-path tables keyed by root vertex. Shared trees (typically owned
/// by an SpCache) are pinned via shared_ptr; borrowed tables (set_unowned)
/// must outlive the registry. Later set() calls for the same vertex override
/// earlier ones.
class TerminalTables {
 public:
  TerminalTables() = default;
  explicit TerminalTables(std::size_t num_vertices)
      : by_vertex_(num_vertices, nullptr) {}

  void set(graph::VertexId v, std::shared_ptr<const graph::ShortestPaths> tree) {
    by_vertex_.at(v) = tree.get();
    pinned_.push_back(std::move(tree));
  }
  void set_unowned(graph::VertexId v, const graph::ShortestPaths* tree) {
    by_vertex_.at(v) = tree;
  }
  bool has(graph::VertexId v) const { return by_vertex_.at(v) != nullptr; }

  /// Throws std::logic_error when no table was registered for `v`.
  const graph::ShortestPaths& from(graph::VertexId v) const;

 private:
  std::vector<const graph::ShortestPaths*> by_vertex_;
  std::vector<std::shared_ptr<const graph::ShortestPaths>> pinned_;
};

/// Per-request shortest-path tables on the working graph: the source tree
/// plus one tree per destination and per eligible server.
struct SharedOracle {
  const WorkContext* ctx = nullptr;
  const nfv::Request* request = nullptr;
  TerminalTables tables;

  const graph::ShortestPaths& from(graph::VertexId v) const {
    return tables.from(v);
  }
};

/// Primes the oracle's tables in one parallel fan-out (context_trees) through
/// ctx.sp_cache. `servers` is the combination pool the oracle must answer
/// for — the beamed Appro_Multi passes a subset of ctx.eligible_servers.
SharedOracle build_shared_oracle(const WorkContext& ctx,
                                 const nfv::Request& request,
                                 std::span<const graph::VertexId> servers);

/// Full-pool overload: every eligible server.
SharedOracle build_shared_oracle(const WorkContext& ctx,
                                 const nfv::Request& request);

/// Index into `tables` of the tree whose root is nearest to `v`; the first
/// minimum wins, matching the deterministic first-min scans used across the
/// codebase. Returns tables.size() when `v` is unreachable from every root.
std::size_t nearest_table_root(
    std::span<const std::shared_ptr<const graph::ShortestPaths>> tables,
    graph::VertexId v);

/// The top-`beam_width` eligible servers by closure centrality — score
///   d(s_k, v) + c_v(SC_k) + mean over destinations of d(v, d)
/// (lower is more central; ties break toward the smaller vertex id) —
/// returned sorted ascending so the combination sweep keeps its canonical
/// order. beam_width == 0 or >= |V_S| returns every eligible server. The
/// score order does not depend on m, so pools are nested in beam_width;
/// that nesting is what makes the beamed Appro_Multi cost non-increasing
/// in m (a wider beam only adds combinations).
std::vector<graph::VertexId> beam_server_pool(
    const WorkContext& ctx,
    std::span<const std::shared_ptr<const graph::ShortestPaths>> dest_trees,
    std::size_t beam_width);

/// Admissible (never overestimating) lower bounds on the Steiner cost of
/// Appro_Multi server combinations, assembled once per request from the
/// shared per-terminal tables. Used by the branch-and-bound combination
/// search (core/combo_search.h) to discard combinations and whole prefix
/// subtrees without evaluating them; docs/performance.md derives each bound.
///
/// Every bound underestimates the weight of ANY tree spanning
/// {s'_k} ∪ D_k in ANY auxiliary graph G_k^i whose combination is drawn
/// from the pool, so pruning with strict inequality preserves the exact
/// argmin of the exhaustive sweep for both evaluation engines. The
/// ingredients only need the source and destination shortest-path tables
/// (the graph is undirected, so d(v, d) = dest_tree[d].dist[v]); the
/// zero-cost star is widened to source ∪ (pool ∩ N(source)), which can only
/// shorten distances and therefore keeps every bound admissible for every
/// sub-combination.
class ComboBounds {
 public:
  ComboBounds(const WorkContext& ctx, const nfv::Request& request,
              std::span<const graph::VertexId> pool,
              std::span<const std::shared_ptr<const graph::ShortestPaths>>
                  dest_trees);

  std::size_t num_servers() const { return num_servers_; }
  std::size_t num_destinations() const { return num_dests_; }

  /// Element-wise minima of the bound ingredients over a combination
  /// prefix. Extending a prefix only takes O(|D|).
  struct Partial {
    /// min over the prefix of d(s_k, v) + c_v(SC_k) (the virtual-edge
    /// weight).
    double min_virt = graph::kInfiniteDistance;
    /// Per destination: min over the prefix of virt(v) + reach(v, d) — a
    /// lower bound on d_i(s', d) through any prefix server.
    std::vector<double> min_sv;
    /// Per destination: min over the prefix of reach(v, d) — a lower bound
    /// on the star-or-direct distance from any prefix server to d.
    std::vector<double> min_reach;
  };

  /// The empty prefix (all minima infinite).
  Partial root() const;
  /// Minima after appending pool server index `i` to the prefix.
  Partial extend(const Partial& prefix, std::size_t i) const;

  /// Lower bound on the evaluated Steiner cost of exactly the combination
  /// with strictly increasing pool indices `idx`. Unlike the prefix bounds,
  /// the combination is complete here, so its zero-cost star
  /// ({s_k} ∪ (combo ∩ N(s_k))) is exactly known: the closure entries are
  /// rebuilt against that combo-specific star instead of the widened
  /// pool-level star, which dominates the prefix relaxation entrywise —
  /// combinations avoiding the source-adjacent servers get (near-)exact
  /// entries. NOT thread-safe: bound queries reuse per-object scratch
  /// buffers, so all calls must come from one thread at a time (the
  /// combination search only queries bounds from its orchestration thread).
  double candidate_bound(std::span<const std::size_t> idx) const;
  /// Lower bound over every combination extending `prefix` with one or more
  /// servers drawn from pool indices >= `next`. Same single-caller contract
  /// as candidate_bound().
  double subtree_bound(const Partial& prefix, std::size_t next) const;

 private:
  /// Assembles the four sub-bounds from per-destination ingredient minima
  /// and a destination-destination distance matrix (`rdist`/`rmin` are the
  /// pool-level members for the prefix bounds, combo-specific scratch for
  /// candidate_bound).
  double bound_from(double min_virt, std::span<const double> min_sv,
                    std::span<const double> min_reach,
                    std::span<const double> rdist,
                    std::span<const double> rmin) const;
  double scaled_subset_mst_bound(std::span<const double> min_sv,
                                 std::span<const double> rdist) const;

  std::size_t num_servers_ = 0;
  std::size_t num_dests_ = 0;
  /// virt_[i]: weight of the virtual edge (s', pool[i]).
  std::vector<double> virt_;
  /// reach_[i * |D| + d]: lower bound on the star-or-direct distance from
  /// pool[i] to destination d.
  std::vector<double> reach_;
  /// rdist_[d * |D| + d']: lower bound on the star-or-direct distance
  /// between destinations d and d'.
  std::vector<double> rdist_;
  /// rmin_[d]: min over d' != d of rdist_ (infinite when |D| == 1).
  std::vector<double> rmin_;
  /// Raw (unrelaxed) ingredients for the combo-specific star rebuild in
  /// candidate_bound: working-graph distances untouched by any star
  /// shortcut.
  /// sdist_[i]: d(s_k, pool[i]).
  std::vector<double> sdist_;
  /// ddirect_[i * |D| + d]: d(pool[i], destination d).
  std::vector<double> ddirect_;
  /// star_member_[i]: pool[i] is adjacent to the source (a potential
  /// zero-cost-star member).
  std::vector<char> star_member_;
  /// dsrc_[d]: d(s_k, destination d).
  std::vector<double> dsrc_;
  /// ddraw_[d * |D| + d']: d(destination d, destination d').
  std::vector<double> ddraw_;
  /// Suffix minima over pool index j in [0, n]: row j holds the minima over
  /// servers [j, n), row n is infinite. Combining a prefix Partial with row
  /// `next` yields the minima over prefix ∪ [next, n).
  std::vector<double> suffix_min_virt_;
  std::vector<double> suffix_min_sv_;
  std::vector<double> suffix_min_reach_;
  /// Scratch reused across bound queries (hence the single-caller contract
  /// above): combined minima for subtree_bound and the farthest-point /
  /// Prim state for scaled_subset_mst_bound. Bounds run once per candidate,
  /// so allocating here instead of per call keeps the search overhead flat.
  mutable std::vector<double> scratch_min_sv_;
  mutable std::vector<double> scratch_min_reach_;
  mutable std::vector<double> scratch_snear_;
  mutable std::vector<double> scratch_rdist_;
  mutable std::vector<double> scratch_rmin_;
  mutable std::vector<std::size_t> scratch_order_;
  mutable std::vector<double> scratch_to_set_;
  mutable std::vector<char> scratch_chosen_;
  mutable std::vector<double> scratch_prim_;
  mutable std::vector<char> scratch_in_tree_;
};

/// Evaluates one combination via the shared tables; returns a Steiner tree
/// in auxiliary-graph edge ids. Deterministic: identical output to running
/// KMB inside the materialized auxiliary graph.
class SharedComboSolver {
 public:
  SharedComboSolver(const SharedOracle& oracle, const AuxOverlay& aux);

  graph::SteinerResult solve();

 private:
  struct StarEntry {
    graph::VertexId vertex;
    graph::EdgeId edge;  // working-graph edge to the source (invalid for it)
  };
  /// A vertex-to-vertex distance with the realized routing choice:
  /// p == kInvalidVertex means the direct working-graph path, otherwise the
  /// path enters the zero-cost star at p and leaves it at q.
  struct Via {
    double value = graph::kInfiniteDistance;
    graph::VertexId p = graph::kInvalidVertex;
    graph::VertexId q = graph::kInvalidVertex;
  };
  /// d_i(s', y) with the realized server.
  struct ViaSprime {
    double value = graph::kInfiniteDistance;
    graph::VertexId server = graph::kInvalidVertex;
    Via inner;
  };

  Via vertex_distance(const graph::ShortestPaths& sp_x, graph::VertexId y) const;
  ViaSprime best_via_sprime(graph::VertexId y) const;
  double closure_distance(std::size_t a, std::size_t b) const;
  void emit_via(const graph::ShortestPaths& sp_x, graph::VertexId y,
                const Via& via);
  void emit_sprime(std::size_t dest_index);
  void expand(std::size_t a, std::size_t b);

  const SharedOracle& oracle_;
  const AuxOverlay& aux_;
  const nfv::Request& request_;
  std::vector<StarEntry> star_;
  std::vector<ViaSprime> via_sprime_;
  std::set<graph::EdgeId> edge_set_;  // ascending iteration = deterministic
};

}  // namespace nfvm::core
