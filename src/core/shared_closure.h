// Shared-Dijkstra closure machinery for server scans.
//
// Both Appro_Multi's shared engine and the online fast paths evaluate many
// candidate trees whose metric closures are all assembled from the SAME small
// family of shortest-path trees: one per terminal (source, destinations) plus
// one per candidate server. This header factors that family out:
//
//   * TerminalTables — a per-request registry of shortest-path tables keyed
//     by root vertex, pinning shared trees so cache eviction cannot free them
//     mid-scan.
//   * SharedOracle / build_shared_oracle — the Appro_Multi per-request
//     tables (source + destinations + eligible servers), primed in one
//     parallel fan-out through the WorkContext SP-tree cache.
//   * SharedComboSolver — evaluates one server combination's Steiner tree
//     from the tables over an AuxOverlay, never materializing the auxiliary
//     graph. Distances in G_k^i decompose into
//       d_i(x, y) = min( d_G'(x, y),                 # plain working graph
//                        star_in(x) + star_out(y),   # through the zero-cost
//                                                    # star {s_k} ∪ (combo ∩ N(s_k))
//                        d_i(s', x) + d_i(s', y) )   # through the virtual source
//     with d_i(s', y) = min over v in combo of (w_virtual(v) + d_i(v, y)).
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "core/aux_graph.h"
#include "graph/dijkstra.h"
#include "graph/steiner.h"
#include "nfv/request.h"

namespace nfvm::core {

/// Shortest-path tables keyed by root vertex. Shared trees (typically owned
/// by an SpCache) are pinned via shared_ptr; borrowed tables (set_unowned)
/// must outlive the registry. Later set() calls for the same vertex override
/// earlier ones.
class TerminalTables {
 public:
  TerminalTables() = default;
  explicit TerminalTables(std::size_t num_vertices)
      : by_vertex_(num_vertices, nullptr) {}

  void set(graph::VertexId v, std::shared_ptr<const graph::ShortestPaths> tree) {
    by_vertex_.at(v) = tree.get();
    pinned_.push_back(std::move(tree));
  }
  void set_unowned(graph::VertexId v, const graph::ShortestPaths* tree) {
    by_vertex_.at(v) = tree;
  }
  bool has(graph::VertexId v) const { return by_vertex_.at(v) != nullptr; }

  /// Throws std::logic_error when no table was registered for `v`.
  const graph::ShortestPaths& from(graph::VertexId v) const;

 private:
  std::vector<const graph::ShortestPaths*> by_vertex_;
  std::vector<std::shared_ptr<const graph::ShortestPaths>> pinned_;
};

/// Per-request shortest-path tables on the working graph: the source tree
/// plus one tree per destination and per eligible server.
struct SharedOracle {
  const WorkContext* ctx = nullptr;
  const nfv::Request* request = nullptr;
  TerminalTables tables;

  const graph::ShortestPaths& from(graph::VertexId v) const {
    return tables.from(v);
  }
};

/// Primes the oracle's tables in one parallel fan-out (context_trees) through
/// ctx.sp_cache.
SharedOracle build_shared_oracle(const WorkContext& ctx,
                                 const nfv::Request& request);

/// Evaluates one combination via the shared tables; returns a Steiner tree
/// in auxiliary-graph edge ids. Deterministic: identical output to running
/// KMB inside the materialized auxiliary graph.
class SharedComboSolver {
 public:
  SharedComboSolver(const SharedOracle& oracle, const AuxOverlay& aux);

  graph::SteinerResult solve();

 private:
  struct StarEntry {
    graph::VertexId vertex;
    graph::EdgeId edge;  // working-graph edge to the source (invalid for it)
  };
  /// A vertex-to-vertex distance with the realized routing choice:
  /// p == kInvalidVertex means the direct working-graph path, otherwise the
  /// path enters the zero-cost star at p and leaves it at q.
  struct Via {
    double value = graph::kInfiniteDistance;
    graph::VertexId p = graph::kInvalidVertex;
    graph::VertexId q = graph::kInvalidVertex;
  };
  /// d_i(s', y) with the realized server.
  struct ViaSprime {
    double value = graph::kInfiniteDistance;
    graph::VertexId server = graph::kInvalidVertex;
    Via inner;
  };

  Via vertex_distance(const graph::ShortestPaths& sp_x, graph::VertexId y) const;
  ViaSprime best_via_sprime(graph::VertexId y) const;
  double closure_distance(std::size_t a, std::size_t b) const;
  void emit_via(const graph::ShortestPaths& sp_x, graph::VertexId y,
                const Via& via);
  void emit_sprime(std::size_t dest_index);
  void expand(std::size_t a, std::size_t b);

  const SharedOracle& oracle_;
  const AuxOverlay& aux_;
  const nfv::Request& request_;
  std::vector<StarEntry> star_;
  std::vector<ViaSprime> via_sprime_;
  std::set<graph::EdgeId> edge_set_;  // ascending iteration = deterministic
};

}  // namespace nfvm::core
