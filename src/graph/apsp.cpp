#include "graph/apsp.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace nfvm::graph {

AllPairsShortestPaths::AllPairsShortestPaths(const Graph& g, bool keep_parents)
    : n_(g.num_vertices()) {
  NFVM_SPAN("graph/apsp_build");
  NFVM_COUNTER_INC("graph.apsp.builds");
  dist_.resize(n_ * n_, kInfiniteDistance);
  if (keep_parents) per_source_.resize(n_);
  // Each source writes only its own row/slot, so the fan-out is
  // deterministic regardless of thread count.
  util::ThreadPool::global().parallel_for(n_, [&](std::size_t s) {
    ShortestPaths sp = dijkstra(g, static_cast<VertexId>(s));
    std::copy(sp.dist.begin(), sp.dist.end(), dist_.begin() + static_cast<long>(s * n_));
    if (keep_parents) per_source_[s] = std::move(sp);
  });
}

void AllPairsShortestPaths::check(VertexId v) const {
  if (v >= n_) throw std::out_of_range("AllPairsShortestPaths: bad vertex id");
}

double AllPairsShortestPaths::distance(VertexId u, VertexId v) const {
  check(u);
  check(v);
  return dist_[static_cast<std::size_t>(u) * n_ + v];
}

std::vector<VertexId> AllPairsShortestPaths::path(VertexId u, VertexId v) const {
  check(u);
  check(v);
  if (per_source_.empty()) {
    throw std::logic_error("AllPairsShortestPaths: built without keep_parents");
  }
  return path_vertices(per_source_[u], v);
}

std::vector<EdgeId> AllPairsShortestPaths::path_edges_between(VertexId u,
                                                              VertexId v) const {
  check(u);
  check(v);
  if (per_source_.empty()) {
    throw std::logic_error("AllPairsShortestPaths: built without keep_parents");
  }
  return path_edges(per_source_[u], v);
}

const ShortestPaths& AllPairsShortestPaths::source_tree(VertexId u) const {
  check(u);
  if (per_source_.empty()) {
    throw std::logic_error("AllPairsShortestPaths: built without keep_parents");
  }
  return per_source_[u];
}

double AllPairsShortestPaths::diameter() const {
  double best = 0.0;
  for (double d : dist_) {
    if (d < kInfiniteDistance) best = std::max(best, d);
  }
  return best;
}

bool AllPairsShortestPaths::connected() const {
  return std::all_of(dist_.begin(), dist_.end(),
                     [](double d) { return d < kInfiniteDistance; });
}

}  // namespace nfvm::graph
