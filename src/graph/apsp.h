// All-pairs shortest paths (repeated Dijkstra) with a dense distance matrix.
//
// Used by the exact solvers and anywhere many distance queries against a
// static weighted graph are needed. Memory is Theta(n^2) doubles plus the
// parent structure when path reconstruction is requested.
#pragma once

#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph.h"

namespace nfvm::graph {

class AllPairsShortestPaths {
 public:
  /// Runs Dijkstra from every vertex. `keep_parents` retains the full
  /// per-source structures for path reconstruction (doubles the memory).
  /// Sources fan out across util::ThreadPool::global(); each source's tree
  /// lands in its own slot, so the result is identical for any thread count.
  explicit AllPairsShortestPaths(const Graph& g, bool keep_parents = false);

  std::size_t num_vertices() const noexcept { return n_; }

  /// d(u, v); kInfiniteDistance when disconnected. Throws std::out_of_range.
  double distance(VertexId u, VertexId v) const;

  bool reachable(VertexId u, VertexId v) const {
    return distance(u, v) < kInfiniteDistance;
  }

  /// Vertices of a shortest path u -> v (inclusive); empty if unreachable.
  /// Throws std::logic_error when constructed without keep_parents.
  std::vector<VertexId> path(VertexId u, VertexId v) const;
  /// Edge ids of a shortest path u -> v in travel order.
  std::vector<EdgeId> path_edges_between(VertexId u, VertexId v) const;
  /// The full shortest-path tree rooted at `u`. Throws std::logic_error
  /// when constructed without keep_parents.
  const ShortestPaths& source_tree(VertexId u) const;

  /// Largest finite distance (0 for an empty/edgeless graph). Infinite
  /// pairs are ignored; use `connected()` to detect them.
  double diameter() const;
  /// True iff all pairs are mutually reachable.
  bool connected() const;

 private:
  std::size_t n_;
  std::vector<double> dist_;  // row-major n x n
  std::vector<ShortestPaths> per_source_;  // empty unless keep_parents

  void check(VertexId v) const;
};

}  // namespace nfvm::graph
