#include "graph/bridges.h"

#include <algorithm>
#include <stack>

namespace nfvm::graph {

bool CutAnalysis::is_bridge(EdgeId e) const {
  return std::binary_search(bridges.begin(), bridges.end(), e);
}

bool CutAnalysis::is_articulation_point(VertexId v) const {
  return std::binary_search(articulation_points.begin(), articulation_points.end(), v);
}

CutAnalysis find_cut_elements(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<EdgeId> parent_edge(n, kInvalidEdge);
  std::vector<bool> is_ap(n, false);
  CutAnalysis result;

  int timer = 0;
  // Iterative DFS: each frame tracks the adjacency cursor so lowlink updates
  // happen when a child's subtree completes.
  struct Frame {
    VertexId v;
    std::size_t next_adj = 0;
    int tree_children = 0;
    bool is_root = false;
  };

  for (VertexId start = 0; start < n; ++start) {
    if (disc[start] != -1) continue;
    std::stack<Frame> stack;
    stack.push(Frame{start, 0, 0, true});
    disc[start] = low[start] = timer++;

    while (!stack.empty()) {
      Frame& frame = stack.top();
      const VertexId v = frame.v;
      const auto neighbors = g.neighbors(v);
      if (frame.next_adj < neighbors.size()) {
        const Adjacency adj = neighbors[frame.next_adj++];
        if (adj.edge == parent_edge[v]) continue;  // skip the tree edge used
        if (adj.neighbor == v) continue;           // self-loop
        if (disc[adj.neighbor] != -1) {
          low[v] = std::min(low[v], disc[adj.neighbor]);  // back edge
          continue;
        }
        parent_edge[adj.neighbor] = adj.edge;
        disc[adj.neighbor] = low[adj.neighbor] = timer++;
        ++frame.tree_children;
        stack.push(Frame{adj.neighbor, 0, 0, false});
      } else {
        const Frame me = frame;  // copy before pop invalidates the reference
        stack.pop();
        if (stack.empty()) {
          if (me.is_root && me.tree_children >= 2) is_ap[me.v] = true;
          continue;
        }
        const VertexId p = stack.top().v;
        low[p] = std::min(low[p], low[me.v]);
        if (low[me.v] > disc[p]) result.bridges.push_back(parent_edge[me.v]);
        if (!stack.top().is_root && low[me.v] >= disc[p]) is_ap[p] = true;
        if (stack.top().is_root && stack.top().tree_children >= 2) is_ap[p] = true;
      }
    }
  }

  for (VertexId v = 0; v < n; ++v) {
    if (is_ap[v]) result.articulation_points.push_back(v);
  }
  std::sort(result.bridges.begin(), result.bridges.end());
  return result;
}

}  // namespace nfvm::graph
