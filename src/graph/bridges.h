// Bridges and articulation points (Tarjan lowlink DFS).
//
// A bridge is a link whose removal disconnects its component; an
// articulation point is a switch with that property. Both identify single
// points of failure: a multicast tree crossing a bridge cannot have a
// link-disjoint backup (core/backup.h), and an articulation-point switch
// cannot be protected at all.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace nfvm::graph {

struct CutAnalysis {
  /// Edge ids whose removal disconnects their component. Parallel edges are
  /// never bridges (the twin keeps the endpoints connected).
  std::vector<EdgeId> bridges;
  /// Vertices whose removal disconnects their component.
  std::vector<VertexId> articulation_points;

  bool is_bridge(EdgeId e) const;
  bool is_articulation_point(VertexId v) const;
};

/// Runs the analysis over every component. O(n + m).
CutAnalysis find_cut_elements(const Graph& g);

}  // namespace nfvm::graph
