#include "graph/components.h"

#include <queue>
#include <stdexcept>

namespace nfvm::graph {

Components connected_components(const Graph& g) {
  Components result;
  result.component.assign(g.num_vertices(), static_cast<std::size_t>(-1));
  std::queue<VertexId> queue;
  for (VertexId start = 0; start < g.num_vertices(); ++start) {
    if (result.component[start] != static_cast<std::size_t>(-1)) continue;
    const std::size_t label = result.count++;
    result.component[start] = label;
    queue.push(start);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop();
      for (const Adjacency& adj : g.neighbors(u)) {
        if (result.component[adj.neighbor] == static_cast<std::size_t>(-1)) {
          result.component[adj.neighbor] = label;
          queue.push(adj.neighbor);
        }
      }
    }
  }
  return result;
}

bool is_connected(const Graph& g) {
  return connected_components(g).count <= 1;
}

std::vector<VertexId> reachable_from(const Graph& g, VertexId source) {
  if (!g.has_vertex(source)) {
    throw std::out_of_range("reachable_from: invalid source");
  }
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> order;
  std::queue<VertexId> queue;
  seen[source] = true;
  queue.push(source);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop();
    order.push_back(u);
    for (const Adjacency& adj : g.neighbors(u)) {
      if (!seen[adj.neighbor]) {
        seen[adj.neighbor] = true;
        queue.push(adj.neighbor);
      }
    }
  }
  return order;
}

}  // namespace nfvm::graph
