// Connected components and reachability queries.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace nfvm::graph {

struct Components {
  /// component[v] = dense component index in [0, count).
  std::vector<std::size_t> component;
  std::size_t count = 0;

  bool same_component(VertexId a, VertexId b) const {
    return component.at(a) == component.at(b);
  }
};

/// Labels connected components via BFS.
Components connected_components(const Graph& g);

/// True iff the whole graph is one connected component (empty graph: true).
bool is_connected(const Graph& g);

/// Vertices reachable from `source` (including `source`).
std::vector<VertexId> reachable_from(const Graph& g, VertexId source);

}  // namespace nfvm::graph
