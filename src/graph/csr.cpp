#include "graph/csr.h"

#include "obs/metrics.h"

namespace nfvm::graph {

void CsrView::rebuild(const Graph& g) {
  NFVM_COUNTER_INC("graph.csr.rebuilds");
  const std::size_t n = g.num_vertices();
  const std::span<const Edge> edges = g.edges();

  offsets_.assign(n + 1, 0);
  std::size_t total = 0;
  for (VertexId v = 0; v < n; ++v) total += g.neighbors(v).size();
  entries_.clear();
  entries_.reserve(total);

  for (VertexId v = 0; v < n; ++v) {
    offsets_[v] = entries_.size();
    for (const Adjacency& adj : g.neighbors(v)) {
      entries_.push_back(CsrEntry{adj.neighbor, adj.edge, edges[adj.edge].weight});
    }
  }
  offsets_[n] = entries_.size();

  uid_ = g.uid();
  epoch_ = g.epoch();
  built_ = true;
}

}  // namespace nfvm::graph
