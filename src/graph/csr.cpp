#include "graph/csr.h"

#include "obs/metrics.h"

namespace nfvm::graph {

void CsrView::rebuild(const Graph& g) {
  NFVM_COUNTER_INC("graph.csr.rebuilds");
  const std::size_t n = g.num_vertices();
  const std::span<const Edge> edges = g.edges();

  offsets_.assign(n + 1, 0);
  std::size_t total = 0;
  for (VertexId v = 0; v < n; ++v) total += g.neighbors(v).size();
  entries_.clear();
  entries_.reserve(total);

  dial_eligible_ = true;
  max_int_weight_ = 1;
  for (VertexId v = 0; v < n; ++v) {
    offsets_[v] = entries_.size();
    for (const Adjacency& adj : g.neighbors(v)) {
      const double w = edges[adj.edge].weight;
      entries_.push_back(CsrEntry{adj.neighbor, adj.edge, w});
      if (dial_eligible_) {
        if (w < 1.0 || w > kMaxDialWeight || w != static_cast<double>(static_cast<std::uint32_t>(w))) {
          dial_eligible_ = false;
        } else if (static_cast<std::uint32_t>(w) > max_int_weight_) {
          max_int_weight_ = static_cast<std::uint32_t>(w);
        }
      }
    }
  }
  offsets_[n] = entries_.size();
  if (!dial_eligible_) max_int_weight_ = 0;

  uid_ = g.uid();
  epoch_ = g.epoch();
  built_ = true;
}

}  // namespace nfvm::graph
