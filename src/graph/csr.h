// Immutable, cache-friendly flattened adjacency (CSR) over a Graph.
//
// Graph stores adjacency as a per-vertex vector of {neighbor, edge} pairs;
// every weight lookup then chases edges_[e] — a second cache line per
// scanned edge. CsrView packs the whole adjacency into one offsets array
// plus one contiguous array of {neighbor, edge, weight} triples, so a
// Dijkstra relaxation scan is a single linear sweep. Entry order within a
// vertex matches Graph::neighbors (insertion order), so algorithms that
// tie-break on scan order behave identically on either representation.
//
// A view records the (uid, epoch) of the graph it was built from;
// `matches()` detects both mutation (epoch bump from add_edge / set_weight /
// add_vertex) and rebinding to a different graph object (uid change).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace nfvm::graph {

/// One packed adjacency entry: neighbor reached, edge used, edge weight.
struct CsrEntry {
  VertexId neighbor = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
  double weight = 0.0;
};

/// Largest integer edge weight for which the bucket-queue (Dial) Dijkstra
/// specialization engages. The bucket ring needs max_weight + 1 slots, so
/// the cap bounds its memory; topology generators emit unit weights and
/// hop-count modes stay far below this.
inline constexpr double kMaxDialWeight = 1024.0;

class CsrView {
 public:
  CsrView() = default;
  explicit CsrView(const Graph& g) { rebuild(g); }

  /// Rebuilds the packed adjacency from `g` unconditionally.
  void rebuild(const Graph& g);

  /// True when this view was built from `g` at its current epoch.
  bool matches(const Graph& g) const noexcept {
    return built_ && uid_ == g.uid() && epoch_ == g.epoch();
  }

  /// Rebuilds only when stale; returns true when a rebuild happened.
  bool refresh(const Graph& g) {
    if (matches(g)) return false;
    rebuild(g);
    return true;
  }

  std::size_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_entries() const noexcept { return entries_.size(); }

  /// Packed out-entries of `v`, in Graph::neighbors order. `v` must be a
  /// valid vertex of the source graph (unchecked: hot path).
  std::span<const CsrEntry> out(VertexId v) const noexcept {
    return {entries_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// (uid, epoch) of the graph this view was built from.
  std::uint64_t source_uid() const noexcept { return uid_; }
  std::uint64_t source_epoch() const noexcept { return epoch_; }

  /// True when every edge weight is a strictly positive integer no larger
  /// than kMaxDialWeight — the precondition for the bucket-queue (Dial)
  /// Dijkstra specialization. Strict positivity matters for determinism:
  /// a zero-weight edge would insert into the bucket currently being
  /// drained, breaking the sorted-drain equivalence with the binary heap.
  /// Recorded once per rebuild so the engine's per-query check is two loads.
  bool dial_eligible() const noexcept { return dial_eligible_; }

  /// Largest edge weight as an integer; only meaningful when
  /// dial_eligible() is true (sizes the engine's bucket ring).
  std::uint32_t max_integer_weight() const noexcept { return max_int_weight_; }

 private:
  bool built_ = false;
  std::uint64_t uid_ = 0;
  std::uint64_t epoch_ = 0;
  bool dial_eligible_ = false;
  std::uint32_t max_int_weight_ = 0;
  std::vector<std::size_t> offsets_;  // size num_vertices + 1
  std::vector<CsrEntry> entries_;
};

}  // namespace nfvm::graph
