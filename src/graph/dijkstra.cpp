#include "graph/dijkstra.h"

#include <algorithm>
#include <stdexcept>

#include "graph/sp_engine.h"

namespace nfvm::graph {

ShortestPaths dijkstra(const Graph& g, VertexId source) {
  return SpEngine::thread_local_engine().shortest_paths(g, source);
}

ShortestPaths dijkstra_filtered(const Graph& g, VertexId source,
                                const std::function<bool(EdgeId)>& edge_allowed) {
  return SpEngine::thread_local_engine().shortest_paths_filtered(g, source,
                                                                 edge_allowed);
}

std::vector<VertexId> path_vertices(const ShortestPaths& sp, VertexId target) {
  if (target >= sp.dist.size()) {
    throw std::out_of_range("path_vertices: invalid target vertex");
  }
  if (!sp.reachable(target)) return {};
  std::vector<VertexId> path;
  for (VertexId v = target; v != kInvalidVertex; v = sp.parent[v]) {
    path.push_back(v);
    if (v == sp.source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<EdgeId> path_edges(const ShortestPaths& sp, VertexId target) {
  if (target >= sp.dist.size()) {
    throw std::out_of_range("path_edges: invalid target vertex");
  }
  if (!sp.reachable(target)) return {};
  std::vector<EdgeId> edges;
  for (VertexId v = target; v != sp.source && sp.parent[v] != kInvalidVertex;
       v = sp.parent[v]) {
    edges.push_back(sp.parent_edge[v]);
  }
  std::reverse(edges.begin(), edges.end());
  return edges;
}

double shortest_distance(const Graph& g, VertexId from, VertexId to) {
  return SpEngine::thread_local_engine().shortest_distance(g, from, to);
}

}  // namespace nfvm::graph
