#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nfvm::graph {
namespace {

ShortestPaths run_dijkstra(const Graph& g, VertexId source,
                           const std::function<bool(EdgeId)>* edge_allowed) {
  if (!g.has_vertex(source)) {
    throw std::out_of_range("dijkstra: invalid source vertex");
  }
  NFVM_SPAN("graph/dijkstra");
  NFVM_OBS_ONLY(std::uint64_t edges_scanned = 0; std::uint64_t edges_relaxed = 0;)
  const std::size_t n = g.num_vertices();
  ShortestPaths sp;
  sp.source = source;
  sp.dist.assign(n, kInfiniteDistance);
  sp.parent.assign(n, kInvalidVertex);
  sp.parent_edge.assign(n, kInvalidEdge);
  sp.dist[source] = 0.0;

  using Item = std::pair<double, VertexId>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > sp.dist[u]) continue;  // stale entry
    for (const Adjacency& adj : g.neighbors(u)) {
      if (edge_allowed != nullptr && !(*edge_allowed)(adj.edge)) continue;
      NFVM_OBS_ONLY(++edges_scanned;)
      const double nd = d + g.edge(adj.edge).weight;
      if (nd < sp.dist[adj.neighbor]) {
        NFVM_OBS_ONLY(++edges_relaxed;)
        sp.dist[adj.neighbor] = nd;
        sp.parent[adj.neighbor] = u;
        sp.parent_edge[adj.neighbor] = adj.edge;
        heap.emplace(nd, adj.neighbor);
      }
    }
  }
  NFVM_COUNTER_INC("graph.dijkstra.runs");
  NFVM_COUNTER_ADD("graph.dijkstra.edges_scanned", edges_scanned);
  NFVM_COUNTER_ADD("graph.dijkstra.edges_relaxed", edges_relaxed);
  return sp;
}

}  // namespace

ShortestPaths dijkstra(const Graph& g, VertexId source) {
  return run_dijkstra(g, source, nullptr);
}

ShortestPaths dijkstra_filtered(const Graph& g, VertexId source,
                                const std::function<bool(EdgeId)>& edge_allowed) {
  return run_dijkstra(g, source, &edge_allowed);
}

std::vector<VertexId> path_vertices(const ShortestPaths& sp, VertexId target) {
  if (target >= sp.dist.size()) {
    throw std::out_of_range("path_vertices: invalid target vertex");
  }
  if (!sp.reachable(target)) return {};
  std::vector<VertexId> path;
  for (VertexId v = target; v != kInvalidVertex; v = sp.parent[v]) {
    path.push_back(v);
    if (v == sp.source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<EdgeId> path_edges(const ShortestPaths& sp, VertexId target) {
  if (target >= sp.dist.size()) {
    throw std::out_of_range("path_edges: invalid target vertex");
  }
  if (!sp.reachable(target)) return {};
  std::vector<EdgeId> edges;
  for (VertexId v = target; v != sp.source && sp.parent[v] != kInvalidVertex;
       v = sp.parent[v]) {
    edges.push_back(sp.parent_edge[v]);
  }
  std::reverse(edges.begin(), edges.end());
  return edges;
}

double shortest_distance(const Graph& g, VertexId from, VertexId to) {
  if (!g.has_vertex(to)) throw std::out_of_range("shortest_distance: invalid target");
  return dijkstra(g, from).dist[to];
}

}  // namespace nfvm::graph
