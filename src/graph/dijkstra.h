// Single-source shortest paths (Dijkstra) with path extraction.
//
// All edge weights in this library are non-negative by construction (the
// Graph class enforces it), so Dijkstra is always applicable.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace nfvm::graph {

inline constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

/// Shortest-path tree from one source.
struct ShortestPaths {
  VertexId source = kInvalidVertex;
  /// dist[v] = weight of the shortest path source -> v (inf if unreachable).
  std::vector<double> dist;
  /// parent[v] = previous vertex on a shortest path (kInvalidVertex for the
  /// source and unreachable vertices).
  std::vector<VertexId> parent;
  /// parent_edge[v] = edge used to reach v from parent[v].
  std::vector<EdgeId> parent_edge;

  bool reachable(VertexId v) const { return dist.at(v) < kInfiniteDistance; }
};

/// Runs Dijkstra from `source`. Throws std::out_of_range for a bad source.
ShortestPaths dijkstra(const Graph& g, VertexId source);

/// Dijkstra that ignores edges for which `edge_allowed(e)` is false.
/// Used to prune links without sufficient residual bandwidth.
ShortestPaths dijkstra_filtered(const Graph& g, VertexId source,
                                const std::function<bool(EdgeId)>& edge_allowed);

/// Vertices of the shortest path source -> target (inclusive). Empty when
/// target is unreachable; {source} when target == source.
std::vector<VertexId> path_vertices(const ShortestPaths& sp, VertexId target);

/// Edges of the shortest path source -> target in travel order. Empty when
/// unreachable or target == source.
std::vector<EdgeId> path_edges(const ShortestPaths& sp, VertexId target);

/// Weight of the shortest path between two vertices. Early-exits as soon as
/// `to` is settled instead of exploring the whole graph. Throws
/// std::out_of_range for a bad `from` or `to`. Prefer caching a
/// ShortestPaths (or a graph::SpCache) when querying many pairs from one
/// source.
double shortest_distance(const Graph& g, VertexId from, VertexId to);

}  // namespace nfvm::graph
