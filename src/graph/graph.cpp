#include "graph/graph.h"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace nfvm::graph {

std::uint64_t Graph::next_uid() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Graph::Graph(std::size_t num_vertices) : adjacency_(num_vertices) {}

Graph::Graph(const Graph& other)
    : edges_(other.edges_), adjacency_(other.adjacency_), epoch_(other.epoch_) {}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) {
    edges_ = other.edges_;
    adjacency_ = other.adjacency_;
    epoch_ = other.epoch_;
    uid_ = next_uid();
  }
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : edges_(std::move(other.edges_)),
      adjacency_(std::move(other.adjacency_)),
      uid_(other.uid_),
      epoch_(other.epoch_) {
  other.edges_.clear();
  other.adjacency_.clear();
  other.uid_ = next_uid();
  other.epoch_ = 0;
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    edges_ = std::move(other.edges_);
    adjacency_ = std::move(other.adjacency_);
    uid_ = other.uid_;
    epoch_ = other.epoch_;
    other.edges_.clear();
    other.adjacency_.clear();
    other.uid_ = next_uid();
    other.epoch_ = 0;
  }
  return *this;
}

VertexId Graph::add_vertex() {
  adjacency_.emplace_back();
  ++epoch_;
  return static_cast<VertexId>(adjacency_.size() - 1);
}

VertexId Graph::add_vertices(std::size_t count) {
  const VertexId first = static_cast<VertexId>(adjacency_.size());
  adjacency_.resize(adjacency_.size() + count);
  ++epoch_;
  return first;
}

void Graph::check_vertex(VertexId v) const {
  if (!has_vertex(v)) {
    throw std::out_of_range("Graph: invalid vertex id " + std::to_string(v));
  }
}

EdgeId Graph::add_edge(VertexId u, VertexId v, double weight) {
  check_vertex(u);
  check_vertex(v);
  if (!(weight >= 0.0) || !std::isfinite(weight)) {
    throw std::invalid_argument("Graph::add_edge: weight must be finite and >= 0");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, weight});
  adjacency_[u].push_back(Adjacency{v, id});
  if (u != v) adjacency_[v].push_back(Adjacency{u, id});
  ++epoch_;
  return id;
}

const Edge& Graph::edge(EdgeId e) const {
  if (!has_edge(e)) {
    throw std::out_of_range("Graph: invalid edge id " + std::to_string(e));
  }
  return edges_[e];
}

void Graph::set_weight(EdgeId e, double weight) {
  if (!has_edge(e)) {
    throw std::out_of_range("Graph: invalid edge id " + std::to_string(e));
  }
  if (!(weight >= 0.0) || !std::isfinite(weight)) {
    throw std::invalid_argument("Graph::set_weight: weight must be finite and >= 0");
  }
  edges_[e].weight = weight;
  ++epoch_;
}

std::span<const Adjacency> Graph::neighbors(VertexId v) const {
  check_vertex(v);
  return adjacency_[v];
}

std::size_t Graph::degree(VertexId v) const {
  check_vertex(v);
  std::size_t deg = adjacency_[v].size();
  // Self-loops appear once in the adjacency list but count twice.
  for (const Adjacency& adj : adjacency_[v]) {
    if (adj.neighbor == v) ++deg;
  }
  return deg;
}

VertexId Graph::other_endpoint(EdgeId e, VertexId x) const {
  const Edge& ed = edge(e);
  if (ed.u == x) return ed.v;
  if (ed.v == x) return ed.u;
  throw std::invalid_argument("Graph::other_endpoint: vertex is not an endpoint");
}

std::optional<EdgeId> Graph::find_edge(VertexId u, VertexId v) const {
  check_vertex(u);
  check_vertex(v);
  const VertexId scan = adjacency_[u].size() <= adjacency_[v].size() ? u : v;
  const VertexId want = scan == u ? v : u;
  for (const Adjacency& adj : adjacency_[scan]) {
    if (adj.neighbor == want) return adj.edge;
  }
  return std::nullopt;
}

double Graph::total_weight() const noexcept {
  double sum = 0.0;
  for (const Edge& e : edges_) sum += e.weight;
  return sum;
}

}  // namespace nfvm::graph
