// Undirected weighted multigraph.
//
// This is the substrate every algorithm in the library runs on. Vertices and
// edges are dense integer ids, adjacency is a per-vertex vector of
// {neighbor, edge id} pairs, and edge weights are mutable so the same
// structure serves both static topologies and the per-request weighted
// auxiliary graphs of Appro_Multi / Online_CP.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace nfvm::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// An undirected edge. `u <= v` is NOT guaranteed; endpoints keep insertion
/// order so callers can reconstruct orientation-sensitive metadata.
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  double weight = 1.0;
};

/// One adjacency entry: the neighbor reached and the edge used.
struct Adjacency {
  VertexId neighbor = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
};

/// A self-contained edge description (id, endpoints, weight). Lets the tree
/// and Steiner machinery operate on implicit graphs — e.g. the Appro_Multi
/// auxiliary-graph overlay — without materializing a Graph per query.
struct EdgeRecord {
  EdgeId id = kInvalidEdge;
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  double weight = 1.0;
};

class Graph {
 public:
  Graph() = default;
  /// Creates a graph with `num_vertices` isolated vertices.
  explicit Graph(std::size_t num_vertices);

  /// A copy is a distinct graph object: it gets a fresh uid so derived views
  /// and caches (CsrView, SpEngine, SpCache) never mistake it for the
  /// original once the two diverge. Moves transfer the uid (the moved-to
  /// object IS the same logical graph); the moved-from object is left empty
  /// with a fresh uid.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;
  ~Graph() = default;

  /// Appends an isolated vertex and returns its id.
  VertexId add_vertex();
  /// Appends `count` isolated vertices; returns the id of the first.
  VertexId add_vertices(std::size_t count);

  /// Adds an undirected edge. Self-loops and parallel edges are permitted
  /// (parallel edges arise naturally in pseudo-multicast accounting).
  /// Throws std::out_of_range for invalid endpoints and
  /// std::invalid_argument for negative or non-finite weights.
  EdgeId add_edge(VertexId u, VertexId v, double weight = 1.0);

  std::size_t num_vertices() const noexcept { return adjacency_.size(); }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  bool has_vertex(VertexId v) const noexcept { return v < adjacency_.size(); }
  bool has_edge(EdgeId e) const noexcept { return e < edges_.size(); }

  /// Edge record. Throws std::out_of_range on an invalid id.
  const Edge& edge(EdgeId e) const;

  double weight(EdgeId e) const { return edge(e).weight; }
  /// Reassigns an edge weight (>= 0, finite).
  void set_weight(EdgeId e, double weight);

  /// Neighbors of `v` in insertion order. Throws std::out_of_range.
  std::span<const Adjacency> neighbors(VertexId v) const;

  /// Degree counting parallel edges; a self-loop contributes 2.
  std::size_t degree(VertexId v) const;

  /// The endpoint of `e` that is not `x`. For a self-loop returns `x`.
  /// Throws std::invalid_argument if `x` is not an endpoint of `e`.
  VertexId other_endpoint(EdgeId e, VertexId x) const;

  /// Finds some edge between u and v (linear in min degree), if any.
  std::optional<EdgeId> find_edge(VertexId u, VertexId v) const;

  /// All edges, indexed by EdgeId.
  std::span<const Edge> edges() const noexcept { return edges_; }

  /// Sum of all edge weights.
  double total_weight() const noexcept;

  /// Identity of this graph object, unique process-wide. Copies get a fresh
  /// uid; moves transfer it. Derived structures (CSR views, shortest-path
  /// caches) key on (uid, epoch) to detect both mutation and rebinding.
  std::uint64_t uid() const noexcept { return uid_; }

  /// Mutation counter: bumped by every add_vertex / add_vertices / add_edge /
  /// set_weight. A view or cache built at epoch e is stale iff
  /// epoch() != e (for the same uid()).
  std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
  std::uint64_t uid_ = next_uid();
  std::uint64_t epoch_ = 0;

  static std::uint64_t next_uid() noexcept;
  void check_vertex(VertexId v) const;
};

}  // namespace nfvm::graph
