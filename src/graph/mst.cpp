#include "graph/mst.h"

#include <algorithm>
#include <numeric>

#include "graph/union_find.h"

namespace nfvm::graph {
namespace {

MstResult kruskal_impl(const Graph& g, std::vector<EdgeId> candidate_edges,
                       bool require_all_vertices) {
  std::stable_sort(candidate_edges.begin(), candidate_edges.end(),
                   [&g](EdgeId a, EdgeId b) { return g.weight(a) < g.weight(b); });

  UnionFind uf(g.num_vertices());
  MstResult result;
  std::vector<bool> touched(g.num_vertices(), false);
  for (EdgeId e : candidate_edges) {
    const Edge& ed = g.edge(e);
    touched[ed.u] = true;
    touched[ed.v] = true;
  }

  for (EdgeId e : candidate_edges) {
    const Edge& ed = g.edge(e);
    if (uf.unite(ed.u, ed.v)) {
      result.edges.push_back(e);
      result.weight += ed.weight;
    }
  }

  // The forest spans if every (relevant) vertex is in one component.
  std::size_t root = static_cast<std::size_t>(-1);
  bool spanning = true;
  bool any = false;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!require_all_vertices && !touched[v]) continue;
    any = true;
    const std::size_t r = uf.find(v);
    if (root == static_cast<std::size_t>(-1)) {
      root = r;
    } else if (r != root) {
      spanning = false;
      break;
    }
  }
  result.spanning = any && spanning;
  return result;
}

}  // namespace

MstResult kruskal_mst(const Graph& g) {
  std::vector<EdgeId> all(g.num_edges());
  std::iota(all.begin(), all.end(), EdgeId{0});
  return kruskal_impl(g, std::move(all), /*require_all_vertices=*/true);
}

MstResult kruskal_mst_subset(const Graph& g, std::span<const EdgeId> edges) {
  return kruskal_impl(g, std::vector<EdgeId>(edges.begin(), edges.end()),
                      /*require_all_vertices=*/false);
}

}  // namespace nfvm::graph
