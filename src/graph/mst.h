// Minimum spanning trees / forests (Kruskal).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace nfvm::graph {

struct MstResult {
  /// Edges of the minimum spanning forest, in the order Kruskal accepts them.
  std::vector<EdgeId> edges;
  /// Total weight of the forest.
  double weight = 0.0;
  /// True iff the forest is a single tree spanning every vertex.
  bool spanning = false;
};

/// Minimum spanning forest of the whole graph. Deterministic: ties are
/// broken by edge id.
MstResult kruskal_mst(const Graph& g);

/// Minimum spanning forest restricted to `edges` (ids into `g`). Vertices
/// not touched by `edges` are ignored for the `spanning` flag, which instead
/// reports whether the chosen edges connect all touched vertices.
MstResult kruskal_mst_subset(const Graph& g, std::span<const EdgeId> edges);

}  // namespace nfvm::graph
