#include "graph/sp_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace nfvm::graph {

// --- SpEngine ---------------------------------------------------------------

void SpEngine::heap_push(HeapItem item) {
  heap_.push_back(item);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!item_less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

SpEngine::HeapItem SpEngine::heap_pop() {
  const HeapItem top = heap_.front();
  const HeapItem last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= heap_.size()) break;
      const std::size_t end = std::min(first + 4, heap_.size());
      std::size_t best = first;
      for (std::size_t j = first + 1; j < end; ++j) {
        if (item_less(heap_[j], heap_[best])) best = j;
      }
      if (!item_less(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void SpEngine::prepare(const Graph& g) {
  view_.refresh(g);
  const std::size_t n = g.num_vertices();
  if (stamp_.size() < n) {
    stamp_.resize(n, 0);
    target_stamp_.resize(n, 0);
    dist_.resize(n);
    parent_.resize(n);
    parent_edge_.resize(n);
  }
  if (++generation_ == 0) {  // wrapped: stamps are ambiguous, hard reset
    std::fill(stamp_.begin(), stamp_.end(), 0);
    std::fill(bucket_stamp_.begin(), bucket_stamp_.end(), 0);
    for (std::vector<VertexId>& bucket : buckets_) bucket.clear();
    generation_ = 1;
  }
  heap_.clear();
  reached_.clear();
}

void SpEngine::touch(VertexId v) {
  if (stamp_[v] == generation_) return;
  stamp_[v] = generation_;
  dist_[v] = kInfiniteDistance;
  parent_[v] = kInvalidVertex;
  parent_edge_[v] = kInvalidEdge;
  reached_.push_back(v);
}

void SpEngine::run(std::span<const VertexId> seeds,
                   const std::function<bool(EdgeId)>* edge_allowed,
                   const std::uint8_t* edge_mask, std::size_t targets_remaining) {
  NFVM_SPAN("graph/dijkstra");
  last_settled_target_ = kInvalidVertex;
  last_used_dial_ = view_.dial_eligible();
  for (VertexId s : seeds) {
    touch(s);
    dist_[s] = 0.0;
  }
  if (last_used_dial_) {
    run_dial(seeds, edge_allowed, edge_mask, targets_remaining);
    NFVM_COUNTER_INC("graph.dijkstra.dial_runs");
  } else {
    run_heap(seeds, edge_allowed, edge_mask, targets_remaining);
  }
  NFVM_COUNTER_INC("graph.dijkstra.runs");
}

void SpEngine::run_heap(std::span<const VertexId> seeds,
                        const std::function<bool(EdgeId)>* edge_allowed,
                        const std::uint8_t* edge_mask,
                        std::size_t targets_remaining) {
  NFVM_OBS_ONLY(std::uint64_t edges_scanned = 0; std::uint64_t edges_relaxed = 0;)
  for (VertexId s : seeds) heap_push(HeapItem{0.0, s});

  while (!heap_.empty()) {
    const HeapItem top = heap_pop();
    const VertexId u = top.vertex;
    if (top.dist > dist_[u]) continue;  // stale entry
    if (targets_remaining > 0 && target_stamp_[u] == target_generation_) {
      target_stamp_[u] = 0;  // settled: count each distinct target once
      last_settled_target_ = u;
      if (--targets_remaining == 0) break;
    }
    for (const CsrEntry& entry : view_.out(u)) {
      if (edge_allowed != nullptr && !(*edge_allowed)(entry.edge)) continue;
      if (edge_mask != nullptr && edge_mask[entry.edge] == 0) continue;
      NFVM_OBS_ONLY(++edges_scanned;)
      const double nd = top.dist + entry.weight;
      touch(entry.neighbor);
      if (nd < dist_[entry.neighbor]) {
        NFVM_OBS_ONLY(++edges_relaxed;)
        dist_[entry.neighbor] = nd;
        parent_[entry.neighbor] = u;
        parent_edge_[entry.neighbor] = entry.edge;
        heap_push(HeapItem{nd, entry.neighbor});
      }
    }
  }
  NFVM_COUNTER_ADD("graph.dijkstra.edges_scanned", edges_scanned);
  NFVM_COUNTER_ADD("graph.dijkstra.edges_relaxed", edges_relaxed);
}

// Bucket-queue (Dial) loop. Precondition (checked by the CSR weight
// inspection): every edge weight is an integer in [1, kMaxDialWeight].
// Invariant: while draining distance d, every live entry lies in
// [d, d + ring - 1], and bucket d % ring holds only entries whose stored
// distance is exactly d — a push during the drain of d' targets
// nd in [d' + 1, d' + ring - 1], which never wraps onto a still-undrained
// smaller distance. Draining each bucket in ascending vertex-id order
// therefore settles vertices in exactly the heap's (distance, id) order.
void SpEngine::run_dial(std::span<const VertexId> seeds,
                        const std::function<bool(EdgeId)>* edge_allowed,
                        const std::uint8_t* edge_mask,
                        std::size_t targets_remaining) {
  NFVM_OBS_ONLY(std::uint64_t edges_scanned = 0; std::uint64_t edges_relaxed = 0;)
  const std::size_t ring = static_cast<std::size_t>(view_.max_integer_weight()) + 1;
  if (buckets_.size() < ring) {
    buckets_.resize(ring);
    bucket_stamp_.resize(ring, 0);
  }
  const auto bucket_at = [&](std::size_t slot) -> std::vector<VertexId>& {
    std::vector<VertexId>& bucket = buckets_[slot];
    if (bucket_stamp_[slot] != generation_) {  // stale from an earlier query
      bucket.clear();
      bucket_stamp_[slot] = generation_;
    }
    return bucket;
  };

  std::size_t pending = seeds.size();
  {
    std::vector<VertexId>& zero = bucket_at(0);
    zero.insert(zero.end(), seeds.begin(), seeds.end());
  }

  std::uint64_t d = 0;
  while (pending > 0) {
    const std::size_t slot = static_cast<std::size_t>(d % ring);
    std::vector<VertexId>& bucket = bucket_at(slot);
    if (bucket.empty()) {
      ++d;
      continue;
    }
    // Stage and sort: every entry here has stored distance exactly d, so
    // ascending id is the heap's tie-break. Entries whose dist_ no longer
    // equals d were improved before being drained — stale, skip.
    bucket_scratch_.assign(bucket.begin(), bucket.end());
    bucket.clear();
    pending -= bucket_scratch_.size();
    std::sort(bucket_scratch_.begin(), bucket_scratch_.end());
    const double dd = static_cast<double>(d);
    for (VertexId u : bucket_scratch_) {
      if (dist_[u] != dd) continue;  // stale entry
      if (targets_remaining > 0 && target_stamp_[u] == target_generation_) {
        target_stamp_[u] = 0;
        last_settled_target_ = u;
        if (--targets_remaining == 0) {
          // Leftover ring entries are abandoned; their stamps go stale at
          // the next generation bump, so no cleanup sweep is needed.
          NFVM_COUNTER_ADD("graph.dijkstra.edges_scanned", edges_scanned);
          NFVM_COUNTER_ADD("graph.dijkstra.edges_relaxed", edges_relaxed);
          return;
        }
      }
      for (const CsrEntry& entry : view_.out(u)) {
        if (edge_allowed != nullptr && !(*edge_allowed)(entry.edge)) continue;
        if (edge_mask != nullptr && edge_mask[entry.edge] == 0) continue;
        NFVM_OBS_ONLY(++edges_scanned;)
        const double nd = dd + entry.weight;
        touch(entry.neighbor);
        if (nd < dist_[entry.neighbor]) {
          NFVM_OBS_ONLY(++edges_relaxed;)
          dist_[entry.neighbor] = nd;
          parent_[entry.neighbor] = u;
          parent_edge_[entry.neighbor] = entry.edge;
          bucket_at(static_cast<std::size_t>(static_cast<std::uint64_t>(nd) % ring))
              .push_back(entry.neighbor);
          ++pending;
        }
      }
    }
    ++d;
  }
  NFVM_COUNTER_ADD("graph.dijkstra.edges_scanned", edges_scanned);
  NFVM_COUNTER_ADD("graph.dijkstra.edges_relaxed", edges_relaxed);
}

ShortestPaths SpEngine::materialize(VertexId source) const {
  ShortestPaths sp;
  sp.source = source;
  const std::size_t n = view_.num_vertices();
  sp.dist.assign(n, kInfiniteDistance);
  sp.parent.assign(n, kInvalidVertex);
  sp.parent_edge.assign(n, kInvalidEdge);
  for (VertexId v : reached_) {
    sp.dist[v] = dist_[v];
    sp.parent[v] = parent_[v];
    sp.parent_edge[v] = parent_edge_[v];
  }
  return sp;
}

ShortestPaths SpEngine::shortest_paths(const Graph& g, VertexId source) {
  if (!g.has_vertex(source)) {
    throw std::out_of_range("dijkstra: invalid source vertex");
  }
  prepare(g);
  run({&source, 1}, nullptr, nullptr, 0);
  return materialize(source);
}

ShortestPaths SpEngine::shortest_paths_filtered(
    const Graph& g, VertexId source,
    const std::function<bool(EdgeId)>& edge_allowed) {
  if (!g.has_vertex(source)) {
    throw std::out_of_range("dijkstra: invalid source vertex");
  }
  prepare(g);
  run({&source, 1}, &edge_allowed, nullptr, 0);
  return materialize(source);
}

ShortestPaths SpEngine::shortest_paths_masked(
    const Graph& g, VertexId source, std::span<const std::uint8_t> edge_mask) {
  if (!g.has_vertex(source)) {
    throw std::out_of_range("dijkstra: invalid source vertex");
  }
  if (!edge_mask.empty() && edge_mask.size() < g.num_edges()) {
    throw std::invalid_argument("dijkstra: edge mask smaller than edge count");
  }
  prepare(g);
  run({&source, 1}, nullptr, edge_mask.empty() ? nullptr : edge_mask.data(), 0);
  return materialize(source);
}

std::vector<ShortestPaths> SpEngine::batch_shortest_paths(
    const Graph& g, std::span<const VertexId> sources,
    std::span<const std::uint8_t> edge_mask) {
  for (VertexId s : sources) {
    if (!g.has_vertex(s)) {
      throw std::out_of_range("dijkstra: invalid source vertex");
    }
  }
  if (!edge_mask.empty() && edge_mask.size() < g.num_edges()) {
    throw std::invalid_argument("dijkstra: edge mask smaller than edge count");
  }
  const std::uint8_t* mask = edge_mask.empty() ? nullptr : edge_mask.data();
  std::vector<ShortestPaths> out;
  out.reserve(sources.size());
  for (VertexId s : sources) {
    // prepare() after the first source is two loads (view match) plus a
    // generation bump — the workspace "clear" is the stamp, not an O(n)
    // fill, so the whole batch reuses one set of buffers.
    prepare(g);
    run({&s, 1}, nullptr, mask, 0);
    out.push_back(materialize(s));
  }
  return out;
}

double SpEngine::shortest_distance(const Graph& g, VertexId from, VertexId to) {
  if (!g.has_vertex(from)) {
    throw std::out_of_range("shortest_distance: invalid source");
  }
  if (!g.has_vertex(to)) {
    throw std::out_of_range("shortest_distance: invalid target");
  }
  NFVM_COUNTER_INC("graph.sp_engine.early_exit_queries");
  prepare(g);
  if (++target_generation_ == 0) {
    std::fill(target_stamp_.begin(), target_stamp_.end(), 0);
    target_generation_ = 1;
  }
  target_stamp_[to] = target_generation_;
  run({&from, 1}, nullptr, nullptr, 1);
  target_stamp_[to] = 0;
  return stamp_[to] == generation_ ? dist_[to] : kInfiniteDistance;
}

std::vector<double> SpEngine::distances_to(const Graph& g, VertexId from,
                                           std::span<const VertexId> targets) {
  if (!g.has_vertex(from)) {
    throw std::out_of_range("distances_to: invalid source");
  }
  for (VertexId t : targets) {
    if (!g.has_vertex(t)) throw std::out_of_range("distances_to: invalid target");
  }
  NFVM_COUNTER_INC("graph.sp_engine.early_exit_queries");
  prepare(g);
  if (++target_generation_ == 0) {
    std::fill(target_stamp_.begin(), target_stamp_.end(), 0);
    target_generation_ = 1;
  }
  std::size_t distinct = 0;
  for (VertexId t : targets) {
    if (target_stamp_[t] != target_generation_) {
      target_stamp_[t] = target_generation_;
      ++distinct;
    }
  }
  run({&from, 1}, nullptr, nullptr, distinct);
  std::vector<double> out;
  out.reserve(targets.size());
  for (VertexId t : targets) {
    out.push_back(stamp_[t] == generation_ ? dist_[t] : kInfiniteDistance);
    target_stamp_[t] = 0;  // leave no stale stamps for the next query
  }
  return out;
}

VertexId SpEngine::grow_step(const Graph& g,
                             std::span<const VertexId> tree_vertices,
                             std::span<const VertexId> targets) {
  prepare(g);
  if (++target_generation_ == 0) {
    std::fill(target_stamp_.begin(), target_stamp_.end(), 0);
    target_generation_ = 1;
  }
  std::size_t distinct = 0;
  for (VertexId t : targets) {
    if (target_stamp_[t] != target_generation_) {
      target_stamp_[t] = target_generation_;
      ++distinct;
    }
  }
  // Stop at the FIRST settled target — pending terminals race, closest wins.
  run(tree_vertices, nullptr, nullptr, distinct > 0 ? 1 : 0);
  for (VertexId t : targets) target_stamp_[t] = 0;
  return last_settled_target_;
}

SpEngine& SpEngine::thread_local_engine() {
  thread_local SpEngine engine;
  return engine;
}

std::vector<ShortestPaths> batch_dijkstra(const Graph& g,
                                          std::span<const VertexId> sources,
                                          std::span<const std::uint8_t> edge_mask) {
  util::ThreadPool& pool = util::ThreadPool::global();
  const std::size_t chunks = std::min(sources.size(), pool.num_threads());
  if (chunks <= 1) {
    return SpEngine::thread_local_engine().batch_shortest_paths(g, sources,
                                                                edge_mask);
  }
  // Contiguous chunks, one batched engine invocation per chunk. Slot i
  // depends only on sources[i], never on the chunking, so the merged result
  // is byte-identical to the single-threaded batch.
  std::vector<ShortestPaths> out(sources.size());
  pool.parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = sources.size() * c / chunks;
    const std::size_t end = sources.size() * (c + 1) / chunks;
    std::vector<ShortestPaths> part =
        SpEngine::thread_local_engine().batch_shortest_paths(
            g, sources.subspan(begin, end - begin), edge_mask);
    for (std::size_t i = 0; i < part.size(); ++i) {
      out[begin + i] = std::move(part[i]);
    }
  });
  return out;
}

// --- SpCache ----------------------------------------------------------------

SpCache::SpCache(std::size_t capacity) : capacity_(capacity) {}

void SpCache::sync(const Graph& g) {
  if (bound_ && uid_ == g.uid() && epoch_ == g.epoch()) return;
  if (bound_ && !lru_.empty()) NFVM_COUNTER_INC("graph.spcache.invalidations");
  lru_.clear();
  index_.clear();
  uid_ = g.uid();
  epoch_ = g.epoch();
  bound_ = true;
}

std::shared_ptr<const ShortestPaths> SpCache::paths_from(const Graph& g,
                                                         VertexId source) {
  if (auto cached = try_get(g, source)) return cached;
  auto paths =
      std::make_shared<const ShortestPaths>(engine_.shortest_paths(g, source));
  put(g, source, paths);
  return paths;
}

std::shared_ptr<const ShortestPaths> SpCache::try_get(const Graph& g,
                                                      VertexId source) {
  sync(g);
  const auto it = index_.find(source);
  if (it == index_.end()) {
    NFVM_COUNTER_INC("graph.spcache.misses");
    return nullptr;
  }
  NFVM_COUNTER_INC("graph.spcache.hits");
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
  return it->second->second;
}

void SpCache::put(const Graph& g, VertexId source,
                  std::shared_ptr<const ShortestPaths> paths) {
  sync(g);
  const auto it = index_.find(source);
  if (it != index_.end()) {
    it->second->second = std::move(paths);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(source, std::move(paths));
  index_[source] = lru_.begin();
  if (capacity_ > 0 && lru_.size() > capacity_) {
    NFVM_COUNTER_INC("graph.spcache.evictions");
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void SpCache::rebind_keep(
    const Graph& g,
    const std::function<bool(VertexId, const ShortestPaths&)>& keep) {
  NFVM_OBS_ONLY(std::uint64_t dropped = 0;)
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (keep(it->first, *it->second)) {
      ++it;
      continue;
    }
    index_.erase(it->first);
    it = lru_.erase(it);
    NFVM_OBS_ONLY(++dropped;)
  }
  uid_ = g.uid();
  epoch_ = g.epoch();
  bound_ = true;
  NFVM_COUNTER_ADD("graph.spcache.keyed_evictions", dropped);
}

void SpCache::clear() {
  lru_.clear();
  index_.clear();
  bound_ = false;
}

}  // namespace nfvm::graph
