#include "graph/sp_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nfvm::graph {

// --- SpEngine ---------------------------------------------------------------

void SpEngine::heap_push(HeapItem item) {
  heap_.push_back(item);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!item_less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

SpEngine::HeapItem SpEngine::heap_pop() {
  const HeapItem top = heap_.front();
  const HeapItem last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= heap_.size()) break;
      const std::size_t end = std::min(first + 4, heap_.size());
      std::size_t best = first;
      for (std::size_t j = first + 1; j < end; ++j) {
        if (item_less(heap_[j], heap_[best])) best = j;
      }
      if (!item_less(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void SpEngine::prepare(const Graph& g) {
  view_.refresh(g);
  const std::size_t n = g.num_vertices();
  if (stamp_.size() < n) {
    stamp_.resize(n, 0);
    target_stamp_.resize(n, 0);
    dist_.resize(n);
    parent_.resize(n);
    parent_edge_.resize(n);
  }
  if (++generation_ == 0) {  // wrapped: stamps are ambiguous, hard reset
    std::fill(stamp_.begin(), stamp_.end(), 0);
    generation_ = 1;
  }
  heap_.clear();
  reached_.clear();
}

void SpEngine::touch(VertexId v) {
  if (stamp_[v] == generation_) return;
  stamp_[v] = generation_;
  dist_[v] = kInfiniteDistance;
  parent_[v] = kInvalidVertex;
  parent_edge_[v] = kInvalidEdge;
  reached_.push_back(v);
}

void SpEngine::run(VertexId source, const std::function<bool(EdgeId)>* edge_allowed,
                   std::size_t targets_remaining) {
  NFVM_SPAN("graph/dijkstra");
  NFVM_OBS_ONLY(std::uint64_t edges_scanned = 0; std::uint64_t edges_relaxed = 0;)
  touch(source);
  dist_[source] = 0.0;
  heap_push(HeapItem{0.0, source});

  while (!heap_.empty()) {
    const HeapItem top = heap_pop();
    const VertexId u = top.vertex;
    if (top.dist > dist_[u]) continue;  // stale entry
    if (targets_remaining > 0 && target_stamp_[u] == target_generation_) {
      target_stamp_[u] = 0;  // settled: count each distinct target once
      if (--targets_remaining == 0) break;
    }
    for (const CsrEntry& entry : view_.out(u)) {
      if (edge_allowed != nullptr && !(*edge_allowed)(entry.edge)) continue;
      NFVM_OBS_ONLY(++edges_scanned;)
      const double nd = top.dist + entry.weight;
      touch(entry.neighbor);
      if (nd < dist_[entry.neighbor]) {
        NFVM_OBS_ONLY(++edges_relaxed;)
        dist_[entry.neighbor] = nd;
        parent_[entry.neighbor] = u;
        parent_edge_[entry.neighbor] = entry.edge;
        heap_push(HeapItem{nd, entry.neighbor});
      }
    }
  }
  NFVM_COUNTER_INC("graph.dijkstra.runs");
  NFVM_COUNTER_ADD("graph.dijkstra.edges_scanned", edges_scanned);
  NFVM_COUNTER_ADD("graph.dijkstra.edges_relaxed", edges_relaxed);
}

ShortestPaths SpEngine::materialize(VertexId source) const {
  ShortestPaths sp;
  sp.source = source;
  const std::size_t n = view_.num_vertices();
  sp.dist.assign(n, kInfiniteDistance);
  sp.parent.assign(n, kInvalidVertex);
  sp.parent_edge.assign(n, kInvalidEdge);
  for (VertexId v : reached_) {
    sp.dist[v] = dist_[v];
    sp.parent[v] = parent_[v];
    sp.parent_edge[v] = parent_edge_[v];
  }
  return sp;
}

ShortestPaths SpEngine::shortest_paths(const Graph& g, VertexId source) {
  if (!g.has_vertex(source)) {
    throw std::out_of_range("dijkstra: invalid source vertex");
  }
  prepare(g);
  run(source, nullptr, 0);
  return materialize(source);
}

ShortestPaths SpEngine::shortest_paths_filtered(
    const Graph& g, VertexId source,
    const std::function<bool(EdgeId)>& edge_allowed) {
  if (!g.has_vertex(source)) {
    throw std::out_of_range("dijkstra: invalid source vertex");
  }
  prepare(g);
  run(source, &edge_allowed, 0);
  return materialize(source);
}

double SpEngine::shortest_distance(const Graph& g, VertexId from, VertexId to) {
  if (!g.has_vertex(from)) {
    throw std::out_of_range("shortest_distance: invalid source");
  }
  if (!g.has_vertex(to)) {
    throw std::out_of_range("shortest_distance: invalid target");
  }
  NFVM_COUNTER_INC("graph.sp_engine.early_exit_queries");
  prepare(g);
  if (++target_generation_ == 0) {
    std::fill(target_stamp_.begin(), target_stamp_.end(), 0);
    target_generation_ = 1;
  }
  target_stamp_[to] = target_generation_;
  run(from, nullptr, 1);
  target_stamp_[to] = 0;
  return stamp_[to] == generation_ ? dist_[to] : kInfiniteDistance;
}

std::vector<double> SpEngine::distances_to(const Graph& g, VertexId from,
                                           std::span<const VertexId> targets) {
  if (!g.has_vertex(from)) {
    throw std::out_of_range("distances_to: invalid source");
  }
  for (VertexId t : targets) {
    if (!g.has_vertex(t)) throw std::out_of_range("distances_to: invalid target");
  }
  NFVM_COUNTER_INC("graph.sp_engine.early_exit_queries");
  prepare(g);
  if (++target_generation_ == 0) {
    std::fill(target_stamp_.begin(), target_stamp_.end(), 0);
    target_generation_ = 1;
  }
  std::size_t distinct = 0;
  for (VertexId t : targets) {
    if (target_stamp_[t] != target_generation_) {
      target_stamp_[t] = target_generation_;
      ++distinct;
    }
  }
  run(from, nullptr, distinct);
  std::vector<double> out;
  out.reserve(targets.size());
  for (VertexId t : targets) {
    out.push_back(stamp_[t] == generation_ ? dist_[t] : kInfiniteDistance);
    target_stamp_[t] = 0;  // leave no stale stamps for the next query
  }
  return out;
}

SpEngine& SpEngine::thread_local_engine() {
  thread_local SpEngine engine;
  return engine;
}

// --- SpCache ----------------------------------------------------------------

SpCache::SpCache(std::size_t capacity) : capacity_(capacity) {}

void SpCache::sync(const Graph& g) {
  if (bound_ && uid_ == g.uid() && epoch_ == g.epoch()) return;
  if (bound_ && !lru_.empty()) NFVM_COUNTER_INC("graph.spcache.invalidations");
  lru_.clear();
  index_.clear();
  uid_ = g.uid();
  epoch_ = g.epoch();
  bound_ = true;
}

std::shared_ptr<const ShortestPaths> SpCache::paths_from(const Graph& g,
                                                         VertexId source) {
  if (auto cached = try_get(g, source)) return cached;
  auto paths =
      std::make_shared<const ShortestPaths>(engine_.shortest_paths(g, source));
  put(g, source, paths);
  return paths;
}

std::shared_ptr<const ShortestPaths> SpCache::try_get(const Graph& g,
                                                      VertexId source) {
  sync(g);
  const auto it = index_.find(source);
  if (it == index_.end()) {
    NFVM_COUNTER_INC("graph.spcache.misses");
    return nullptr;
  }
  NFVM_COUNTER_INC("graph.spcache.hits");
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
  return it->second->second;
}

void SpCache::put(const Graph& g, VertexId source,
                  std::shared_ptr<const ShortestPaths> paths) {
  sync(g);
  const auto it = index_.find(source);
  if (it != index_.end()) {
    it->second->second = std::move(paths);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(source, std::move(paths));
  index_[source] = lru_.begin();
  if (capacity_ > 0 && lru_.size() > capacity_) {
    NFVM_COUNTER_INC("graph.spcache.evictions");
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void SpCache::rebind_keep(
    const Graph& g,
    const std::function<bool(VertexId, const ShortestPaths&)>& keep) {
  NFVM_OBS_ONLY(std::uint64_t dropped = 0;)
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (keep(it->first, *it->second)) {
      ++it;
      continue;
    }
    index_.erase(it->first);
    it = lru_.erase(it);
    NFVM_OBS_ONLY(++dropped;)
  }
  uid_ = g.uid();
  epoch_ = g.epoch();
  bound_ = true;
  NFVM_COUNTER_ADD("graph.spcache.keyed_evictions", dropped);
}

void SpCache::clear() {
  lru_.clear();
  index_.clear();
  bound_ = false;
}

}  // namespace nfvm::graph
