// Reusable shortest-path engine and shortest-path-tree cache.
//
// Every algorithm in this library bottoms out in repeated Dijkstra runs.
// The free functions in graph/dijkstra.h allocate three O(n) arrays and a
// heap per call and scan the pointer-chasing adjacency lists; under heavy
// request volumes that allocation and cache-miss traffic dominates. This
// header provides the shared substrate:
//
//  * SpEngine — owns a CsrView (rebuilt lazily when the graph's
//    (uid, epoch) changes) plus scratch dist/parent/parent_edge buffers
//    with generation-stamped lazy reset, a 4-ary heap, early-exit
//    point-to-point / target-set queries, and the filtered-edge variant.
//    The dijkstra() free functions are thin wrappers over the per-thread
//    engine, so existing call sites keep working and allocate nothing
//    beyond the returned ShortestPaths.
//
//  * SpCache — an LRU of shortest-path trees keyed by
//    (graph uid, graph epoch, source). Sharing one cache across a
//    request's lifetime stops Appro_Multi / Alg_One_Server / the Steiner
//    metric closure from recomputing the same source, destination and
//    server trees. Any mutation (set_weight, add_edge) bumps the graph
//    epoch and invalidates the whole cache on the next query.
//
// Tie-breaking: the engine's heap orders items by (distance, vertex id),
// exactly like the std::priority_queue<pair<double, VertexId>> it
// replaces, and CSR entries keep Graph::neighbors order — so the engine
// returns bit-identical trees to the historical implementation.
//
// Thread model: SpEngine and SpCache are NOT thread-safe; use one per
// thread (SpEngine::thread_local_engine()) or confine a cache to the
// thread that owns the request. Concurrent *reads* of a const Graph from
// many engines are safe.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr.h"
#include "graph/dijkstra.h"
#include "graph/graph.h"

namespace nfvm::graph {

class SpEngine {
 public:
  SpEngine() = default;
  SpEngine(const SpEngine&) = delete;
  SpEngine& operator=(const SpEngine&) = delete;

  /// Full Dijkstra from `source`. Bit-identical to graph::dijkstra.
  /// Throws std::out_of_range for a bad source.
  ShortestPaths shortest_paths(const Graph& g, VertexId source);

  /// Dijkstra ignoring edges for which `edge_allowed(e)` is false.
  ShortestPaths shortest_paths_filtered(
      const Graph& g, VertexId source,
      const std::function<bool(EdgeId)>& edge_allowed);

  /// Point-to-point distance, stopping as soon as `to` is settled (the
  /// classic early exit: no work beyond the target's distance ring).
  /// Throws std::out_of_range for a bad `from` or `to`.
  double shortest_distance(const Graph& g, VertexId from, VertexId to);

  /// Metric-closure row: distances from `from` to each of `targets`,
  /// stopping once every (distinct) target is settled. Result is indexed
  /// like `targets`; unreachable targets get kInfiniteDistance.
  std::vector<double> distances_to(const Graph& g, VertexId from,
                                   std::span<const VertexId> targets);

  /// The CSR view currently held (refreshed on every query).
  const CsrView& view() const noexcept { return view_; }

  /// Per-thread engine backing the graph::dijkstra wrappers. Scratch
  /// buffers and the CSR view persist across calls on the same thread.
  static SpEngine& thread_local_engine();

 private:
  struct HeapItem {
    double dist;
    VertexId vertex;
  };

  /// (distance, vertex id) lexicographic — the historical pop order.
  static bool item_less(const HeapItem& a, const HeapItem& b) noexcept {
    return a.dist < b.dist || (a.dist == b.dist && a.vertex < b.vertex);
  }

  void heap_push(HeapItem item);
  HeapItem heap_pop();

  /// Refreshes the view, advances the generation and clears the heap.
  void prepare(const Graph& g);
  /// Lazily initializes v's workspace slots for this generation.
  void touch(VertexId v);
  /// Core loop. `edge_allowed` may be null. When `targets_remaining` > 0
  /// the run stops once that many target-stamped vertices are settled.
  void run(VertexId source, const std::function<bool(EdgeId)>* edge_allowed,
           std::size_t targets_remaining);
  /// Copies the touched region of the workspace into a ShortestPaths.
  ShortestPaths materialize(VertexId source) const;

  CsrView view_;
  std::vector<double> dist_;
  std::vector<VertexId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t generation_ = 0;
  std::vector<std::uint32_t> target_stamp_;
  std::uint32_t target_generation_ = 0;
  std::vector<HeapItem> heap_;     // 4-ary min-heap, lazy deletion
  std::vector<VertexId> reached_;  // vertices touched this run
};

/// Default SpCache capacity: enough for a request's source + destinations +
/// eligible servers on every topology in the repo without eviction churn.
inline constexpr std::size_t kDefaultSpCacheCapacity = 256;

class SpCache {
 public:
  /// `capacity` == 0 means unbounded.
  explicit SpCache(std::size_t capacity = kDefaultSpCacheCapacity);
  SpCache(const SpCache&) = delete;
  SpCache& operator=(const SpCache&) = delete;

  /// The shortest-path tree from `source` on `g`: cached when (uid, epoch,
  /// source) matches a previous query, computed (and inserted) otherwise.
  /// The returned tree is shared — it stays valid after eviction as long
  /// as the caller holds the pointer.
  std::shared_ptr<const ShortestPaths> paths_from(const Graph& g, VertexId source);

  /// Cache probe without computing: the cached tree for (g, source), or
  /// nullptr on a miss. Lets parallel fan-outs compute only the missing
  /// trees and then insert them with put().
  std::shared_ptr<const ShortestPaths> try_get(const Graph& g, VertexId source);

  /// Inserts a precomputed tree (e.g. built by a parallel fan-out) for the
  /// current (uid, epoch) of `g`. Replaces any existing entry for `source`.
  void put(const Graph& g, VertexId source,
           std::shared_ptr<const ShortestPaths> paths);

  /// Keyed invalidation: rebinds the cache to the *current* (uid, epoch) of
  /// `g` without the wholesale flush of the implicit sync(). Entries for
  /// which `keep(source, tree)` returns true survive under the new key (LRU
  /// order preserved); the rest are evicted and counted by
  /// `graph.spcache.keyed_evictions`. For callers that mutate the graph in a
  /// controlled way — e.g. the online incremental view patching a few edge
  /// weights after an admission — and can prove exactly which cached trees
  /// the mutation left intact. The caller owns that proof: a kept entry is
  /// served as-is on the next try_get.
  void rebind_keep(const Graph& g,
                   const std::function<bool(VertexId, const ShortestPaths&)>& keep);

  void clear();
  std::size_t size() const noexcept { return index_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// Flushes when `g` is not the graph+epoch the cache was filled from.
  void sync(const Graph& g);

  using LruList =
      std::list<std::pair<VertexId, std::shared_ptr<const ShortestPaths>>>;

  std::size_t capacity_;
  std::uint64_t uid_ = 0;
  std::uint64_t epoch_ = 0;
  bool bound_ = false;
  LruList lru_;  // front = most recently used
  std::unordered_map<VertexId, LruList::iterator> index_;
  SpEngine engine_;
};

}  // namespace nfvm::graph
