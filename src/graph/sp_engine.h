// Reusable shortest-path engine and shortest-path-tree cache.
//
// Every algorithm in this library bottoms out in repeated Dijkstra runs.
// The free functions in graph/dijkstra.h allocate three O(n) arrays and a
// heap per call and scan the pointer-chasing adjacency lists; under heavy
// request volumes that allocation and cache-miss traffic dominates. This
// header provides the shared substrate:
//
//  * SpEngine — owns a CsrView (rebuilt lazily when the graph's
//    (uid, epoch) changes) plus scratch dist/parent/parent_edge buffers
//    with generation-stamped lazy reset, a 4-ary heap, early-exit
//    point-to-point / target-set queries, and filtered-edge variants
//    (std::function predicate or a precomputed per-edge byte mask).
//    The dijkstra() free functions are thin wrappers over the per-thread
//    engine, so existing call sites keep working and allocate nothing
//    beyond the returned ShortestPaths.
//
//    When the CSR weight inspection proves every edge weight is a strictly
//    positive integer <= kMaxDialWeight (true for every topology generator
//    in the repo and all hop-count modes), queries take a bucket-queue
//    (Dial) specialization instead of the heap: a generation-stamped
//    bucket ring reused across queries, each bucket drained in ascending
//    vertex-id order. That drain order reproduces the heap's
//    (distance, vertex id) pop order exactly, so the two paths are
//    bit-identical — which tests/test_sp_dial.cpp asserts.
//
//  * SpCache — an LRU of shortest-path trees keyed by
//    (graph uid, graph epoch, source). Sharing one cache across a
//    request's lifetime stops Appro_Multi / Alg_One_Server / the Steiner
//    metric closure from recomputing the same source, destination and
//    server trees. Any mutation (set_weight, add_edge) bumps the graph
//    epoch and invalidates the whole cache on the next query.
//
// Tie-breaking: the engine's heap orders items by (distance, vertex id),
// exactly like the std::priority_queue<pair<double, VertexId>> it
// replaces, and CSR entries keep Graph::neighbors order — so the engine
// returns bit-identical trees to the historical implementation.
//
// Thread model: SpEngine and SpCache are NOT thread-safe; use one per
// thread (SpEngine::thread_local_engine()) or confine a cache to the
// thread that owns the request. Concurrent *reads* of a const Graph from
// many engines are safe.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr.h"
#include "graph/dijkstra.h"
#include "graph/graph.h"

namespace nfvm::graph {

class SpEngine {
 public:
  SpEngine() = default;
  SpEngine(const SpEngine&) = delete;
  SpEngine& operator=(const SpEngine&) = delete;

  /// Full Dijkstra from `source`. Bit-identical to graph::dijkstra.
  /// Throws std::out_of_range for a bad source.
  ShortestPaths shortest_paths(const Graph& g, VertexId source);

  /// Dijkstra ignoring edges for which `edge_allowed(e)` is false.
  ShortestPaths shortest_paths_filtered(
      const Graph& g, VertexId source,
      const std::function<bool(EdgeId)>& edge_allowed);

  /// Dijkstra ignoring edges whose mask byte is zero. `edge_mask` must
  /// cover every EdgeId of `g`; an empty mask means all edges allowed.
  /// Equivalent to the std::function variant but without a per-scanned-edge
  /// indirect call — callers that evaluate the same predicate across many
  /// sources precompute the mask once.
  ShortestPaths shortest_paths_masked(const Graph& g, VertexId source,
                                      std::span<const std::uint8_t> edge_mask);

  /// Batched multi-source SSSP: one view refresh and one generation-stamped
  /// workspace serve every source in order (slot i = tree from sources[i]),
  /// so the batch pays a single CSR sync and no per-call O(n) clears.
  /// Results are bit-identical to calling shortest_paths_masked per source.
  std::vector<ShortestPaths> batch_shortest_paths(
      const Graph& g, std::span<const VertexId> sources,
      std::span<const std::uint8_t> edge_mask = {});

  /// Point-to-point distance, stopping as soon as `to` is settled (the
  /// classic early exit: no work beyond the target's distance ring).
  /// Throws std::out_of_range for a bad `from` or `to`.
  double shortest_distance(const Graph& g, VertexId from, VertexId to);

  /// Metric-closure row: distances from `from` to each of `targets`,
  /// stopping once every (distinct) target is settled. Result is indexed
  /// like `targets`; unreachable targets get kInfiniteDistance.
  std::vector<double> distances_to(const Graph& g, VertexId from,
                                   std::span<const VertexId> targets);

  /// One Takahashi–Matsuyama growth step: seeds every vertex of
  /// `tree_vertices` (must be distinct) at distance zero and stops as soon
  /// as the first vertex of `targets` is settled, returning it —
  /// kInvalidVertex when no target is reachable. Ties settle by
  /// (distance, vertex id), so the result does not depend on seed order.
  /// Read the attachment path afterwards via parent_of/parent_edge_of/
  /// dist_of; the workspace stays valid until the next query.
  VertexId grow_step(const Graph& g, std::span<const VertexId> tree_vertices,
                     std::span<const VertexId> targets);

  /// Workspace reads for vertices reached by the last query (unchecked).
  VertexId parent_of(VertexId v) const noexcept { return parent_[v]; }
  EdgeId parent_edge_of(VertexId v) const noexcept { return parent_edge_[v]; }
  double dist_of(VertexId v) const noexcept { return dist_[v]; }

  /// True when the last query ran the bucket-queue (Dial) specialization.
  bool last_used_dial() const noexcept { return last_used_dial_; }

  /// The CSR view currently held (refreshed on every query).
  const CsrView& view() const noexcept { return view_; }

  /// Per-thread engine backing the graph::dijkstra wrappers. Scratch
  /// buffers and the CSR view persist across calls on the same thread.
  static SpEngine& thread_local_engine();

 private:
  struct HeapItem {
    double dist;
    VertexId vertex;
  };

  /// (distance, vertex id) lexicographic — the historical pop order.
  static bool item_less(const HeapItem& a, const HeapItem& b) noexcept {
    return a.dist < b.dist || (a.dist == b.dist && a.vertex < b.vertex);
  }

  void heap_push(HeapItem item);
  HeapItem heap_pop();

  /// Refreshes the view, advances the generation and clears the heap.
  void prepare(const Graph& g);
  /// Lazily initializes v's workspace slots for this generation.
  void touch(VertexId v);
  /// Core dispatch: seeds every vertex of `seeds` at distance zero, then
  /// runs the Dial loop when the view's weight inspection allows it and
  /// the 4-ary heap loop otherwise. `edge_allowed` / `edge_mask` may be
  /// null. When `targets_remaining` > 0 the run stops once that many
  /// target-stamped vertices are settled.
  void run(std::span<const VertexId> seeds,
           const std::function<bool(EdgeId)>* edge_allowed,
           const std::uint8_t* edge_mask, std::size_t targets_remaining);
  void run_heap(std::span<const VertexId> seeds,
                const std::function<bool(EdgeId)>* edge_allowed,
                const std::uint8_t* edge_mask, std::size_t targets_remaining);
  void run_dial(std::span<const VertexId> seeds,
                const std::function<bool(EdgeId)>* edge_allowed,
                const std::uint8_t* edge_mask, std::size_t targets_remaining);
  /// Copies the touched region of the workspace into a ShortestPaths.
  ShortestPaths materialize(VertexId source) const;

  CsrView view_;
  std::vector<double> dist_;
  std::vector<VertexId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t generation_ = 0;
  std::vector<std::uint32_t> target_stamp_;
  std::uint32_t target_generation_ = 0;
  std::vector<HeapItem> heap_;     // 4-ary min-heap, lazy deletion
  std::vector<VertexId> reached_;  // vertices touched this run
  /// Dial bucket ring, sized max_integer_weight + 1 and reused across
  /// queries. A bucket whose stamp is stale belongs to an earlier query
  /// (e.g. abandoned by an early exit) and is cleared lazily on first use.
  std::vector<std::vector<VertexId>> buckets_;
  std::vector<std::uint32_t> bucket_stamp_;
  std::vector<VertexId> bucket_scratch_;  // drain staging, sorted by id
  bool last_used_dial_ = false;
  VertexId last_settled_target_ = kInvalidVertex;
};

/// Parallel batched SSSP over the global ThreadPool: slot i of the result
/// is the shortest-path tree from sources[i] under the (optional) shared
/// edge mask. Sources are split into contiguous chunks, one thread-local
/// engine per chunk, each chunk served by one batched engine invocation;
/// every slot depends only on (graph, mask, sources[i]), so the output is
/// byte-identical at any thread count and to a sequential per-source loop.
std::vector<ShortestPaths> batch_dijkstra(
    const Graph& g, std::span<const VertexId> sources,
    std::span<const std::uint8_t> edge_mask = {});

/// Default SpCache capacity: enough for a request's source + destinations +
/// eligible servers on every topology in the repo without eviction churn.
inline constexpr std::size_t kDefaultSpCacheCapacity = 256;

class SpCache {
 public:
  /// `capacity` == 0 means unbounded.
  explicit SpCache(std::size_t capacity = kDefaultSpCacheCapacity);
  SpCache(const SpCache&) = delete;
  SpCache& operator=(const SpCache&) = delete;

  /// The shortest-path tree from `source` on `g`: cached when (uid, epoch,
  /// source) matches a previous query, computed (and inserted) otherwise.
  /// The returned tree is shared — it stays valid after eviction as long
  /// as the caller holds the pointer.
  std::shared_ptr<const ShortestPaths> paths_from(const Graph& g, VertexId source);

  /// Cache probe without computing: the cached tree for (g, source), or
  /// nullptr on a miss. Lets parallel fan-outs compute only the missing
  /// trees and then insert them with put().
  std::shared_ptr<const ShortestPaths> try_get(const Graph& g, VertexId source);

  /// Inserts a precomputed tree (e.g. built by a parallel fan-out) for the
  /// current (uid, epoch) of `g`. Replaces any existing entry for `source`.
  void put(const Graph& g, VertexId source,
           std::shared_ptr<const ShortestPaths> paths);

  /// Keyed invalidation: rebinds the cache to the *current* (uid, epoch) of
  /// `g` without the wholesale flush of the implicit sync(). Entries for
  /// which `keep(source, tree)` returns true survive under the new key (LRU
  /// order preserved); the rest are evicted and counted by
  /// `graph.spcache.keyed_evictions`. For callers that mutate the graph in a
  /// controlled way — e.g. the online incremental view patching a few edge
  /// weights after an admission — and can prove exactly which cached trees
  /// the mutation left intact. The caller owns that proof: a kept entry is
  /// served as-is on the next try_get.
  void rebind_keep(const Graph& g,
                   const std::function<bool(VertexId, const ShortestPaths&)>& keep);

  void clear();
  std::size_t size() const noexcept { return index_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// Flushes when `g` is not the graph+epoch the cache was filled from.
  void sync(const Graph& g);

  using LruList =
      std::list<std::pair<VertexId, std::shared_ptr<const ShortestPaths>>>;

  std::size_t capacity_;
  std::uint64_t uid_ = 0;
  std::uint64_t epoch_ = 0;
  bool bound_ = false;
  LruList lru_;  // front = most recently used
  std::unordered_map<VertexId, LruList::iterator> index_;
  SpEngine engine_;
};

}  // namespace nfvm::graph
