#include "graph/steiner.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "graph/apsp.h"
#include "graph/dijkstra.h"
#include "graph/mst.h"
#include "graph/sp_engine.h"
#include "graph/union_find.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace nfvm::graph {
namespace {

std::vector<VertexId> distinct_terminals(const Graph& g,
                                         std::span<const VertexId> terminals) {
  if (terminals.empty()) {
    throw std::invalid_argument("steiner: terminal set must be non-empty");
  }
  std::vector<VertexId> distinct(terminals.begin(), terminals.end());
  for (VertexId t : distinct) {
    if (!g.has_vertex(t)) throw std::out_of_range("steiner: invalid terminal");
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  return distinct;
}

/// Removes non-terminal leaves until none remain; returns surviving edges.
std::vector<EdgeId> prune_leaves(const Graph& g, std::vector<EdgeId> edges,
                                 std::span<const VertexId> terminals) {
  std::vector<bool> is_terminal(g.num_vertices(), false);
  for (VertexId t : terminals) is_terminal[t] = true;

  // Incidence restricted to `edges`.
  std::vector<std::vector<std::size_t>> incident(g.num_vertices());
  std::vector<std::size_t> degree(g.num_vertices(), 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& ed = g.edge(edges[i]);
    incident[ed.u].push_back(i);
    incident[ed.v].push_back(i);
    ++degree[ed.u];
    ++degree[ed.v];
  }

  std::vector<bool> edge_removed(edges.size(), false);
  std::queue<VertexId> leaves;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (degree[v] == 1 && !is_terminal[v]) leaves.push(v);
  }
  while (!leaves.empty()) {
    const VertexId v = leaves.front();
    leaves.pop();
    if (degree[v] != 1 || is_terminal[v]) continue;
    for (std::size_t idx : incident[v]) {
      if (edge_removed[idx]) continue;
      edge_removed[idx] = true;
      const Edge& ed = g.edge(edges[idx]);
      const VertexId other = ed.u == v ? ed.v : ed.u;
      --degree[v];
      --degree[other];
      if (degree[other] == 1 && !is_terminal[other]) leaves.push(other);
      break;  // a degree-1 vertex has exactly one live incident edge
    }
  }

  std::vector<EdgeId> kept;
  kept.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!edge_removed[i]) kept.push_back(edges[i]);
  }
  return kept;
}

double edges_weight(const Graph& g, std::span<const EdgeId> edges) {
  double w = 0.0;
  for (EdgeId e : edges) w += g.weight(e);
  return w;
}

/// KMB steps 2-5 against per-terminal shortest-path tables (one table per
/// entry of `terms`, in order). Both kmb_steiner (freshly computed tables)
/// and kmb_steiner_from_tables (caller-cached tables) funnel through here,
/// which is what makes the two bit-identical.
SteinerResult kmb_from_terminal_tables(const Graph& g,
                                       const std::vector<VertexId>& terms,
                                       std::span<const ShortestPaths* const> sp) {
  SteinerResult result;
  for (std::size_t i = 1; i < terms.size(); ++i) {
    if (!sp[0]->reachable(terms[i])) return result;  // connected == false
  }

  // Step 2: MST of the metric closure (Prim on the t x t distance matrix).
  const std::size_t t = terms.size();
  std::vector<std::pair<std::size_t, std::size_t>> closure_edges;  // (i, j)
  {
    NFVM_SPAN("steiner/kmb/closure_mst");
    std::vector<bool> in_tree(t, false);
    std::vector<double> best(t, kInfiniteDistance);
    std::vector<std::size_t> best_from(t, 0);
    best[0] = 0.0;
    for (std::size_t step = 0; step < t; ++step) {
      std::size_t pick = t;
      for (std::size_t i = 0; i < t; ++i) {
        if (!in_tree[i] && (pick == t || best[i] < best[pick])) pick = i;
      }
      in_tree[pick] = true;
      if (pick != 0) closure_edges.emplace_back(best_from[pick], pick);
      for (std::size_t j = 0; j < t; ++j) {
        if (in_tree[j]) continue;
        const double d = sp[pick]->dist[terms[j]];
        if (d < best[j]) {
          best[j] = d;
          best_from[j] = pick;
        }
      }
    }
  }

  NFVM_SPAN("steiner/kmb/expand_prune");
  // Step 3: expand closure edges into shortest paths; union of their edges.
  std::unordered_set<EdgeId> edge_set;
  for (const auto& [i, j] : closure_edges) {
    for (EdgeId e : path_edges(*sp[i], terms[j])) edge_set.insert(e);
  }
  std::vector<EdgeId> expanded(edge_set.begin(), edge_set.end());
  std::sort(expanded.begin(), expanded.end());  // determinism

  // Step 4: MST of the expanded subgraph.
  MstResult sub_mst = kruskal_mst_subset(g, expanded);

  // Step 5: prune non-terminal leaves.
  result.edges = prune_leaves(g, std::move(sub_mst.edges), terms);
  result.weight = edges_weight(g, result.edges);
  result.connected = true;
  return result;
}

}  // namespace

SteinerResult kmb_steiner(const Graph& g, std::span<const VertexId> terminals) {
  NFVM_SPAN("steiner/kmb");
  NFVM_COUNTER_INC("graph.steiner.kmb.runs");
  const std::vector<VertexId> terms = distinct_terminals(g, terminals);
  SteinerResult result;
  if (terms.size() == 1) {
    result.connected = true;
    return result;
  }

  // Step 1: shortest paths from every terminal, one slot per terminal so
  // the fan-out is deterministic regardless of thread count.
  std::vector<ShortestPaths> sp(terms.size());
  {
    NFVM_SPAN("steiner/kmb/terminal_sssp");
    util::ThreadPool::global().parallel_for(
        terms.size(), [&](std::size_t i) { sp[i] = dijkstra(g, terms[i]); });
  }
  std::vector<const ShortestPaths*> tables(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) tables[i] = &sp[i];
  return kmb_from_terminal_tables(g, terms, tables);
}

SteinerResult kmb_steiner_from_tables(
    const Graph& g, std::span<const VertexId> terminals,
    const std::function<const ShortestPaths&(VertexId)>& table_for) {
  NFVM_SPAN("steiner/kmb_from_tables");
  NFVM_COUNTER_INC("graph.steiner.kmb.runs");
  const std::vector<VertexId> terms = distinct_terminals(g, terminals);
  SteinerResult result;
  if (terms.size() == 1) {
    result.connected = true;
    return result;
  }
  std::vector<const ShortestPaths*> tables(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) tables[i] = &table_for(terms[i]);
  return kmb_from_terminal_tables(g, terms, tables);
}

SteinerResult improve_steiner(const Graph& g, SteinerResult current,
                              std::span<const VertexId> terminals,
                              std::size_t max_rounds) {
  if (!current.connected) {
    throw std::invalid_argument("improve_steiner: input tree is disconnected");
  }
  const std::vector<VertexId> terms = distinct_terminals(g, terminals);
  if (terms.size() <= 1) return current;

  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool improved = false;
    std::vector<bool> in_tree(g.num_vertices(), false);
    for (EdgeId e : current.edges) {
      in_tree[g.edge(e).u] = true;
      in_tree[g.edge(e).v] = true;
    }
    for (VertexId t : terms) in_tree[t] = true;

    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (in_tree[v]) continue;
      std::vector<VertexId> extended(terms);
      extended.push_back(v);
      SteinerResult candidate = kmb_steiner(g, extended);
      if (!candidate.connected) continue;
      // Drop v again if it turned out useless (leaf pruning against the
      // real terminal set).
      candidate = kmb_finish(g, candidate.edges, terms);
      if (candidate.connected && candidate.weight + 1e-12 < current.weight) {
        current = std::move(candidate);
        improved = true;
        // Refresh tree membership for subsequent insertions this round.
        std::fill(in_tree.begin(), in_tree.end(), false);
        for (EdgeId e : current.edges) {
          in_tree[g.edge(e).u] = true;
          in_tree[g.edge(e).v] = true;
        }
        for (VertexId t : terms) in_tree[t] = true;
      }
    }
    if (!improved) break;
  }
  return current;
}

SteinerResult kmb_finish(const Graph& g, std::span<const EdgeId> union_edges,
                         std::span<const VertexId> terminals) {
  NFVM_SPAN("steiner/kmb_finish");
  NFVM_COUNTER_INC("graph.steiner.kmb_finish.runs");
  const std::vector<VertexId> terms = distinct_terminals(g, terminals);
  SteinerResult result;
  if (terms.size() == 1) {
    result.connected = true;
    return result;
  }
  MstResult sub_mst = kruskal_mst_subset(g, union_edges);
  // Connectivity: all terminals must share one component of the forest.
  UnionFind uf(g.num_vertices());
  for (EdgeId e : sub_mst.edges) uf.unite(g.edge(e).u, g.edge(e).v);
  for (VertexId t : terms) {
    if (uf.find(t) != uf.find(terms[0])) return result;  // connected == false
  }
  result.edges = prune_leaves(g, std::move(sub_mst.edges), terms);
  result.weight = edges_weight(g, result.edges);
  result.connected = true;
  return result;
}

SteinerResult kmb_finish(std::size_t num_vertices,
                         std::span<const EdgeRecord> union_edges,
                         std::span<const VertexId> terminals) {
  NFVM_SPAN("steiner/kmb_finish");
  NFVM_COUNTER_INC("graph.steiner.kmb_finish.runs");
  if (terminals.empty()) {
    throw std::invalid_argument("steiner: terminal set must be non-empty");
  }
  std::vector<VertexId> terms(terminals.begin(), terminals.end());
  for (VertexId t : terms) {
    if (t >= num_vertices) throw std::out_of_range("steiner: invalid terminal");
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  SteinerResult result;
  if (terms.size() == 1) {
    result.connected = true;
    return result;
  }

  // Kruskal over the records: stable sort by weight (ties keep input order,
  // exactly like kruskal_mst_subset) and unite in that order.
  std::vector<std::size_t> order(union_edges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return union_edges[a].weight < union_edges[b].weight;
  });
  UnionFind uf(num_vertices);
  std::vector<std::size_t> kept;  // indices into union_edges, in MST order
  kept.reserve(union_edges.size());
  for (std::size_t i : order) {
    const EdgeRecord& r = union_edges[i];
    if (r.u >= num_vertices || r.v >= num_vertices) {
      throw std::out_of_range("kmb_finish: edge record endpoint out of range");
    }
    if (uf.unite(r.u, r.v)) kept.push_back(i);
  }
  for (VertexId t : terms) {
    if (uf.find(t) != uf.find(terms[0])) return result;  // connected == false
  }

  // Leaf pruning, mirroring prune_leaves over the kept records.
  std::vector<bool> is_terminal(num_vertices, false);
  for (VertexId t : terms) is_terminal[t] = true;
  std::vector<std::vector<std::size_t>> incident(num_vertices);
  std::vector<std::size_t> degree(num_vertices, 0);
  for (std::size_t k = 0; k < kept.size(); ++k) {
    const EdgeRecord& r = union_edges[kept[k]];
    incident[r.u].push_back(k);
    incident[r.v].push_back(k);
    ++degree[r.u];
    ++degree[r.v];
  }
  std::vector<bool> edge_removed(kept.size(), false);
  std::queue<VertexId> leaves;
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (degree[v] == 1 && !is_terminal[v]) leaves.push(v);
  }
  while (!leaves.empty()) {
    const VertexId v = leaves.front();
    leaves.pop();
    if (degree[v] != 1 || is_terminal[v]) continue;
    for (std::size_t idx : incident[v]) {
      if (edge_removed[idx]) continue;
      edge_removed[idx] = true;
      const EdgeRecord& r = union_edges[kept[idx]];
      const VertexId other = r.u == v ? r.v : r.u;
      --degree[v];
      --degree[other];
      if (degree[other] == 1 && !is_terminal[other]) leaves.push(other);
      break;  // a degree-1 vertex has exactly one live incident edge
    }
  }
  for (std::size_t k = 0; k < kept.size(); ++k) {
    if (edge_removed[k]) continue;
    const EdgeRecord& r = union_edges[kept[k]];
    result.edges.push_back(r.id);
    result.weight += r.weight;
  }
  result.connected = true;
  return result;
}

SteinerResult takahashi_matsuyama_steiner(const Graph& g,
                                          std::span<const VertexId> terminals) {
  NFVM_SPAN("steiner/takahashi_matsuyama");
  NFVM_COUNTER_INC("graph.steiner.tm.runs");
  const std::vector<VertexId> terms = distinct_terminals(g, terminals);
  SteinerResult result;
  if (terms.size() == 1) {
    result.connected = true;
    return result;
  }

  const std::size_t n = g.num_vertices();
  std::vector<bool> in_tree(n, false);
  in_tree[terms[0]] = true;
  std::vector<VertexId> tree_vertices;
  tree_vertices.reserve(n);
  tree_vertices.push_back(terms[0]);
  std::vector<VertexId> pending(terms.begin() + 1, terms.end());

  // Each round: one multi-source grow step on the shared engine (every
  // tree vertex seeded at distance zero), attaching the nearest pending
  // terminal along its shortest path. The engine settles ties by
  // (distance, vertex id) and stops before relaxing the settled terminal —
  // exactly the std::priority_queue loop this replaces — and brings the
  // bucket-queue specialization to unit-weight graphs for free.
  SpEngine& engine = SpEngine::thread_local_engine();
  while (!pending.empty()) {
    const VertexId reached = engine.grow_step(g, tree_vertices, pending);
    if (reached == kInvalidVertex) return result;  // disconnected

    pending.erase(std::find(pending.begin(), pending.end(), reached));
    for (VertexId v = reached; !in_tree[v]; v = engine.parent_of(v)) {
      in_tree[v] = true;
      tree_vertices.push_back(v);
      result.edges.push_back(engine.parent_edge_of(v));
      result.weight += g.weight(engine.parent_edge_of(v));
    }
  }
  std::sort(result.edges.begin(), result.edges.end());
  result.connected = true;
  return result;
}

SteinerResult steiner_tree(const Graph& g, std::span<const VertexId> terminals,
                           SteinerEngine engine) {
  switch (engine) {
    case SteinerEngine::kKmb:
      return kmb_steiner(g, terminals);
    case SteinerEngine::kTakahashiMatsuyama:
      return takahashi_matsuyama_steiner(g, terminals);
  }
  throw std::invalid_argument("steiner_tree: unknown engine");
}

SteinerResult exact_steiner(const Graph& g, std::span<const VertexId> terminals) {
  // One parallel APSP build shared across the whole DP (and reusable by the
  // caller via the overload below when sweeping many terminal sets).
  const AllPairsShortestPaths apsp(g, /*keep_parents=*/true);
  return exact_steiner(g, terminals, apsp);
}

SteinerResult exact_steiner(const Graph& g, std::span<const VertexId> terminals,
                            const AllPairsShortestPaths& apsp) {
  NFVM_SPAN("steiner/exact_dreyfus_wagner");
  NFVM_COUNTER_INC("graph.steiner.exact.runs");
  if (apsp.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument("exact_steiner: APSP built from a different graph");
  }
  const std::vector<VertexId> terms = distinct_terminals(g, terminals);
  SteinerResult result;
  if (terms.size() == 1) {
    result.connected = true;
    return result;
  }
  if (terms.size() > kExactSteinerMaxTerminals) {
    throw std::invalid_argument("exact_steiner: too many terminals for the DP");
  }

  const std::size_t n = g.num_vertices();
  const auto sp = [&apsp](VertexId s) -> const ShortestPaths& {
    return apsp.source_tree(s);
  };
  for (std::size_t i = 1; i < terms.size(); ++i) {
    if (!sp(terms[0]).reachable(terms[i])) return result;
  }

  // Dreyfus-Wagner over subsets of terms[1..]; the tree always implicitly
  // contains terms[0] via the final query dp[full][terms[0]].
  const std::size_t bits = terms.size() - 1;
  const std::size_t num_masks = std::size_t{1} << bits;
  std::vector<std::vector<double>> dp(num_masks, std::vector<double>(n, kInfiniteDistance));

  // Reconstruction records. kind: 0 = base (path from terminal), 1 = merge
  // (submask stored in aux), 2 = extend (vertex stored in aux).
  struct Choice {
    std::uint8_t kind = 0;
    std::uint32_t aux = 0;
  };
  std::vector<std::vector<Choice>> choice(num_masks, std::vector<Choice>(n));

  for (std::size_t b = 0; b < bits; ++b) {
    const VertexId term = terms[b + 1];
    const std::size_t mask = std::size_t{1} << b;
    for (VertexId v = 0; v < n; ++v) {
      dp[mask][v] = sp(term).dist[v];
      choice[mask][v] = Choice{0, static_cast<std::uint32_t>(term)};
    }
  }

  for (std::size_t mask = 1; mask < num_masks; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // singletons already done
    auto& row = dp[mask];
    // Merge two subtrees at v.
    for (std::size_t sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
      const std::size_t rest = mask ^ sub;
      if (sub > rest) continue;  // each unordered split once
      const auto& a = dp[sub];
      const auto& b = dp[rest];
      for (VertexId v = 0; v < n; ++v) {
        const double cand = a[v] + b[v];
        if (cand < row[v]) {
          row[v] = cand;
          choice[mask][v] = Choice{1, static_cast<std::uint32_t>(sub)};
        }
      }
    }
    // Extend through the metric closure: one relaxation round suffices
    // because sp[u].dist is already the full shortest-path metric.
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId u = 0; u < n; ++u) {
        if (u == v || dp[mask][u] >= kInfiniteDistance) continue;
        const double cand = dp[mask][u] + sp(u).dist[v];
        if (cand < row[v]) {
          row[v] = cand;
          choice[mask][v] = Choice{2, static_cast<std::uint32_t>(u)};
        }
      }
    }
  }

  // Reconstruct the edge set.
  std::unordered_set<EdgeId> edge_set;
  struct Frame {
    std::size_t mask;
    VertexId v;
  };
  std::vector<Frame> stack{{num_masks - 1, terms[0]}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Choice c = choice[f.mask][f.v];
    switch (c.kind) {
      case 0: {  // base: path terminal -> v
        for (EdgeId e : path_edges(sp(c.aux), f.v)) edge_set.insert(e);
        break;
      }
      case 1: {  // merge at v
        stack.push_back(Frame{c.aux, f.v});
        stack.push_back(Frame{f.mask ^ c.aux, f.v});
        break;
      }
      case 2: {  // extend u -> v
        for (EdgeId e : path_edges(sp(c.aux), f.v)) edge_set.insert(e);
        stack.push_back(Frame{f.mask, static_cast<VertexId>(c.aux)});
        break;
      }
      default:
        throw std::logic_error("exact_steiner: corrupt choice table");
    }
  }

  std::vector<EdgeId> chosen(edge_set.begin(), edge_set.end());
  std::sort(chosen.begin(), chosen.end());
  // Ties can make the reconstructed union contain a cycle of equal total
  // weight; clean it up into a tree of the same (optimal) weight.
  MstResult cleaned = kruskal_mst_subset(g, chosen);
  result.edges = prune_leaves(g, std::move(cleaned.edges), terms);
  result.weight = edges_weight(g, result.edges);
  result.connected = true;
  return result;
}

bool is_steiner_tree(const Graph& g, std::span<const EdgeId> edges,
                     std::span<const VertexId> terminals) {
  const std::vector<VertexId> terms = distinct_terminals(g, terminals);
  if (terms.size() == 1) return edges.empty();

  UnionFind uf(g.num_vertices());
  std::vector<bool> touched(g.num_vertices(), false);
  for (EdgeId e : edges) {
    if (!g.has_edge(e)) return false;
    const Edge& ed = g.edge(e);
    if (!uf.unite(ed.u, ed.v)) return false;  // cycle (or self-loop)
    touched[ed.u] = true;
    touched[ed.v] = true;
  }
  for (VertexId t : terms) {
    if (!touched[t]) return false;
    if (uf.find(t) != uf.find(terms[0])) return false;
  }
  // Connected over touched vertices: #touched vertices == #edges + 1.
  std::size_t touched_count = 0;
  for (bool b : touched) touched_count += b ? 1 : 0;
  return touched_count == edges.size() + 1;
}

}  // namespace nfvm::graph
