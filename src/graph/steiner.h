// Steiner trees.
//
// * `kmb_steiner` — the Kou–Markowsky–Berman (1981) 2(1 - 1/t)-approximation
//   used by every algorithm in the paper (Algorithm 1 step 7, Algorithm 2
//   step 8, and the Alg_One_Server / SP baselines build on the same
//   metric-closure machinery).
// * `exact_steiner` — the Dreyfus–Wagner dynamic program, exponential in the
//   number of terminals. Used by the test suite to check the approximation
//   ratio and by the K=1 exact optimum oracle.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace nfvm::graph {

class AllPairsShortestPaths;
struct ShortestPaths;

struct SteinerResult {
  /// True iff all terminals lie in one connected component (a tree exists).
  bool connected = false;
  /// Edges of the Steiner tree (ids into the input graph). Empty when
  /// `connected` is false or there are fewer than two distinct terminals.
  std::vector<EdgeId> edges;
  /// Total weight of `edges`.
  double weight = 0.0;
};

/// KMB approximation. Steps: metric closure over terminals -> MST of the
/// closure -> expand closure edges into shortest paths -> MST of the union
/// subgraph -> prune non-terminal leaves. Duplicate terminals are allowed
/// and ignored. Throws std::out_of_range on invalid vertices and
/// std::invalid_argument when `terminals` is empty.
///
/// Guarantee: weight <= 2 (1 - 1/t) * OPT where t = #distinct terminals.
SteinerResult kmb_steiner(const Graph& g, std::span<const VertexId> terminals);

/// KMB from caller-supplied per-terminal shortest-path tables: identical to
/// kmb_steiner except that step 1 (one SSSP per distinct terminal) is
/// replaced by `table_for(t)` lookups. `table_for` must return the full
/// shortest-path tree rooted at `t` on `g` (same graph, same weights) and
/// the reference must stay valid for the duration of the call. This is the
/// online fast path's entry point: the per-request terminal trees are primed
/// once (and cached across requests) instead of being recomputed per
/// candidate server, and the result is bit-identical to kmb_steiner.
SteinerResult kmb_steiner_from_tables(
    const Graph& g, std::span<const VertexId> terminals,
    const std::function<const ShortestPaths&(VertexId)>& table_for);

/// Takahashi-Matsuyama (1980) path-heuristic: grow the tree from one
/// terminal, repeatedly attaching the closest unconnected terminal via a
/// shortest path (multi-source Dijkstra from the current tree). Same
/// 2(1 - 1/t) guarantee as KMB, often different (sometimes better) trees,
/// and cheaper per call: t Dijkstras but no metric-closure MST/expansion.
SteinerResult takahashi_matsuyama_steiner(const Graph& g,
                                          std::span<const VertexId> terminals);

/// Selector for algorithms that take a pluggable Steiner engine.
enum class SteinerEngine {
  kKmb,
  kTakahashiMatsuyama,
};

/// Dispatches to the selected approximation.
SteinerResult steiner_tree(const Graph& g, std::span<const VertexId> terminals,
                           SteinerEngine engine);

/// Exact minimum Steiner tree via Dreyfus-Wagner. Throws
/// std::invalid_argument when there are more than `kExactSteinerMaxTerminals`
/// distinct terminals (the DP is Theta(3^t n)). Builds one all-pairs
/// structure (parallel Dijkstra fan-out) and delegates to the overload below.
inline constexpr std::size_t kExactSteinerMaxTerminals = 14;
SteinerResult exact_steiner(const Graph& g, std::span<const VertexId> terminals);

/// Dreyfus-Wagner against a caller-supplied all-pairs structure, so repeated
/// exact queries on the same graph (e.g. the K=1 optimum oracle sweeping
/// server combinations) share one APSP build. `apsp` must have been built
/// from `g` with keep_parents == true; throws std::invalid_argument when its
/// vertex count disagrees with `g`.
SteinerResult exact_steiner(const Graph& g, std::span<const VertexId> terminals,
                            const AllPairsShortestPaths& apsp);

/// Vertex-insertion local search on top of a Steiner tree: for each vertex
/// outside the current tree, rebuild the KMB tree with that vertex forced as
/// an extra terminal (then pruned back against the real terminals); adopt
/// any improvement and repeat up to `max_rounds` passes. Never returns a
/// worse tree; costs O(max_rounds * n * KMB), so use it for quality studies
/// rather than inner loops. `current` must already be a valid result for
/// `terminals` (e.g. from kmb_steiner); throws std::invalid_argument when
/// it is disconnected.
SteinerResult improve_steiner(const Graph& g, SteinerResult current,
                              std::span<const VertexId> terminals,
                              std::size_t max_rounds = 2);

/// The final two KMB steps, shared with external metric-closure
/// implementations (e.g. Appro_Multi's shared-Dijkstra engine): minimum
/// spanning tree of the union subgraph formed by `union_edges`, then
/// repeated removal of non-terminal leaves. `union_edges` must connect all
/// distinct terminals; result.connected reflects whether it did.
SteinerResult kmb_finish(const Graph& g, std::span<const EdgeId> union_edges,
                         std::span<const VertexId> terminals);

/// Record-based kmb_finish for implicit graphs (e.g. the auxiliary-graph
/// overlay): `union_edges` carries endpoints and weights directly, vertex
/// ids range over [0, num_vertices). Pipeline (stable sort by weight with
/// input-order ties, union order, leaf pruning, weight summation order) is
/// identical to the Graph overload, so results are bit-identical when the
/// records mirror a materialized graph.
SteinerResult kmb_finish(std::size_t num_vertices,
                         std::span<const EdgeRecord> union_edges,
                         std::span<const VertexId> terminals);

/// Checks that `edges` forms a tree (acyclic, connected over touched
/// vertices) containing every terminal. Utility shared by tests and the
/// pseudo-multicast validator.
bool is_steiner_tree(const Graph& g, std::span<const EdgeId> edges,
                     std::span<const VertexId> terminals);

}  // namespace nfvm::graph
