#include "graph/subgraph.h"

namespace nfvm::graph {

std::vector<EdgeId> Subgraph::to_original(const std::vector<EdgeId>& sub_edges) const {
  std::vector<EdgeId> out;
  out.reserve(sub_edges.size());
  for (EdgeId e : sub_edges) out.push_back(original_edge.at(e));
  return out;
}

Subgraph filter_edges(const Graph& g, const std::function<bool(EdgeId)>& keep_edge) {
  Subgraph sub;
  sub.graph = Graph(g.num_vertices());
  sub.original_edge.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!keep_edge(e)) continue;
    const Edge& ed = g.edge(e);
    sub.graph.add_edge(ed.u, ed.v, ed.weight);
    sub.original_edge.push_back(e);
  }
  return sub;
}

}  // namespace nfvm::graph
