// Edge-filtered subgraph copies.
//
// Capacity-aware algorithms (Appro_Multi_Cap, Online_CP, SP) operate on the
// subgraph of links with enough residual bandwidth. Vertex ids are preserved
// (V' = V in the paper's construction); edge ids are remapped and the mapping
// back to the original graph is retained.
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.h"

namespace nfvm::graph {

struct Subgraph {
  Graph graph;
  /// original_edge[e'] = id in the source graph of subgraph edge e'.
  std::vector<EdgeId> original_edge;

  /// Maps a list of subgraph edge ids back to source-graph ids.
  std::vector<EdgeId> to_original(const std::vector<EdgeId>& sub_edges) const;
};

/// Copies `g` keeping only edges with `keep_edge(e) == true`.
Subgraph filter_edges(const Graph& g, const std::function<bool(EdgeId)>& keep_edge);

}  // namespace nfvm::graph
