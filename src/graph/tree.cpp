#include "graph/tree.h"

#include <algorithm>
#include <stdexcept>

#include "util/arena.h"

namespace nfvm::graph {

RootedTree::RootedTree(const Graph& g, std::span<const EdgeId> tree_edges,
                       VertexId root) {
  if (!g.has_vertex(root)) throw std::out_of_range("RootedTree: invalid root");
  util::ArenaScope scope(util::Arena::thread_local_arena());
  std::span<EdgeRecord> records =
      scope.arena().make_span<EdgeRecord>(tree_edges.size());
  for (std::size_t i = 0; i < tree_edges.size(); ++i) {
    const Edge& ed = g.edge(tree_edges[i]);
    records[i] = EdgeRecord{tree_edges[i], ed.u, ed.v, ed.weight};
  }
  init(g.num_vertices(), records, root);
}

RootedTree::RootedTree(std::size_t num_vertices,
                       std::span<const EdgeRecord> tree_edges, VertexId root) {
  if (root >= num_vertices) throw std::out_of_range("RootedTree: invalid root");
  init(num_vertices, tree_edges, root);
}

void RootedTree::init(std::size_t n, std::span<const EdgeRecord> tree_edges,
                      VertexId root) {
  root_ = root;
  parent_.assign(n, kInvalidVertex);
  parent_edge_.assign(n, kInvalidEdge);
  depth_.assign(n, 0);
  dist_.assign(n, 0.0);
  present_.assign(n, false);

  // Adjacency restricted to tree edges, CSR-packed via counting sort into
  // arena scratch: two spans instead of n vectors, discarded on return.
  struct Arc {
    VertexId neighbor;
    EdgeId edge;
    double weight;
  };
  util::ArenaScope scope(util::Arena::thread_local_arena());
  std::span<std::size_t> offsets = scope.arena().make_span<std::size_t>(n + 1);
  std::fill(offsets.begin(), offsets.end(), std::size_t{0});
  for (const EdgeRecord& r : tree_edges) {
    if (r.u >= n || r.v >= n) {
      throw std::out_of_range("RootedTree: edge endpoint out of range");
    }
    if (r.u == r.v) throw std::invalid_argument("RootedTree: self-loop in tree edges");
    ++offsets[r.u + 1];
    ++offsets[r.v + 1];
  }
  for (std::size_t v = 1; v <= n; ++v) offsets[v] += offsets[v - 1];
  std::span<Arc> arcs = scope.arena().make_span<Arc>(2 * tree_edges.size());
  {
    // fill[v] walks v's slice; arcs end up grouped per vertex, and within a
    // vertex in input order — the same order the per-vertex vectors had.
    std::span<std::size_t> fill = scope.arena().make_span<std::size_t>(n);
    std::copy(offsets.begin(), offsets.end() - 1, fill.begin());
    for (const EdgeRecord& r : tree_edges) {
      arcs[fill[r.u]++] = Arc{r.v, r.id, r.weight};
      arcs[fill[r.v]++] = Arc{r.u, r.id, r.weight};
    }
  }

  // BFS orientation from the root; order_ doubles as the queue (the scan
  // index chases the push index, visiting in exactly std::queue order).
  order_.clear();
  order_.reserve(tree_edges.size() + 1);
  present_[root] = true;
  order_.push_back(root);
  for (std::size_t head = 0; head < order_.size(); ++head) {
    const VertexId u = order_[head];
    for (std::size_t a = offsets[u]; a < offsets[u + 1]; ++a) {
      const Arc& arc = arcs[a];
      if (arc.edge == parent_edge_[u]) continue;
      if (present_[arc.neighbor]) {
        throw std::invalid_argument("RootedTree: edges contain a cycle");
      }
      present_[arc.neighbor] = true;
      parent_[arc.neighbor] = u;
      parent_edge_[arc.neighbor] = arc.edge;
      depth_[arc.neighbor] = depth_[u] + 1;
      dist_[arc.neighbor] = dist_[u] + arc.weight;
      order_.push_back(arc.neighbor);
    }
  }
  // Edges touching the root's component but unused would indicate a cycle;
  // detected above. Edges fully outside the component are allowed (forest).

  // Binary lifting table, flat (one allocation, stride n).
  std::size_t max_depth = 0;
  for (VertexId v : order_) max_depth = std::max(max_depth, depth_[v]);
  levels_ = 1;
  while ((std::size_t{1} << levels_) <= std::max<std::size_t>(max_depth, 1)) ++levels_;
  up_.assign(levels_ * n, kInvalidVertex);
  std::copy(parent_.begin(), parent_.end(), up_.begin());
  for (std::size_t k = 1; k < levels_; ++k) {
    for (VertexId v : order_) {
      const VertexId mid = up_[(k - 1) * n + v];
      up_[k * n + v] =
          mid == kInvalidVertex ? kInvalidVertex : up_[(k - 1) * n + mid];
    }
  }
}

void RootedTree::check_present(VertexId v) const {
  if (v >= present_.size() || !present_[v]) {
    throw std::out_of_range("RootedTree: vertex not in the rooted tree");
  }
}

bool RootedTree::contains(VertexId v) const {
  return v < present_.size() && present_[v];
}

VertexId RootedTree::parent(VertexId v) const {
  check_present(v);
  return parent_[v];
}

EdgeId RootedTree::parent_edge(VertexId v) const {
  check_present(v);
  return parent_edge_[v];
}

std::size_t RootedTree::depth(VertexId v) const {
  check_present(v);
  return depth_[v];
}

double RootedTree::dist_from_root(VertexId v) const {
  check_present(v);
  return dist_[v];
}

VertexId RootedTree::lca(VertexId a, VertexId b) const {
  check_present(a);
  check_present(b);
  const std::size_t n = present_.size();
  if (depth_[a] < depth_[b]) std::swap(a, b);
  std::size_t diff = depth_[a] - depth_[b];
  for (std::size_t k = 0; diff != 0; ++k, diff >>= 1) {
    if (diff & 1) a = up_[k * n + a];
  }
  if (a == b) return a;
  for (std::size_t k = levels_; k-- > 0;) {
    if (up_[k * n + a] != up_[k * n + b]) {
      a = up_[k * n + a];
      b = up_[k * n + b];
    }
  }
  return parent_[a];
}

VertexId RootedTree::lca(std::span<const VertexId> vertices) const {
  if (vertices.empty()) throw std::invalid_argument("RootedTree::lca: empty span");
  VertexId acc = vertices.front();
  for (std::size_t i = 1; i < vertices.size(); ++i) acc = lca(acc, vertices[i]);
  return acc;
}

bool RootedTree::is_ancestor(VertexId ancestor, VertexId v) const {
  return lca(ancestor, v) == ancestor;
}

std::vector<VertexId> RootedTree::path_vertices(VertexId a, VertexId b) const {
  const VertexId meet = lca(a, b);
  std::vector<VertexId> up_part;
  for (VertexId v = a; v != meet; v = parent_[v]) up_part.push_back(v);
  up_part.push_back(meet);
  std::vector<VertexId> down_part;
  for (VertexId v = b; v != meet; v = parent_[v]) down_part.push_back(v);
  std::reverse(down_part.begin(), down_part.end());
  up_part.insert(up_part.end(), down_part.begin(), down_part.end());
  return up_part;
}

std::vector<EdgeId> RootedTree::path_edges(VertexId a, VertexId b) const {
  const VertexId meet = lca(a, b);
  std::vector<EdgeId> edges;
  for (VertexId v = a; v != meet; v = parent_[v]) edges.push_back(parent_edge_[v]);
  std::vector<EdgeId> down;
  for (VertexId v = b; v != meet; v = parent_[v]) down.push_back(parent_edge_[v]);
  edges.insert(edges.end(), down.rbegin(), down.rend());
  return edges;
}

double RootedTree::path_weight(VertexId a, VertexId b) const {
  const VertexId meet = lca(a, b);
  return dist_[a] + dist_[b] - 2.0 * dist_[meet];
}

}  // namespace nfvm::graph
