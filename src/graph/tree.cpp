#include "graph/tree.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace nfvm::graph {

RootedTree::RootedTree(const Graph& g, std::span<const EdgeId> tree_edges,
                       VertexId root) {
  if (!g.has_vertex(root)) throw std::out_of_range("RootedTree: invalid root");
  std::vector<EdgeRecord> records;
  records.reserve(tree_edges.size());
  for (EdgeId e : tree_edges) {
    const Edge& ed = g.edge(e);
    records.push_back(EdgeRecord{e, ed.u, ed.v, ed.weight});
  }
  init(g.num_vertices(), records, root);
}

RootedTree::RootedTree(std::size_t num_vertices,
                       std::span<const EdgeRecord> tree_edges, VertexId root) {
  if (root >= num_vertices) throw std::out_of_range("RootedTree: invalid root");
  init(num_vertices, tree_edges, root);
}

void RootedTree::init(std::size_t n, std::span<const EdgeRecord> tree_edges,
                      VertexId root) {
  root_ = root;
  parent_.assign(n, kInvalidVertex);
  parent_edge_.assign(n, kInvalidEdge);
  depth_.assign(n, 0);
  dist_.assign(n, 0.0);
  present_.assign(n, false);

  // Adjacency restricted to tree edges, in input order.
  struct Arc {
    VertexId neighbor;
    EdgeId edge;
    double weight;
  };
  std::vector<std::vector<Arc>> adj(n);
  for (const EdgeRecord& r : tree_edges) {
    if (r.u >= n || r.v >= n) {
      throw std::out_of_range("RootedTree: edge endpoint out of range");
    }
    if (r.u == r.v) throw std::invalid_argument("RootedTree: self-loop in tree edges");
    adj[r.u].push_back(Arc{r.v, r.id, r.weight});
    adj[r.v].push_back(Arc{r.u, r.id, r.weight});
  }

  // BFS orientation from the root.
  std::queue<VertexId> queue;
  present_[root] = true;
  queue.push(root);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop();
    order_.push_back(u);
    for (const Arc& a : adj[u]) {
      if (a.edge == parent_edge_[u]) continue;
      if (present_[a.neighbor]) {
        throw std::invalid_argument("RootedTree: edges contain a cycle");
      }
      present_[a.neighbor] = true;
      parent_[a.neighbor] = u;
      parent_edge_[a.neighbor] = a.edge;
      depth_[a.neighbor] = depth_[u] + 1;
      dist_[a.neighbor] = dist_[u] + a.weight;
      queue.push(a.neighbor);
    }
  }
  // Edges touching the root's component but unused would indicate a cycle;
  // detected above. Edges fully outside the component are allowed (forest).

  // Binary lifting tables.
  std::size_t max_depth = 0;
  for (VertexId v : order_) max_depth = std::max(max_depth, depth_[v]);
  std::size_t levels = 1;
  while ((std::size_t{1} << levels) <= std::max<std::size_t>(max_depth, 1)) ++levels;
  up_.assign(levels, std::vector<VertexId>(n, kInvalidVertex));
  up_[0] = parent_;
  for (std::size_t k = 1; k < levels; ++k) {
    for (VertexId v : order_) {
      const VertexId mid = up_[k - 1][v];
      up_[k][v] = mid == kInvalidVertex ? kInvalidVertex : up_[k - 1][mid];
    }
  }
}

void RootedTree::check_present(VertexId v) const {
  if (v >= present_.size() || !present_[v]) {
    throw std::out_of_range("RootedTree: vertex not in the rooted tree");
  }
}

bool RootedTree::contains(VertexId v) const {
  return v < present_.size() && present_[v];
}

VertexId RootedTree::parent(VertexId v) const {
  check_present(v);
  return parent_[v];
}

EdgeId RootedTree::parent_edge(VertexId v) const {
  check_present(v);
  return parent_edge_[v];
}

std::size_t RootedTree::depth(VertexId v) const {
  check_present(v);
  return depth_[v];
}

double RootedTree::dist_from_root(VertexId v) const {
  check_present(v);
  return dist_[v];
}

VertexId RootedTree::lca(VertexId a, VertexId b) const {
  check_present(a);
  check_present(b);
  if (depth_[a] < depth_[b]) std::swap(a, b);
  std::size_t diff = depth_[a] - depth_[b];
  for (std::size_t k = 0; diff != 0; ++k, diff >>= 1) {
    if (diff & 1) a = up_[k][a];
  }
  if (a == b) return a;
  for (std::size_t k = up_.size(); k-- > 0;) {
    if (up_[k][a] != up_[k][b]) {
      a = up_[k][a];
      b = up_[k][b];
    }
  }
  return parent_[a];
}

VertexId RootedTree::lca(std::span<const VertexId> vertices) const {
  if (vertices.empty()) throw std::invalid_argument("RootedTree::lca: empty span");
  VertexId acc = vertices.front();
  for (std::size_t i = 1; i < vertices.size(); ++i) acc = lca(acc, vertices[i]);
  return acc;
}

bool RootedTree::is_ancestor(VertexId ancestor, VertexId v) const {
  return lca(ancestor, v) == ancestor;
}

std::vector<VertexId> RootedTree::path_vertices(VertexId a, VertexId b) const {
  const VertexId meet = lca(a, b);
  std::vector<VertexId> up_part;
  for (VertexId v = a; v != meet; v = parent_[v]) up_part.push_back(v);
  up_part.push_back(meet);
  std::vector<VertexId> down_part;
  for (VertexId v = b; v != meet; v = parent_[v]) down_part.push_back(v);
  std::reverse(down_part.begin(), down_part.end());
  up_part.insert(up_part.end(), down_part.begin(), down_part.end());
  return up_part;
}

std::vector<EdgeId> RootedTree::path_edges(VertexId a, VertexId b) const {
  const VertexId meet = lca(a, b);
  std::vector<EdgeId> edges;
  for (VertexId v = a; v != meet; v = parent_[v]) edges.push_back(parent_edge_[v]);
  std::vector<EdgeId> down;
  for (VertexId v = b; v != meet; v = parent_[v]) down.push_back(parent_edge_[v]);
  edges.insert(edges.end(), down.rbegin(), down.rend());
  return edges;
}

double RootedTree::path_weight(VertexId a, VertexId b) const {
  const VertexId meet = lca(a, b);
  return dist_[a] + dist_[b] - 2.0 * dist_[meet];
}

}  // namespace nfvm::graph
