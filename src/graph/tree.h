// Rooted tree view over a set of graph edges, with binary-lifting LCA.
//
// Online_CP (Algorithm 2, step 10) roots the Steiner tree at the request
// source and computes the lowest common ancestor of the processing server and
// all destinations to derive the backhaul detour of the pseudo-multicast
// tree. This class provides that machinery plus tree paths and weights.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace nfvm::graph {

class RootedTree {
 public:
  /// Builds the rooted view of the tree formed by `tree_edges` (ids into
  /// `g`), rooted at `root`. The edges must form a forest; vertices outside
  /// the root's tree are marked absent. Throws std::invalid_argument if
  /// `tree_edges` contains a cycle, std::out_of_range for a bad root.
  RootedTree(const Graph& g, std::span<const EdgeId> tree_edges, VertexId root);

  /// Same rooted view over an *implicit* graph given as edge records (e.g.
  /// the Appro_Multi auxiliary-graph overlay): `num_vertices` bounds the
  /// vertex ids and `tree_edges` supplies endpoints and weights directly.
  /// Identical semantics and exceptions to the Graph overload.
  RootedTree(std::size_t num_vertices, std::span<const EdgeRecord> tree_edges,
             VertexId root);

  VertexId root() const noexcept { return root_; }

  /// True iff `v` belongs to the root's tree.
  bool contains(VertexId v) const;

  /// Parent of v (kInvalidVertex for the root). Throws if !contains(v).
  VertexId parent(VertexId v) const;
  /// Edge to the parent (kInvalidEdge for the root).
  EdgeId parent_edge(VertexId v) const;
  /// Depth in edges from the root.
  std::size_t depth(VertexId v) const;
  /// Sum of edge weights on the root -> v path.
  double dist_from_root(VertexId v) const;

  /// Lowest common ancestor of two vertices in the root's tree.
  VertexId lca(VertexId a, VertexId b) const;
  /// Iterated LCA over a non-empty vertex list:
  /// LCA(x1,...,xn) = LCA(LCA(x1,...,x(n-1)), xn). Throws on empty input.
  VertexId lca(std::span<const VertexId> vertices) const;

  /// True iff `ancestor` lies on the root -> v path (inclusive).
  bool is_ancestor(VertexId ancestor, VertexId v) const;

  /// Vertices of the unique tree path a -> b (inclusive, in travel order).
  std::vector<VertexId> path_vertices(VertexId a, VertexId b) const;
  /// Edges of the unique tree path a -> b in travel order.
  std::vector<EdgeId> path_edges(VertexId a, VertexId b) const;
  /// Sum of edge weights on the path a -> b.
  double path_weight(VertexId a, VertexId b) const;

  /// All vertices of the root's tree in BFS order from the root.
  const std::vector<VertexId>& vertices() const noexcept { return order_; }

 private:
  VertexId root_;
  std::vector<VertexId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::size_t> depth_;
  std::vector<double> dist_;
  std::vector<bool> present_;
  std::vector<VertexId> order_;
  /// Binary-lifting table, flattened to one allocation: the 2^k-th
  /// ancestor of v is up_[k * n + v] (kInvalidVertex beyond the root),
  /// where n = present_.size() and k < levels_.
  std::vector<VertexId> up_;
  std::size_t levels_ = 0;

  /// Shared constructor body: BFS orientation + binary-lifting tables.
  void init(std::size_t num_vertices, std::span<const EdgeRecord> tree_edges,
            VertexId root);
  void check_present(VertexId v) const;
};

}  // namespace nfvm::graph
