// Disjoint-set union with union by size and path halving.
#pragma once

#include <cstddef>
#include <vector>

namespace nfvm::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of x's set. Throws std::out_of_range on a bad index.
  std::size_t find(std::size_t x);

  /// Merges the sets of a and b; returns false if already merged.
  bool unite(std::size_t a, std::size_t b);

  bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }

  /// Size of x's set.
  std::size_t set_size(std::size_t x);

  /// Current number of disjoint sets.
  std::size_t num_sets() const noexcept { return num_sets_; }

  std::size_t size() const noexcept { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t num_sets_;
};

}  // namespace nfvm::graph
