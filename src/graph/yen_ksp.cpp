#include "graph/yen_ksp.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace nfvm::graph {
namespace {

WeightedPath to_weighted_path(const Graph& g, const ShortestPaths& sp,
                              VertexId target) {
  WeightedPath path;
  path.vertices = path_vertices(sp, target);
  path.edges = path_edges(sp, target);
  for (EdgeId e : path.edges) path.weight += g.weight(e);
  return path;
}

}  // namespace

std::vector<WeightedPath> yen_k_shortest_paths(const Graph& g, VertexId source,
                                               VertexId target, std::size_t k) {
  if (k == 0) throw std::invalid_argument("yen_k_shortest_paths: k must be >= 1");
  if (!g.has_vertex(source) || !g.has_vertex(target)) {
    throw std::out_of_range("yen_k_shortest_paths: invalid endpoint");
  }
  if (source == target) {
    throw std::invalid_argument("yen_k_shortest_paths: source == target");
  }

  std::vector<WeightedPath> result;
  {
    const ShortestPaths sp = dijkstra(g, source);
    if (!sp.reachable(target)) return result;
    result.push_back(to_weighted_path(g, sp, target));
  }

  // Candidate pool ordered by (weight, vertex sequence) for determinism.
  const auto candidate_less = [](const WeightedPath& a, const WeightedPath& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.vertices < b.vertices;
  };
  std::set<WeightedPath, decltype(candidate_less)> candidates(candidate_less);
  std::set<std::vector<VertexId>> seen;  // vertex sequences already produced
  seen.insert(result[0].vertices);

  while (result.size() < k) {
    const WeightedPath& last = result.back();
    // Deviate at every spur vertex of the previous path.
    for (std::size_t spur = 0; spur + 1 < last.vertices.size(); ++spur) {
      const VertexId spur_vertex = last.vertices[spur];
      // Root = last.vertices[0..spur]; its weight.
      double root_weight = 0.0;
      for (std::size_t i = 0; i < spur; ++i) root_weight += g.weight(last.edges[i]);

      // Banned edges: the next edge of every accepted path sharing the root.
      std::set<EdgeId> banned_edges;
      for (const WeightedPath& p : result) {
        if (p.vertices.size() <= spur) continue;
        if (!std::equal(p.vertices.begin(), p.vertices.begin() + spur + 1,
                        last.vertices.begin())) {
          continue;
        }
        if (p.edges.size() > spur) banned_edges.insert(p.edges[spur]);
      }
      // Banned vertices: the root path minus the spur vertex (looplessness).
      std::vector<bool> banned_vertex(g.num_vertices(), false);
      for (std::size_t i = 0; i < spur; ++i) banned_vertex[last.vertices[i]] = true;

      const ShortestPaths sp = dijkstra_filtered(g, spur_vertex, [&](EdgeId e) {
        if (banned_edges.count(e) != 0) return false;
        const Edge& ed = g.edge(e);
        return !banned_vertex[ed.u] && !banned_vertex[ed.v];
      });
      if (!sp.reachable(target)) continue;

      WeightedPath spur_path = to_weighted_path(g, sp, target);
      WeightedPath full;
      full.vertices.assign(last.vertices.begin(), last.vertices.begin() + spur);
      full.vertices.insert(full.vertices.end(), spur_path.vertices.begin(),
                           spur_path.vertices.end());
      full.edges.assign(last.edges.begin(), last.edges.begin() + spur);
      full.edges.insert(full.edges.end(), spur_path.edges.begin(),
                        spur_path.edges.end());
      full.weight = root_weight + spur_path.weight;
      if (seen.count(full.vertices) == 0) candidates.insert(std::move(full));
    }

    // Pop the best unseen candidate.
    bool advanced = false;
    while (!candidates.empty()) {
      WeightedPath best = *candidates.begin();
      candidates.erase(candidates.begin());
      if (seen.insert(best.vertices).second) {
        result.push_back(std::move(best));
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // the pool is exhausted
  }
  return result;
}

}  // namespace nfvm::graph
