// Yen's algorithm for the k shortest loopless paths between two vertices.
//
// Used for path-diversity analysis (how much slack a topology has around its
// shortest routes) and as a building block for multipath extensions. Runs
// Dijkstra O(k·n) times in the worst case; intended for k up to a few tens.
#pragma once

#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph.h"

namespace nfvm::graph {

struct WeightedPath {
  /// Vertices from source to target inclusive.
  std::vector<VertexId> vertices;
  /// Edges in travel order (one fewer than vertices).
  std::vector<EdgeId> edges;
  double weight = 0.0;
};

/// Returns up to `k` loopless shortest paths from `source` to `target` in
/// non-decreasing weight order (ties broken deterministically by the
/// deviation structure). Fewer than `k` paths are returned when the graph
/// does not contain that many distinct loopless paths; empty when target is
/// unreachable. Throws std::invalid_argument for k == 0 or source == target,
/// std::out_of_range for invalid vertices.
std::vector<WeightedPath> yen_k_shortest_paths(const Graph& g, VertexId source,
                                               VertexId target, std::size_t k);

}  // namespace nfvm::graph
