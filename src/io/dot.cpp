#include "io/dot.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace nfvm::io {
namespace {

void emit_node(std::ostringstream& os, const topo::Topology& topo,
               graph::VertexId v, const std::string& extra,
               const DotOptions& options) {
  os << "  n" << v << " [label=\"" << v << "\"";
  if (topo.is_server(v)) os << ", shape=box";
  if (!extra.empty()) os << ", " << extra;
  if (options.use_coordinates && !topo.coords.empty()) {
    os << ", pos=\"" << topo.coords[v].x * 10.0 << "," << topo.coords[v].y * 10.0
       << "!\"";
  }
  os << "];\n";
}

}  // namespace

std::string to_dot(const topo::Topology& topo, const DotOptions& options) {
  std::ostringstream os;
  os << "graph \"" << (topo.name.empty() ? "topology" : topo.name) << "\" {\n";
  os << "  node [fontsize=10];\n";
  for (graph::VertexId v = 0; v < topo.num_switches(); ++v) {
    emit_node(os, topo, v, "", options);
  }
  for (graph::EdgeId e = 0; e < topo.num_links(); ++e) {
    const graph::Edge& ed = topo.graph.edge(e);
    os << "  n" << ed.u << " -- n" << ed.v;
    if (options.label_bandwidth && e < topo.link_bandwidth.size()) {
      os << " [label=\"" << topo.link_bandwidth[e] << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const topo::Topology& topo, const nfv::Request& request,
                   const core::PseudoMulticastTree& tree,
                   const DotOptions& options) {
  std::map<graph::EdgeId, int> uses;
  for (const auto& [e, mult] : tree.edge_uses) {
    if (!topo.graph.has_edge(e)) {
      throw std::invalid_argument("to_dot: tree references unknown edge");
    }
    uses.emplace(e, mult);
  }
  const std::set<graph::VertexId> dests(request.destinations.begin(),
                                        request.destinations.end());
  const std::set<graph::VertexId> chain_servers(tree.servers.begin(),
                                                tree.servers.end());

  std::ostringstream os;
  os << "graph \"" << (topo.name.empty() ? "topology" : topo.name) << "\" {\n";
  os << "  node [fontsize=10];\n";
  for (graph::VertexId v = 0; v < topo.num_switches(); ++v) {
    std::string extra;
    if (v == request.source) {
      extra = "style=filled, fillcolor=gold";
    } else if (chain_servers.count(v) != 0) {
      extra = "style=filled, fillcolor=lightblue";
    } else if (dests.count(v) != 0) {
      extra = "style=filled, fillcolor=palegreen";
    }
    emit_node(os, topo, v, extra, options);
  }
  for (graph::EdgeId e = 0; e < topo.num_links(); ++e) {
    const graph::Edge& ed = topo.graph.edge(e);
    os << "  n" << ed.u << " -- n" << ed.v;
    const auto it = uses.find(e);
    if (it != uses.end()) {
      os << " [penwidth=2.5, color=crimson, label=\"x" << it->second << "\"]";
    } else {
      os << " [color=gray70]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace nfvm::io
