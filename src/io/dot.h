// Graphviz (DOT) export for topologies and pseudo-multicast trees.
//
// Render with e.g. `neato -Tsvg topo.dot -o topo.svg`. Server switches are
// drawn as boxes; when a pseudo-multicast tree is supplied, its links are
// bold and labelled with traversal multiplicities, the source/destinations/
// chain servers are color-coded.
#pragma once

#include <string>

#include "core/pseudo_tree.h"
#include "topology/topology.h"

namespace nfvm::io {

struct DotOptions {
  /// Use stored coordinates as fixed node positions (neato -n friendly).
  bool use_coordinates = true;
  /// Label links with their bandwidth capacity.
  bool label_bandwidth = false;
};

/// DOT rendering of the bare topology.
std::string to_dot(const topo::Topology& topo, const DotOptions& options = {});

/// DOT rendering with one request's pseudo-multicast tree overlaid.
/// Throws std::invalid_argument if the tree references unknown links.
std::string to_dot(const topo::Topology& topo, const nfv::Request& request,
                   const core::PseudoMulticastTree& tree,
                   const DotOptions& options = {});

}  // namespace nfvm::io
