#include "io/serialize.h"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nfvm::io {
namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& message) {
  throw std::runtime_error("read_topology: line " + std::to_string(line) + ": " +
                           message);
}

}  // namespace

void write_topology(std::ostream& os, const topo::Topology& topo) {
  if (topo.link_bandwidth.size() != topo.num_links() ||
      topo.server_compute.size() != topo.num_switches()) {
    throw std::invalid_argument("write_topology: capacities not assigned");
  }
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "nfvm-topology 1\n";
  os << "name " << (topo.name.empty() ? "unnamed" : topo.name) << "\n";
  os << "nodes " << topo.num_switches() << "\n";
  for (std::size_t i = 0; i < topo.coords.size(); ++i) {
    os << "coord " << i << " " << topo.coords[i].x << " " << topo.coords[i].y << "\n";
  }
  for (graph::VertexId v : topo.servers) {
    os << "server " << v << " " << topo.server_compute[v] << "\n";
  }
  if (topo.has_table_capacities()) {
    for (graph::VertexId v = 0; v < topo.num_switches(); ++v) {
      os << "table " << v << " " << topo.switch_table_capacity[v] << "\n";
    }
  }
  for (graph::EdgeId e = 0; e < topo.num_links(); ++e) {
    const graph::Edge& ed = topo.graph.edge(e);
    os << "edge " << ed.u << " " << ed.v << " " << topo.link_bandwidth[e];
    if (topo.has_delays()) os << " " << topo.link_delay_ms[e];
    os << "\n";
  }
}

std::string topology_to_string(const topo::Topology& topo) {
  std::ostringstream oss;
  write_topology(oss, topo);
  return oss.str();
}

topo::Topology read_topology(std::istream& is) {
  topo::Topology topo;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  bool saw_nodes = false;
  std::vector<std::pair<graph::VertexId, double>> servers;

  auto require_nodes = [&](std::size_t at_line) {
    if (!saw_nodes) parse_error(at_line, "directive before 'nodes'");
  };
  auto check_vertex = [&](long long v, std::size_t at_line) {
    if (v < 0 || static_cast<std::size_t>(v) >= topo.num_switches()) {
      parse_error(at_line, "vertex id out of range");
    }
    return static_cast<graph::VertexId>(v);
  };

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string directive;
    ls >> directive;
    if (!saw_header) {
      int version = 0;
      if (directive != "nfvm-topology" || !(ls >> version) || version != 1) {
        parse_error(line_no, "expected header 'nfvm-topology 1'");
      }
      saw_header = true;
      continue;
    }
    if (directive == "name") {
      ls >> topo.name;
    } else if (directive == "nodes") {
      std::size_t n = 0;
      if (!(ls >> n) || n == 0) parse_error(line_no, "bad node count");
      if (saw_nodes) parse_error(line_no, "duplicate 'nodes' directive");
      topo.graph = graph::Graph(n);
      topo.server_compute.assign(n, 0.0);
      saw_nodes = true;
    } else if (directive == "coord") {
      require_nodes(line_no);
      long long v = -1;
      double x = 0;
      double y = 0;
      if (!(ls >> v >> x >> y)) parse_error(line_no, "bad coord line");
      const graph::VertexId vid = check_vertex(v, line_no);
      if (topo.coords.empty()) topo.coords.resize(topo.num_switches());
      topo.coords[vid] = topo::Point{x, y};
    } else if (directive == "table") {
      require_nodes(line_no);
      long long v = -1;
      double entries = 0;
      if (!(ls >> v >> entries) || !(entries >= 1)) {
        parse_error(line_no, "bad table line");
      }
      if (topo.switch_table_capacity.empty()) {
        topo.switch_table_capacity.assign(topo.num_switches(), 1.0);
      }
      topo.switch_table_capacity[check_vertex(v, line_no)] = entries;
    } else if (directive == "server") {
      require_nodes(line_no);
      long long v = -1;
      double mhz = 0;
      if (!(ls >> v >> mhz) || !(mhz > 0)) parse_error(line_no, "bad server line");
      servers.emplace_back(check_vertex(v, line_no), mhz);
    } else if (directive == "edge") {
      require_nodes(line_no);
      long long u = -1;
      long long v = -1;
      double mbps = 0;
      if (!(ls >> u >> v >> mbps) || !(mbps > 0)) parse_error(line_no, "bad edge line");
      topo.graph.add_edge(check_vertex(u, line_no), check_vertex(v, line_no), 1.0);
      topo.link_bandwidth.push_back(mbps);
      double delay = 0.0;
      if (ls >> delay) {
        if (!(delay > 0)) parse_error(line_no, "non-positive edge delay");
        topo.link_delay_ms.push_back(delay);
      } else if (!topo.link_delay_ms.empty()) {
        parse_error(line_no, "edge missing delay while earlier edges have one");
      }
    } else {
      parse_error(line_no, "unknown directive '" + directive + "'");
    }
  }
  if (!saw_header) parse_error(line_no, "missing header");
  if (!saw_nodes) parse_error(line_no, "missing 'nodes' directive");

  std::sort(servers.begin(), servers.end());
  for (const auto& [v, mhz] : servers) {
    if (!topo.servers.empty() && topo.servers.back() == v) {
      throw std::runtime_error("read_topology: duplicate server " + std::to_string(v));
    }
    topo.servers.push_back(v);
    topo.server_compute[v] = mhz;
  }
  return topo;
}

topo::Topology topology_from_string(const std::string& text) {
  std::istringstream iss(text);
  return read_topology(iss);
}

}  // namespace nfvm::io
