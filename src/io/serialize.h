// Plain-text topology serialization.
//
// A small line-oriented format so topologies can be saved, diffed, versioned
// and re-loaded (e.g. to pin one generated network for a whole experiment
// campaign, or to import a real map in Topology Zoo edge-list style):
//
//   nfvm-topology 1
//   name <string>
//   nodes <count>
//   coord <vertex> <x> <y>            (optional, any number)
//   server <vertex> <compute_mhz>     (one per server)
//   table <vertex> <entries>          (optional, one per switch when present)
//   edge <u> <v> <bandwidth_mbps> [delay_ms]   (one per link, insertion order)
//
// Lines starting with '#' and blank lines are ignored.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/topology.h"

namespace nfvm::io {

/// Serializes a topology. Link bandwidths / server capacities must be
/// assigned (write uses them); throws std::invalid_argument otherwise.
void write_topology(std::ostream& os, const topo::Topology& topo);
std::string topology_to_string(const topo::Topology& topo);

/// Parses the format above. Throws std::runtime_error with a line number on
/// malformed input (unknown directive, out-of-range vertex, missing header).
topo::Topology read_topology(std::istream& is);
topo::Topology topology_from_string(const std::string& text);

}  // namespace nfvm::io
