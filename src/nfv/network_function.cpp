#include "nfv/network_function.h"

#include <stdexcept>

namespace nfvm::nfv {
namespace {

struct Profile {
  std::string_view name;
  double mhz_per_100mbps;
  double delay_ms;
};

constexpr std::array<Profile, kNumNetworkFunctions> kProfiles = {{
    {"NAT", 20.0, 0.05},
    {"Firewall", 40.0, 0.10},
    {"LoadBalancer", 30.0, 0.08},
    {"Proxy", 60.0, 0.30},
    {"IDS", 80.0, 0.50},
}};

const Profile& profile(NetworkFunction nf) {
  const auto idx = static_cast<std::size_t>(nf);
  if (idx >= kProfiles.size()) {
    throw std::invalid_argument("network_function: invalid enum value");
  }
  return kProfiles[idx];
}

}  // namespace

std::string_view to_string(NetworkFunction nf) { return profile(nf).name; }

double compute_demand_per_100mbps(NetworkFunction nf) {
  return profile(nf).mhz_per_100mbps;
}

double processing_delay_ms(NetworkFunction nf) { return profile(nf).delay_ms; }

NetworkFunction random_network_function(util::Rng& rng) {
  return kAllNetworkFunctions[rng.next_below(kNumNetworkFunctions)];
}

}  // namespace nfvm::nfv
