// The virtualized network functions of the paper's evaluation (Section
// VI-A): Firewall, Proxy, NAT, IDS, Load Balancer, each with a computing
// demand profile.
//
// The paper adopts demands "from [7], [17]" without printing the constants;
// we use a profile table in MHz per 100 Mbps of processed traffic whose
// relative ordering follows ClickOS-era measurements (NAT cheapest, IDS most
// expensive). See DESIGN.md, "Substitutions".
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/rng.h"

namespace nfvm::nfv {

enum class NetworkFunction : std::uint8_t {
  kNat = 0,
  kFirewall = 1,
  kLoadBalancer = 2,
  kProxy = 3,
  kIds = 4,
};

inline constexpr std::size_t kNumNetworkFunctions = 5;

inline constexpr std::array<NetworkFunction, kNumNetworkFunctions> kAllNetworkFunctions = {
    NetworkFunction::kNat,   NetworkFunction::kFirewall,
    NetworkFunction::kLoadBalancer, NetworkFunction::kProxy,
    NetworkFunction::kIds,
};

/// Human-readable name ("NAT", "Firewall", ...).
std::string_view to_string(NetworkFunction nf);

/// Computing demand of one NF instance, in MHz per 100 Mbps of traffic.
double compute_demand_per_100mbps(NetworkFunction nf);

/// Per-packet processing latency added by one NF instance, in ms. Used by
/// the delay-constrained extension (core/delay.h).
double processing_delay_ms(NetworkFunction nf);

/// Uniformly random NF.
NetworkFunction random_network_function(util::Rng& rng);

}  // namespace nfvm::nfv
