#include "nfv/request.h"

#include <algorithm>
#include <stdexcept>

namespace nfvm::nfv {

std::string Request::to_string() const {
  std::string out = "r" + std::to_string(id) + "(s=" + std::to_string(source) + ", D={";
  for (std::size_t i = 0; i < destinations.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(destinations[i]);
  }
  out += "}, b=" + std::to_string(bandwidth_mbps) + "Mbps, SC=" + chain.to_string() + ")";
  return out;
}

void validate_request(const Request& request, const graph::Graph& g) {
  if (!g.has_vertex(request.source)) {
    throw std::invalid_argument("request: source is not a vertex of the SDN");
  }
  if (request.destinations.empty()) {
    throw std::invalid_argument("request: destination set is empty");
  }
  std::vector<graph::VertexId> sorted = request.destinations;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("request: duplicate destination");
  }
  for (graph::VertexId d : request.destinations) {
    if (!g.has_vertex(d)) {
      throw std::invalid_argument("request: destination is not a vertex of the SDN");
    }
    if (d == request.source) {
      throw std::invalid_argument("request: source listed as destination");
    }
  }
  if (!(request.bandwidth_mbps > 0)) {
    throw std::invalid_argument("request: bandwidth must be positive");
  }
  if (request.chain.empty()) {
    throw std::invalid_argument("request: service chain is empty");
  }
}

}  // namespace nfvm::nfv
