// NFV-enabled multicast requests: r_k = (s_k, D_k; b_k, SC_k).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "nfv/service_chain.h"

namespace nfvm::nfv {

struct Request {
  /// Monotonic request id (k in the paper).
  std::uint64_t id = 0;
  /// Source switch s_k.
  graph::VertexId source = graph::kInvalidVertex;
  /// Destination switches D_k (non-empty, distinct, none equal to source).
  std::vector<graph::VertexId> destinations;
  /// Demanded bandwidth b_k, Mbps.
  double bandwidth_mbps = 0.0;
  /// Service chain SC_k.
  ServiceChain chain;
  /// Optional end-to-end delay bound, ms (source -> any destination,
  /// including chain processing). 0 = unconstrained - the base paper's
  /// setting; positive values enable the delay-constrained extension.
  double max_delay_ms = 0.0;

  bool has_delay_bound() const noexcept { return max_delay_ms > 0.0; }

  /// C_v(SC_k) under the consolidation model: demand is server-independent.
  double compute_demand_mhz() const { return chain.compute_demand_mhz(bandwidth_mbps); }

  std::string to_string() const;
};

/// Validates the request against a graph: all vertices exist, destinations
/// are distinct and exclude the source, bandwidth positive, chain non-empty.
/// Throws std::invalid_argument describing the first violation.
void validate_request(const Request& request, const graph::Graph& g);

}  // namespace nfvm::nfv
