#include "nfv/resources.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

namespace nfvm::nfv {
namespace {

constexpr double kSlack = 1e-9;  // float tolerance for capacity checks

std::vector<std::pair<std::size_t, double>> aggregate_impl(
    const std::vector<std::pair<std::uint32_t, double>>& entries) {
  std::map<std::size_t, double> acc;
  for (const auto& [id, amount] : entries) {
    if (!(amount >= 0)) {
      throw std::invalid_argument("resources: negative footprint amount");
    }
    acc[id] += amount;
  }
  return {acc.begin(), acc.end()};
}

}  // namespace

ResourceState::ResourceState(const topo::Topology& topo)
    : bandwidth_capacity_(topo.link_bandwidth),
      residual_bandwidth_(topo.link_bandwidth),
      compute_capacity_(topo.server_compute),
      residual_compute_(topo.server_compute),
      table_capacity_(topo.switch_table_capacity),
      residual_table_(topo.switch_table_capacity) {
  if (bandwidth_capacity_.size() != topo.num_links() ||
      compute_capacity_.size() != topo.num_switches()) {
    throw std::invalid_argument("ResourceState: topology capacities not assigned");
  }
}

double ResourceState::bandwidth_utilization(graph::EdgeId e) const {
  const double cap = bandwidth_capacity_.at(e);
  return cap <= 0 ? 0.0 : 1.0 - residual_bandwidth_.at(e) / cap;
}

double ResourceState::compute_utilization(graph::VertexId v) const {
  const double cap = compute_capacity_.at(v);
  return cap <= 0 ? 0.0 : 1.0 - residual_compute_.at(v) / cap;
}

std::vector<std::pair<std::size_t, double>> ResourceState::aggregate(
    const std::vector<std::pair<graph::EdgeId, double>>& entries) {
  return aggregate_impl(entries);
}

std::vector<std::pair<std::size_t, double>> ResourceState::aggregate_v(
    const std::vector<std::pair<graph::VertexId, double>>& entries) {
  return aggregate_impl(entries);
}

double ResourceState::residual_table_entries(graph::VertexId v) const {
  if (!tracks_tables()) return std::numeric_limits<double>::infinity();
  return residual_table_.at(v);
}

double ResourceState::table_capacity(graph::VertexId v) const {
  if (!tracks_tables()) return std::numeric_limits<double>::infinity();
  return table_capacity_.at(v);
}

namespace {
std::vector<std::pair<std::size_t, double>> aggregate_tables(
    const std::vector<graph::VertexId>& entries) {
  std::map<std::size_t, double> acc;
  for (graph::VertexId v : entries) acc[v] += 1.0;
  return {acc.begin(), acc.end()};
}
}  // namespace

bool ResourceState::can_allocate(const Footprint& fp) const {
  for (const auto& [e, amount] : aggregate(fp.bandwidth)) {
    if (amount > residual_bandwidth_.at(e) + kSlack) return false;
  }
  for (const auto& [v, amount] : aggregate_v(fp.compute)) {
    if (amount > residual_compute_.at(v) + kSlack) return false;
  }
  if (tracks_tables()) {
    for (const auto& [v, amount] : aggregate_tables(fp.table_entries)) {
      if (amount > residual_table_.at(v) + kSlack) return false;
    }
  }
  return true;
}

void ResourceState::allocate(const Footprint& fp) {
  const auto bw = aggregate(fp.bandwidth);
  const auto cp = aggregate_v(fp.compute);
  const auto tb = tracks_tables() ? aggregate_tables(fp.table_entries)
                                  : std::vector<std::pair<std::size_t, double>>{};
  for (const auto& [e, amount] : bw) {
    if (amount > residual_bandwidth_.at(e) + kSlack) {
      throw std::runtime_error("ResourceState::allocate: bandwidth overflow");
    }
  }
  for (const auto& [v, amount] : cp) {
    if (amount > residual_compute_.at(v) + kSlack) {
      throw std::runtime_error("ResourceState::allocate: compute overflow");
    }
  }
  for (const auto& [v, amount] : tb) {
    if (amount > residual_table_.at(v) + kSlack) {
      throw std::runtime_error("ResourceState::allocate: table overflow");
    }
  }
  for (const auto& [e, amount] : bw) {
    residual_bandwidth_[e] = std::max(0.0, residual_bandwidth_[e] - amount);
  }
  for (const auto& [v, amount] : cp) {
    residual_compute_[v] = std::max(0.0, residual_compute_[v] - amount);
  }
  for (const auto& [v, amount] : tb) {
    residual_table_[v] = std::max(0.0, residual_table_[v] - amount);
  }
}

void ResourceState::release(const Footprint& fp) {
  const auto bw = aggregate(fp.bandwidth);
  const auto cp = aggregate_v(fp.compute);
  const auto tb = tracks_tables() ? aggregate_tables(fp.table_entries)
                                  : std::vector<std::pair<std::size_t, double>>{};
  for (const auto& [e, amount] : bw) {
    if (residual_bandwidth_.at(e) + amount > bandwidth_capacity_[e] + kSlack) {
      throw std::runtime_error("ResourceState::release: bandwidth over capacity");
    }
  }
  for (const auto& [v, amount] : cp) {
    if (residual_compute_.at(v) + amount > compute_capacity_[v] + kSlack) {
      throw std::runtime_error("ResourceState::release: compute over capacity");
    }
  }
  for (const auto& [v, amount] : tb) {
    if (residual_table_.at(v) + amount > table_capacity_[v] + kSlack) {
      throw std::runtime_error("ResourceState::release: table over capacity");
    }
  }
  for (const auto& [e, amount] : bw) {
    residual_bandwidth_[e] = std::min(bandwidth_capacity_[e], residual_bandwidth_[e] + amount);
  }
  for (const auto& [v, amount] : cp) {
    residual_compute_[v] = std::min(compute_capacity_[v], residual_compute_[v] + amount);
  }
  for (const auto& [v, amount] : tb) {
    residual_table_[v] = std::min(table_capacity_[v], residual_table_[v] + amount);
  }
}

namespace {
void check_residuals(const char* what, const std::vector<double>& values,
                     const std::vector<double>& capacity) {
  if (values.size() != capacity.size()) {
    throw std::runtime_error(std::string("restore_residuals: ") + what +
                             " has " + std::to_string(values.size()) +
                             " entries, topology has " +
                             std::to_string(capacity.size()));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!(values[i] >= 0.0) || values[i] > capacity[i] + kSlack) {
      throw std::runtime_error(std::string("restore_residuals: ") + what +
                               "[" + std::to_string(i) +
                               "] outside [0, capacity]");
    }
  }
}
}  // namespace

ResourceResiduals ResourceState::export_residuals() const {
  return ResourceResiduals{residual_bandwidth_, residual_compute_,
                           residual_table_};
}

void ResourceState::restore_residuals(const ResourceResiduals& residuals) {
  check_residuals("bandwidth", residuals.bandwidth, bandwidth_capacity_);
  check_residuals("compute", residuals.compute, compute_capacity_);
  check_residuals("table", residuals.table, table_capacity_);
  residual_bandwidth_ = residuals.bandwidth;
  residual_compute_ = residuals.compute;
  residual_table_ = residuals.table;
}

double ResourceState::total_allocated_bandwidth() const {
  double total = 0.0;
  for (std::size_t e = 0; e < residual_bandwidth_.size(); ++e) {
    total += bandwidth_capacity_[e] - residual_bandwidth_[e];
  }
  return total;
}

double ResourceState::total_allocated_compute() const {
  double total = 0.0;
  for (std::size_t v = 0; v < residual_compute_.size(); ++v) {
    total += compute_capacity_[v] - residual_compute_[v];
  }
  return total;
}

}  // namespace nfvm::nfv
