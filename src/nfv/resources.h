// Residual-resource bookkeeping for capacitated and online admission.
//
// Tracks C_v(k) (available computing at each server) and B_e(k) (available
// bandwidth at each link) as requests are admitted and released. A
// `Footprint` records exactly what one admitted request consumed so it can
// be released symmetrically; bandwidth entries carry multiplicities because
// pseudo-multicast trees may traverse a link more than once (tree pass +
// backhaul detour).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "topology/topology.h"

namespace nfvm::nfv {

/// What one admitted request consumes.
struct Footprint {
  /// (link, Mbps) pairs; the same link may appear once with an aggregated
  /// amount or multiple times - allocation sums entries.
  std::vector<std::pair<graph::EdgeId, double>> bandwidth;
  /// (server, MHz) pairs.
  std::vector<std::pair<graph::VertexId, double>> compute;
  /// Switches receiving one new forwarding-table (flow) entry for this
  /// multicast group. Ignored when the topology does not track table
  /// capacities. Duplicates aggregate like the other resources.
  std::vector<graph::VertexId> table_entries;

  bool empty() const noexcept {
    return bandwidth.empty() && compute.empty() && table_entries.empty();
  }
};

/// The raw residual vectors, exported for snapshot/restore. Residuals are
/// accumulated doubles (allocate subtracts, release adds back), so they can
/// only be reproduced bit-exactly by carrying the values themselves -
/// replaying footprints in any order other than the original interleaved
/// allocate/release history reassociates the floating-point sums and drifts
/// by an ulp.
struct ResourceResiduals {
  std::vector<double> bandwidth;  ///< per-link residual Mbps
  std::vector<double> compute;    ///< per-server residual MHz
  std::vector<double> table;      ///< per-switch residual entries; empty when not tracked
};

class ResourceState {
 public:
  /// Initializes residuals to the topology's full capacities.
  explicit ResourceState(const topo::Topology& topo);

  double bandwidth_capacity(graph::EdgeId e) const { return bandwidth_capacity_.at(e); }
  double residual_bandwidth(graph::EdgeId e) const { return residual_bandwidth_.at(e); }
  double compute_capacity(graph::VertexId v) const { return compute_capacity_.at(v); }
  double residual_compute(graph::VertexId v) const { return residual_compute_.at(v); }

  /// True when the topology declared forwarding-table capacities.
  bool tracks_tables() const noexcept { return !table_capacity_.empty(); }
  /// Residual flow entries at switch v; +infinity when not tracked.
  double residual_table_entries(graph::VertexId v) const;
  double table_capacity(graph::VertexId v) const;

  /// Utilization in [0, 1]: 1 - residual/capacity.
  double bandwidth_utilization(graph::EdgeId e) const;
  double compute_utilization(graph::VertexId v) const;

  std::size_t num_links() const noexcept { return residual_bandwidth_.size(); }
  std::size_t num_switches() const noexcept { return residual_compute_.size(); }

  /// True iff every entry of the footprint fits in the current residuals
  /// (entries for the same resource are summed before checking).
  bool can_allocate(const Footprint& fp) const;

  /// Atomically consumes the footprint. Throws std::runtime_error (leaving
  /// the state unchanged) if it does not fit, std::out_of_range on bad ids.
  void allocate(const Footprint& fp);

  /// Returns the footprint's resources. Throws std::runtime_error if a
  /// release would exceed the capacity (double release), leaving the state
  /// unchanged.
  void release(const Footprint& fp);

  /// Copies of the residual vectors, bit-exact.
  ResourceResiduals export_residuals() const;

  /// Installs previously exported residuals verbatim. Throws
  /// std::runtime_error if the shapes do not match this topology or any
  /// value lies outside [0, capacity] - a snapshot taken on a different
  /// network must fail loudly, not restore garbage.
  void restore_residuals(const ResourceResiduals& residuals);

  /// Sum of allocated bandwidth over all links (Mbps).
  double total_allocated_bandwidth() const;
  /// Sum of allocated compute over all servers (MHz).
  double total_allocated_compute() const;

 private:
  std::vector<double> bandwidth_capacity_;
  std::vector<double> residual_bandwidth_;
  std::vector<double> compute_capacity_;
  std::vector<double> residual_compute_;
  std::vector<double> table_capacity_;   // empty when not tracked
  std::vector<double> residual_table_;

  /// Aggregates footprint entries into dense (id -> amount) maps.
  static std::vector<std::pair<std::size_t, double>> aggregate(
      const std::vector<std::pair<graph::EdgeId, double>>& entries);
  static std::vector<std::pair<std::size_t, double>> aggregate_v(
      const std::vector<std::pair<graph::VertexId, double>>& entries);
};

/// The admission algorithms' shared link-eligibility predicate: link `e` of
/// `g` can join a new multicast tree for a request demanding
/// `bandwidth_mbps` iff its residual bandwidth covers the demand and both
/// endpoint switches still have a free forwarding-table entry (trivially
/// true when the topology does not track table capacities).
inline bool edge_eligible(const ResourceState& state, const graph::Graph& g,
                          graph::EdgeId e, double bandwidth_mbps) {
  if (state.residual_bandwidth(e) < bandwidth_mbps) return false;
  const graph::Edge& ed = g.edge(e);
  return state.residual_table_entries(ed.u) >= 1.0 &&
         state.residual_table_entries(ed.v) >= 1.0;
}

}  // namespace nfvm::nfv
