#include "nfv/service_chain.h"

#include <algorithm>
#include <stdexcept>

namespace nfvm::nfv {

ServiceChain::ServiceChain(std::vector<NetworkFunction> functions)
    : functions_(std::move(functions)) {
  if (functions_.empty()) {
    throw std::invalid_argument("ServiceChain: must contain at least one NF");
  }
}

double ServiceChain::compute_demand_mhz(double bandwidth_mbps) const {
  if (!(bandwidth_mbps > 0)) {
    throw std::invalid_argument("ServiceChain: bandwidth must be positive");
  }
  double total = 0.0;
  for (NetworkFunction nf : functions_) {
    total += compute_demand_per_100mbps(nf) * (bandwidth_mbps / 100.0);
  }
  return total;
}

double ServiceChain::processing_delay_ms() const {
  double total = 0.0;
  for (NetworkFunction nf : functions_) total += nfv::processing_delay_ms(nf);
  return total;
}

std::string ServiceChain::to_string() const {
  std::string out = "<";
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (i > 0) out += ", ";
    out += nfv::to_string(functions_[i]);
  }
  out += ">";
  return out;
}

ServiceChain random_service_chain(util::Rng& rng, std::size_t min_length,
                                  std::size_t max_length) {
  if (min_length == 0 || min_length > max_length ||
      max_length > kNumNetworkFunctions) {
    throw std::invalid_argument("random_service_chain: bad length bounds");
  }
  const std::size_t len = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(min_length),
                      static_cast<std::int64_t>(max_length)));
  std::vector<std::size_t> picks =
      rng.sample_without_replacement(kNumNetworkFunctions, len);
  std::sort(picks.begin(), picks.end());  // canonical NF order
  std::vector<NetworkFunction> fns;
  fns.reserve(len);
  for (std::size_t p : picks) fns.push_back(kAllNetworkFunctions[p]);
  return ServiceChain(std::move(fns));
}

}  // namespace nfvm::nfv
