// Service chains: an ordered sequence of network functions that every packet
// of a request must traverse before reaching any destination (paper Fig. 2,
// e.g. <NAT, Firewall, IDS>). Following the paper's consolidation assumption
// (Section III-B), one server hosts a VM running the whole chain, so the
// chain's computing demand is the sum over its functions.
#pragma once

#include <string>
#include <vector>

#include "nfv/network_function.h"
#include "util/rng.h"

namespace nfvm::nfv {

class ServiceChain {
 public:
  ServiceChain() = default;
  /// Throws std::invalid_argument when `functions` is empty (every
  /// NFV-enabled request has at least one NF).
  explicit ServiceChain(std::vector<NetworkFunction> functions);

  const std::vector<NetworkFunction>& functions() const noexcept { return functions_; }
  std::size_t length() const noexcept { return functions_.size(); }
  bool empty() const noexcept { return functions_.empty(); }

  /// C_v(SC_k): total computing demand (MHz) to run this chain on one server
  /// for a flow of `bandwidth_mbps`. Scales linearly with traffic rate.
  double compute_demand_mhz(double bandwidth_mbps) const;

  /// Total per-packet processing latency of the chain, ms (sum over NFs;
  /// rate-independent). Used by the delay-constrained extension.
  double processing_delay_ms() const;

  /// "<NAT, Firewall, IDS>" formatting for logs and examples.
  std::string to_string() const;

  bool operator==(const ServiceChain&) const = default;

 private:
  std::vector<NetworkFunction> functions_;
};

/// Random chain: picks a length in [min_length, max_length] and that many
/// distinct NFs, keeping the canonical order of kAllNetworkFunctions (a
/// chain like <NAT, Firewall, IDS> is realistic; <IDS, NAT> is not).
ServiceChain random_service_chain(util::Rng& rng, std::size_t min_length = 1,
                                  std::size_t max_length = 3);

}  // namespace nfvm::nfv
