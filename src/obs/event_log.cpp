#include "obs/event_log.h"

#include <iostream>

#include "obs/json.h"

namespace nfvm::obs {

void JsonLine::key(std::string_view name) {
  if (!body_.empty()) body_ += ",";
  body_ += "\"";
  body_ += json_escape(name);
  body_ += "\":";
}

JsonLine& JsonLine::field(std::string_view k, std::string_view value) {
  key(k);
  body_ += "\"";
  body_ += json_escape(value);
  body_ += "\"";
  return *this;
}

JsonLine& JsonLine::field(std::string_view k, double value) {
  key(k);
  body_ += json_number(value);
  return *this;
}

JsonLine& JsonLine::field_uint(std::string_view k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonLine& JsonLine::field_int(std::string_view k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonLine& JsonLine::field(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

bool EventLog::open(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (path == "-") {
    sink_ = &std::cout;
    return true;
  }
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) return false;
  sink_ = &out_;
  return true;
}

void EventLog::write(const JsonLine& line) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (sink_ == nullptr) return;
  if (stamp_.empty() || line.body().empty()) {
    *sink_ << "{" << stamp_ << line.body() << "}\n";
  } else {
    *sink_ << "{" << stamp_ << "," << line.body() << "}\n";
  }
  ++lines_;
}

void EventLog::set_stamp(const JsonLine& stamp) {
  const std::lock_guard<std::mutex> lock(mu_);
  stamp_ = stamp.body();
}

void EventLog::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (sink_ == &out_ && out_.is_open()) out_.close();
  if (sink_ != nullptr && sink_ != &out_) sink_->flush();
  sink_ = nullptr;
}

}  // namespace nfvm::obs
