// Structured run artifacts: a JSONL (one JSON object per line) event log.
//
// The simulator emits one event per processed request; consumers (the BENCH
// trajectory, ad-hoc jq pipelines) get a stable machine-readable record of
// every admission decision without parsing the human-oriented table.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>

namespace nfvm::obs {

/// Builds one flat JSON object incrementally. Field order is insertion
/// order; keys are escaped; doubles are emitted as valid JSON numbers.
class JsonLine {
 public:
  JsonLine& field(std::string_view key, std::string_view value);
  JsonLine& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonLine& field(std::string_view key, double value);
  JsonLine& field(std::string_view key, bool value);
  /// Any integer type (std::size_t, int, ...) without overload ambiguity
  /// against the double overload.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonLine& field(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return field_int(key, static_cast<std::int64_t>(value));
    } else {
      return field_uint(key, static_cast<std::uint64_t>(value));
    }
  }

  /// The finished object, e.g. {"event":"request","admitted":true}.
  std::string str() const { return "{" + body_ + "}"; }

  /// The fields without the surrounding braces - used by EventLog to splice
  /// the per-run stamp in front of each line's own fields.
  const std::string& body() const { return body_; }

 private:
  JsonLine& field_uint(std::string_view key, std::uint64_t value);
  JsonLine& field_int(std::string_view key, std::int64_t value);
  void key(std::string_view name);
  std::string body_;
};

/// Append-oriented JSONL sink. Thread-safe writes; a default-constructed
/// (or failed-to-open) log swallows writes, so call sites need no null checks
/// beyond the pointer itself.
class EventLog {
 public:
  EventLog() = default;

  /// Opens (truncates) `path`; the path "-" streams to stdout instead.
  /// Returns false and stays closed on failure.
  bool open(const std::string& path);
  bool is_open() const { return sink_ != nullptr; }

  /// Writes `line` plus a newline. No-op when the log is not open.
  void write(const JsonLine& line);
  std::size_t lines_written() const { return lines_; }

  /// Run-identification fields (schema tag, config hash, seed) prepended to
  /// every subsequently written line, so each JSONL line is self-describing
  /// even when cut out of its bundle. Call before the first write.
  void set_stamp(const JsonLine& stamp);

  /// Flushes and closes the sink.
  void close();

 private:
  std::mutex mu_;
  std::ofstream out_;
  std::ostream* sink_ = nullptr;  // &out_, or std::cout for "-"
  std::size_t lines_ = 0;
  std::string stamp_;  // pre-serialized fields, no braces; may be empty
};

}  // namespace nfvm::obs
