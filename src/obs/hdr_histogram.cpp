#include "obs/hdr_histogram.h"

#include <cmath>
#include <limits>

namespace nfvm::obs {

HdrHistogram::HdrHistogram() noexcept
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

std::size_t HdrHistogram::bucket_index(double sample) noexcept {
  if (!(sample > 0.0)) return 0;  // non-positive and NaN
  // frexp's result is unspecified for infinities; route them to overflow.
  if (std::isinf(sample)) return kNumBuckets - 1;
  int exp = 0;
  const double frac = std::frexp(sample, &exp);  // frac in [0.5, 1)
  const int octave = exp - 1;                    // sample in [2^octave, 2^(octave+1))
  if (octave < kMinOctave) return 0;
  if (octave > kMaxOctave) return kNumBuckets - 1;
  // frac*2 lies in [1, 2); frac*2 - 1 is exact there, so the slice index is
  // an exact floor in [0, kSubBuckets).
  const auto sub = static_cast<std::size_t>((frac * 2.0 - 1.0) *
                                            static_cast<double>(kSubBuckets));
  return static_cast<std::size_t>(octave - kMinOctave) * kSubBuckets + sub;
}

double HdrHistogram::bucket_upper_bound(std::size_t bucket) {
  if (bucket >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  const int octave = kMinOctave + static_cast<int>(bucket / kSubBuckets);
  const auto sub = static_cast<double>(bucket % kSubBuckets);
  return std::ldexp(1.0 + (sub + 1.0) / static_cast<double>(kSubBuckets), octave);
}

void HdrHistogram::observe(double sample) noexcept {
  buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add(double) is C++20; min/max need CAS loops.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + sample,
                                     std::memory_order_relaxed)) {
  }
  expected = min_.load(std::memory_order_relaxed);
  while (sample < expected &&
         !min_.compare_exchange_weak(expected, sample, std::memory_order_relaxed)) {
  }
  expected = max_.load(std::memory_order_relaxed);
  while (sample > expected &&
         !max_.compare_exchange_weak(expected, sample, std::memory_order_relaxed)) {
  }
}

std::uint64_t HdrHistogram::bucket_count(std::size_t bucket) const {
  return buckets_.at(bucket).load(std::memory_order_relaxed);
}

std::vector<HistogramBucket> HdrHistogram::snapshot_buckets() const {
  std::size_t highest = 0;
  bool any = false;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (bucket_count(b) > 0) {
      highest = b;
      any = true;
    }
  }
  std::vector<HistogramBucket> buckets;
  if (!any) return buckets;
  buckets.reserve(highest + 1);
  for (std::size_t b = 0; b <= highest; ++b) {
    buckets.push_back({bucket_upper_bound(b), bucket_count(b)});
  }
  return buckets;
}

double HdrHistogram::quantile(double q) const {
  return obs::estimate_quantile(snapshot_buckets(), q, min(), max());
}

void HdrHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

double estimate_quantile(const HdrHistogram& histogram, double q) {
  return histogram.quantile(q);
}

}  // namespace nfvm::obs
