// Log-linear ("HDR-style") histogram with a bounded relative bucket width.
//
// The base-2 Histogram in metrics.h pays one bucket per octave, so a
// quantile estimate is only guaranteed within a factor of 2 of the true
// value. That is fine for coarse instruments (combination counts spanning
// six orders of magnitude) but useless for latency SLOs, where "p99 is
// somewhere between 0.5x and 2x" cannot drive a gate. HdrHistogram keeps
// the same lock-free recording discipline but subdivides every octave into
// kSubBuckets linear slices:
//
//   bucket (o, s) covers [2^o * (1 + s/128), 2^o * (1 + (s+1)/128))
//
// so the bucket width over its lower bound is at most 1/128 ~ 0.78%. Any
// quantile interpolated inside its bucket is therefore within 1% relative
// error of the true sample quantile for samples in the covered range
// [2^kMinOctave, 2^(kMaxOctave+1)) - see test_obs_hdr_histogram.cpp, which
// pins the worst case. Samples below the range land in bucket 0, samples
// above in the overflow bucket; both are tightened by the exact min/max.
//
// Recording is one frexp plus a handful of relaxed atomics - cheap enough
// for the per-request admission path, though not for inner relaxation
// loops (the array is ~50 KiB per instrument; prefer the log2 Histogram
// for high-cardinality instrument families).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace nfvm::obs {

class HdrHistogram {
 public:
  /// Linear slices per octave: 2^7. Relative bucket width <= 1/128 < 1%.
  static constexpr std::size_t kSubBucketBits = 7;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  /// Covered octaves: [2^-10, 2^40) - for microsecond timings that is ~1 ns
  /// to ~12.7 days, and it comfortably holds dimensionless counts too.
  static constexpr int kMinOctave = -10;
  static constexpr int kMaxOctave = 39;
  static constexpr std::size_t kNumOctaves =
      static_cast<std::size_t>(kMaxOctave - kMinOctave + 1);
  /// Regular buckets plus one overflow bucket (le = +inf).
  static constexpr std::size_t kNumBuckets = kNumOctaves * kSubBuckets + 1;

  HdrHistogram() noexcept;

  void observe(double sample) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// +inf / -inf respectively when no sample was observed.
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t bucket) const;

  /// Exclusive upper bound of `bucket` (+inf for the overflow bucket).
  static double bucket_upper_bound(std::size_t bucket);
  /// Bucket a sample falls into (exposed for tests). Non-positive and NaN
  /// samples count into bucket 0.
  static std::size_t bucket_index(double sample) noexcept;

  /// Estimated q-quantile via estimate_quantile over the tight buckets;
  /// NaN when empty. Relative error <= 1/kSubBuckets for in-range samples.
  double quantile(double q) const;

  /// Dense {le, count} export up to the highest non-empty bucket (empty
  /// vector when no sample was recorded) - the shape Registry::write_json
  /// emits and estimate_quantile consumes.
  std::vector<HistogramBucket> snapshot_buckets() const;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Convenience overload mirroring estimate_quantile(const Histogram&, q).
double estimate_quantile(const HdrHistogram& histogram, double q);

}  // namespace nfvm::obs
