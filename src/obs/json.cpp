#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace nfvm::obs {

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[40];
  // %.17g round-trips every double; trim to something shorter when exact.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) return shorter;
  }
  return buf;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back(Context::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Context::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: end_object outside an object");
  }
  stack_.pop_back();
  first_.pop_back();
  raw("}");
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back(Context::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Context::kArray) {
    throw std::logic_error("JsonWriter: end_array outside an array");
  }
  stack_.pop_back();
  first_.pop_back();
  raw("]");
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Context::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (!first_.back()) raw(",");
  first_.back() = false;
  raw("\"");
  raw(json_escape(name));
  raw("\":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  raw("\"");
  raw(json_escape(text));
  raw("\"");
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  raw(json_number(number));
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  raw(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  raw(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  raw(flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  raw("null");
  return *this;
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == Context::kObject) {
    if (!pending_key_) {
      throw std::logic_error("JsonWriter: object member needs a key first");
    }
    pending_key_ = false;
    return;
  }
  if (!stack_.empty() && stack_.back() == Context::kArray) {
    if (!first_.back()) raw(",");
    first_.back() = false;
  }
}

void JsonWriter::raw(std::string_view text) { out_ << text; }

}  // namespace nfvm::obs
