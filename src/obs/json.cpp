#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace nfvm::obs {

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[40];
  // %.17g round-trips every double; trim to something shorter when exact.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) return shorter;
  }
  return buf;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back(Context::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Context::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: end_object outside an object");
  }
  stack_.pop_back();
  first_.pop_back();
  raw("}");
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back(Context::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Context::kArray) {
    throw std::logic_error("JsonWriter: end_array outside an array");
  }
  stack_.pop_back();
  first_.pop_back();
  raw("]");
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Context::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (!first_.back()) raw(",");
  first_.back() = false;
  raw("\"");
  raw(json_escape(name));
  raw("\":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  raw("\"");
  raw(json_escape(text));
  raw("\"");
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  raw(json_number(number));
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  raw(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  raw(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  raw(flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  raw("null");
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  before_value();
  raw(json);
  return *this;
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == Context::kObject) {
    if (!pending_key_) {
      throw std::logic_error("JsonWriter: object member needs a key first");
    }
    pending_key_ = false;
    return;
  }
  if (!stack_.empty() && stack_.back() == Context::kArray) {
    if (!first_.back()) raw(",");
    first_.back() = false;
  }
}

void JsonWriter::raw(std::string_view text) { out_ << text; }

// --- Parser -----------------------------------------------------------------

const JsonValue& JsonValue::at(const std::string& key) const {
  if (!has(key)) throw std::runtime_error("missing key: " + key);
  return object.at(key);
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text, std::uint64_t base_offset = 0)
      : text_(text), base_offset_(base_offset) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at byte " +
                             std::to_string(base_offset_ + pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + peek() + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (v.object.count(key) > 0) fail("duplicate key: " + key);
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (!consume_literal("\\u")) fail("unpaired high surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      std::size_t consumed = 0;
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)), &consumed);
      if (consumed != pos_ - start) fail("malformed number");
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::uint64_t base_offset_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return JsonParser(text).parse(); }

JsonValue parse_json(std::string_view text, std::uint64_t base_offset) {
  return JsonParser(text, base_offset).parse();
}

bool JsonlCursor::next(Record& record) {
  while (pos_ < text_.size()) {
    const std::uint64_t start = pos_;
    const std::size_t nl = text_.find('\n', pos_);
    std::string_view line;
    bool unterminated = false;
    if (nl == std::string_view::npos) {
      line = text_.substr(pos_);
      pos_ = text_.size();
      unterminated = true;
    } else {
      line = text_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
    }
    ++lineno_;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    record.line = line;
    record.offset = start;
    record.number = lineno_;
    record.unterminated = unterminated;
    return true;
  }
  return false;
}

JsonValue parse_jsonl_record(const JsonlCursor::Record& record) {
  JsonValue doc;
  try {
    doc = parse_json(record.line, record.offset);
  } catch (const std::exception& e) {
    if (record.unterminated) {
      // No trailing newline and unparseable: the classic partially-written
      // tail of a crashed writer. Name it as such - consumers routinely
      // choose to tolerate exactly this case and nothing else.
      throw std::runtime_error(
          "truncated JSONL record at line " + std::to_string(record.number) +
          " (byte " + std::to_string(record.offset) + "): " + e.what());
    }
    throw std::runtime_error("line " + std::to_string(record.number) + ": " +
                             e.what());
  }
  if (!doc.is_object()) {
    throw std::runtime_error("line " + std::to_string(record.number) +
                             " (byte " + std::to_string(record.offset) +
                             "): not a JSON object");
  }
  return doc;
}

}  // namespace nfvm::obs
