// Minimal JSON support for the observability artifacts: a streaming writer
// (metrics registry dumps, Chrome trace files, JSONL event logs, bench and
// manifest artifacts) and a small recursive-descent parser (the nfvm-report
// tool and the test suite read those artifacts back). Not a general JSON
// library: the writer is guaranteed to emit valid RFC 8259 output (escaped
// strings, finite numbers, correct comma placement); the parser accepts any
// RFC 8259 document and fails with a byte offset on malformed input.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nfvm::obs {

/// Escapes a string for use inside a JSON string literal (no surrounding
/// quotes). Control characters become \uXXXX; UTF-8 bytes pass through.
std::string json_escape(std::string_view raw);

/// Formats a double as a valid JSON number. NaN and infinities, which JSON
/// cannot represent, are emitted as 0 (observability data; never worth
/// failing a run over).
std::string json_number(double value);

/// Streaming writer with an explicit nesting stack. Usage:
///   JsonWriter w(out);
///   w.begin_object();
///   w.key("counters");
///   w.begin_object();
///   w.key("graph.dijkstra.runs").value(42);
///   w.end_object();
///   w.end_object();
/// Commas and quoting are handled by the writer; the caller only provides
/// structure. Throws std::logic_error on misuse (e.g. value without key
/// inside an object) to fail loudly in tests rather than emit bad JSON.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next member; must be inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Splices pre-serialized JSON in value position (comma placement still
  /// handled). The caller guarantees `json` is one complete valid value -
  /// used to embed a Registry::to_json() snapshot into a larger document.
  JsonWriter& raw_value(std::string_view json);

  /// Depth of the open containers (0 once the document is complete).
  std::size_t depth() const noexcept { return stack_.size(); }

 private:
  enum class Context : std::uint8_t { kObject, kArray };

  void before_value();
  void raw(std::string_view text);

  std::ostream& out_;
  std::vector<Context> stack_;
  std::vector<bool> first_;   // parallel to stack_: no member emitted yet
  bool pending_key_ = false;  // a key was emitted, value expected next
};

/// Parsed JSON document node. A plain tagged struct rather than a variant:
/// artifacts are small (metrics dumps, bench tables, manifests), so the
/// fixed per-node overhead is irrelevant and accessors stay trivial.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  bool has(const std::string& key) const {
    return is_object() && object.count(key) > 0;
  }
  /// Member access; throws std::runtime_error when absent (artifact
  /// consumers treat a missing key as a malformed artifact).
  const JsonValue& at(const std::string& key) const;
};

/// Parses one complete JSON document. Throws std::runtime_error with the
/// byte offset on malformed input (trailing bytes, bad escapes, duplicate
/// object keys - our writers never emit those, so a duplicate signals a
/// corrupt artifact). \uXXXX escapes decode to UTF-8, including surrogate
/// pairs.
JsonValue parse_json(std::string_view text);

/// As parse_json, but error byte offsets are reported relative to
/// `base_offset` + the position inside `text`. Used by JSONL consumers so a
/// malformed record names its absolute position in the enclosing stream,
/// not a line-local one.
JsonValue parse_json(std::string_view text, std::uint64_t base_offset);

/// Record iterator over a JSONL buffer that tracks absolute byte offsets -
/// the shared substrate for every consumer that must survive truncated or
/// partially-written files (a process killed mid-write leaves a final
/// record with no trailing newline and, usually, an unparseable prefix).
/// Blank lines are skipped; the cursor itself never throws.
class JsonlCursor {
 public:
  struct Record {
    /// The record's bytes, newline excluded.
    std::string_view line;
    /// Byte offset of the record's first byte in the buffer.
    std::uint64_t offset = 0;
    /// 1-based line number.
    std::size_t number = 0;
    /// True when the buffer ended without a newline after this record - the
    /// signature of a write cut short. Such a record may still parse (the
    /// kill landed between the payload and the '\n'); callers decide
    /// whether a parseable unterminated tail is acceptable.
    bool unterminated = false;
  };

  explicit JsonlCursor(std::string_view text) : text_(text) {}

  /// Advances to the next non-blank record. Returns false at end of buffer.
  bool next(Record& record);

 private:
  std::string_view text_;
  std::uint64_t pos_ = 0;
  std::size_t lineno_ = 0;
};

/// Parses one cursor record as a JSON object. Throws std::runtime_error
/// naming the line number and the absolute byte offset on malformed input
/// or a non-object record; a record flagged `unterminated` that also fails
/// to parse is reported as a truncated record.
JsonValue parse_jsonl_record(const JsonlCursor::Record& record);

}  // namespace nfvm::obs
