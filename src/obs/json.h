// Minimal streaming JSON writer for the observability exports (metrics
// registry dumps, Chrome trace files, JSONL event logs). Not a general JSON
// library: write-only, no DOM, but guaranteed to emit valid RFC 8259 output
// (escaped strings, finite numbers, correct comma placement).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace nfvm::obs {

/// Escapes a string for use inside a JSON string literal (no surrounding
/// quotes). Control characters become \uXXXX; UTF-8 bytes pass through.
std::string json_escape(std::string_view raw);

/// Formats a double as a valid JSON number. NaN and infinities, which JSON
/// cannot represent, are emitted as 0 (observability data; never worth
/// failing a run over).
std::string json_number(double value);

/// Streaming writer with an explicit nesting stack. Usage:
///   JsonWriter w(out);
///   w.begin_object();
///   w.key("counters");
///   w.begin_object();
///   w.key("graph.dijkstra.runs").value(42);
///   w.end_object();
///   w.end_object();
/// Commas and quoting are handled by the writer; the caller only provides
/// structure. Throws std::logic_error on misuse (e.g. value without key
/// inside an object) to fail loudly in tests rather than emit bad JSON.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next member; must be inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Depth of the open containers (0 once the document is complete).
  std::size_t depth() const noexcept { return stack_.size(); }

 private:
  enum class Context : std::uint8_t { kObject, kArray };

  void before_value();
  void raw(std::string_view text);

  std::ostream& out_;
  std::vector<Context> stack_;
  std::vector<bool> first_;   // parallel to stack_: no member emitted yet
  bool pending_key_ = false;  // a key was emitted, value expected next
};

}  // namespace nfvm::obs
