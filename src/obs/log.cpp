#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace nfvm::obs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_write_mu;

double seconds_since_start() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "error") return LogLevel::kError;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug") return LogLevel::kDebug;
  return std::nullopt;
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, std::string_view message) {
  if (!log_enabled(level)) return;
  const std::lock_guard<std::mutex> lock(g_write_mu);
  std::fprintf(stderr, "[%8.3fs][%-5s] %.*s\n", seconds_since_start(),
               std::string(to_string(level)).c_str(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace nfvm::obs
