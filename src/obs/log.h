// Minimal leveled logger for the tools and simulators.
//
// Severity-gated stderr lines with a monotonic timestamp:
//   [   0.123s][info ] admission run: online_cp, 300 requests
// Not for hot paths - guard expensive message construction with
// log_enabled(). Default level is kWarn so library users see nothing
// unless something is wrong.
#pragma once

#include <optional>
#include <string_view>

namespace nfvm::obs {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Name as used by `nfvm_sim --log-level` ("error", "warn", "info", "debug").
std::string_view to_string(LogLevel level);
/// Inverse of to_string; nullopt for unknown names.
std::optional<LogLevel> parse_log_level(std::string_view name);

void set_log_level(LogLevel level);
LogLevel log_level();
bool log_enabled(LogLevel level);

void log_message(LogLevel level, std::string_view message);
inline void log_error(std::string_view m) { log_message(LogLevel::kError, m); }
inline void log_warn(std::string_view m) { log_message(LogLevel::kWarn, m); }
inline void log_info(std::string_view m) { log_message(LogLevel::kInfo, m); }
inline void log_debug(std::string_view m) { log_message(LogLevel::kDebug, m); }

}  // namespace nfvm::obs
