#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace nfvm::obs {

// --- Histogram --------------------------------------------------------------

Histogram::Histogram() noexcept
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

std::size_t Histogram::bucket_index(double sample) noexcept {
  if (!(sample > 1.0)) return 0;  // <= 1, non-positive and NaN
  const int exponent = std::ilogb(sample);
  // sample in [2^exponent, 2^(exponent+1)); bucket upper bound is 2^i, so
  // exact powers of two belong to bucket `exponent`, the rest one above.
  const bool exact_power = std::ldexp(1.0, exponent) == sample;
  const int bucket = exact_power ? exponent : exponent + 1;
  if (bucket < 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(bucket), kNumBuckets - 1);
}

double Histogram::bucket_upper_bound(std::size_t bucket) {
  if (bucket >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(bucket));
}

void Histogram::observe(double sample) noexcept {
  buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add(double) is C++20; min/max need CAS loops.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + sample,
                                     std::memory_order_relaxed)) {
  }
  expected = min_.load(std::memory_order_relaxed);
  while (sample < expected &&
         !min_.compare_exchange_weak(expected, sample, std::memory_order_relaxed)) {
  }
  expected = max_.load(std::memory_order_relaxed);
  while (sample > expected &&
         !max_.compare_exchange_weak(expected, sample, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket_count(std::size_t bucket) const {
  return buckets_.at(bucket).load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

// --- Quantile estimation ----------------------------------------------------

double estimate_quantile(const std::vector<HistogramBucket>& buckets, double q,
                         double min_value, double max_value) {
  std::uint64_t total = 0;
  for (const HistogramBucket& b : buckets) total += b.count;
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;

  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].count == 0) continue;
    const double next = cumulative + static_cast<double>(buckets[i].count);
    if (next < target && i + 1 < buckets.size()) {
      cumulative = next;
      continue;
    }
    double lower = i == 0 ? 0.0 : buckets[i - 1].le;
    double upper = buckets[i].le;
    if (!std::isfinite(upper)) {
      // Overflow bucket: the observed max is the only finite upper bound
      // available; without it fall back to doubling (the log2 growth rate).
      upper = std::isfinite(max_value) ? max_value : lower * 2.0;
    }
    // A finite min/max tightens the end buckets (all samples in the first
    // occupied bucket are >= min, in the last <= max).
    if (std::isfinite(min_value)) lower = std::max(lower, std::min(min_value, upper));
    if (std::isfinite(max_value)) upper = std::min(upper, max_value);
    const double fraction =
        std::max(0.0, target - cumulative) / static_cast<double>(buckets[i].count);
    const double estimate = lower + fraction * (upper - lower);
    return std::min(std::max(estimate, lower), upper);
  }
  return std::numeric_limits<double>::quiet_NaN();  // unreachable: total > 0
}

double estimate_quantile(const Histogram& histogram, double q) {
  std::vector<HistogramBucket> buckets;
  buckets.reserve(Histogram::kNumBuckets);
  for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    buckets.push_back({Histogram::bucket_upper_bound(b), histogram.bucket_count(b)});
  }
  return estimate_quantile(buckets, q, histogram.min(), histogram.max());
}

// --- Registry ---------------------------------------------------------------

Registry& Registry::global() {
  // Intentionally leaked: instrumented code and at-exit exporters may touch
  // the registry during static destruction, so it must never be destroyed.
  static Registry* const instance = new Registry();
  return *instance;
}

Counter* Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  return counters_.emplace(std::string(name), std::make_unique<Counter>())
      .first->second.get();
}

Gauge* Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second.get();
  return gauges_.emplace(std::string(name), std::make_unique<Gauge>())
      .first->second.get();
}

Histogram* Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second.get();
  return histograms_.emplace(std::string(name), std::make_unique<Histogram>())
      .first->second.get();
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauge_snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::string> Registry::counter_names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.push_back(name);
  return out;
}

void Registry::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(out);
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name).value(c->value());
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name).value(g->value());
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    if (h->count() > 0) {
      w.key("min").value(h->min());
      w.key("max").value(h->max());
      // Estimated within the containing log2 bucket; see estimate_quantile
      // for the error bound.
      w.key("p50").value(estimate_quantile(*h, 0.50));
      w.key("p90").value(estimate_quantile(*h, 0.90));
      w.key("p99").value(estimate_quantile(*h, 0.99));
    }
    w.key("buckets").begin_array();
    std::size_t highest = 0;
    for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      if (h->bucket_count(b) > 0) highest = b;
    }
    if (h->count() > 0) {
      for (std::size_t b = 0; b <= highest; ++b) {
        const double le = Histogram::bucket_upper_bound(b);
        w.begin_object();
        if (std::isfinite(le)) {
          w.key("le").value(le);
        } else {
          w.key("le").value("+Inf");
        }
        w.key("count").value(h->bucket_count(b));
        w.end_object();
      }
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  out << "\n";
}

std::string Registry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace nfvm::obs
