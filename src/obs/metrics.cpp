#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "obs/hdr_histogram.h"
#include "obs/json.h"
#include "obs/window.h"

namespace nfvm::obs {

// --- Histogram --------------------------------------------------------------

Histogram::Histogram() noexcept
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

std::size_t Histogram::bucket_index(double sample) noexcept {
  if (!(sample > 1.0)) return 0;  // <= 1, non-positive and NaN
  const int exponent = std::ilogb(sample);
  // sample in [2^exponent, 2^(exponent+1)); bucket upper bound is 2^i, so
  // exact powers of two belong to bucket `exponent`, the rest one above.
  const bool exact_power = std::ldexp(1.0, exponent) == sample;
  const int bucket = exact_power ? exponent : exponent + 1;
  if (bucket < 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(bucket), kNumBuckets - 1);
}

double Histogram::bucket_upper_bound(std::size_t bucket) {
  if (bucket >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(bucket));
}

void Histogram::observe(double sample) noexcept {
  buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add(double) is C++20; min/max need CAS loops.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + sample,
                                     std::memory_order_relaxed)) {
  }
  expected = min_.load(std::memory_order_relaxed);
  while (sample < expected &&
         !min_.compare_exchange_weak(expected, sample, std::memory_order_relaxed)) {
  }
  expected = max_.load(std::memory_order_relaxed);
  while (sample > expected &&
         !max_.compare_exchange_weak(expected, sample, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket_count(std::size_t bucket) const {
  return buckets_.at(bucket).load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

// --- Quantile estimation ----------------------------------------------------

double estimate_quantile(const std::vector<HistogramBucket>& buckets, double q,
                         double min_value, double max_value) {
  std::uint64_t total = 0;
  for (const HistogramBucket& b : buckets) total += b.count;
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;

  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].count == 0) continue;
    const double next = cumulative + static_cast<double>(buckets[i].count);
    if (next < target && i + 1 < buckets.size()) {
      cumulative = next;
      continue;
    }
    double lower = i == 0 ? 0.0 : buckets[i - 1].le;
    double upper = buckets[i].le;
    if (!std::isfinite(upper)) {
      // Overflow bucket: the observed max is the only finite upper bound
      // available; without it fall back to doubling (the log2 growth rate).
      upper = std::isfinite(max_value) ? max_value : lower * 2.0;
    }
    // A finite min/max tightens the end buckets (all samples in the first
    // occupied bucket are >= min, in the last <= max).
    if (std::isfinite(min_value)) lower = std::max(lower, std::min(min_value, upper));
    if (std::isfinite(max_value)) upper = std::min(upper, max_value);
    const double fraction =
        std::max(0.0, target - cumulative) / static_cast<double>(buckets[i].count);
    const double estimate = lower + fraction * (upper - lower);
    return std::min(std::max(estimate, lower), upper);
  }
  return std::numeric_limits<double>::quiet_NaN();  // unreachable: total > 0
}

double estimate_quantile(const Histogram& histogram, double q) {
  std::vector<HistogramBucket> buckets;
  buckets.reserve(Histogram::kNumBuckets);
  for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    buckets.push_back({Histogram::bucket_upper_bound(b), histogram.bucket_count(b)});
  }
  return estimate_quantile(buckets, q, histogram.min(), histogram.max());
}

// --- Registry ---------------------------------------------------------------

// Out-of-line so HdrHistogram can stay forward-declared in the header.
Registry::Registry() = default;
Registry::~Registry() = default;

Registry& Registry::global() {
  // Intentionally leaked: instrumented code and at-exit exporters may touch
  // the registry during static destruction, so it must never be destroyed.
  static Registry* const instance = new Registry();
  return *instance;
}

Counter* Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  return counters_.emplace(std::string(name), std::make_unique<Counter>())
      .first->second.get();
}

Gauge* Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second.get();
  return gauges_.emplace(std::string(name), std::make_unique<Gauge>())
      .first->second.get();
}

Histogram* Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second.get();
  return histograms_.emplace(std::string(name), std::make_unique<Histogram>())
      .first->second.get();
}

HdrHistogram* Registry::hdr_histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = hdr_histograms_.find(name);
  if (it != hdr_histograms_.end()) return it->second.get();
  return hdr_histograms_.emplace(std::string(name), std::make_unique<HdrHistogram>())
      .first->second.get();
}

WindowedHistogram* Registry::windowed_histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = windowed_.find(name);
  if (it != windowed_.end()) return it->second.get();
  return windowed_
      .emplace(std::string(name),
               std::make_unique<WindowedHistogram>(
                   window_options_ ? *window_options_ : WindowOptions{}))
      .first->second.get();
}

void Registry::set_window_options(const WindowOptions& options) {
  const std::lock_guard<std::mutex> lock(mu_);
  window_options_ = std::make_unique<WindowOptions>(options);
}

std::vector<std::pair<std::string, WindowedHistogram*>>
Registry::windowed_instruments() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, WindowedHistogram*>> out;
  out.reserve(windowed_.size());
  for (const auto& [name, w] : windowed_) out.emplace_back(name, w.get());
  return out;
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, h] : hdr_histograms_) h->reset();
  for (auto& [name, w] : windowed_) w->reset();
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauge_snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::string> Registry::counter_names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.push_back(name);
  return out;
}

namespace {

/// Body shared by both histogram kinds: stats, estimated percentiles (always
/// exported when count > 0, so readers never re-derive them from buckets)
/// and the dense bucket list up to the highest non-empty one.
void write_histogram_body(JsonWriter& w, std::string_view kind,
                          std::uint64_t count, double sum, double min_value,
                          double max_value,
                          const std::vector<HistogramBucket>& buckets) {
  w.key("kind").value(kind);
  w.key("count").value(count);
  w.key("sum").value(sum);
  if (count > 0) {
    w.key("min").value(min_value);
    w.key("max").value(max_value);
    // Estimated within the containing bucket; see estimate_quantile for the
    // log2 error bound and obs/hdr_histogram.h for the <= 1% hdr bound.
    w.key("p50").value(estimate_quantile(buckets, 0.50, min_value, max_value));
    w.key("p90").value(estimate_quantile(buckets, 0.90, min_value, max_value));
    w.key("p99").value(estimate_quantile(buckets, 0.99, min_value, max_value));
  }
  w.key("buckets").begin_array();
  for (const HistogramBucket& bucket : buckets) {
    w.begin_object();
    if (std::isfinite(bucket.le)) {
      w.key("le").value(bucket.le);
    } else {
      w.key("le").value("+Inf");
    }
    w.key("count").value(bucket.count);
    w.end_object();
  }
  w.end_array();
}

std::vector<HistogramBucket> log2_snapshot_buckets(const Histogram& h) {
  std::size_t highest = 0;
  bool any = false;
  for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    if (h.bucket_count(b) > 0) {
      highest = b;
      any = true;
    }
  }
  std::vector<HistogramBucket> buckets;
  if (!any) return buckets;
  for (std::size_t b = 0; b <= highest; ++b) {
    buckets.push_back({Histogram::bucket_upper_bound(b), h.bucket_count(b)});
  }
  return buckets;
}

}  // namespace

void Registry::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(out);
  w.begin_object();
  w.key("schema").value(kMetricsSchema);

  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name).value(c->value());
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name).value(g->value());
  }
  w.end_object();

  // Both kinds share the "histograms" section, merged in name order.
  w.key("histograms").begin_object();
  auto log2_it = histograms_.begin();
  auto hdr_it = hdr_histograms_.begin();
  while (log2_it != histograms_.end() || hdr_it != hdr_histograms_.end()) {
    const bool take_log2 =
        hdr_it == hdr_histograms_.end() ||
        (log2_it != histograms_.end() && log2_it->first <= hdr_it->first);
    if (take_log2) {
      const Histogram& h = *log2_it->second;
      w.key(log2_it->first).begin_object();
      write_histogram_body(w, "log2", h.count(), h.sum(), h.min(), h.max(),
                           log2_snapshot_buckets(h));
      w.end_object();
      ++log2_it;
    } else {
      const HdrHistogram& h = *hdr_it->second;
      w.key(hdr_it->first).begin_object();
      write_histogram_body(w, "hdr", h.count(), h.sum(), h.min(), h.max(),
                           h.snapshot_buckets());
      w.end_object();
      ++hdr_it;
    }
  }
  w.end_object();

  w.end_object();
  out << "\n";
}

std::string Registry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace nfvm::obs
