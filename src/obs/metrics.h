// Process-wide metrics: named counters, gauges and log-scale histograms.
//
// Design constraints (this sits inside Dijkstra relaxation loops and the
// per-request admission path):
//   * Increments are lock-free - every instrument is a fixed set of relaxed
//     atomics. The registry mutex is only taken on first lookup of a name.
//   * Call sites use the NFVM_COUNTER_* / NFVM_HISTOGRAM_* macros, which
//     cache the instrument pointer in a function-local static: after the
//     first execution an increment is one relaxed fetch_add.
//   * Instrument pointers are stable for the life of the process.
//     Registry::reset_values() zeroes every instrument but never removes
//     one, so cached pointers stay valid across simulation runs.
//   * Compiling with -DNFVM_OBS=0 (CMake: cmake -DNFVM_OBS=0) turns every
//     macro into a no-op; the classes remain available so code that uses
//     them directly still builds.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef NFVM_OBS
#define NFVM_OBS 1
#endif

namespace nfvm::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written double (utilizations, configuration echoes).
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Base-2 log-scale histogram for positive samples (timings in microseconds,
/// combination counts, ...). Bucket i counts samples in (2^(i-1), 2^i];
/// bucket 0 takes everything <= 1, the last bucket everything larger than
/// 2^(kNumBuckets-2). Also tracks count/sum/min/max exactly.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 64;

  void observe(double sample) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// +inf / -inf respectively when no sample was observed.
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t bucket) const;
  /// Inclusive upper bound of `bucket` (+inf for the last).
  static double bucket_upper_bound(std::size_t bucket);
  /// Bucket a sample falls into (exposed for tests).
  static std::size_t bucket_index(double sample) noexcept;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;

 public:
  Histogram() noexcept;
};

/// One exported histogram bucket: inclusive upper bound (may be +inf for the
/// overflow bucket) and the number of samples that landed in it. This is the
/// shape written by Registry::write_json and read back by nfvm-report.
struct HistogramBucket {
  double le = 0.0;
  std::uint64_t count = 0;
};

/// Estimates the q-quantile (q in [0, 1]) of a log2-bucketed histogram by
/// linear interpolation inside the bucket containing the target rank.
/// `buckets` must be ordered by ascending `le`; the lower bound of bucket i
/// is buckets[i-1].le (0 for the first). When known, `min_value`/`max_value`
/// tighten the first/last occupied bucket and clamp the result; pass
/// +inf/-inf (the empty-histogram defaults) to skip. Returns NaN when every
/// bucket is empty.
///
/// Error bound: the true quantile lies in the same bucket as the estimate,
/// and base-2 buckets span (2^(i-1), 2^i], so for samples > 1 the estimate
/// is within a factor of 2 of the true value (relative error < 100%, and in
/// practice far less for smooth distributions; see docs/observability.md).
double estimate_quantile(const std::vector<HistogramBucket>& buckets, double q,
                         double min_value, double max_value);

/// Convenience overload sampling a live histogram (uses its min/max).
double estimate_quantile(const Histogram& histogram, double q);

class HdrHistogram;        // obs/hdr_histogram.h
class WindowedHistogram;   // obs/window.h
struct WindowOptions;      // obs/window.h

/// Name -> instrument map. Lookups are mutex-guarded; use the macros (or
/// cache the returned pointer) on hot paths.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry the NFVM_* macros write to.
  static Registry& global();

  /// Get-or-create. The returned pointer is valid for the registry's
  /// lifetime; repeated calls with the same name return the same pointer.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);
  /// Tight-error latency instrument (obs/hdr_histogram.h). Lives in the
  /// same "histograms" JSON section, tagged "kind": "hdr"; names must not
  /// collide with log2 histograms.
  HdrHistogram* hdr_histogram(std::string_view name);
  /// Time-aware instrument (obs/window.h): sliding-window + decaying views
  /// of one sample stream. Created with the registry's default WindowOptions
  /// (set_window_options); never part of write_json - windowed state is
  /// emitted per tick in the nfvm-timeseries-v2 "windows" section instead.
  WindowedHistogram* windowed_histogram(std::string_view name);

  /// Options applied to windowed instruments created after this call
  /// (existing instruments keep theirs) - call before the first
  /// NFVM_WINDOW_OBSERVE executes to change the process-wide defaults.
  void set_window_options(const WindowOptions& options);

  /// Name -> instrument pointers of every windowed histogram (sorted by
  /// name; pointers are registry-lifetime stable). The sampler snapshots
  /// these outside the registry lock.
  std::vector<std::pair<std::string, WindowedHistogram*>> windowed_instruments() const;

  /// Zeroes every instrument's value. Never removes instruments, so
  /// pointers cached by call sites stay valid. Use between runs.
  void reset_values();

  /// Snapshots for tests and ad-hoc consumers (sorted by name).
  std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot() const;
  std::vector<std::pair<std::string, double>> gauge_snapshot() const;
  /// Names of all registered instruments of each kind (sorted).
  std::vector<std::string> counter_names() const;

  /// Writes the whole registry as one JSON object ("nfvm-metrics-v2"):
  ///   {"schema": "nfvm-metrics-v2",
  ///    "counters": {name: value, ...},
  ///    "gauges":   {name: value, ...},
  ///    "histograms": {name: {"kind": "log2"|"hdr", "count": n, "sum": s,
  ///                          "min": m, "max": M, "p50": ..., "p90": ...,
  ///                          "p99": ...,
  ///                          "buckets": [{"le": bound, "count": n}, ...]}}}
  /// Histogram buckets are emitted up to the highest non-empty one. v1
  /// readers (which detect metrics by the counters/gauges/histograms shape
  /// and never re-derive percentiles when p50/p90/p99 are present) read v2
  /// documents unchanged; the "schema" and "kind" tags are additive.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<HdrHistogram>, std::less<>> hdr_histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>, std::less<>> windowed_;
  std::unique_ptr<WindowOptions> window_options_;  // null = library defaults
};

/// Schema tag written by Registry::write_json.
inline constexpr std::string_view kMetricsSchema = "nfvm-metrics-v2";

}  // namespace nfvm::obs

// --- Hot-path macros --------------------------------------------------------
//
// The instrument name must be a string literal (or at least stable for the
// lifetime of the call site): it is resolved once into a function-local
// static pointer.

#if NFVM_OBS

/// Wraps statements that only exist to feed instruments (local tally
/// variables and their updates); compiled out with the rest of the layer.
#define NFVM_OBS_ONLY(...) __VA_ARGS__

#define NFVM_COUNTER_ADD(name, delta)                                \
  do {                                                               \
    static ::nfvm::obs::Counter* const nfvm_obs_counter_ =           \
        ::nfvm::obs::Registry::global().counter(name);               \
    nfvm_obs_counter_->add(static_cast<std::uint64_t>(delta));       \
  } while (0)

#define NFVM_COUNTER_INC(name) NFVM_COUNTER_ADD(name, 1)

#define NFVM_GAUGE_SET(name, sample)                                 \
  do {                                                               \
    static ::nfvm::obs::Gauge* const nfvm_obs_gauge_ =               \
        ::nfvm::obs::Registry::global().gauge(name);                 \
    nfvm_obs_gauge_->set(static_cast<double>(sample));               \
  } while (0)

#define NFVM_HISTOGRAM_OBSERVE(name, sample)                         \
  do {                                                               \
    static ::nfvm::obs::Histogram* const nfvm_obs_histogram_ =       \
        ::nfvm::obs::Registry::global().histogram(name);             \
    nfvm_obs_histogram_->observe(static_cast<double>(sample));       \
  } while (0)

/// Records into a tight-error HDR histogram (obs/hdr_histogram.h must be
/// included by the call site's translation unit for observe()).
#define NFVM_HDR_OBSERVE(name, sample)                               \
  do {                                                               \
    static ::nfvm::obs::HdrHistogram* const nfvm_obs_hdr_ =          \
        ::nfvm::obs::Registry::global().hdr_histogram(name);         \
    nfvm_obs_hdr_->observe(static_cast<double>(sample));             \
  } while (0)

/// Records into a windowed (sliding + decaying) histogram stamped with
/// window_now_ms(). obs/window.h must be included by the call site's
/// translation unit for observe() and the clock.
#define NFVM_WINDOW_OBSERVE(name, sample)                            \
  do {                                                               \
    static ::nfvm::obs::WindowedHistogram* const nfvm_obs_window_ =  \
        ::nfvm::obs::Registry::global().windowed_histogram(name);    \
    nfvm_obs_window_->observe(static_cast<double>(sample),           \
                              ::nfvm::obs::window_now_ms());         \
  } while (0)

#else  // !NFVM_OBS

#define NFVM_OBS_ONLY(...)
#define NFVM_COUNTER_ADD(name, delta) ((void)0)
#define NFVM_COUNTER_INC(name) ((void)0)
#define NFVM_GAUGE_SET(name, sample) ((void)0)
#define NFVM_HISTOGRAM_OBSERVE(name, sample) ((void)0)
#define NFVM_HDR_OBSERVE(name, sample) ((void)0)
#define NFVM_WINDOW_OBSERVE(name, sample) ((void)0)

#endif  // NFVM_OBS
