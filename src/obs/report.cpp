#include "obs/report.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/sampler.h"  // kTimeseriesSchema
#include "obs/slo.h"      // kSloSchema

namespace nfvm::obs::report {

namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool is_kind(const JsonValue& doc, std::string_view schema) {
  return doc.is_object() && doc.has("schema") && doc.at("schema").is_string() &&
         doc.at("schema").string == schema;
}

bool looks_like_metrics(const JsonValue& doc) {
  return doc.is_object() && doc.has("counters") && doc.has("gauges") &&
         doc.has("histograms");
}

// --- Validation -------------------------------------------------------------

std::string validate_metrics(const JsonValue& doc) {
  for (const char* section : {"counters", "gauges", "histograms"}) {
    if (!doc.has(section) || !doc.at(section).is_object()) {
      return std::string("metrics: missing object \"") + section + "\"";
    }
  }
  for (const auto& [name, value] : doc.at("counters").object) {
    if (!value.is_number()) return "metrics: counter \"" + name + "\" is not a number";
  }
  for (const auto& [name, value] : doc.at("gauges").object) {
    if (!value.is_number()) return "metrics: gauge \"" + name + "\" is not a number";
  }
  for (const auto& [name, hist] : doc.at("histograms").object) {
    if (!hist.is_object()) return "metrics: histogram \"" + name + "\" is not an object";
    // "kind" is new in nfvm-metrics-v2; v1 documents omit it.
    if (hist.has("kind") &&
        (!hist.at("kind").is_string() ||
         (hist.at("kind").string != "log2" && hist.at("kind").string != "hdr"))) {
      return "metrics: histogram \"" + name + "\" has unknown \"kind\"";
    }
    for (const char* key : {"count", "sum"}) {
      if (!hist.has(key) || !hist.at(key).is_number()) {
        return "metrics: histogram \"" + name + "\" lacks numeric \"" + key + "\"";
      }
    }
    if (!hist.has("buckets") || !hist.at("buckets").is_array()) {
      return "metrics: histogram \"" + name + "\" lacks \"buckets\" array";
    }
    for (const JsonValue& bucket : hist.at("buckets").array) {
      if (!bucket.is_object() || !bucket.has("le") || !bucket.has("count") ||
          !bucket.at("count").is_number()) {
        return "metrics: histogram \"" + name + "\" has a malformed bucket";
      }
      const JsonValue& le = bucket.at("le");
      const bool inf_bound = le.is_string() && le.string == "+Inf";
      if (!le.is_number() && !inf_bound) {
        return "metrics: histogram \"" + name + "\" bucket bound is neither a number nor \"+Inf\"";
      }
    }
  }
  return "";
}

std::string validate_bench(const JsonValue& doc) {
  if (!doc.has("name") || !doc.at("name").is_string()) return "bench: missing \"name\"";
  if (!doc.has("meta") || !doc.at("meta").is_object()) return "bench: missing \"meta\" object";
  if (!doc.has("wall_time_s") || !doc.at("wall_time_s").is_number()) {
    return "bench: missing numeric \"wall_time_s\"";
  }
  if (!doc.has("columns") || !doc.at("columns").is_array()) {
    return "bench: missing \"columns\" array";
  }
  for (const JsonValue& column : doc.at("columns").array) {
    if (!column.is_string()) return "bench: non-string column name";
  }
  if (!doc.has("rows") || !doc.at("rows").is_array()) return "bench: missing \"rows\" array";
  for (const JsonValue& row : doc.at("rows").array) {
    if (!row.is_object()) return "bench: non-object row";
    for (const auto& [column, cell] : row.object) {
      if (!cell.is_number() && !cell.is_string()) {
        return "bench: row cell \"" + column + "\" is neither number nor string";
      }
    }
  }
  if (!doc.has("metrics")) return "bench: missing \"metrics\" snapshot";
  if (std::string err = validate_metrics(doc.at("metrics")); !err.empty()) return err;
  return "";
}

std::string validate_slo(const JsonValue& doc) {
  if (!doc.has("pass") || !doc.at("pass").is_bool()) return "slo: missing bool \"pass\"";
  if (!doc.has("objectives") || !doc.at("objectives").is_array()) {
    return "slo: missing \"objectives\" array";
  }
  for (const JsonValue& objective : doc.at("objectives").array) {
    if (!objective.is_object()) return "slo: non-object objective";
    if (!objective.has("slo") || !objective.at("slo").is_string()) {
      return "slo: objective lacks string \"slo\"";
    }
    if (!objective.has("pass") || !objective.at("pass").is_bool()) {
      return "slo: objective lacks bool \"pass\"";
    }
    for (const char* key : {"threshold", "window_ms", "budget",
                            "windows_evaluated", "windows_breached",
                            "windows_skipped", "breach_fraction", "burn_rate"}) {
      if (!objective.has(key) || !objective.at(key).is_number()) {
        return std::string("slo: objective lacks numeric \"") + key + "\"";
      }
    }
    if (!objective.has("breaches") || !objective.at("breaches").is_array()) {
      return "slo: objective lacks \"breaches\" array";
    }
    for (const JsonValue& breach : objective.at("breaches").array) {
      for (const char* key : {"window_start_ms", "window_end_ms", "observed"}) {
        if (!breach.is_object() || !breach.has(key) || !breach.at(key).is_number()) {
          return std::string("slo: breach lacks numeric \"") + key + "\"";
        }
      }
    }
  }
  return "";
}

/// Per-line shape check for tagged "nfvm-timeseries-v2" samples; v1 lines
/// (no schema tag) only need to be JSON objects.
std::string validate_timeseries_line(const JsonValue& doc) {
  if (!doc.has("t_ms") || !doc.at("t_ms").is_number()) {
    return "timeseries: missing numeric \"t_ms\"";
  }
  for (const char* section : {"counters", "gauges", "windows"}) {
    if (!doc.has(section) || !doc.at(section).is_object()) {
      return std::string("timeseries: missing object \"") + section + "\"";
    }
  }
  for (const auto& [name, window] : doc.at("windows").object) {
    if (!window.is_object() || !window.has("count") ||
        !window.at("count").is_number()) {
      return "timeseries: window \"" + name + "\" lacks numeric \"count\"";
    }
  }
  return "";
}

std::string validate_manifest(const JsonValue& doc) {
  if (!doc.has("argv") || !doc.at("argv").is_array()) return "manifest: missing \"argv\" array";
  for (const char* key : {"start_time", "end_time"}) {
    if (!doc.has(key) || !doc.at(key).is_string()) {
      return std::string("manifest: missing string \"") + key + "\"";
    }
  }
  for (const char* key : {"wall_time_s", "peak_rss_kb"}) {
    if (!doc.has(key) || !doc.at(key).is_number()) {
      return std::string("manifest: missing numeric \"") + key + "\"";
    }
  }
  if (!doc.has("config") || !doc.at("config").is_object()) {
    return "manifest: missing \"config\" object";
  }
  if (!doc.has("build") || !doc.at("build").is_object()) {
    return "manifest: missing \"build\" object";
  }
  const JsonValue& build = doc.at("build");
  for (const char* key : {"git_sha", "build_type", "compiler", "cxx_flags"}) {
    if (!build.has(key) || !build.at(key).is_string()) {
      return std::string("manifest: build lacks string \"") + key + "\"";
    }
  }
  if (!build.has("obs_enabled") || !build.at("obs_enabled").is_bool()) {
    return "manifest: build lacks bool \"obs_enabled\"";
  }
  if (!doc.has("artifacts") || !doc.at("artifacts").is_array()) {
    return "manifest: missing \"artifacts\" array";
  }
  return "";
}

// --- Flattening -------------------------------------------------------------

/// Histogram buckets as exported ("le" numeric or the string "+Inf").
std::vector<HistogramBucket> parse_buckets(const JsonValue& hist) {
  std::vector<HistogramBucket> buckets;
  for (const JsonValue& b : hist.at("buckets").array) {
    const JsonValue& le = b.at("le");
    buckets.push_back(
        {le.is_number() ? le.number : std::numeric_limits<double>::infinity(),
         static_cast<std::uint64_t>(b.at("count").number)});
  }
  return buckets;
}

void flatten_metrics(const JsonValue& doc, const std::string& prefix,
                     std::map<std::string, double>& scalars) {
  for (const auto& [name, value] : doc.at("counters").object) {
    scalars[prefix + "counters." + name] = value.number;
  }
  for (const auto& [name, value] : doc.at("gauges").object) {
    scalars[prefix + "gauges." + name] = value.number;
  }
  for (const auto& [name, hist] : doc.at("histograms").object) {
    const std::string base = prefix + "histograms." + name;
    scalars[base + ".count"] = hist.at("count").number;
    if (hist.at("count").number <= 0) continue;
    scalars[base + ".sum"] = hist.at("sum").number;
    // Percentiles: take the exported ones, or derive them from the buckets
    // for artifacts written before p50/p90/p99 were added.
    const double min = hist.has("min") ? hist.at("min").number
                                       : std::numeric_limits<double>::infinity();
    const double max = hist.has("max") ? hist.at("max").number
                                       : -std::numeric_limits<double>::infinity();
    const std::vector<HistogramBucket> buckets = parse_buckets(hist);
    for (const auto& [key, q] :
         {std::pair<const char*, double>{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}}) {
      const double value = hist.has(key) ? hist.at(key).number
                                         : estimate_quantile(buckets, q, min, max);
      if (std::isfinite(value)) scalars[base + "." + key] = value;
    }
  }
}

void flatten_bench(const JsonValue& doc, std::map<std::string, double>& scalars) {
  scalars["wall_time_s"] = doc.at("wall_time_s").number;
  const auto& rows = doc.at("rows").array;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (const auto& [column, cell] : rows[i].object) {
      if (cell.is_number()) {
        scalars["rows[" + std::to_string(i) + "]." + column] = cell.number;
      }
    }
  }
  flatten_metrics(doc.at("metrics"), "metrics.", scalars);
}

bool key_ignored(const std::string& key, const CompareOptions& options) {
  for (const std::string& pattern : options.ignore) {
    if (!pattern.empty() && key.find(pattern) != std::string::npos) return true;
  }
  return false;
}

std::string format_value(double value) {
  std::ostringstream out;
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    out << static_cast<long long>(value);
  } else {
    out.precision(6);
    out << value;
  }
  return out.str();
}

std::string format_rel(double rel) {
  if (!std::isfinite(rel)) return rel > 0 ? "+inf%" : "-inf%";
  std::ostringstream out;
  out.precision(2);
  out << std::fixed << (rel >= 0 ? "+" : "") << rel * 100.0 << "%";
  return out.str();
}

}  // namespace

std::string_view kind_name(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kMetrics: return "metrics";
    case ArtifactKind::kBench: return "bench";
    case ArtifactKind::kManifest: return "manifest";
    case ArtifactKind::kTimeseries: return "timeseries";
    case ArtifactKind::kRunDir: return "run-dir";
    case ArtifactKind::kSlo: return "slo";
  }
  return "unknown";
}

std::string validate_document(const JsonValue& doc) {
  if (!doc.is_object()) return "artifact is not a JSON object";
  if (is_kind(doc, "nfvm-bench-v1")) return validate_bench(doc);
  if (is_kind(doc, "nfvm-run-manifest-v1")) return validate_manifest(doc);
  if (is_kind(doc, "nfvm-slo-v1")) return validate_slo(doc);
  // Metrics are matched by shape so untagged v1 documents stay readable; a
  // tagged document must carry the schema string this reader knows.
  if (looks_like_metrics(doc)) {
    if (doc.has("schema") && !is_kind(doc, kMetricsSchema)) {
      return "metrics: unknown schema (expected \"" + std::string(kMetricsSchema) +
             "\")";
    }
    return validate_metrics(doc);
  }
  return "unrecognized artifact (expected metrics, nfvm-bench-v1, "
         "nfvm-run-manifest-v1 or nfvm-slo-v1)";
}

std::string validate_file(const std::string& path) {
  std::string text;
  try {
    text = read_file(path);
  } catch (const std::exception& e) {
    return e.what();
  }
  if (path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0) {
    // Cursor-driven walk so a truncated / partially-written stream (writer
    // killed mid-record) reports a structured error with the absolute byte
    // offset instead of a line-local one.
    JsonlCursor cursor(text);
    JsonlCursor::Record record;
    while (cursor.next(record)) {
      try {
        const JsonValue doc = parse_jsonl_record(record);
        if (is_kind(doc, kTimeseriesSchema)) {
          if (std::string err = validate_timeseries_line(doc); !err.empty()) {
            return path + ":" + std::to_string(record.number) + ": " + err;
          }
        }
      } catch (const std::exception& e) {
        return path + ": " + e.what();
      }
    }
    return "";
  }
  try {
    const JsonValue doc = parse_json(text);
    std::string err = validate_document(doc);
    if (!err.empty()) return path + ": " + err;
  } catch (const std::exception& e) {
    return path + ": " + e.what();
  }
  return "";
}

Artifact load_artifact(const std::string& path) {
  Artifact artifact;
  artifact.path = path;

  if (fs::is_directory(fs::path(path))) {
    artifact.kind = ArtifactKind::kRunDir;
    const std::string manifest_path = (fs::path(path) / "manifest.json").string();
    artifact.doc = parse_json(read_file(manifest_path));
    if (std::string err = validate_document(artifact.doc); !err.empty()) {
      throw std::runtime_error(manifest_path + ": " + err);
    }
    artifact.name = fs::path(path).filename().string();
    artifact.scalars["run.wall_time_s"] = artifact.doc.at("wall_time_s").number;
    artifact.scalars["run.peak_rss_kb"] = artifact.doc.at("peak_rss_kb").number;
    const std::string metrics_path = (fs::path(path) / "metrics.json").string();
    if (fs::exists(fs::path(metrics_path))) {
      const JsonValue metrics = parse_json(read_file(metrics_path));
      if (std::string err = validate_document(metrics); !err.empty()) {
        throw std::runtime_error(metrics_path + ": " + err);
      }
      flatten_metrics(metrics, "", artifact.scalars);
    }
    return artifact;
  }

  artifact.doc = parse_json(read_file(path));
  if (std::string err = validate_document(artifact.doc); !err.empty()) {
    throw std::runtime_error(path + ": " + err);
  }
  if (is_kind(artifact.doc, "nfvm-bench-v1")) {
    artifact.kind = ArtifactKind::kBench;
    artifact.name = artifact.doc.at("name").string;
    flatten_bench(artifact.doc, artifact.scalars);
  } else if (is_kind(artifact.doc, "nfvm-run-manifest-v1")) {
    artifact.kind = ArtifactKind::kManifest;
    artifact.name = "manifest";
    artifact.scalars["run.wall_time_s"] = artifact.doc.at("wall_time_s").number;
    artifact.scalars["run.peak_rss_kb"] = artifact.doc.at("peak_rss_kb").number;
  } else if (is_kind(artifact.doc, kSloSchema)) {
    artifact.kind = ArtifactKind::kSlo;
    artifact.name = "slo";
    artifact.scalars["slo.pass"] = artifact.doc.at("pass").boolean ? 1.0 : 0.0;
    const auto& objectives = artifact.doc.at("objectives").array;
    for (std::size_t i = 0; i < objectives.size(); ++i) {
      const std::string base = "slo[" + std::to_string(i) + "].";
      for (const char* key : {"windows_evaluated", "windows_breached",
                              "windows_skipped", "breach_fraction", "burn_rate"}) {
        artifact.scalars[base + key] = objectives[i].at(key).number;
      }
    }
  } else {
    artifact.kind = ArtifactKind::kMetrics;
    artifact.name = fs::path(path).stem().string();
    flatten_metrics(artifact.doc, "", artifact.scalars);
  }
  return artifact;
}

CompareReport compare_artifacts(const Artifact& baseline,
                                const Artifact& candidate,
                                const CompareOptions& options) {
  CompareReport report;
  auto base_it = baseline.scalars.begin();
  auto cand_it = candidate.scalars.begin();
  while (base_it != baseline.scalars.end() || cand_it != candidate.scalars.end()) {
    if (cand_it == candidate.scalars.end() ||
        (base_it != baseline.scalars.end() && base_it->first < cand_it->first)) {
      report.only_baseline.push_back(base_it->first);
      ++base_it;
      continue;
    }
    if (base_it == baseline.scalars.end() || cand_it->first < base_it->first) {
      report.only_candidate.push_back(cand_it->first);
      ++cand_it;
      continue;
    }
    Delta delta;
    delta.key = base_it->first;
    delta.baseline = base_it->second;
    delta.candidate = cand_it->second;
    if (delta.baseline == delta.candidate) {
      delta.rel = 0.0;
    } else if (delta.baseline == 0.0) {
      delta.rel = delta.candidate > 0 ? std::numeric_limits<double>::infinity()
                                      : -std::numeric_limits<double>::infinity();
    } else {
      delta.rel = (delta.candidate - delta.baseline) / std::abs(delta.baseline);
    }
    delta.regression =
        std::abs(delta.rel) > options.threshold && !key_ignored(delta.key, options);
    if (delta.regression) ++report.num_regressions;
    report.deltas.push_back(std::move(delta));
    ++base_it;
    ++cand_it;
  }
  // Absolute floors run over the candidate alone: a key matching a
  // min-bound substring must sit at or above the bound, ignore list or not.
  for (const auto& [key, value] : candidate.scalars) {
    for (const auto& [pattern, bound] : options.min_bounds) {
      if (pattern.empty() || key.find(pattern) == std::string::npos) continue;
      if (value < bound) {
        Delta violation;
        violation.key = key;
        violation.baseline = bound;  // the floor, not a baseline value
        violation.candidate = value;
        violation.rel = bound == 0.0 ? 0.0 : (value - bound) / std::abs(bound);
        violation.regression = true;
        report.min_violations.push_back(std::move(violation));
        ++report.num_regressions;
      }
      break;  // first matching bound wins
    }
  }
  return report;
}

void write_summary(std::ostream& out, const Artifact& artifact) {
  out << "# artifact: " << artifact.path << " (" << kind_name(artifact.kind)
      << (artifact.name.empty() ? "" : ", " + artifact.name) << ")\n";
  if (artifact.kind == ArtifactKind::kRunDir || artifact.kind == ArtifactKind::kManifest) {
    const JsonValue& doc = artifact.doc;
    out << "# start " << doc.at("start_time").string << ", wall "
        << format_value(doc.at("wall_time_s").number) << " s, peak RSS "
        << format_value(doc.at("peak_rss_kb").number) << " kB\n";
    const JsonValue& build = doc.at("build");
    out << "# build " << build.at("git_sha").string << " ("
        << build.at("build_type").string << ", " << build.at("compiler").string
        << ", obs " << (build.at("obs_enabled").boolean ? "on" : "off") << ")\n";
  }
  if (artifact.kind == ArtifactKind::kBench) {
    for (const auto& [key, value] : artifact.doc.at("meta").object) {
      out << "# meta " << key << ": "
          << (value.is_string() ? value.string : format_value(value.number)) << "\n";
    }
  }
  // Histograms grouped on one line each - sample count next to the
  // quantiles, so "p99 = 12" cannot be mistaken for a healthy signal when
  // it came from three samples. Driven by the flattened scalars, so it
  // covers bare metrics files, bench artifacts and run-dir bundles alike.
  std::map<std::string, std::map<std::string, double>> histograms;
  for (const auto& [key, value] : artifact.scalars) {
    const std::size_t at = key.find("histograms.");
    if (at != 0 && (at == std::string::npos ||
                    key.compare(0, at, "metrics.") != 0)) {
      continue;
    }
    const std::size_t dot = key.rfind('.');
    const std::string stat = key.substr(dot + 1);
    if (stat != "count" && stat != "sum" && stat != "p50" && stat != "p90" &&
        stat != "p99") {
      continue;
    }
    histograms[key.substr(at + std::string_view("histograms.").size(),
                          dot - at - std::string_view("histograms.").size())]
              [stat] = value;
  }
  if (!histograms.empty()) {
    out << "# histograms (count | p50 / p90 / p99)\n";
    for (const auto& [name, stats] : histograms) {
      const auto count_it = stats.find("count");
      const auto count = static_cast<std::uint64_t>(
          count_it == stats.end() ? 0.0 : count_it->second);
      out << "#   " << name << ": " << count << " samples";
      if (count > 0) {
        out << " | ";
        const char* sep = "";
        for (const char* key : {"p50", "p90", "p99"}) {
          const auto it = stats.find(key);
          if (it == stats.end()) out << sep << "?";
          else out << sep << format_value(it->second);
          sep = " / ";
        }
      }
      out << "\n";
    }
  }
  out << artifact.scalars.size() << " comparable values\n";
  for (const auto& [key, value] : artifact.scalars) {
    out << "  " << key << " = " << format_value(value) << "\n";
  }
}

SloArtifact load_slo_artifact(const std::string& path) {
  SloArtifact artifact;
  artifact.path = path;
  std::string slo_path = path;
  std::string timeseries_path;
  if (fs::is_directory(fs::path(path))) {
    slo_path = (fs::path(path) / "slo.json").string();
    timeseries_path = (fs::path(path) / "timeseries.jsonl").string();
  }
  artifact.doc = parse_json(read_file(slo_path));
  if (!is_kind(artifact.doc, kSloSchema)) {
    throw std::runtime_error(slo_path + ": not an \"" + std::string(kSloSchema) +
                             "\" document");
  }
  if (std::string err = validate_slo(artifact.doc); !err.empty()) {
    throw std::runtime_error(slo_path + ": " + err);
  }
  if (!timeseries_path.empty() && fs::exists(fs::path(timeseries_path))) {
    const std::string text = read_file(timeseries_path);
    JsonlCursor cursor(text);
    JsonlCursor::Record record;
    while (cursor.next(record)) {
      JsonValue doc;
      try {
        doc = parse_jsonl_record(record);
      } catch (const std::exception& e) {
        throw std::runtime_error(timeseries_path + ": " + e.what());
      }
      if (is_kind(doc, kTimeseriesSchema)) {
        artifact.timeseries.push_back(std::move(doc));
      }
    }
  }
  return artifact;
}

bool slo_pass(const JsonValue& doc) { return doc.at("pass").boolean; }

void write_slo_text(std::ostream& out, const SloArtifact& artifact) {
  const JsonValue& doc = artifact.doc;
  out << "# slo: " << artifact.path << " -> "
      << (slo_pass(doc) ? "PASS" : "FAIL") << "\n";
  for (const JsonValue& o : doc.at("objectives").array) {
    const auto evaluated = static_cast<std::uint64_t>(o.at("windows_evaluated").number);
    const auto breached = static_cast<std::uint64_t>(o.at("windows_breached").number);
    const auto skipped = static_cast<std::uint64_t>(o.at("windows_skipped").number);
    out << (o.at("pass").boolean ? "ok    " : "BREACH") << "  " << o.at("slo").string
        << "\n";
    out << "        windows " << evaluated << " evaluated, " << breached
        << " breached, " << skipped << " skipped";
    const double budget = o.at("budget").number;
    out << " | budget " << format_value(budget * 100.0) << "% | burn "
        << format_value(o.at("burn_rate").number);
    if (o.has("worst")) out << " | worst " << format_value(o.at("worst").number);
    if (o.has("last")) out << " | last " << format_value(o.at("last").number);
    out << "\n";
    for (const JsonValue& b : o.at("breaches").array) {
      out << "        breach [" << format_value(b.at("window_start_ms").number)
          << " ms, " << format_value(b.at("window_end_ms").number)
          << " ms]: observed " << format_value(b.at("observed").number) << "\n";
    }
  }
  if (artifact.timeseries.empty()) return;

  // Per-window quantile evolution, one row per sample per instrument.
  out << "# windows (t_ms: instrument count | p50 / p90 / p99)\n";
  for (const JsonValue& sample : artifact.timeseries) {
    for (const auto& [name, window] : sample.at("windows").object) {
      const auto count = static_cast<std::uint64_t>(window.at("count").number);
      out << "  " << format_value(sample.at("t_ms").number) << ": " << name
          << " " << count;
      if (count > 0) {
        out << " | ";
        const char* sep = "";
        for (const char* key : {"p50", "p90", "p99"}) {
          out << sep << (window.has(key) ? format_value(window.at(key).number) : "?");
          sep = " / ";
        }
      }
      out << "\n";
    }
  }
}

void write_report_markdown(std::ostream& out, const Artifact& baseline,
                           const Artifact& candidate,
                           const CompareReport& report,
                           const CompareOptions& options) {
  out << "# nfvm-report: " << baseline.path << " vs " << candidate.path << "\n\n";
  out << "- baseline: `" << baseline.path << "` (" << kind_name(baseline.kind) << ")\n";
  out << "- candidate: `" << candidate.path << "` (" << kind_name(candidate.kind) << ")\n";
  out << "- threshold: ±" << format_value(options.threshold * 100.0) << "%";
  if (!options.ignore.empty()) {
    out << "; ignoring keys containing:";
    for (const std::string& pattern : options.ignore) out << " `" << pattern << "`";
  }
  if (!options.min_bounds.empty()) {
    out << "\n- floors:";
    for (const auto& [pattern, bound] : options.min_bounds) {
      out << " `" << pattern << "` >= " << format_value(bound);
    }
  }
  out << "\n- regressions: **" << report.num_regressions << "**\n\n";

  if (!report.min_violations.empty()) {
    out << "| key | floor | candidate | status |\n";
    out << "|---|---:|---:|---|\n";
    for (const Delta& violation : report.min_violations) {
      out << "| `" << violation.key << "` | " << format_value(violation.baseline)
          << " | " << format_value(violation.candidate)
          << " | BELOW FLOOR |\n";
    }
    out << "\n";
  }

  std::size_t changed = 0;
  for (const Delta& delta : report.deltas) {
    if (delta.rel != 0.0) ++changed;
  }
  out << "| key | baseline | candidate | delta | status |\n";
  out << "|---|---:|---:|---:|---|\n";
  for (const Delta& delta : report.deltas) {
    if (delta.rel == 0.0) continue;
    out << "| `" << delta.key << "` | " << format_value(delta.baseline) << " | "
        << format_value(delta.candidate) << " | " << format_rel(delta.rel) << " | "
        << (delta.regression
                ? "REGRESSION"
                : (key_ignored(delta.key, options) && std::abs(delta.rel) > options.threshold
                       ? "ignored"
                       : "ok"))
        << " |\n";
  }
  out << "\n" << report.deltas.size() - changed << " keys unchanged, " << changed
      << " changed, " << report.only_baseline.size() << " only in baseline, "
      << report.only_candidate.size() << " only in candidate.\n";
  if (!report.only_candidate.empty()) {
    out << "\nNew keys in candidate:";
    for (const std::string& key : report.only_candidate) out << " `" << key << "`";
    out << "\n";
  }
  if (!report.only_baseline.empty()) {
    out << "\nKeys missing from candidate:";
    for (const std::string& key : report.only_baseline) out << " `" << key << "`";
    out << "\n";
  }
}

void write_report_json(std::ostream& out, const Artifact& baseline,
                       const Artifact& candidate, const CompareReport& report,
                       const CompareOptions& options) {
  JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("nfvm-report-v1");
  w.key("baseline").value(baseline.path);
  w.key("candidate").value(candidate.path);
  w.key("threshold").value(options.threshold);
  w.key("ignore").begin_array();
  for (const std::string& pattern : options.ignore) w.value(pattern);
  w.end_array();
  w.key("min_bounds").begin_array();
  for (const auto& [pattern, bound] : options.min_bounds) {
    w.begin_object();
    w.key("key_contains").value(pattern);
    w.key("min").value(bound);
    w.end_object();
  }
  w.end_array();
  w.key("min_violations").begin_array();
  for (const Delta& violation : report.min_violations) {
    w.begin_object();
    w.key("key").value(violation.key);
    w.key("min").value(violation.baseline);
    w.key("candidate").value(violation.candidate);
    w.end_object();
  }
  w.end_array();
  w.key("num_regressions").value(static_cast<std::uint64_t>(report.num_regressions));
  w.key("deltas").begin_array();
  for (const Delta& delta : report.deltas) {
    w.begin_object();
    w.key("key").value(delta.key);
    w.key("baseline").value(delta.baseline);
    w.key("candidate").value(delta.candidate);
    if (std::isfinite(delta.rel)) {
      w.key("rel").value(delta.rel);
    } else {
      w.key("rel").value(delta.rel > 0 ? "+inf" : "-inf");
    }
    w.key("regression").value(delta.regression);
    w.end_object();
  }
  w.end_array();
  w.key("only_baseline").begin_array();
  for (const std::string& key : report.only_baseline) w.value(key);
  w.end_array();
  w.key("only_candidate").begin_array();
  for (const std::string& key : report.only_candidate) w.value(key);
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace nfvm::obs::report
