// Artifact loading, schema validation and baseline/candidate comparison -
// the library behind the `nfvm-report` CLI (tools/nfvm_report.cpp) and the
// CI perf-smoke gate. Understands the three artifact shapes the repo emits:
//   * metrics JSON        - Registry::write_json output
//   * bench JSON          - bench_common.h "nfvm-bench-v1" artifacts
//   * run directories     - nfvm-sim --run-dir bundles (manifest.json + the
//                           artifacts it lists)
// Artifacts are flattened into scalar key -> value maps so comparison is one
// generic pass: counters.<name>, gauges.<name>, histograms.<name>.{count,
// sum,p50,p90,p99}, rows[i].<column>, wall_time_s, run.peak_rss_kb, ...
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace nfvm::obs::report {

enum class ArtifactKind { kMetrics, kBench, kManifest, kTimeseries, kRunDir, kSlo };

/// Human-readable kind tag ("metrics", "bench", ...).
std::string_view kind_name(ArtifactKind kind);

struct Artifact {
  ArtifactKind kind = ArtifactKind::kMetrics;
  /// The path the artifact was loaded from (file or run directory).
  std::string path;
  /// Bench name, manifest schema or file stem - display only.
  std::string name;
  /// Flattened numeric view used for comparison.
  std::map<std::string, double> scalars;
  /// The parsed document (for run dirs: the manifest).
  JsonValue doc;
};

/// Schema-checks one parsed document (auto-detects metrics / bench /
/// manifest by shape). Returns the empty string when valid, otherwise a
/// description of the first violation.
std::string validate_document(const JsonValue& doc);

/// Validates a file on disk. `.jsonl` files (event logs, timeseries) are
/// checked line-by-line for well-formed JSON objects; anything else must
/// parse as one document and pass validate_document. Returns "" or an error.
std::string validate_file(const std::string& path);

/// Loads a metrics JSON, a bench JSON, or a run directory (reads its
/// manifest.json and metrics.json). Throws std::runtime_error on I/O,
/// parse or schema failure.
Artifact load_artifact(const std::string& path);

struct Delta {
  std::string key;
  double baseline = 0.0;
  double candidate = 0.0;
  /// (candidate - baseline) / |baseline|; +-inf when baseline is 0 and the
  /// candidate moved.
  double rel = 0.0;
  /// Exceeded the threshold (in either direction) and was not ignored.
  bool regression = false;
};

struct CompareOptions {
  /// Relative threshold: |rel| > threshold flags a regression.
  double threshold = 0.10;
  /// Keys containing any of these substrings are reported but never gate
  /// (timing columns on shared CI runners, for example).
  std::vector<std::string> ignore;
  /// Absolute floors: a CANDIDATE scalar whose key contains the substring
  /// and whose value is below the bound is a regression — independent of
  /// the baseline, the relative threshold, and the ignore list. This is
  /// how timing-derived ratio columns gate: their run-to-run noise forces
  /// them onto the ignore list (substring "time" matches "speedup_time" —
  /// the historical silent-regression hole), but a hard floor like
  /// `speedup_vs_legacy >= 0.95` still holds the line.
  std::vector<std::pair<std::string, double>> min_bounds;
};

struct CompareReport {
  /// Every key present in both artifacts, sorted, with its delta.
  std::vector<Delta> deltas;
  std::vector<std::string> only_baseline;
  std::vector<std::string> only_candidate;
  /// Candidate scalars below a min_bounds floor (Delta::baseline holds the
  /// bound). Counted in num_regressions.
  std::vector<Delta> min_violations;
  std::size_t num_regressions = 0;
};

CompareReport compare_artifacts(const Artifact& baseline,
                                const Artifact& candidate,
                                const CompareOptions& options);

/// One-artifact overview: counts, counters, histogram percentiles.
void write_summary(std::ostream& out, const Artifact& artifact);

/// An SLO outcome ("nfvm-slo-v1", written by nfvm-sim --slo) plus the run's
/// timeseries lines when they travelled in the same bundle - the source for
/// the per-window quantile table `nfvm-report slo` renders.
struct SloArtifact {
  std::string path;
  JsonValue doc;
  /// Parsed "nfvm-timeseries-v2" lines; empty for a bare slo.json.
  std::vector<JsonValue> timeseries;
};

/// Loads a slo.json file or a run directory (slo.json + timeseries.jsonl).
/// Throws std::runtime_error on I/O, parse or schema failure.
SloArtifact load_slo_artifact(const std::string& path);

/// Whether the outcome document's top-level verdict is a pass.
bool slo_pass(const JsonValue& doc);

/// Renders the objective table (windows evaluated/breached/skipped, error
/// budget, burn rate, worst/last), breach records, and - when timeseries
/// lines are present - the per-window quantile evolution.
void write_slo_text(std::ostream& out, const SloArtifact& artifact);

/// Markdown diff: header, regression table, changed-key table, totals.
void write_report_markdown(std::ostream& out, const Artifact& baseline,
                           const Artifact& candidate,
                           const CompareReport& report,
                           const CompareOptions& options);

/// Machine-readable diff ("nfvm-report-v1"): options echo, full delta list,
/// regression count.
void write_report_json(std::ostream& out, const Artifact& baseline,
                       const Artifact& candidate, const CompareReport& report,
                       const CompareOptions& options);

}  // namespace nfvm::obs::report
