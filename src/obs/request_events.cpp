#include "obs/request_events.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/hdr_histogram.h"

namespace nfvm::obs::report {

namespace {

namespace fs = std::filesystem;

/// Phase columns in display order. `field` is the event-log key; a null
/// field marks the synthetic rows fed from total_us / decision_us.
struct PhaseSpec {
  const char* phase;
  const char* field;
};
constexpr PhaseSpec kPhaseSpecs[] = {
    {"classify", "phase_classify_us"},  {"closure", "phase_closure_us"},
    {"eval", "phase_eval_us"},          {"realize", "phase_realize_us"},
    {"view_patch", "phase_view_patch_us"},
};
constexpr std::size_t kNumPhases = sizeof(kPhaseSpecs) / sizeof(kPhaseSpecs[0]);

double number_or(const JsonValue& doc, const std::string& key, double fallback) {
  if (!doc.has(key) || !doc.at(key).is_number()) return fallback;
  return doc.at(key).number;
}

std::string format_us(double value) {
  if (!std::isfinite(value)) return "-";
  std::ostringstream out;
  out << std::fixed << std::setprecision(value < 10.0 ? 2 : 1) << value;
  return out.str();
}

std::string format_share(double share) {
  if (!std::isfinite(share)) return "-";
  std::ostringstream out;
  out << std::fixed << std::setprecision(1) << share * 100.0 << "%";
  return out.str();
}

/// Lossless double formatting for the decisions projection: the same bits
/// must print the same bytes on every run.
std::string format_exact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::vector<RequestEvent> load_request_events(const std::string& path) {
  std::string file = path;
  if (fs::is_directory(fs::path(path))) {
    file = (fs::path(path) / "events.jsonl").string();
  }
  std::ifstream in(file, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + file);

  std::vector<RequestEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue doc;
    try {
      doc = parse_json(line);
    } catch (const std::exception& e) {
      throw std::runtime_error(file + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
    if (!doc.is_object() || !doc.has("event") ||
        !doc.at("event").is_string() || doc.at("event").string != "request") {
      continue;
    }
    RequestEvent ev;
    if (doc.has("algorithm") && doc.at("algorithm").is_string()) {
      ev.algorithm = doc.at("algorithm").string;
    }
    ev.index = static_cast<std::uint64_t>(number_or(doc, "index", 0.0));
    ev.request_id = static_cast<std::uint64_t>(number_or(doc, "request_id", 0.0));
    ev.admitted = doc.has("admitted") && doc.at("admitted").is_bool() &&
                  doc.at("admitted").boolean;
    if (doc.has("reject_cause") && doc.at("reject_cause").is_string()) {
      ev.reject_cause = doc.at("reject_cause").string;
    }
    if (doc.has("reject_reason") && doc.at("reject_reason").is_string()) {
      ev.reject_reason = doc.at("reject_reason").string;
    }
    ev.decision_us = number_or(doc, "decision_us",
                               std::numeric_limits<double>::quiet_NaN());
    if (doc.has("schema") && doc.at("schema").is_string()) {
      ev.schema = doc.at("schema").string;
    }
    if (doc.has("config_hash") && doc.at("config_hash").is_string()) {
      ev.config_hash = doc.at("config_hash").string;
    }
    if (doc.has("seed") && doc.at("seed").is_number()) {
      ev.seed = static_cast<std::uint64_t>(doc.at("seed").number);
      ev.has_seed = true;
    }
    ev.has_provenance = doc.has("total_us");
    ev.raw = std::move(doc);
    events.push_back(std::move(ev));
  }
  return events;
}

LatencyReport aggregate_latency(const std::vector<RequestEvent>& events) {
  LatencyReport report;
  report.num_events = events.size();

  // Per algorithm: one HdrHistogram per phase + total + decision, plus the
  // phase/total sums the share column is derived from.
  struct Agg {
    std::unique_ptr<HdrHistogram> phases[kNumPhases];
    std::unique_ptr<HdrHistogram> total;
    std::unique_ptr<HdrHistogram> decision;
    double phase_sum[kNumPhases] = {};
    double total_sum = 0.0;
    Agg() {
      for (auto& h : phases) h = std::make_unique<HdrHistogram>();
      total = std::make_unique<HdrHistogram>();
      decision = std::make_unique<HdrHistogram>();
    }
  };
  std::map<std::string, Agg> by_algorithm;

  for (const RequestEvent& ev : events) {
    Agg& agg = by_algorithm[ev.algorithm];
    if (std::isfinite(ev.decision_us)) agg.decision->observe(ev.decision_us);
    if (!ev.has_provenance) continue;
    ++report.num_with_provenance;
    const double total = number_or(ev.raw, "total_us",
                                   std::numeric_limits<double>::quiet_NaN());
    if (std::isfinite(total)) {
      agg.total->observe(total);
      agg.total_sum += total;
    }
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      const double value = number_or(ev.raw, kPhaseSpecs[p].field,
                                     std::numeric_limits<double>::quiet_NaN());
      if (!std::isfinite(value)) continue;
      agg.phases[p]->observe(value);
      agg.phase_sum[p] += value;
    }
  }

  const auto emit = [&report](const std::string& algorithm,
                              const char* phase, const HdrHistogram& h,
                              double share) {
    if (h.count() == 0) return;
    LatencyRow row;
    row.algorithm = algorithm;
    row.phase = phase;
    row.count = h.count();
    row.p50_us = h.quantile(0.50);
    row.p90_us = h.quantile(0.90);
    row.p99_us = h.quantile(0.99);
    row.mean_us = h.sum() / static_cast<double>(h.count());
    row.max_us = h.max();
    row.share = share;
    report.rows.push_back(std::move(row));
  };

  for (const auto& [algorithm, agg] : by_algorithm) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      const double share =
          agg.total_sum > 0.0 ? agg.phase_sum[p] / agg.total_sum : nan;
      emit(algorithm, kPhaseSpecs[p].phase, *agg.phases[p], share);
    }
    emit(algorithm, "total", *agg.total, nan);
    emit(algorithm, "decision", *agg.decision, nan);
  }
  return report;
}

void write_latency_text(std::ostream& out, const LatencyReport& report) {
  out << "# per-phase admission latency (microseconds; HDR quantiles, <= 1% "
         "relative error)\n";
  out << "# " << report.num_events << " request events, "
      << report.num_with_provenance << " with provenance\n";
  const char* fmt = "%-16s %-11s %8s %10s %10s %10s %10s %10s %7s\n";
  char line[160];
  std::snprintf(line, sizeof(line), fmt, "algorithm", "phase", "count", "p50",
                "p90", "p99", "mean", "max", "share");
  out << line;
  for (const LatencyRow& row : report.rows) {
    std::snprintf(line, sizeof(line), fmt, row.algorithm.c_str(),
                  row.phase.c_str(), std::to_string(row.count).c_str(),
                  format_us(row.p50_us).c_str(), format_us(row.p90_us).c_str(),
                  format_us(row.p99_us).c_str(), format_us(row.mean_us).c_str(),
                  format_us(row.max_us).c_str(), format_share(row.share).c_str());
    out << line;
  }
}

void write_latency_markdown(std::ostream& out, const LatencyReport& report) {
  out << "# per-phase admission latency\n\n";
  out << report.num_events << " request events, " << report.num_with_provenance
      << " with provenance. Microseconds; HDR quantiles (≤ 1% relative "
         "error).\n\n";
  out << "| algorithm | phase | count | p50 | p90 | p99 | mean | max | share |\n";
  out << "|---|---|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const LatencyRow& row : report.rows) {
    out << "| " << row.algorithm << " | " << row.phase << " | " << row.count
        << " | " << format_us(row.p50_us) << " | " << format_us(row.p90_us)
        << " | " << format_us(row.p99_us) << " | " << format_us(row.mean_us)
        << " | " << format_us(row.max_us) << " | " << format_share(row.share)
        << " |\n";
  }
}

void write_latency_json(std::ostream& out, const LatencyReport& report) {
  JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("nfvm-latency-v1");
  w.key("num_events").value(static_cast<std::uint64_t>(report.num_events));
  w.key("num_with_provenance")
      .value(static_cast<std::uint64_t>(report.num_with_provenance));
  w.key("rows").begin_array();
  for (const LatencyRow& row : report.rows) {
    w.begin_object();
    w.key("algorithm").value(row.algorithm);
    w.key("phase").value(row.phase);
    w.key("count").value(row.count);
    w.key("p50_us").value(row.p50_us);
    w.key("p90_us").value(row.p90_us);
    w.key("p99_us").value(row.p99_us);
    w.key("mean_us").value(row.mean_us);
    w.key("max_us").value(row.max_us);
    if (std::isfinite(row.share)) w.key("share").value(row.share);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

std::string check_events(const std::vector<RequestEvent>& events) {
  if (events.empty()) return "no request events in the log";
  const RequestEvent& first = events.front();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const RequestEvent& ev = events[i];
    const std::string where =
        ev.algorithm + " request " + std::to_string(ev.index);
    if (!std::isfinite(ev.decision_us) || ev.decision_us < 0.0) {
      return where + ": decision_us missing or negative";
    }
    if (ev.admitted && !ev.reject_cause.empty()) {
      return where + ": admitted but carries reject_cause";
    }
    if (!ev.admitted && ev.reject_cause.empty()) {
      return where + ": rejected without reject_cause";
    }
    if (ev.config_hash != first.config_hash) {
      return where + ": config_hash differs from the first line (mixed runs?)";
    }
    if (ev.has_seed != first.has_seed ||
        (ev.has_seed && ev.seed != first.seed)) {
      return where + ": seed stamp differs from the first line (mixed runs?)";
    }
    if (!ev.has_provenance) continue;
    const double total = number_or(ev.raw, "total_us", -1.0);
    if (!(total >= 0.0)) return where + ": total_us missing or negative";
    double phase_sum = 0.0;
    for (const PhaseSpec& spec : kPhaseSpecs) {
      const double value = number_or(ev.raw, spec.field, 0.0);
      if (!(value >= 0.0)) {
        return where + ": " + spec.field + " negative";
      }
      phase_sum += value;
    }
    // Phases are disjoint sub-intervals of the total; allow a hair of clock
    // rounding slack.
    if (phase_sum > total * 1.01 + 5.0) {
      return where + ": phase timings exceed total_us (" +
             format_us(phase_sum) + " > " + format_us(total) + ")";
    }
  }
  return "";
}

const RequestEvent* find_request(const std::vector<RequestEvent>& events,
                                 const std::string& selector) {
  bool numeric = !selector.empty();
  for (char c : selector) numeric = numeric && c >= '0' && c <= '9';
  if (numeric) {
    const std::uint64_t id = std::stoull(selector);
    for (const RequestEvent& ev : events) {
      if (ev.request_id == id) return &ev;
    }
    for (const RequestEvent& ev : events) {
      if (ev.index == id) return &ev;
    }
  }
  return nullptr;
}

void write_explain(std::ostream& out, const RequestEvent& event) {
  const JsonValue& doc = event.raw;
  out << "# request " << event.request_id << " (" << event.algorithm
      << ", stream index " << event.index << ")\n";
  if (!event.config_hash.empty()) {
    out << "run        config_hash=" << event.config_hash;
    if (event.has_seed) out << " seed=" << event.seed;
    out << "\n";
  }
  out << "arrival    source=" << format_exact(number_or(doc, "source", -1))
      << " destinations=" << format_exact(number_or(doc, "num_destinations", 0))
      << " bandwidth_mbps=" << format_exact(number_or(doc, "bandwidth_mbps", 0));
  if (doc.has("arrival_time")) {
    out << " arrival_time=" << format_exact(number_or(doc, "arrival_time", 0));
  }
  out << "\n";

  if (event.admitted) {
    out << "decision   ADMITTED cost=" << format_exact(number_or(doc, "cost", 0))
        << " servers=" << format_exact(number_or(doc, "servers", 0));
    if (doc.has("chosen_server")) {
      out << " chosen_server=" << format_exact(number_or(doc, "chosen_server", -1));
    }
    out << "\n";
    if (doc.has("cost_steiner")) {
      out << "cost       total=" << format_exact(number_or(doc, "cost_total", 0))
          << " = steiner " << format_exact(number_or(doc, "cost_steiner", 0))
          << " + server " << format_exact(number_or(doc, "cost_server", 0))
          << " + backhaul " << format_exact(number_or(doc, "cost_backhaul", 0))
          << "\n";
    }
  } else {
    out << "decision   REJECTED cause=" << event.reject_cause << " (\""
        << event.reject_reason << "\")\n";
  }

  if (!event.has_provenance) {
    out << "(no provenance recorded for this run; re-run nfvm-sim with "
           "--events to capture RequestRecord fields)\n";
    return;
  }

  if (doc.has("fast_path")) {
    out << "path       "
        << (doc.at("fast_path").boolean ? "shared-closure fast path"
                                        : "rebuild path")
        << "\n";
  }
  out << "latency_us total=" << format_us(number_or(doc, "total_us", 0))
      << " decision=" << format_us(event.decision_us) << "\n";
  for (const PhaseSpec& spec : kPhaseSpecs) {
    if (!doc.has(spec.field)) continue;
    out << "  phase    " << spec.phase << "="
        << format_us(number_or(doc, spec.field, 0)) << "\n";
  }
  out << "scan       servers_total=" << format_exact(number_or(doc, "servers_total", 0))
      << " eligible=" << format_exact(number_or(doc, "servers_eligible", 0))
      << " evaluated=" << format_exact(number_or(doc, "servers_evaluated", 0))
      << " feasible=" << format_exact(number_or(doc, "candidates_feasible", 0))
      << "\n";
  out << "gates      skip_compute=" << format_exact(number_or(doc, "skip_compute", 0))
      << " skip_sigma_v=" << format_exact(number_or(doc, "skip_sigma_v", 0))
      << " disconnected=" << format_exact(number_or(doc, "fail_disconnected", 0))
      << " sigma_e=" << format_exact(number_or(doc, "fail_sigma_e", 0))
      << " delay=" << format_exact(number_or(doc, "fail_delay", 0))
      << " capacity=" << format_exact(number_or(doc, "fail_capacity", 0))
      << " cost_pruned=" << format_exact(number_or(doc, "cost_pruned", 0))
      << "\n";
  out << "spcache    hits=" << format_exact(number_or(doc, "spcache_hits", 0))
      << " misses=" << format_exact(number_or(doc, "spcache_misses", 0))
      << "\n";
}

void write_decisions(std::ostream& out,
                     const std::vector<RequestEvent>& events) {
  for (const RequestEvent& ev : events) {
    out << ev.algorithm << " #" << ev.index << " id=" << ev.request_id << " ";
    if (ev.admitted) {
      // Only fields every build emits: provenance extras (chosen_server,
      // ...) depend on NFVM_OBS and --provenance, and this projection is
      // the cross-build byte-identity witness. `explain` shows the rest.
      out << "admit cost=" << format_exact(number_or(ev.raw, "cost", 0))
          << " servers=" << format_exact(number_or(ev.raw, "servers", 0));
    } else {
      out << "reject cause=" << ev.reject_cause << " reason=\""
          << ev.reject_reason << "\"";
    }
    out << "\n";
  }
}

}  // namespace nfvm::obs::report
