// Request-event loading and aggregation - the library behind the
// `nfvm-report latency`, `nfvm-report explain` and `nfvm-report decisions`
// subcommands (tools/nfvm_report.cpp).
//
// The simulator's JSONL event log ("nfvm-events-v2", see
// docs/observability.md) emits one "request" object per admission decision;
// when provenance recording is on, each line also carries the RequestRecord
// fields (phase_*_us timings, scan counts, cost breakdown, reject context).
// This header parses those lines back (obs/json.h), aggregates phase
// latencies into per-algorithm HDR percentile tables (<= 1% relative
// error), and projects the decision stream into a canonical, timing-free
// text form that must be byte-identical across thread counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace nfvm::obs::report {

/// Schema tag stamped into every event-log line by nfvm-sim. v1 lines (no
/// stamp, no provenance fields) still load; the stamp fields are optional.
inline constexpr std::string_view kEventsSchema = "nfvm-events-v2";

/// One parsed "request" event. `raw` keeps the full line object so explain
/// can print fields this struct does not model.
struct RequestEvent {
  std::string algorithm;
  std::uint64_t index = 0;
  std::uint64_t request_id = 0;
  bool admitted = false;
  std::string reject_cause;   // empty when admitted
  std::string reject_reason;  // empty when admitted
  /// Simulator-observed decision latency (around process()).
  double decision_us = 0.0;
  /// Line-header stamp (empty / has_seed=false on v1 logs).
  std::string schema;
  std::string config_hash;
  std::uint64_t seed = 0;
  bool has_seed = false;
  /// True when the line carries RequestRecord provenance fields.
  bool has_provenance = false;
  JsonValue raw;
};

/// Loads every "request" event from a .jsonl file or a run-dir bundle
/// (reads <dir>/events.jsonl). Non-request lines (run headers, summaries)
/// are skipped. Throws std::runtime_error on I/O or parse errors.
std::vector<RequestEvent> load_request_events(const std::string& path);

/// One aggregated (algorithm, phase) cell of the latency table.
struct LatencyRow {
  std::string algorithm;
  std::string phase;  // classify, closure, eval, realize, view_patch,
                      // total, decision
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
  /// This phase's share of the algorithm's summed total_us (NaN for the
  /// total/decision rows and when no total was recorded).
  double share = 0.0;
};

struct LatencyReport {
  std::vector<LatencyRow> rows;  // grouped by algorithm, phases in order
  std::size_t num_events = 0;
  std::size_t num_with_provenance = 0;
};

/// Aggregates phase latencies per algorithm through HdrHistogram, so every
/// reported percentile carries the <= 1% relative-error bound.
LatencyReport aggregate_latency(const std::vector<RequestEvent>& events);

void write_latency_text(std::ostream& out, const LatencyReport& report);
void write_latency_markdown(std::ostream& out, const LatencyReport& report);
/// "nfvm-latency-v1" JSON document.
void write_latency_json(std::ostream& out, const LatencyReport& report);

/// Event-stream invariants for CI (`nfvm-report latency --check`): at least
/// one request event, finite non-negative timings, phases bounded by the
/// total, admitted/rejected field consistency, and a single (config_hash,
/// seed) stamp across the log. Returns "" when all hold, else the first
/// violation.
std::string check_events(const std::vector<RequestEvent>& events);

/// Finds the event for `selector`: first as a request_id match, then (when
/// no id matches and the selector is numeric) as a stream index. Returns
/// nullptr when neither resolves.
const RequestEvent* find_request(const std::vector<RequestEvent>& events,
                                 const std::string& selector);

/// Prints one request's full provenance (`nfvm-report explain`).
void write_explain(std::ostream& out, const RequestEvent& event);

/// Canonical, timing- and provenance-free projection of the decision stream
/// - one line per request, byte-identical across thread counts AND across
/// NFVM_OBS=0/1 builds for the same run config (`nfvm-report decisions`;
/// diffed by the CI observability and soak smokes).
void write_decisions(std::ostream& out, const std::vector<RequestEvent>& events);

}  // namespace nfvm::obs::report
