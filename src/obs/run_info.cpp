#include "obs/run_info.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <ostream>

#include "obs/json.h"
#include "obs/metrics.h"  // NFVM_OBS default

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

// CMake passes these as escaped string defines on the nfvm_obs target; keep
// buildable without them (plain compiler invocations, non-git checkouts).
#ifndef NFVM_GIT_SHA
#define NFVM_GIT_SHA "unknown"
#endif
#ifndef NFVM_BUILD_TYPE_STR
#define NFVM_BUILD_TYPE_STR "unknown"
#endif
#ifndef NFVM_CXX_FLAGS_STR
#define NFVM_CXX_FLAGS_STR "unknown"
#endif

namespace nfvm::obs {

namespace {

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

BuildInfo build_info() {
  BuildInfo info;
  info.git_sha = NFVM_GIT_SHA;
  info.build_type = NFVM_BUILD_TYPE_STR;
  info.compiler = compiler_id();
  info.cxx_flags = NFVM_CXX_FLAGS_STR;
  info.obs_enabled = NFVM_OBS != 0;
  return info;
}

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#endif
#else
  return 0;
#endif
}

std::uint64_t current_rss_kb() {
#if defined(__linux__)
  // statm field 2 is the resident page count; no allocation on this path
  // beyond the stdio buffer, so it is safe to call from the sampler tick.
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long resident_pages = 0;
  const int matched =
      std::fscanf(statm, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(statm);
  if (matched != 2) return 0;
  const long page_size = sysconf(_SC_PAGESIZE);
  if (page_size <= 0) return 0;
  return static_cast<std::uint64_t>(resident_pages) *
         static_cast<std::uint64_t>(page_size) / 1024;
#else
  return 0;
#endif
}

std::string config_hash_hex(std::string_view text) {
  // FNV-1a 64-bit: tiny, dependency-free, and stable across platforms. Not
  // cryptographic - this only needs to distinguish run configurations.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string iso8601_utc_now() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm utc {};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
#else
  gmtime_r(&now, &utc);
#endif
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec);
  return buf;
}

void write_manifest(std::ostream& out, const RunManifest& manifest) {
  const BuildInfo build = build_info();
  JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("nfvm-run-manifest-v1");

  w.key("argv").begin_array();
  for (const std::string& arg : manifest.argv) w.value(arg);
  w.end_array();

  w.key("start_time").value(manifest.start_time);
  w.key("end_time").value(manifest.end_time);
  w.key("wall_time_s").value(manifest.wall_time_s);
  w.key("peak_rss_kb").value(peak_rss_kb());

  w.key("config").begin_object();
  for (const auto& [key, value] : manifest.config) w.key(key).value(value);
  w.end_object();

  w.key("build").begin_object();
  w.key("git_sha").value(build.git_sha);
  w.key("build_type").value(build.build_type);
  w.key("compiler").value(build.compiler);
  w.key("cxx_flags").value(build.cxx_flags);
  w.key("obs_enabled").value(build.obs_enabled);
  w.end_object();

  w.key("artifacts").begin_array();
  for (const std::string& name : manifest.artifacts) w.value(name);
  w.end_array();

  w.end_object();
  out << "\n";
}

}  // namespace nfvm::obs
