// Run provenance for self-describing artifact bundles: build identification
// (git SHA, build type, compiler, flags - baked in at compile time via CMake
// defines), process peak RSS, wall-clock timestamps, and the manifest.json
// writer used by `nfvm-sim --run-dir`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nfvm::obs {

/// Compile-time build identification. Values come from CMake-provided
/// defines (NFVM_GIT_SHA, NFVM_BUILD_TYPE_STR, NFVM_CXX_FLAGS_STR); fields
/// read "unknown" when a define was not supplied (e.g. a non-git checkout).
struct BuildInfo {
  std::string git_sha;
  std::string build_type;
  std::string compiler;
  std::string cxx_flags;
  /// Whether the NFVM_OBS instrumentation layer is compiled in.
  bool obs_enabled = false;
};

BuildInfo build_info();

/// Peak resident set size of this process in kilobytes (getrusage);
/// 0 on platforms without rusage support.
std::uint64_t peak_rss_kb();

/// Current resident set size in kilobytes (/proc/self/statm); 0 where no
/// equivalent exists. Unlike the monotone peak, this can shrink - sampled
/// per tick into the timeseries stream so soak runs expose memory growth
/// (and release) over time, not just the high-water mark at exit.
std::uint64_t current_rss_kb();

/// Current wall-clock time as ISO 8601 UTC, e.g. "2026-08-06T12:34:56Z".
std::string iso8601_utc_now();

/// FNV-1a 64-bit hash of `text` as 16 lowercase hex digits. Used to stamp a
/// digest of the run configuration into every event-log line and the
/// manifest, so mixed-run logs are detectable without diffing full configs.
std::string config_hash_hex(std::string_view text);

/// Everything a run bundle records about how it was produced. The caller
/// fills argv/config/timing; write_manifest adds build info and peak RSS.
struct RunManifest {
  /// Full command line, argv[0] included.
  std::vector<std::string> argv;
  std::string start_time;  // ISO 8601 UTC
  std::string end_time;
  double wall_time_s = 0.0;
  /// Flat tool-specific configuration echo (seed, topology, algorithm, ...).
  std::map<std::string, std::string> config;
  /// Artifact file names present in the bundle, relative to the run dir.
  std::vector<std::string> artifacts;
};

/// Writes the manifest as one JSON object tagged "nfvm-run-manifest-v1".
void write_manifest(std::ostream& out, const RunManifest& manifest);

}  // namespace nfvm::obs
