#include "obs/sampler.h"

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_info.h"

namespace nfvm::obs {

bool TimeseriesSampler::start(Registry& registry, const std::string& path,
                              std::chrono::milliseconds interval) {
  if (running()) return false;
  out_.open(path, std::ios::trunc);
  if (!out_) return false;
  registry_ = &registry;
  interval_ = interval.count() > 0 ? interval : std::chrono::milliseconds(1);
  epoch_ = std::chrono::steady_clock::now();
  stop_requested_ = false;
  samples_ = 0;
  thread_ = std::thread([this] { run_loop(); });
  return true;
}

void TimeseriesSampler::stop() {
  if (!running()) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  write_sample();  // final snapshot: short runs still get >= 1 line
  out_.close();
}

void TimeseriesSampler::run_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_requested_; })) break;
    lock.unlock();
    write_sample();
    lock.lock();
  }
}

void TimeseriesSampler::write_sample() {
  const double t_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - epoch_)
                          .count();
  JsonWriter w(out_);
  w.begin_object();
  w.key("t_ms").value(t_ms);
  w.key("rss_kb").value(peak_rss_kb());
  w.key("counters").begin_object();
  for (const auto& [name, value] : registry_->counter_snapshot()) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : registry_->gauge_snapshot()) {
    w.key(name).value(value);
  }
  w.end_object();
  w.end_object();
  out_ << "\n";
  out_.flush();
  ++samples_;
}

}  // namespace nfvm::obs
