#include "obs/sampler.h"

#include <cmath>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_info.h"
#include "obs/slo.h"
#include "obs/window.h"

namespace nfvm::obs {

bool TimeseriesSampler::start(Registry& registry, const std::string& path,
                              std::chrono::milliseconds interval) {
  if (running()) return false;
  to_file_ = !path.empty();
  if (to_file_) {
    out_.open(path, std::ios::trunc);
    if (!out_) return false;
  }
  registry_ = &registry;
  interval_ = interval.count() > 0 ? interval : std::chrono::milliseconds(1);
  epoch_ = std::chrono::steady_clock::now();
  stop_requested_ = false;
  samples_ = 0;
  prev_counters_.clear();
  prev_t_ms_ = 0.0;
  have_prev_ = false;
  thread_ = std::thread([this] { run_loop(); });
  return true;
}

void TimeseriesSampler::stop() {
  if (!running()) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  write_sample(true);  // final snapshot: short runs still get >= 1 line
  if (to_file_) out_.close();
}

void TimeseriesSampler::run_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_requested_; })) break;
    lock.unlock();
    write_sample(false);
    lock.lock();
  }
}

void TimeseriesSampler::write_sample(bool final_sample) {
  const double t_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - epoch_)
                          .count();
  const auto counters = registry_->counter_snapshot();
  const auto gauges = registry_->gauge_snapshot();
  const auto windowed = registry_->windowed_instruments();
  const std::int64_t window_now = window_now_ms();
  const std::uint64_t peak_kb = peak_rss_kb();
  const std::uint64_t current_kb = current_rss_kb();

  /// Values offered to the SLO tracker: every scalar this sample can see,
  /// under the same keys the spec grammar resolves (obs/slo.h).
  std::map<std::string, double> values;
  values["rss_kb"] = static_cast<double>(peak_kb);
  values["current_rss_kb"] = static_cast<double>(current_kb);
  const auto put_finite = [&values](const std::string& key, double value) {
    if (std::isfinite(value)) values[key] = value;
  };

  JsonWriter w(out_);
  const bool emit = to_file_;
  if (emit) {
    w.begin_object();
    w.key("schema").value(kTimeseriesSchema);
    w.key("t_ms").value(t_ms);
    w.key("rss_kb").value(peak_kb);
    w.key("current_rss_kb").value(current_kb);
    w.key("counters").begin_object();
  }
  for (const auto& [name, value] : counters) {
    if (emit) w.key(name).value(value);
    values["counters." + name] = static_cast<double>(value);
  }
  if (emit) {
    w.end_object();
    w.key("gauges").begin_object();
  }
  for (const auto& [name, value] : gauges) {
    if (emit) w.key(name).value(value);
    values["gauges." + name] = value;
  }
  if (emit) {
    w.end_object();
    w.key("windows").begin_object();
  }
  for (const auto& [name, instrument] : windowed) {
    const WindowSnapshot snap = instrument->snapshot(window_now);
    if (emit) {
      w.key(name).begin_object();
      w.key("count").value(snap.count);
      w.key("decayed_count").value(snap.decayed_count);
      if (snap.count > 0) {
        // Quantiles of an empty window are NaN; omitting them beats the
        // writer's NaN->0 fallback, which would read as a healthy zero.
        w.key("sum").value(snap.sum);
        w.key("min").value(snap.min);
        w.key("max").value(snap.max);
        w.key("mean").value(snap.mean);
        w.key("p50").value(snap.p50);
        w.key("p90").value(snap.p90);
        w.key("p99").value(snap.p99);
      }
      if (snap.decayed_count > 0) {
        w.key("decayed_p50").value(snap.decayed_p50);
        w.key("decayed_p90").value(snap.decayed_p90);
        w.key("decayed_p99").value(snap.decayed_p99);
      }
      w.end_object();
    }
    const std::string base = "windows." + name;
    values[base + ".count"] = static_cast<double>(snap.count);
    values[base + ".decayed_count"] = snap.decayed_count;
    if (snap.count > 0) {
      put_finite(base + ".sum", snap.sum);
      put_finite(base + ".min", snap.min);
      put_finite(base + ".max", snap.max);
      put_finite(base + ".mean", snap.mean);
      put_finite(base + ".p50", snap.p50);
      put_finite(base + ".p90", snap.p90);
      put_finite(base + ".p99", snap.p99);
    }
    put_finite(base + ".decayed_p50", snap.decayed_p50);
    put_finite(base + ".decayed_p90", snap.decayed_p90);
    put_finite(base + ".decayed_p99", snap.decayed_p99);
  }
  if (emit) w.end_object();

  // Per-interval rates of the admission counters, differencing against the
  // previous sample. The first sample has no base and omits the section.
  if (have_prev_) {
    const double dt_s = std::max((t_ms - prev_t_ms_) / 1000.0, 1e-9);
    const auto delta = [&](const char* name) -> double {
      std::uint64_t now_value = 0;
      for (const auto& [n, v] : counters) {
        if (n == name) {
          now_value = v;
          break;
        }
      }
      const auto it = prev_counters_.find(name);
      const std::uint64_t prev_value = it == prev_counters_.end() ? 0 : it->second;
      return now_value >= prev_value
                 ? static_cast<double>(now_value - prev_value)
                 : 0.0;  // reset_values between samples
    };
    const double d_requests = delta("online.requests");
    const double d_admitted = delta("online.admitted");
    const double d_rejected = delta("online.rejected");
    if (emit) w.key("rates").begin_object();
    const auto rate = [&](const std::string& key, double value) {
      if (emit) w.key(key).value(value);
      values["rates." + key] = value;
    };
    rate("req_s", d_requests / dt_s);
    rate("reject_s", d_rejected / dt_s);
    if (d_requests > 0) rate("admit_rate", d_admitted / d_requests);
    for (const auto& [name, value] : counters) {
      if (name.rfind("online.reject.", 0) != 0) continue;
      (void)value;
      rate(name.substr(std::string_view("online.").size()) + "_s",
           delta(name.c_str()) / dt_s);
    }
    if (emit) w.end_object();
  }

  if (emit) {
    w.end_object();
    out_ << "\n";
    out_.flush();
  }
  ++samples_;

  prev_counters_.clear();
  for (const auto& [name, value] : counters) prev_counters_[name] = value;
  prev_t_ms_ = t_ms;
  have_prev_ = true;

  if (slo_ != nullptr) {
    slo_->offer(static_cast<std::int64_t>(t_ms), values);
    if (final_sample) slo_->finish(static_cast<std::int64_t>(t_ms));
  }
}

}  // namespace nfvm::obs
