// Opt-in periodic metrics sampler for long online runs: a background thread
// snapshots the registry's counters, gauges and windowed instruments plus
// the process RSS into a JSONL timeseries (one "nfvm-timeseries-v2" object
// per sample). Wired to `nfvm-sim --timeseries FILE --sample-interval-ms N`;
// idle (no thread, no file) unless started. The same tick also drives the
// SLO tracker (obs/slo.h) when one is attached, so `--slo` works with or
// without a timeseries file.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace nfvm::obs {

class Registry;
class SloTracker;

/// Schema tag stamped into every timeseries line. v1 lines (no tag) carried
/// only t_ms / rss_kb / counters / gauges; v2 adds current_rss_kb, the
/// per-window quantile section ("windows") and per-interval rates.
inline constexpr std::string_view kTimeseriesSchema = "nfvm-timeseries-v2";

/// Samples `registry` every `interval` until stop() (or destruction). Each
/// line is one JSON object:
///   {"schema": "nfvm-timeseries-v2", "t_ms": <ms since start>,
///    "rss_kb": <peak>, "current_rss_kb": <now>,
///    "counters": {...}, "gauges": {...},
///    "windows": {name: {count, sum, min, max, mean, p50, p90, p99,
///                       decayed_count, decayed_p50, decayed_p90,
///                       decayed_p99}},
///    "rates": {"req_s": ..., "admit_rate": ..., "reject_s": ...,
///              "reject.<cause>_s": ...}}
/// Quantile fields of an empty window are omitted (they would be NaN);
/// consumers must check "count". The "rates" section holds per-interval
/// deltas of the online.* admission counters and is omitted from the first
/// sample (no previous snapshot to difference against). A final sample is
/// always written on stop so short runs still produce at least one line.
/// Sampling takes the registry mutex for the duration of one snapshot -
/// microseconds - so the hot paths it observes are effectively undisturbed.
class TimeseriesSampler {
 public:
  TimeseriesSampler() = default;
  ~TimeseriesSampler() { stop(); }
  TimeseriesSampler(const TimeseriesSampler&) = delete;
  TimeseriesSampler& operator=(const TimeseriesSampler&) = delete;

  /// Opens (truncates) `path` and starts the sampling thread. An empty
  /// `path` starts the thread without a file - ticks still feed the SLO
  /// tracker. Returns false (and stays idle) when the file cannot be opened
  /// or sampling is already running. A non-positive interval is clamped to
  /// 1ms (the CLI rejects it eagerly; this is the library-level backstop).
  bool start(Registry& registry, const std::string& path,
             std::chrono::milliseconds interval);

  /// Attach an SLO tracker (not owned); every sample tick offers it the
  /// flattened value map, and stop() finishes it. Call before start().
  void set_slo_tracker(SloTracker* tracker) { slo_ = tracker; }

  /// Writes one final sample, finishes the SLO tracker, joins the thread
  /// and closes the file. Safe to call when not running.
  void stop();

  bool running() const { return thread_.joinable(); }
  std::size_t samples_written() const { return samples_; }
  /// The effective (clamped) interval - observable so tests can pin the
  /// library-level backstop without reaching into private state.
  std::chrono::milliseconds interval() const { return interval_; }

 private:
  void run_loop();
  void write_sample(bool final_sample);

  Registry* registry_ = nullptr;
  SloTracker* slo_ = nullptr;
  std::ofstream out_;
  bool to_file_ = false;
  std::chrono::milliseconds interval_{1000};
  std::chrono::steady_clock::time_point epoch_{};
  /// Counter values at the previous sample - the base for "rates".
  std::map<std::string, std::uint64_t> prev_counters_;
  double prev_t_ms_ = 0.0;
  bool have_prev_ = false;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<std::size_t> samples_{0};
};

}  // namespace nfvm::obs
