// Opt-in periodic metrics sampler for long online runs: a background thread
// snapshots the registry's counters and gauges plus the process RSS into a
// JSONL timeseries (one object per sample). Wired to `nfvm-sim --timeseries
// FILE --sample-interval-ms N`; idle (no thread, no file) unless started.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

namespace nfvm::obs {

class Registry;

/// Samples `registry` every `interval` until stop() (or destruction). Each
/// line is {"t_ms": <ms since start>, "rss_kb": N, "counters": {...},
/// "gauges": {...}}. A final sample is always written on stop so short runs
/// still produce at least one line. Sampling takes the registry mutex for
/// the duration of one snapshot - microseconds - so the hot paths it
/// observes are effectively undisturbed.
class TimeseriesSampler {
 public:
  TimeseriesSampler() = default;
  ~TimeseriesSampler() { stop(); }
  TimeseriesSampler(const TimeseriesSampler&) = delete;
  TimeseriesSampler& operator=(const TimeseriesSampler&) = delete;

  /// Opens (truncates) `path` and starts the sampling thread. Returns false
  /// (and stays idle) when the file cannot be opened or sampling is already
  /// running. A non-positive interval is clamped to 1ms.
  bool start(Registry& registry, const std::string& path,
             std::chrono::milliseconds interval);

  /// Writes one final sample, joins the thread and closes the file. Safe to
  /// call when not running.
  void stop();

  bool running() const { return thread_.joinable(); }
  std::size_t samples_written() const { return samples_; }

 private:
  void run_loop();
  void write_sample();

  Registry* registry_ = nullptr;
  std::ofstream out_;
  std::chrono::milliseconds interval_{1000};
  std::chrono::steady_clock::time_point epoch_{};
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<std::size_t> samples_{0};
};

}  // namespace nfvm::obs
