#include "obs/slo.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/event_log.h"
#include "obs/json.h"

namespace nfvm::obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool compare(SloOp op, double observed, double threshold) {
  switch (op) {
    case SloOp::kLt:
      return observed < threshold;
    case SloOp::kLe:
      return observed <= threshold;
    case SloOp::kGt:
      return observed > threshold;
    case SloOp::kGe:
      return observed >= threshold;
  }
  return false;
}

/// How far `observed` sits on the bad side of `threshold`; negative when the
/// objective holds. Used to keep the single most-violating sample as "worst".
double violation(SloOp op, double observed, double threshold) {
  switch (op) {
    case SloOp::kLt:
    case SloOp::kLe:
      return observed - threshold;
    case SloOp::kGt:
    case SloOp::kGe:
      return threshold - observed;
  }
  return 0.0;
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool is_stat_token(const std::string& token) {
  static const char* kStats[] = {"p50",         "p90",         "p99",
                                 "mean",        "min",         "max",
                                 "count",       "sum",         "rate",
                                 "delta",       "decayed_p50", "decayed_p90",
                                 "decayed_p99", "decayed_count"};
  return std::find_if(std::begin(kStats), std::end(kStats),
                      [&](const char* s) { return token == s; }) !=
         std::end(kStats);
}

std::optional<SloOp> parse_op(const std::string& token) {
  if (token == "<") return SloOp::kLt;
  if (token == "<=") return SloOp::kLe;
  if (token == ">") return SloOp::kGt;
  if (token == ">=") return SloOp::kGe;
  return std::nullopt;
}

double parse_number(const std::string& token, const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("slo: bad ") + what + " '" +
                                token + "'");
  }
  if (consumed != token.size()) {
    throw std::invalid_argument(std::string("slo: bad ") + what + " '" +
                                token + "'");
  }
  return value;
}

std::int64_t parse_duration_ms(const std::string& token) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  const std::string unit = token.substr(consumed);
  double scale = 0.0;
  if (unit == "ms") {
    scale = 1.0;
  } else if (unit == "s") {
    scale = 1000.0;
  } else if (unit == "m") {
    scale = 60'000.0;
  } else if (unit == "h") {
    scale = 3'600'000.0;
  }
  if (consumed == 0 || scale == 0.0 || value <= 0.0) {
    throw std::invalid_argument("slo: bad duration '" + token +
                                "' (want e.g. 500ms, 10s, 2m, 1h)");
  }
  return static_cast<std::int64_t>(value * scale);
}

}  // namespace

std::string_view to_string(SloOp op) {
  switch (op) {
    case SloOp::kLt:
      return "<";
    case SloOp::kLe:
      return "<=";
    case SloOp::kGt:
      return ">";
    case SloOp::kGe:
      return ">=";
  }
  return "?";
}

std::optional<SloSpec> parse_slo_line(std::string_view line) {
  const auto hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty()) return std::nullopt;

  SloSpec spec;
  std::size_t i = 0;
  spec.target = tokens[i++];
  if (i < tokens.size() && is_stat_token(tokens[i])) spec.stat = tokens[i++];

  if (i >= tokens.size()) {
    throw std::invalid_argument("slo: missing comparison in '" +
                                std::string(line) + "'");
  }
  const auto op = parse_op(tokens[i]);
  if (!op) {
    throw std::invalid_argument("slo: bad operator '" + tokens[i] +
                                "' (want < <= > >=)");
  }
  spec.op = *op;
  ++i;

  if (i >= tokens.size()) {
    throw std::invalid_argument("slo: missing threshold in '" +
                                std::string(line) + "'");
  }
  spec.threshold = parse_number(tokens[i++], "threshold");

  if (i >= tokens.size() || tokens[i] != "over") {
    throw std::invalid_argument("slo: expected 'over DURATION' in '" +
                                std::string(line) + "'");
  }
  ++i;
  if (i >= tokens.size()) {
    throw std::invalid_argument("slo: missing duration after 'over'");
  }
  spec.window_ms = parse_duration_ms(tokens[i++]);

  if (i < tokens.size()) {
    if (tokens[i] != "budget") {
      throw std::invalid_argument("slo: unexpected token '" + tokens[i] + "'");
    }
    ++i;
    if (i >= tokens.size()) {
      throw std::invalid_argument("slo: missing percentage after 'budget'");
    }
    std::string pct = tokens[i++];
    if (pct.empty() || pct.back() != '%') {
      throw std::invalid_argument("slo: budget wants a percentage, e.g. 5%");
    }
    pct.pop_back();
    const double value = parse_number(pct, "budget");
    if (value < 0.0 || value >= 100.0) {
      throw std::invalid_argument("slo: budget must be in [0%, 100%)");
    }
    spec.budget = value / 100.0;
  }
  if (i < tokens.size()) {
    throw std::invalid_argument("slo: trailing token '" + tokens[i] + "'");
  }

  // Canonical display form, independent of the source line's spacing.
  std::ostringstream text;
  text << spec.target;
  if (!spec.stat.empty()) text << ' ' << spec.stat;
  text << ' ' << to_string(spec.op) << ' ' << spec.threshold << " over "
       << spec.window_ms << "ms";
  if (spec.budget > 0.0) text << " budget " << spec.budget * 100.0 << '%';
  spec.text = text.str();
  return spec;
}

std::vector<SloSpec> parse_slo_specs(std::string_view text) {
  std::vector<SloSpec> specs;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    ++line_no;
    try {
      if (auto spec = parse_slo_line(text.substr(pos, eol - pos))) {
        specs.push_back(std::move(*spec));
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("line " + std::to_string(line_no) + ": " +
                                  e.what());
    }
    pos = eol + 1;
  }
  return specs;
}

double SloObjective::breach_fraction() const {
  if (windows_evaluated == 0) return 0.0;
  return static_cast<double>(windows_breached) /
         static_cast<double>(windows_evaluated);
}

double SloObjective::burn_rate() const {
  if (windows_breached == 0) return 0.0;
  if (spec.budget <= 0.0) return std::numeric_limits<double>::infinity();
  return breach_fraction() / spec.budget;
}

bool SloObjective::pass() const { return breach_fraction() <= spec.budget; }

SloTracker::SloTracker(std::vector<SloSpec> specs) {
  objectives_.reserve(specs.size());
  for (SloSpec& spec : specs) {
    SloObjective objective;
    objective.spec = std::move(spec);
    objective.worst = kNaN;
    objective.last = kNaN;
    objectives_.push_back(std::move(objective));
  }
  states_.resize(objectives_.size());
}

double SloTracker::resolve(std::size_t index, std::int64_t now_ms,
                           const std::map<std::string, double>& values) const {
  const SloObjective& objective = objectives_[index];
  const ObjectiveState& state = states_[index];
  const SloSpec& spec = objective.spec;

  const auto lookup = [&values](const std::string& key) -> double {
    const auto it = values.find(key);
    return it == values.end() ? kNaN : it->second;
  };

  // Counter rate/delta targets difference the counter over this objective's
  // own window - accurate regardless of the sampler interval.
  if (spec.stat == "rate" || spec.stat == "delta") {
    const std::string key = spec.target.rfind("counters.", 0) == 0
                                ? spec.target
                                : "counters." + spec.target;
    const double now_value = lookup(key);
    if (!state.has_base || std::isnan(now_value)) return kNaN;
    const auto it = state.base_values.find(key);
    const double base = it == state.base_values.end() ? kNaN : it->second;
    if (std::isnan(base)) return kNaN;
    const double delta = std::max(now_value - base, 0.0);
    if (spec.stat == "delta") return delta;
    const double dt_s =
        static_cast<double>(now_ms - state.window_start_ms) / 1000.0;
    return dt_s > 0.0 ? delta / dt_s : kNaN;
  }

  // Built-in admission-rate targets, likewise differenced over the window.
  if (spec.stat.empty() &&
      (spec.target == "admit_rate" || spec.target == "req_s" ||
       spec.target == "reject_s")) {
    if (!state.has_base) return kNaN;
    const auto window_delta = [&](const char* counter) -> double {
      const std::string key = std::string("counters.") + counter;
      const double now_value = lookup(key);
      const auto it = state.base_values.find(key);
      const double base = it == state.base_values.end() ? kNaN : it->second;
      if (std::isnan(now_value) || std::isnan(base)) return kNaN;
      return std::max(now_value - base, 0.0);
    };
    if (spec.target == "admit_rate") {
      const double requests = window_delta("online.requests");
      const double admitted = window_delta("online.admitted");
      if (std::isnan(requests) || std::isnan(admitted) || requests <= 0.0) {
        return kNaN;  // no traffic this window: skip, not breach
      }
      return admitted / requests;
    }
    const double delta = window_delta(
        spec.target == "req_s" ? "online.requests" : "online.rejected");
    const double dt_s =
        static_cast<double>(now_ms - state.window_start_ms) / 1000.0;
    if (std::isnan(delta) || dt_s <= 0.0) return kNaN;
    return delta / dt_s;
  }

  // Point-in-time values: try the bare key, then the prefixed forms the
  // sampler flattens to ("windows.NAME.STAT", "counters.", "gauges.").
  if (!spec.stat.empty()) {
    const double windowed = lookup("windows." + spec.target + "." + spec.stat);
    if (!std::isnan(windowed)) return windowed;
    return lookup(spec.target + "." + spec.stat);
  }
  const double bare = lookup(spec.target);
  if (!std::isnan(bare)) return bare;
  const double counter = lookup("counters." + spec.target);
  if (!std::isnan(counter)) return counter;
  return lookup("gauges." + spec.target);
}

void SloTracker::evaluate(std::size_t index, std::int64_t now_ms,
                          const std::map<std::string, double>& values) {
  SloObjective& objective = objectives_[index];
  ObjectiveState& state = states_[index];

  const double observed = resolve(index, now_ms, values);
  if (std::isnan(observed)) {
    ++objective.windows_skipped;
  } else {
    ++objective.windows_evaluated;
    objective.last = observed;
    if (std::isnan(objective.worst) ||
        violation(objective.spec.op, observed, objective.spec.threshold) >
            violation(objective.spec.op, objective.worst,
                      objective.spec.threshold)) {
      objective.worst = observed;
    }
    if (!compare(objective.spec.op, observed, objective.spec.threshold)) {
      ++objective.windows_breached;
      if (objective.breaches.size() < kMaxBreachRecords) {
        objective.breaches.push_back(
            SloBreach{state.window_start_ms, now_ms, observed});
      }
      if (event_log_ != nullptr) {
        JsonLine line;
        line.field("event", "slo_breach")
            .field("slo", objective.spec.text)
            .field("window_start_ms", state.window_start_ms)
            .field("window_end_ms", now_ms)
            .field("observed", observed)
            .field("threshold", objective.spec.threshold);
        event_log_->write(line);
      }
    }
  }

  state.window_start_ms = now_ms;
  state.base_values = values;
  state.has_base = true;
}

void SloTracker::offer(std::int64_t now_ms,
                       const std::map<std::string, double>& values) {
  if (finished_) return;
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    ObjectiveState& state = states_[i];
    if (!state.has_base) {
      // First offer anchors the window; nothing to evaluate yet.
      state.window_start_ms = now_ms;
      state.base_values = values;
      state.has_base = true;
      continue;
    }
    if (now_ms - state.window_start_ms >= objectives_[i].spec.window_ms) {
      evaluate(i, now_ms, values);
    }
  }
  last_values_ = values;
  last_offer_ms_ = now_ms;
}

void SloTracker::finish(std::int64_t now_ms) {
  if (finished_) return;
  finished_ = true;
  (void)now_ms;  // evaluation uses the last offer's own clock
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    // The trailing partial window still carries signal for short runs and
    // run tails; evaluate it when any data arrived since the last full
    // window. Point-in-time stats are unaffected by the shorter horizon;
    // rates use the true elapsed dt so they stay unbiased.
    if (states_[i].has_base && last_offer_ms_ > states_[i].window_start_ms) {
      evaluate(i, last_offer_ms_, last_values_);
    }
  }
}

bool SloTracker::pass() const {
  return std::all_of(objectives_.begin(), objectives_.end(),
                     [](const SloObjective& o) { return o.pass(); });
}

std::size_t SloTracker::num_breached_windows() const {
  std::size_t total = 0;
  for (const SloObjective& o : objectives_) total += o.windows_breached;
  return total;
}

void SloTracker::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.key("schema").value(kSloSchema);
  w.key("pass").value(pass());
  w.key("objectives").begin_array();
  for (const SloObjective& o : objectives_) {
    w.begin_object();
    w.key("slo").value(o.spec.text);
    w.key("target").value(o.spec.target);
    if (!o.spec.stat.empty()) w.key("stat").value(o.spec.stat);
    w.key("op").value(to_string(o.spec.op));
    w.key("threshold").value(o.spec.threshold);
    w.key("window_ms").value(o.spec.window_ms);
    w.key("budget").value(o.spec.budget);
    w.key("pass").value(o.pass());
    w.key("windows_evaluated").value(o.windows_evaluated);
    w.key("windows_breached").value(o.windows_breached);
    w.key("windows_skipped").value(o.windows_skipped);
    w.key("breach_fraction").value(o.breach_fraction());
    const double burn = o.burn_rate();
    // +inf is not valid JSON; clamp to a sentinel consumers can display.
    w.key("burn_rate").value(std::isinf(burn) ? 1e9 : burn);
    if (!std::isnan(o.last)) w.key("last").value(o.last);
    if (!std::isnan(o.worst)) w.key("worst").value(o.worst);
    w.key("breaches").begin_array();
    for (const SloBreach& b : o.breaches) {
      w.begin_object();
      w.key("window_start_ms").value(b.window_start_ms);
      w.key("window_end_ms").value(b.window_end_ms);
      w.key("observed").value(b.observed);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace nfvm::obs
