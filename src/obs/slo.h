// Declarative SLO tracking over the windowed telemetry stream.
//
// A spec file is line-oriented (one objective per line, '#' comments):
//
//   online.decision_us p99 < 5000 over 10s budget 5%
//   admit_rate >= 0.9 over 30s
//   current_rss_kb max < 2097152 over 60s
//   counters.online.requests rate >= 50 over 10s
//
// Grammar per line:  TARGET [STAT] OP VALUE over DURATION [budget PCT%]
//   * TARGET   - a windowed instrument ("online.decision_us"), one of the
//                built-in rate targets ("admit_rate", "req_s", "reject_s"),
//                a counter/gauge key ("counters.x", "gauges.y"), or a bare
//                sampler scalar ("rss_kb", "current_rss_kb").
//   * STAT     - for windowed instruments: p50|p90|p99|mean|max|min|count|
//                decayed_p50|decayed_p90|decayed_p99; for counters: rate
//                (delta per second over the objective window) or delta;
//                omitted for direct scalars and built-in rates.
//   * OP       - < <= > >=
//   * DURATION - evaluation window, e.g. 500ms, 10s, 2m, 1h.
//   * budget   - error budget: the fraction of evaluated windows allowed to
//                breach before the objective fails (default 0% - a single
//                bad window fails). Burn rate is breach_fraction / budget.
//
// The tracker is driven by offers - (now_ms, flattened value map) pairs the
// timeseries sampler produces each tick (obs/sampler.h) - so evaluation
// needs no extra thread and unit tests inject synthetic clocks. Each
// objective evaluates once per elapsed DURATION: a window is GOOD when the
// condition holds, BREACHED when it does not, and SKIPPED when its value is
// unavailable (e.g. an empty latency window - skipping beats failing a
// quiet interval, and `nfvm-report summary` prints window counts so quiet
// is visible). finish() evaluates the trailing partial window so short runs
// still produce at least one verdict per objective.
//
// Breaches are appended to the JSONL event log ({"event": "slo_breach",
// ...}) as they happen; the final state is written as an "nfvm-slo-v1"
// document (slo.json in a --run-dir bundle) and summarized into
// manifest.json. `nfvm-report slo [--check]` renders and gates it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nfvm::obs {

class EventLog;

inline constexpr std::string_view kSloSchema = "nfvm-slo-v1";

enum class SloOp : std::uint8_t { kLt, kLe, kGt, kGe };

std::string_view to_string(SloOp op);

struct SloSpec {
  /// The original (trimmed) spec line - canonical display form.
  std::string text;
  std::string target;
  /// Stat selector; empty for direct scalars and built-in rates.
  std::string stat;
  SloOp op = SloOp::kLt;
  double threshold = 0.0;
  std::int64_t window_ms = 10'000;
  /// Allowed breached-window fraction in [0, 1).
  double budget = 0.0;
};

/// Parses one spec line. Returns std::nullopt for blank/comment lines;
/// throws std::invalid_argument (message names the offending token) on a
/// malformed objective.
std::optional<SloSpec> parse_slo_line(std::string_view line);

/// Parses a whole spec file's contents. Throws std::invalid_argument with
/// the 1-based line number on the first malformed line.
std::vector<SloSpec> parse_slo_specs(std::string_view text);

struct SloBreach {
  std::int64_t window_start_ms = 0;
  std::int64_t window_end_ms = 0;
  double observed = 0.0;
};

struct SloObjective {
  SloSpec spec;
  std::uint64_t windows_evaluated = 0;
  std::uint64_t windows_breached = 0;
  std::uint64_t windows_skipped = 0;
  /// Most-violating observed value across all evaluations (NaN until one).
  double worst = 0.0;
  /// Last evaluated value (NaN until one).
  double last = 0.0;
  /// First kMaxBreachRecords breaches, in order.
  std::vector<SloBreach> breaches;

  double breach_fraction() const;
  /// breach_fraction / budget; +inf when budget is 0 and any window
  /// breached, 0 when nothing breached.
  double burn_rate() const;
  /// Breach fraction within budget. An objective that never evaluated a
  /// window passes (and reports 0 windows - gate on that upstream if "no
  /// data" must fail).
  bool pass() const;
};

/// Evaluates a set of objectives against offered value maps. Single-writer:
/// offers must come from one thread at a time (the sampler tick or a test).
class SloTracker {
 public:
  /// Per-objective cap on stored breach records; breaches past the cap
  /// still count, they just stop accumulating detail.
  static constexpr std::size_t kMaxBreachRecords = 64;

  explicit SloTracker(std::vector<SloSpec> specs);

  /// Breach records are appended here as they are detected (not owned; may
  /// be null). Lines carry the log's usual stamp.
  void set_event_log(EventLog* log) { event_log_ = log; }

  /// Offers the freshest values at `now_ms` (monotone non-decreasing).
  /// Every objective whose evaluation window has fully elapsed evaluates
  /// against these values.
  void offer(std::int64_t now_ms, const std::map<std::string, double>& values);

  /// Evaluates trailing partial windows (anything with >= 1ms of new data)
  /// and freezes the tracker. Idempotent.
  void finish(std::int64_t now_ms);

  const std::vector<SloObjective>& objectives() const { return objectives_; }
  bool pass() const;
  std::size_t num_breached_windows() const;

  /// Writes the "nfvm-slo-v1" document (pass flag + per-objective state).
  void write_json(std::ostream& out) const;

 private:
  struct ObjectiveState {
    /// Window start: the offer time of the previous evaluation.
    std::int64_t window_start_ms = 0;
    /// Counter values at window start (targets with stat rate/delta and
    /// the built-in rate targets difference against these).
    std::map<std::string, double> base_values;
    bool has_base = false;
  };

  void evaluate(std::size_t index, std::int64_t now_ms,
                const std::map<std::string, double>& values);
  /// Resolves the objective's observed value from the offered map; NaN when
  /// unavailable this window.
  double resolve(std::size_t index, std::int64_t now_ms,
                 const std::map<std::string, double>& values) const;

  std::vector<SloObjective> objectives_;
  std::vector<ObjectiveState> states_;
  /// Freshest offer, kept so finish() can evaluate trailing partial windows
  /// against real end-of-window values (not the stale window-start base).
  std::map<std::string, double> last_values_;
  std::int64_t last_offer_ms_ = 0;
  EventLog* event_log_ = nullptr;
  bool finished_ = false;
};

}  // namespace nfvm::obs
