#include "obs/trace.h"

#include <ostream>

#include "obs/json.h"

namespace nfvm::obs {
namespace {

/// Small dense per-thread ordinal (std::thread::id hashes are unreadable in
/// a trace viewer).
std::uint32_t this_thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Current span nesting depth of this thread.
thread_local std::uint32_t tls_span_depth = 0;

}  // namespace

Tracer& Tracer::global() {
  // Intentionally leaked, mirroring Registry::global(): a SpanScope living in
  // a static object may end during static destruction.
  static Tracer* const instance = new Tracer();
  return *instance;
}

void Tracer::start() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::set_max_events(std::size_t max_events) {
  const std::lock_guard<std::mutex> lock(mu_);
  max_events_ = max_events;
}

std::size_t Tracer::num_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

double Tracer::now_us() const noexcept {
  if (!enabled()) return 0.0;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record(const char* name, double ts_us, double dur_us,
                    std::uint32_t depth) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(TraceEvent{name, ts_us, dur_us, this_thread_ordinal(), depth});
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events_) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("nfvm");
    w.key("ph").value("X");
    w.key("ts").value(e.ts_us);
    w.key("dur").value(e.dur_us);
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  if (dropped() > 0) {
    w.key("nfvmDroppedEvents").value(dropped());
  }
  w.end_object();
  out << "\n";
}

SpanScope::SpanScope(const char* name) noexcept
    : name_(Tracer::global().enabled() ? name : nullptr) {
  if (name_ != nullptr) {
    depth_ = ++tls_span_depth;
    start_us_ = Tracer::global().now_us();
  }
}

SpanScope::~SpanScope() {
  if (name_ == nullptr) return;
  --tls_span_depth;
  Tracer& tracer = Tracer::global();
  // If the tracer was stopped mid-span, now_us() is 0; drop the event
  // rather than record a negative duration.
  const double end_us = tracer.now_us();
  if (end_us < start_us_) return;
  tracer.record(name_, start_us_, end_us - start_us_, depth_);
}

}  // namespace nfvm::obs
