// Scoped tracing spans with Chrome trace_event export.
//
//   NFVM_SPAN("appro_multi/enumerate_servers");
//
// declares an RAII scope: if the global tracer is recording, the span's
// wall-clock interval is appended to the trace buffer on scope exit.
// Nesting falls out of the timestamps - Chrome's "X" (complete) events on
// one thread render as a flame graph in chrome://tracing or Perfetto.
//
// Cost model: when the tracer is stopped (the default), a span is one
// relaxed atomic load. When recording, scope exit takes a mutex to append
// ~40 bytes. Compiling with -DNFVM_OBS=0 removes spans entirely.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"  // for the NFVM_OBS default

namespace nfvm::obs {

struct TraceEvent {
  /// Static-storage span name (the NFVM_SPAN literal).
  const char* name = "";
  /// Start, microseconds since Tracer::start().
  double ts_us = 0.0;
  /// Duration in microseconds.
  double dur_us = 0.0;
  /// Small per-thread ordinal (0 for the first thread seen).
  std::uint32_t tid = 0;
  /// Nesting depth at the time the span opened (outermost = 1).
  std::uint32_t depth = 0;
};

class SpanScope;

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer NFVM_SPAN records into.
  static Tracer& global();

  /// Clears the buffer and starts recording. Timestamps are relative to
  /// this call.
  void start();
  /// Stops recording; the buffer remains readable until the next start().
  void stop();
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Caps the buffer; further spans are counted in dropped() instead of
  /// stored. Default 1M events (~40 MB) so runaway traces cannot OOM.
  void set_max_events(std::size_t max_events);
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  std::size_t num_events() const;
  std::vector<TraceEvent> snapshot() const;

  /// Writes the buffer in Chrome trace_event JSON ("traceEvents" array of
  /// ph:"X" complete events, timestamps in microseconds). Loadable in
  /// chrome://tracing and Perfetto.
  void write_chrome_trace(std::ostream& out) const;

  /// Microseconds since start(); 0 when not recording.
  double now_us() const noexcept;

  /// Appends one finished span (called by SpanScope; public for tests).
  void record(const char* name, double ts_us, double dur_us, std::uint32_t depth);

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_{};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t max_events_ = 1'000'000;
};

/// RAII span bound to the global tracer. Samples the enabled flag once at
/// construction: a span that starts while recording is recorded even if
/// stop() arrives before it closes.
class SpanScope {
 public:
  explicit SpanScope(const char* name) noexcept;
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;  // nullptr when not recording
  double start_us_ = 0.0;
  std::uint32_t depth_ = 0;
};

}  // namespace nfvm::obs

#if NFVM_OBS
#define NFVM_SPAN_CONCAT_INNER(a, b) a##b
#define NFVM_SPAN_CONCAT(a, b) NFVM_SPAN_CONCAT_INNER(a, b)
#define NFVM_SPAN(name) \
  ::nfvm::obs::SpanScope NFVM_SPAN_CONCAT(nfvm_span_, __COUNTER__)(name)
#else
#define NFVM_SPAN(name) ((void)0)
#endif
