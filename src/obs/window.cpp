#include "obs/window.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace nfvm::obs {

namespace {

constexpr std::size_t kNumBuckets = HdrHistogram::kNumBuckets;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Quantile over double-valued bucket weights - the decayed counterpart of
/// obs::estimate_quantile, kept local because every other consumer works on
/// integer counts. Same interpolation: find the bucket holding the target
/// mass, interpolate linearly inside it, tighten the ends with min/max.
double weighted_quantile(const std::vector<double>& buckets, double q,
                         double total, double min_value, double max_value) {
  if (!(total > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  std::size_t last_occupied = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] > 0.0) last_occupied = i;
  }
  const double target = q * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] <= 0.0) continue;
    const double next = cumulative + buckets[i];
    if (next < target && i < last_occupied) {
      cumulative = next;
      continue;
    }
    double lower = i == 0 ? 0.0 : HdrHistogram::bucket_upper_bound(i - 1);
    double upper = HdrHistogram::bucket_upper_bound(i);
    if (!std::isfinite(upper)) {
      upper = std::isfinite(max_value) ? max_value : lower * 2.0;
    }
    if (std::isfinite(min_value)) lower = std::max(lower, std::min(min_value, upper));
    if (std::isfinite(max_value)) upper = std::min(upper, max_value);
    const double fraction = std::max(0.0, target - cumulative) / buckets[i];
    return std::clamp(lower + fraction * (upper - lower), lower, upper);
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

std::int64_t window_now_ms() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

// --- SlidingHdrHistogram ----------------------------------------------------

void SlidingHdrHistogram::Slot::clear(std::int64_t new_epoch) {
  std::fill(buckets.begin(), buckets.end(), 0u);
  count = 0;
  sum = 0.0;
  min = kInf;
  max = -kInf;
  epoch = new_epoch;
}

SlidingHdrHistogram::SlidingHdrHistogram(const WindowOptions& options)
    : window_ms_(std::max<std::int64_t>(options.window_ms, 1)),
      slot_ms_(std::max<std::int64_t>(
          window_ms_ / std::max<std::size_t>(options.slots, 1), 1)),
      slots_(std::max<std::size_t>(options.slots, 1)) {
  for (Slot& slot : slots_) {
    slot.buckets.assign(kNumBuckets, 0u);
    slot.min = kInf;
    slot.max = -kInf;
  }
}

SlidingHdrHistogram::Slot& SlidingHdrHistogram::slot_for(std::int64_t now_ms) {
  const std::int64_t epoch = std::max<std::int64_t>(now_ms, 0) / slot_ms_;
  Slot& slot = slots_[static_cast<std::size_t>(epoch) % slots_.size()];
  // A slot whose epoch is stale belonged to a previous ring revolution.
  if (slot.epoch != epoch) slot.clear(epoch);
  return slot;
}

void SlidingHdrHistogram::advance(std::int64_t now_ms) {
  // Touching the current slot is enough to claim it; expired slots are
  // detected (and skipped / reused) by their epoch at read and write time.
  (void)slot_for(now_ms);
}

void SlidingHdrHistogram::observe(double sample, std::int64_t now_ms) {
  Slot& slot = slot_for(now_ms);
  slot.buckets[HdrHistogram::bucket_index(sample)] += 1;
  slot.count += 1;
  slot.sum += sample;
  slot.min = std::min(slot.min, sample);
  slot.max = std::max(slot.max, sample);
}

namespace {

/// A slot is inside the trailing window iff its interval overlaps
/// (now - window, now]. Slot `epoch` covers [epoch*slot, (epoch+1)*slot).
bool slot_live(std::int64_t slot_epoch, std::int64_t now_ms,
               std::int64_t slot_ms, std::int64_t window_ms) {
  if (slot_epoch < 0) return false;
  const std::int64_t slot_end = (slot_epoch + 1) * slot_ms;
  return slot_end > now_ms - window_ms && slot_epoch * slot_ms <= now_ms;
}

}  // namespace

std::uint64_t SlidingHdrHistogram::count(std::int64_t now_ms) {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    if (slot_live(slot.epoch, now_ms, slot_ms_, window_ms_)) total += slot.count;
  }
  return total;
}

double SlidingHdrHistogram::sum(std::int64_t now_ms) {
  double total = 0.0;
  for (const Slot& slot : slots_) {
    if (slot_live(slot.epoch, now_ms, slot_ms_, window_ms_)) total += slot.sum;
  }
  return total;
}

double SlidingHdrHistogram::min(std::int64_t now_ms) {
  double value = kInf;
  for (const Slot& slot : slots_) {
    if (slot_live(slot.epoch, now_ms, slot_ms_, window_ms_) && slot.count > 0) {
      value = std::min(value, slot.min);
    }
  }
  return value;
}

double SlidingHdrHistogram::max(std::int64_t now_ms) {
  double value = -kInf;
  for (const Slot& slot : slots_) {
    if (slot_live(slot.epoch, now_ms, slot_ms_, window_ms_) && slot.count > 0) {
      value = std::max(value, slot.max);
    }
  }
  return value;
}

std::vector<HistogramBucket> SlidingHdrHistogram::snapshot_buckets(
    std::int64_t now_ms) {
  std::vector<std::uint64_t> merged(kNumBuckets, 0);
  std::size_t highest = 0;
  bool any = false;
  for (const Slot& slot : slots_) {
    if (!slot_live(slot.epoch, now_ms, slot_ms_, window_ms_) || slot.count == 0) {
      continue;
    }
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      if (slot.buckets[b] == 0) continue;
      merged[b] += slot.buckets[b];
      highest = std::max(highest, b);
      any = true;
    }
  }
  std::vector<HistogramBucket> buckets;
  if (!any) return buckets;
  buckets.reserve(highest + 1);
  for (std::size_t b = 0; b <= highest; ++b) {
    buckets.push_back({HdrHistogram::bucket_upper_bound(b), merged[b]});
  }
  return buckets;
}

double SlidingHdrHistogram::quantile(double q, std::int64_t now_ms) {
  return estimate_quantile(snapshot_buckets(now_ms), q, min(now_ms), max(now_ms));
}

// --- DecayingHdrHistogram ---------------------------------------------------

DecayingHdrHistogram::DecayingHdrHistogram(const WindowOptions& options)
    : half_life_ms_(std::max<std::int64_t>(options.half_life_ms, 1)),
      tick_ms_(std::max<std::int64_t>(half_life_ms_ / kDecayTicksPerHalfLife, 1)),
      buckets_(kNumBuckets, 0.0),
      lifetime_min_(kInf),
      lifetime_max_(-kInf) {}

void DecayingHdrHistogram::decay_to(std::int64_t now_ms) {
  const std::int64_t tick = std::max<std::int64_t>(now_ms, 0) / tick_ms_;
  if (!started_) {
    last_tick_ = tick;
    started_ = true;
    return;
  }
  if (tick <= last_tick_) return;
  const double ticks = static_cast<double>(tick - last_tick_);
  const double factor =
      std::exp2(-ticks / static_cast<double>(kDecayTicksPerHalfLife));
  weight_ *= factor;
  if (weight_ < kNegligibleWeight) {
    std::fill(buckets_.begin(), buckets_.end(), 0.0);
    weight_ = 0.0;
  } else {
    for (double& b : buckets_) b *= factor;
  }
  last_tick_ = tick;
}

void DecayingHdrHistogram::observe(double sample, std::int64_t now_ms) {
  decay_to(now_ms);
  buckets_[HdrHistogram::bucket_index(sample)] += 1.0;
  weight_ += 1.0;
  lifetime_min_ = std::min(lifetime_min_, sample);
  lifetime_max_ = std::max(lifetime_max_, sample);
}

void DecayingHdrHistogram::advance(std::int64_t now_ms) { decay_to(now_ms); }

double DecayingHdrHistogram::weight(std::int64_t now_ms) {
  decay_to(now_ms);
  return weight_;
}

double DecayingHdrHistogram::quantile(double q, std::int64_t now_ms) {
  decay_to(now_ms);
  return weighted_quantile(buckets_, q, weight_, lifetime_min_, lifetime_max_);
}

// --- WindowedHistogram ------------------------------------------------------

WindowedHistogram::WindowedHistogram(const WindowOptions& options)
    : options_(options), sliding_(options), decaying_(options) {}

void WindowedHistogram::observe(double sample, std::int64_t now_ms) {
  const std::lock_guard<std::mutex> lock(mu_);
  sliding_.observe(sample, now_ms);
  decaying_.observe(sample, now_ms);
}

WindowSnapshot WindowedHistogram::snapshot(std::int64_t now_ms) {
  const std::lock_guard<std::mutex> lock(mu_);
  WindowSnapshot snap;
  snap.count = sliding_.count(now_ms);
  if (snap.count > 0) {
    snap.sum = sliding_.sum(now_ms);
    snap.min = sliding_.min(now_ms);
    snap.max = sliding_.max(now_ms);
    snap.mean = snap.sum / static_cast<double>(snap.count);
  }
  snap.p50 = sliding_.quantile(0.50, now_ms);
  snap.p90 = sliding_.quantile(0.90, now_ms);
  snap.p99 = sliding_.quantile(0.99, now_ms);
  snap.decayed_count = decaying_.weight(now_ms);
  snap.decayed_p50 = decaying_.quantile(0.50, now_ms);
  snap.decayed_p90 = decaying_.quantile(0.90, now_ms);
  snap.decayed_p99 = decaying_.quantile(0.99, now_ms);
  return snap;
}

void WindowedHistogram::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  sliding_ = SlidingHdrHistogram(options_);
  decaying_ = DecayingHdrHistogram(options_);
}

}  // namespace nfvm::obs
