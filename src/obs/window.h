// Time-aware variants of HdrHistogram plus the registry-facing wrapper that
// backs NFVM_WINDOW_OBSERVE.
//
// Every cumulative instrument in metrics.h answers "what happened since the
// process started" - which hides a latency regression or an admission-rate
// collapse that begins in hour three of a soak run. The two classes here
// answer "what happened recently":
//
//   * SlidingHdrHistogram - a ring of HDR bucket arrays ("slots"), each
//     covering window_ms / slots of wall time. A sample lands in the slot
//     containing its timestamp; slots older than the window are zeroed as
//     time advances. A snapshot merges the live slots, so quantiles cover
//     exactly the trailing window (quantized to one slot).
//   * DecayingHdrHistogram - one bucket array of double weights, scaled by
//     2^(-elapsed / half_life) as time advances (applied lazily on tick
//     boundaries of half_life / kDecayTicksPerHalfLife so the hot path stays
//     one array add). Recent samples dominate, old ones fade smoothly - the
//     "exponentially decaying" view of the same stream.
//
// Both take the current time as an explicit argument (milliseconds on any
// caller-chosen epoch), which keeps the rotation and decay math unit-testable
// with injected clocks - no sleeps, no flakiness. WindowedHistogram bundles
// one of each behind a mutex and stamps observations with window_now_ms()
// (process-epoch steady clock); it is what Registry::windowed_histogram
// hands out and what the timeseries sampler snapshots each tick.
//
// Bucket geometry is shared with HdrHistogram (obs/hdr_histogram.h), so
// windowed quantiles inherit the <= 1/128 relative bucket-width bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/hdr_histogram.h"

namespace nfvm::obs {

/// Milliseconds since the process-wide steady-clock epoch (first use). The
/// timestamp source for NFVM_WINDOW_OBSERVE and the sampler's snapshots.
std::int64_t window_now_ms();

/// Shared configuration for the windowed variants.
struct WindowOptions {
  /// Span of the sliding window.
  std::int64_t window_ms = 10'000;
  /// Ring granularity: the window is quantized to window_ms / slots.
  std::size_t slots = 8;
  /// Half-life of the exponentially-decaying variant.
  std::int64_t half_life_ms = 60'000;
};

/// Aggregate view of the samples a windowed instrument currently holds.
/// Quantiles are NaN when the (window / decayed mass) is empty - consumers
/// must not mistake an empty window for a healthy zero-latency one, which is
/// why `count` always rides along.
struct WindowSnapshot {
  std::uint64_t count = 0;  ///< samples inside the sliding window
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;  ///< NaN when count == 0
  /// Exponentially-decayed sample mass (fractional by construction).
  double decayed_count = 0.0;
  double decayed_p50 = 0.0, decayed_p90 = 0.0, decayed_p99 = 0.0;
};

/// Ring-of-slots histogram over the trailing `window_ms`. Not thread-safe;
/// WindowedHistogram adds the lock.
class SlidingHdrHistogram {
 public:
  explicit SlidingHdrHistogram(const WindowOptions& options = {});

  /// Records `sample` at time `now_ms`. Time must not run backwards by more
  /// than one slot; stale timestamps are clamped into the current slot.
  void observe(double sample, std::int64_t now_ms);

  /// Rotates expired slots without recording. Idempotent.
  void advance(std::int64_t now_ms);

  /// Samples currently inside the window.
  std::uint64_t count(std::int64_t now_ms);
  double sum(std::int64_t now_ms);
  /// Window min/max (tight per slot set; +inf/-inf when empty like
  /// HdrHistogram).
  double min(std::int64_t now_ms);
  double max(std::int64_t now_ms);

  /// q-quantile of the samples in the window; NaN when empty. Same
  /// interpolation and error bound as HdrHistogram::quantile.
  double quantile(double q, std::int64_t now_ms);

  /// Merged {le, count} buckets of the live slots, dense up to the highest
  /// non-empty bucket (empty when no sample is in the window).
  std::vector<HistogramBucket> snapshot_buckets(std::int64_t now_ms);

  std::int64_t window_ms() const { return window_ms_; }
  std::size_t num_slots() const { return slots_.size(); }
  std::int64_t slot_ms() const { return slot_ms_; }

 private:
  struct Slot {
    std::vector<std::uint32_t> buckets;  // HdrHistogram geometry
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// Slot index on the absolute time axis (now_ms / slot_ms), -1 = empty.
    std::int64_t epoch = -1;

    void clear(std::int64_t new_epoch);
  };

  Slot& slot_for(std::int64_t now_ms);

  std::int64_t window_ms_;
  std::int64_t slot_ms_;
  std::vector<Slot> slots_;
};

/// One HDR bucket array of double weights, decayed by 2^(-elapsed /
/// half_life). Decay is applied lazily whenever time crosses a tick boundary
/// (half_life / kDecayTicksPerHalfLife), so observe() between ticks is one
/// add. Not thread-safe; WindowedHistogram adds the lock.
class DecayingHdrHistogram {
 public:
  /// Decay quantization: ticks per half-life. Crossing one tick multiplies
  /// every weight by 2^(-1/kDecayTicksPerHalfLife); after a full half-life
  /// the factor composes to exactly 1/2 (up to floating rounding).
  static constexpr std::int64_t kDecayTicksPerHalfLife = 8;

  explicit DecayingHdrHistogram(const WindowOptions& options = {});

  void observe(double sample, std::int64_t now_ms);
  /// Applies any pending decay without recording.
  void advance(std::int64_t now_ms);

  /// Total decayed weight (fractional). Weights below kNegligibleWeight are
  /// flushed to zero so an idle instrument eventually reads exactly empty.
  double weight(std::int64_t now_ms);

  /// q-quantile of the decayed distribution; NaN when the mass is ~zero.
  double quantile(double q, std::int64_t now_ms);

  std::int64_t half_life_ms() const { return half_life_ms_; }

 private:
  static constexpr double kNegligibleWeight = 1e-9;

  void decay_to(std::int64_t now_ms);

  std::int64_t half_life_ms_;
  std::int64_t tick_ms_;
  std::int64_t last_tick_ = 0;  // now_ms / tick_ms_ of the last decay
  bool started_ = false;
  std::vector<double> buckets_;  // HdrHistogram geometry
  double weight_ = 0.0;
  /// Lifetime (undecayed) extremes - used only to tighten quantile edges.
  double lifetime_min_;
  double lifetime_max_;
};

/// The registry-facing windowed instrument: one sliding window plus one
/// decaying view of the same sample stream, behind a mutex (recorded from
/// the simulation thread, snapshotted from the sampler thread). Created via
/// Registry::windowed_histogram / NFVM_WINDOW_OBSERVE; never written to
/// metrics.json (cumulative artifact) - it is emitted per tick in the
/// "windows" section of the nfvm-timeseries-v2 stream.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(const WindowOptions& options = {});

  void observe(double sample, std::int64_t now_ms);
  WindowSnapshot snapshot(std::int64_t now_ms);
  /// Zeroes both views (Registry::reset_values).
  void reset();

  const WindowOptions& options() const { return options_; }

 private:
  WindowOptions options_;
  std::mutex mu_;
  SlidingHdrHistogram sliding_;
  DecayingHdrHistogram decaying_;
};

}  // namespace nfvm::obs
