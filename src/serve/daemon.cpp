#include "serve/daemon.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <iostream>
#include <mutex>
#include <thread>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace nfvm::serve {

namespace {

/// A depart target no trace generator ever issues (ids are small and
/// sequential) - the unknown_depart fault uses it to hit the unknown-id path.
constexpr std::uint64_t kNeverIssuedId = 0xdeadbeefULL;

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

bool IstreamLineSource::next(std::string& line) {
  if (!std::getline(in_, line)) return false;
  strip_cr(line);
  return true;
}

bool FdLineSource::next(std::string& line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      strip_cr(line);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);
      buffer_.clear();
      strip_cr(line);
      return true;
    }
    if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Daemon::Daemon(core::OnlineAlgorithm& algorithm,
               std::map<std::string, std::string> config, DaemonOptions options)
    : algorithm_(&algorithm),
      config_(std::move(config)),
      options_(std::move(options)) {}

void Daemon::restore(const Snapshot& snapshot) {
  if (snapshot.algorithm != algorithm_->name()) {
    throw std::runtime_error("snapshot restore: snapshot was taken with "
                             "algorithm \"" + snapshot.algorithm +
                             "\", daemon runs \"" +
                             std::string(algorithm_->name()) + "\"");
  }
  if (snapshot.config != config_) {
    std::string detail;
    for (const auto& [key, value] : snapshot.config) {
      const auto it = config_.find(key);
      if (it == config_.end() || it->second != value) {
        detail = "\"" + key + "\" was \"" + value + "\", now \"" +
                 (it == config_.end() ? std::string("<unset>") : it->second) +
                 "\"";
        break;
      }
    }
    if (detail.empty()) detail = "current run sets extra keys";
    throw std::runtime_error(
        "snapshot restore: configuration mismatch - the snapshot cannot be "
        "replayed against this run (" + detail + ")");
  }
  restore_into(*algorithm_, snapshot);
  for (const ActiveEntry& entry : snapshot.active) {
    active_[entry.id] = entry.footprint;
  }
  rejected_pending_.insert(snapshot.rejected_pending.begin(),
                           snapshot.rejected_pending.end());
  counters_ = snapshot.counters;
  lines_consumed_ = snapshot.lines_consumed;
  bytes_consumed_ = snapshot.bytes_consumed;
  replies_emitted_ = snapshot.replies_emitted;
  skip_lines_ = snapshot.lines_consumed;
  snapshot_seq_ = snapshot.seq;
}

Snapshot Daemon::make_snapshot(std::uint64_t lines, std::uint64_t bytes,
                               std::uint64_t replies) const {
  Snapshot snapshot;
  snapshot.seq = snapshot_seq_ + 1;
  snapshot.algorithm = std::string(algorithm_->name());
  snapshot.config = config_;
  snapshot.lines_consumed = lines;
  snapshot.bytes_consumed = bytes;
  snapshot.replies_emitted = replies;
  snapshot.num_admitted = algorithm_->num_admitted();
  snapshot.num_rejected = algorithm_->num_rejected();
  snapshot.residuals = algorithm_->resources().export_residuals();
  snapshot.counters = counters_;
  snapshot.active.reserve(active_.size());
  for (const auto& [id, footprint] : active_) {
    snapshot.active.push_back(ActiveEntry{id, footprint});
  }
  snapshot.rejected_pending.assign(rejected_pending_.begin(),
                                   rejected_pending_.end());
  return snapshot;
}

DaemonStats Daemon::run(LineSource& source, std::ostream& out) {
  util::Stopwatch wall;
  using Clock = std::chrono::steady_clock;
  struct Item {
    std::string line;
    Clock::time_point enqueued;
  };
  std::deque<Item> queue;
  std::mutex mutex;
  std::condition_variable queue_room;
  std::condition_variable queue_ready;
  bool input_done = false;
  std::atomic<bool> halt{false};  // drain command: stop the reader too

  std::thread reader([&] {
    std::string line;
    while (!halt.load(std::memory_order_relaxed) && !stopping() &&
           source.next(line)) {
      std::unique_lock<std::mutex> lock(mutex);
      queue_room.wait(lock, [&] {
        return queue.size() < options_.max_inflight ||
               halt.load(std::memory_order_relaxed);
      });
      if (halt.load(std::memory_order_relaxed)) break;
      queue.push_back(Item{std::move(line), Clock::now()});
      queue_ready.notify_one();
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      input_done = true;
    }
    queue_ready.notify_one();
  });

  std::string stop_cause = "eof";
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex);
      // wait_for, not wait: the stop flag is flipped from a signal handler,
      // which cannot notify a condition variable.
      while (queue.empty() && !input_done && !stopping()) {
        queue_ready.wait_for(lock, std::chrono::milliseconds(50));
      }
      if (stopping()) {
        // Graceful drain: queued lines are dropped unanswered; the snapshot
        // cursor only ever covers replied lines, so nothing is lost.
        stop_cause = "signal";
        break;
      }
      if (queue.empty()) break;  // input_done
      item = std::move(queue.front());
      queue.pop_front();
      queue_room.notify_one();
    }
    const double queued_us =
        std::chrono::duration<double, std::micro>(Clock::now() - item.enqueued)
            .count();
    process_line(std::move(item.line), queued_us, out);
    if (drain_requested_) {
      stop_cause = "drain";
      break;
    }
  }
  halt.store(true, std::memory_order_relaxed);
  queue_room.notify_all();
  reader.join();

  if (!options_.snapshot_path.empty()) {
    try {
      write_snapshot(options_.snapshot_path,
                     make_snapshot(lines_consumed_, bytes_consumed_,
                                   replies_emitted_));
      ++snapshot_seq_;
      ++counters_.snapshots_written;
    } catch (const std::exception& e) {
      std::cerr << "nfvm-serve: final snapshot failed: " << e.what() << "\n";
    }
  }

  DaemonStats stats;
  stats.counters = counters_;
  stats.lines_consumed = lines_consumed_;
  stats.replies_emitted = replies_emitted_;
  stats.active = active_.size();
  stats.stop_cause = stop_cause;
  stats.wall_seconds = wall.elapsed_seconds();
  if (latency_.count() > 0) {
    stats.p50_us = latency_.quantile(0.50);
    stats.p90_us = latency_.quantile(0.90);
    stats.p99_us = latency_.quantile(0.99);
  }
  return stats;
}

void Daemon::write_reply(std::ostream& out, std::string_view reply) {
  // Flush per line: a kill -9 must never take back a reply the client saw,
  // and the crash gate counts on replies_emitted >= any snapshot's cursor.
  out << reply << '\n' << std::flush;
  ++replies_emitted_;
}

void Daemon::process_line(std::string line, double queued_us,
                          std::ostream& out) {
  if (skip_lines_ > 0) {
    // Consumed before the restore point - the cursor already covers it.
    --skip_lines_;
    return;
  }
  const LinePosition position{bytes_consumed_, lines_consumed_ + 1};
  const std::size_t raw_size = line.size();

  if (const std::vector<Fault>* faults =
          options_.fault_plan.at(position.number)) {
    for (const Fault& fault : *faults) {
      switch (fault.kind) {
        case FaultKind::kStallMs:
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              fault.value));
          break;
        case FaultKind::kGarbage:
          line = options_.fault_plan.garbage_line(position.number);
          break;
        case FaultKind::kDupDepart:
          line = depart_line(last_released_);
          break;
        case FaultKind::kUnknownDepart:
          line = depart_line(kNeverIssuedId);
          break;
        case FaultKind::kKill:
          // kill -9 stand-in: no flush, no cleanup, no snapshot.
          ::_exit(137);
      }
    }
  }

  util::Stopwatch watch;
  ParseFailure failure;
  const std::optional<Command> command =
      parse_command(line, position, algorithm_->topology().graph, failure);
  if (!command.has_value()) {
    if (failure.malformed_json) {
      ++counters_.parse_errors;
      NFVM_COUNTER_INC("serve.parse_errors");
    } else {
      ++counters_.invalid_requests;
      NFVM_COUNTER_INC("serve.invalid_requests");
    }
    write_reply(out, failure.reply);
  } else {
    switch (command->kind) {
      case CommandKind::kArrive:
        if (options_.request_deadline_ms > 0.0 &&
            queued_us > options_.request_deadline_ms * 1000.0) {
          rejected_pending_.insert(command->request.id);
          ++counters_.overload_rejects;
          NFVM_COUNTER_INC("serve.overload_rejects");
          write_reply(out, shed_reply(command->request.id));
        } else {
          handle_arrive(command->request, position, out);
        }
        break;
      case CommandKind::kDepart:
        handle_depart(command->request.id, position, out);
        break;
      case CommandKind::kSnapshot:
        handle_snapshot(position, out);
        break;
      case CommandKind::kStats:
        emit_stats(out);
        break;
      case CommandKind::kDrain: {
        obs::JsonLine reply;
        reply.field("ok", true).field("cmd", "drain").field(
            "lines", lines_consumed_ + 1);
        write_reply(out, reply.str());
        drain_requested_ = true;
        break;
      }
    }
  }

  ++lines_consumed_;
  bytes_consumed_ += raw_size + 1;
  ++counters_.lines;
  NFVM_COUNTER_INC("serve.lines");
  const double us = queued_us + watch.elapsed_seconds() * 1e6;
  latency_.observe(us);
  NFVM_HDR_OBSERVE("serve.request_us", us);
  NFVM_GAUGE_SET("serve.active", static_cast<double>(active_.size()));

  if (options_.snapshot_every != 0 && !options_.snapshot_path.empty() &&
      lines_consumed_ % options_.snapshot_every == 0) {
    // The reply for this line is already flushed, so the cursor written here
    // never runs ahead of the visible output - the invariant the crash gate
    // depends on.
    try {
      write_snapshot(options_.snapshot_path,
                     make_snapshot(lines_consumed_, bytes_consumed_,
                                   replies_emitted_));
      ++snapshot_seq_;
      ++counters_.snapshots_written;
    } catch (const std::exception& e) {
      std::cerr << "nfvm-serve: periodic snapshot failed: " << e.what()
                << "\n";
    }
  }
}

void Daemon::handle_arrive(const nfv::Request& request,
                           const LinePosition& position, std::ostream& out) {
  const std::uint64_t id = request.id;
  if (active_.count(id) != 0 || rejected_pending_.count(id) != 0) {
    ++counters_.invalid_requests;
    NFVM_COUNTER_INC("serve.invalid_requests");
    write_reply(out, error_reply("invalid",
                                 "duplicate arrive id " + std::to_string(id),
                                 position));
    return;
  }
  core::AdmissionDecision decision;
  try {
    decision = algorithm_->process(request);
  } catch (const std::exception& e) {
    // parse_command pre-validates, so this is a belt-and-braces guard: the
    // daemon answers and lives on rather than dying on an engine surprise.
    ++counters_.invalid_requests;
    NFVM_COUNTER_INC("serve.invalid_requests");
    write_reply(out, error_reply("invalid", e.what(), position));
    return;
  }
  if (decision.admitted) {
    active_[id] = decision.footprint;
    ++counters_.admitted;
    NFVM_COUNTER_INC("serve.admitted");
  } else {
    rejected_pending_.insert(id);
    ++counters_.rejected;
    NFVM_COUNTER_INC("serve.rejected");
  }
  write_reply(out, arrive_reply(id, decision, active_.size()));
}

void Daemon::handle_depart(std::uint64_t id, const LinePosition& position,
                           std::ostream& out) {
  const auto it = active_.find(id);
  if (it != active_.end()) {
    algorithm_->release(it->second);
    active_.erase(it);
    last_released_ = id;
    ++counters_.departed;
    NFVM_COUNTER_INC("serve.departed");
    write_reply(out, depart_reply(id, /*released=*/true, active_.size()));
    return;
  }
  if (rejected_pending_.erase(id) != 0) {
    // The trace emits a depart for every arrival; for a rejected (or shed)
    // one it is a no-op acknowledgement, not an error.
    write_reply(out, depart_reply(id, /*released=*/false, active_.size()));
    return;
  }
  ++counters_.invalid_requests;
  NFVM_COUNTER_INC("serve.invalid_requests");
  write_reply(out,
              error_reply("invalid",
                          "depart for unknown or already-departed id " +
                              std::to_string(id),
                          position));
}

void Daemon::handle_snapshot(const LinePosition& position, std::ostream& out) {
  if (options_.snapshot_path.empty()) {
    ++counters_.invalid_requests;
    NFVM_COUNTER_INC("serve.invalid_requests");
    write_reply(out, error_reply("invalid",
                                 "snapshot path not configured (--snapshot)",
                                 position));
    return;
  }
  // Cursor excludes this very line: a restore re-executes the snapshot
  // command and re-emits its reply, which keeps the concatenated reply
  // stream intact wherever a kill lands relative to the rename.
  Snapshot snapshot = make_snapshot(position.number - 1, position.offset,
                                    replies_emitted_);
  try {
    write_snapshot(options_.snapshot_path, snapshot);
  } catch (const std::exception& e) {
    write_reply(out, error_reply("internal", e.what(), position));
    return;
  }
  ++snapshot_seq_;
  ++counters_.snapshots_written;
  write_reply(out, snapshot_reply(snapshot.seq, options_.snapshot_path,
                                  active_.size()));
}

void Daemon::emit_stats(std::ostream& out) {
  obs::JsonLine reply;
  reply.field("ok", true)
      .field("cmd", "stats")
      .field("lines", counters_.lines + 1)
      .field("admitted", counters_.admitted)
      .field("rejected", counters_.rejected)
      .field("overload_rejects", counters_.overload_rejects)
      .field("departed", counters_.departed)
      .field("parse_errors", counters_.parse_errors)
      .field("invalid_requests", counters_.invalid_requests)
      .field("snapshots_written", counters_.snapshots_written)
      .field("active", active_.size())
      .field("p50_us", latency_.count() > 0 ? latency_.quantile(0.50) : 0.0)
      .field("p90_us", latency_.count() > 0 ? latency_.quantile(0.90) : 0.0)
      .field("p99_us", latency_.count() > 0 ? latency_.quantile(0.99) : 0.0);
  write_reply(out, reply.str());
}

}  // namespace nfvm::serve
