// The nfvm-serve admission daemon: a long-lived loop around
// core::OnlineAlgorithm that speaks the serve/protocol.h JSONL protocol.
//
// Architecture: a reader thread pulls lines from a LineSource into a bounded
// inflight queue (capacity --max-inflight; a full queue blocks the reader,
// giving natural backpressure on pipes and sockets). The main loop pops one
// line at a time, applies any scheduled faults, parses, dispatches, and
// writes exactly one reply line - flushed immediately, so a kill -9 can
// never lose output the client already saw.
//
// Robustness contract:
//   * every input line gets exactly one reply, malformed ones a structured
//     {"ok":false,...} with the line number and byte offset;
//   * arrive lines that waited in the queue longer than --request-deadline-ms
//     are shed unevaluated (reject_cause "overload") - the engine's time
//     goes to requests that still have a caller;
//   * a stop flag (wired to SIGTERM/SIGINT by the CLI) drains gracefully:
//     the in-flight line finishes, queued lines are dropped unanswered, a
//     final snapshot and summary are written, run() returns;
//   * all engine interaction is wrapped so hostile input can never throw out
//     of the loop.
//
// Crash recovery: snapshots (serve/snapshot.h) record the input cursor, the
// active-request table, and the counters. restore() replays that state into
// a fresh engine and arranges for run() to skip the consumed prefix of the
// trace, making `head -n lines_consumed pre-crash + post-restore` byte-equal
// to an uninterrupted run (CI gate: tools/serve_crash_smoke.sh).
#pragma once

#include <atomic>
#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <string>

#include "core/online.h"
#include "obs/hdr_histogram.h"
#include "serve/fault_plan.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"

namespace nfvm::serve {

/// Pull-based source of input lines (newline already stripped).
class LineSource {
 public:
  virtual ~LineSource() = default;
  /// Blocks for the next line; false at end of input or after a stop
  /// request. `line` is overwritten on success.
  virtual bool next(std::string& line) = 0;
};

/// Lines from a std::istream - tests and non-interactive piping.
class IstreamLineSource final : public LineSource {
 public:
  explicit IstreamLineSource(std::istream& in) : in_(in) {}
  bool next(std::string& line) override;

 private:
  std::istream& in_;
};

/// Lines from a file descriptor (stdin, an accepted Unix-socket connection)
/// via poll(2), so a pending stop flag is honoured within ~200 ms even when
/// the peer goes silent, and EINTR from signal delivery is harmless.
class FdLineSource final : public LineSource {
 public:
  /// `stop` may be null; when set and true, next() returns false at the
  /// next poll wakeup. Does not take ownership of `fd`.
  FdLineSource(int fd, const std::atomic<bool>* stop) : fd_(fd), stop_(stop) {}
  bool next(std::string& line) override;

 private:
  int fd_;
  const std::atomic<bool>* stop_;
  std::string buffer_;
  bool eof_ = false;
};

struct DaemonOptions {
  /// Bounded inflight queue capacity; the reader blocks when full.
  std::size_t max_inflight = 1024;
  /// Shed arrive commands older than this (queue wait) unevaluated;
  /// 0 disables. Keep 0 for runs that must be byte-reproducible.
  double request_deadline_ms = 0.0;
  /// Snapshot target; empty disables snapshots (a {"cmd":"snapshot"} line
  /// then gets a structured error).
  std::string snapshot_path;
  /// Also snapshot automatically every N processed lines; 0 disables.
  std::size_t snapshot_every = 0;
  FaultPlan fault_plan;
  /// Graceful-drain flag, typically flipped by a signal handler.
  const std::atomic<bool>* stop = nullptr;
};

/// End-of-run summary (the CLI prints it to stderr as JSON - stdout carries
/// only per-line replies, which is what keeps the crash gate a plain diff).
struct DaemonStats {
  ServeCounters counters;
  std::uint64_t lines_consumed = 0;
  std::uint64_t replies_emitted = 0;
  std::size_t active = 0;
  /// "eof", "drain", or "signal".
  std::string stop_cause = "eof";
  double wall_seconds = 0.0;
  /// Request handling latency (queue wait + decision), microseconds;
  /// 0 when no request was timed.
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
};

class Daemon {
 public:
  /// `config` is the flat run-configuration echo stamped into snapshots and
  /// compared verbatim on restore. The algorithm and options.stop must
  /// outlive the daemon.
  Daemon(core::OnlineAlgorithm& algorithm,
         std::map<std::string, std::string> config, DaemonOptions options);

  /// Reinstates a loaded snapshot: verifies the config echo and algorithm
  /// name, replays the active footprints into the engine, and arranges for
  /// run() to skip the already-consumed input prefix. Must be called before
  /// run(), at most once. Throws std::runtime_error on any mismatch.
  void restore(const Snapshot& snapshot);

  /// Serves `source` until end of input, a drain command, or the stop flag;
  /// replies go to `out`. May be called repeatedly (socket mode runs it once
  /// per accepted connection); engine state, counters, and the input cursor
  /// persist across calls.
  DaemonStats run(LineSource& source, std::ostream& out);

  /// Current state as a snapshot with the given input cursor.
  Snapshot make_snapshot(std::uint64_t lines, std::uint64_t bytes,
                         std::uint64_t replies) const;

 private:
  void process_line(std::string line, double queued_us, std::ostream& out);
  void handle_arrive(const nfv::Request& request, const LinePosition& position,
                     std::ostream& out);
  void handle_depart(std::uint64_t id, const LinePosition& position,
                     std::ostream& out);
  void handle_snapshot(const LinePosition& position, std::ostream& out);
  void emit_stats(std::ostream& out);
  void write_reply(std::ostream& out, std::string_view reply);
  bool stopping() const noexcept {
    return options_.stop != nullptr &&
           options_.stop->load(std::memory_order_relaxed);
  }

  core::OnlineAlgorithm* algorithm_;
  std::map<std::string, std::string> config_;
  DaemonOptions options_;

  // Input cursor. Absolute over the whole trace: restore() seeds these from
  // the snapshot and skip_lines_ discards the consumed prefix, so line
  // numbers, byte offsets, and fault-plan triggers stay aligned with the
  // original file across a crash/restore boundary.
  std::uint64_t lines_consumed_ = 0;
  std::uint64_t bytes_consumed_ = 0;
  std::uint64_t replies_emitted_ = 0;
  std::uint64_t skip_lines_ = 0;

  ServeCounters counters_;
  std::map<std::uint64_t, nfv::Footprint> active_;
  std::set<std::uint64_t> rejected_pending_;
  std::uint64_t snapshot_seq_ = 0;
  std::uint64_t last_released_ = 0;  ///< dup_depart fault target
  bool drain_requested_ = false;
  obs::HdrHistogram latency_;
};

}  // namespace nfvm::serve
