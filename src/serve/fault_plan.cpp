#include "serve/fault_plan.h"

#include <stdexcept>

#include "obs/json.h"

namespace nfvm::serve {

namespace {

FaultKind kind_from_string(const std::string& name) {
  if (name == "stall_ms") return FaultKind::kStallMs;
  if (name == "garbage") return FaultKind::kGarbage;
  if (name == "dup_depart") return FaultKind::kDupDepart;
  if (name == "unknown_depart") return FaultKind::kUnknownDepart;
  if (name == "kill") return FaultKind::kKill;
  throw std::invalid_argument("fault plan: unknown fault kind \"" + name +
                              "\"");
}

std::uint64_t plan_u64(const obs::JsonValue& v, const char* what) {
  if (!v.is_number() || v.number < 0 ||
      v.number != static_cast<double>(static_cast<std::uint64_t>(v.number))) {
    throw std::invalid_argument(std::string("fault plan: ") + what +
                                " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v.number);
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view text) {
  obs::JsonValue doc;
  try {
    doc = obs::parse_json(text);
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("fault plan: ") + e.what());
  }
  if (!doc.is_object() || !doc.has("schema") ||
      doc.at("schema").string != kFaultPlanSchema) {
    throw std::invalid_argument("fault plan: not an \"" +
                                std::string(kFaultPlanSchema) + "\" document");
  }
  FaultPlan plan;
  if (doc.has("seed")) plan.seed_ = plan_u64(doc.at("seed"), "seed");
  if (!doc.has("faults") || !doc.at("faults").is_array()) {
    throw std::invalid_argument("fault plan: \"faults\" must be an array");
  }
  for (const obs::JsonValue& entry : doc.at("faults").array) {
    if (!entry.is_object() || !entry.has("line") || !entry.has("kind")) {
      throw std::invalid_argument(
          "fault plan: each fault needs \"line\" and \"kind\"");
    }
    const std::uint64_t line = plan_u64(entry.at("line"), "line");
    if (line == 0) {
      throw std::invalid_argument("fault plan: line numbers are 1-based");
    }
    if (!entry.at("kind").is_string()) {
      throw std::invalid_argument("fault plan: \"kind\" must be a string");
    }
    Fault fault;
    fault.kind = kind_from_string(entry.at("kind").string);
    if (entry.has("value")) {
      const obs::JsonValue& value = entry.at("value");
      if (!value.is_number() || value.number < 0) {
        throw std::invalid_argument(
            "fault plan: \"value\" must be a non-negative number");
      }
      fault.value = value.number;
    }
    plan.faults_[line].push_back(fault);
    ++plan.total_;
  }
  return plan;
}

const std::vector<Fault>* FaultPlan::at(std::uint64_t line) const {
  const auto it = faults_.find(line);
  return it == faults_.end() ? nullptr : &it->second;
}

std::string FaultPlan::garbage_line(std::uint64_t line) const {
  // splitmix64 over (seed, line): stable junk that no JSON parser accepts
  // (it always starts with '}') yet differs per line so dedup caches in any
  // layer cannot mask the fault.
  std::uint64_t x = seed_ ^ (line * 0x9e3779b97f4a7c15ULL);
  std::string out = "}";
  for (int i = 0; i < 24; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    out += static_cast<char>('!' + (z % 94));  // printable ASCII, no newline
  }
  return out;
}

}  // namespace nfvm::serve
