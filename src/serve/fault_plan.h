// Deterministic fault injection for the serve daemon ("nfvm-fault-plan-v1").
//
// The recovery paths of a robust daemon - parse errors, unknown-id departs,
// overload sheds, kill -9 mid-stream - must be first-class tested code, not
// dead branches that only a production incident ever executes. A FaultPlan
// makes them executable on demand: `nfvm-serve --fault-plan plan.json`
// injects the listed faults at exact input-line numbers, so a fixed plan +
// fixed trace reproduces the same failure sequence every run.
//
// Plan document:
//   {"schema": "nfvm-fault-plan-v1",
//    "seed": 42,
//    "faults": [
//      {"line": 100, "kind": "stall_ms", "value": 50},
//      {"line": 120, "kind": "garbage"},
//      {"line": 130, "kind": "dup_depart"},
//      {"line": 140, "kind": "unknown_depart"},
//      {"line": 200, "kind": "kill"}]}
//
// Kinds (applied when the daemon is about to process input line `line`):
//   stall_ms        sleep `value` ms first - backs up the inflight queue so
//                   deadline-based overload shedding engages
//   garbage         replace the line's bytes with deterministic junk drawn
//                   from `seed` + the line number - exercises the parse-error
//                   reply path
//   dup_depart      replace the line with a depart for the most recently
//                   released id (id 0 when none) - duplicate-depart error path
//   unknown_depart  replace the line with a depart for an id that was never
//                   issued - unknown-id error path
//   kill            _exit(137) without any cleanup, the faithful stand-in
//                   for kill -9 - exercises snapshot atomicity + restore
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nfvm::serve {

inline constexpr std::string_view kFaultPlanSchema = "nfvm-fault-plan-v1";

enum class FaultKind : std::uint8_t {
  kStallMs,
  kGarbage,
  kDupDepart,
  kUnknownDepart,
  kKill,
};

struct Fault {
  FaultKind kind = FaultKind::kGarbage;
  /// Kind-specific parameter (stall_ms: milliseconds).
  double value = 0.0;
};

class FaultPlan {
 public:
  /// An empty plan injects nothing.
  FaultPlan() = default;

  /// Parses a plan document. Throws std::invalid_argument describing the
  /// first violation (unknown kind, missing fields, bad schema).
  static FaultPlan parse(std::string_view text);

  bool empty() const noexcept { return faults_.size() == 0; }
  std::size_t num_faults() const noexcept { return total_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Faults scheduled for input line `line` (1-based), in plan order;
  /// nullptr when none.
  const std::vector<Fault>* at(std::uint64_t line) const;

  /// The deterministic junk `garbage` substitutes for line `line`: derived
  /// from (seed, line) only, never valid JSON.
  std::string garbage_line(std::uint64_t line) const;

 private:
  std::map<std::uint64_t, std::vector<Fault>> faults_;
  std::size_t total_ = 0;
  std::uint64_t seed_ = 1;
};

}  // namespace nfvm::serve
