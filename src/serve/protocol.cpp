#include "serve/protocol.h"

#include <exception>

#include "obs/event_log.h"
#include "obs/json.h"

namespace nfvm::serve {

namespace {

std::optional<nfv::NetworkFunction> nf_from_string(std::string_view name) {
  for (nfv::NetworkFunction nf : nfv::kAllNetworkFunctions) {
    if (nfv::to_string(nf) == name) return nf;
  }
  return std::nullopt;
}

/// Non-negative integral JSON number -> u64; throws std::runtime_error on a
/// wrong type, a fraction, or a negative value.
std::uint64_t as_u64(const obs::JsonValue& v, const char* what) {
  if (!v.is_number() || v.number < 0 ||
      v.number != static_cast<double>(static_cast<std::uint64_t>(v.number))) {
    throw std::runtime_error(std::string(what) +
                             " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v.number);
}

Command parse_arrive(const obs::JsonValue& doc) {
  Command cmd;
  cmd.kind = CommandKind::kArrive;
  nfv::Request& r = cmd.request;
  r.id = as_u64(doc.at("id"), "id");
  r.source = static_cast<graph::VertexId>(as_u64(doc.at("source"), "source"));
  const obs::JsonValue& dests = doc.at("destinations");
  if (!dests.is_array() || dests.array.empty()) {
    throw std::runtime_error("destinations must be a non-empty array");
  }
  r.destinations.reserve(dests.array.size());
  for (const obs::JsonValue& d : dests.array) {
    r.destinations.push_back(
        static_cast<graph::VertexId>(as_u64(d, "destination")));
  }
  const obs::JsonValue& bw = doc.at("bandwidth_mbps");
  if (!bw.is_number()) throw std::runtime_error("bandwidth_mbps must be a number");
  r.bandwidth_mbps = bw.number;
  const obs::JsonValue& chain = doc.at("chain");
  if (!chain.is_array() || chain.array.empty()) {
    throw std::runtime_error("chain must be a non-empty array of NF names");
  }
  std::vector<nfv::NetworkFunction> functions;
  functions.reserve(chain.array.size());
  for (const obs::JsonValue& nf : chain.array) {
    if (!nf.is_string()) throw std::runtime_error("chain entries must be strings");
    const auto parsed = nf_from_string(nf.string);
    if (!parsed.has_value()) {
      throw std::runtime_error("unknown network function \"" + nf.string + "\"");
    }
    functions.push_back(*parsed);
  }
  r.chain = nfv::ServiceChain(std::move(functions));
  if (doc.has("max_delay_ms")) {
    const obs::JsonValue& delay = doc.at("max_delay_ms");
    if (!delay.is_number() || delay.number < 0) {
      throw std::runtime_error("max_delay_ms must be a non-negative number");
    }
    r.max_delay_ms = delay.number;
  }
  return cmd;
}

}  // namespace

std::optional<Command> parse_command(std::string_view line,
                                     const LinePosition& position,
                                     const graph::Graph& graph,
                                     ParseFailure& failure) {
  obs::JsonValue doc;
  try {
    doc = obs::parse_json(line, position.offset);
  } catch (const std::exception& e) {
    failure.reply = serve::error_reply("parse", e.what(), position);
    failure.malformed_json = true;
    return std::nullopt;
  }
  try {
    if (!doc.is_object()) throw std::runtime_error("command is not a JSON object");
    const obs::JsonValue& cmd = doc.at("cmd");
    if (!cmd.is_string()) throw std::runtime_error("cmd must be a string");
    if (cmd.string == "arrive") {
      Command command = parse_arrive(doc);
      // Full graph-level validation up front: process() must never throw on
      // daemon input, however hostile.
      nfv::validate_request(command.request, graph);
      return command;
    }
    if (cmd.string == "depart") {
      Command command;
      command.kind = CommandKind::kDepart;
      command.request.id = as_u64(doc.at("id"), "id");
      return command;
    }
    if (cmd.string == "snapshot") return Command{CommandKind::kSnapshot, {}};
    if (cmd.string == "stats") return Command{CommandKind::kStats, {}};
    if (cmd.string == "drain") return Command{CommandKind::kDrain, {}};
    throw std::runtime_error("unknown cmd \"" + cmd.string + "\"");
  } catch (const std::exception& e) {
    failure.reply = serve::error_reply("invalid", e.what(), position);
    failure.malformed_json = false;
    return std::nullopt;
  }
}

std::string arrive_reply(std::uint64_t id,
                         const core::AdmissionDecision& decision,
                         std::size_t active) {
  obs::JsonLine line;
  line.field("ok", true).field("cmd", "arrive").field("id", id).field(
      "admitted", decision.admitted);
  if (decision.admitted) {
    line.field("cost", decision.tree.cost)
        .field("servers", decision.tree.servers.size());
  } else {
    line.field("reject_cause", core::to_string(decision.reject_cause))
        .field("reject_reason", decision.reject_reason);
  }
  line.field("active", active);
  return line.str();
}

std::string shed_reply(std::uint64_t id) {
  obs::JsonLine line;
  line.field("ok", true)
      .field("cmd", "arrive")
      .field("id", id)
      .field("admitted", false)
      .field("reject_cause", "overload")
      .field("shed", true);
  return line.str();
}

std::string depart_reply(std::uint64_t id, bool released, std::size_t active) {
  obs::JsonLine line;
  line.field("ok", true)
      .field("cmd", "depart")
      .field("id", id)
      .field("released", released)
      .field("active", active);
  return line.str();
}

std::string snapshot_reply(std::uint64_t seq, std::string_view path,
                           std::size_t active) {
  obs::JsonLine line;
  line.field("ok", true)
      .field("cmd", "snapshot")
      .field("seq", seq)
      .field("path", path)
      .field("active", active);
  return line.str();
}

std::string error_reply(std::string_view code, std::string_view detail,
                        const LinePosition& position) {
  obs::JsonLine line;
  line.field("ok", false)
      .field("error", code)
      .field("line", position.number)
      .field("offset", position.offset)
      .field("detail", detail);
  return line.str();
}

std::string arrive_line(const nfv::Request& request) {
  obs::JsonLine line;
  line.field("cmd", "arrive")
      .field("id", static_cast<std::uint64_t>(request.id))
      .field("source", static_cast<std::uint64_t>(request.source));
  std::string dests;
  for (graph::VertexId d : request.destinations) {
    if (!dests.empty()) dests += ',';
    dests += std::to_string(d);
  }
  std::string chain;
  for (nfv::NetworkFunction nf : request.chain.functions()) {
    if (!chain.empty()) chain += ',';
    chain += '"';
    chain += nfv::to_string(nf);
    chain += '"';
  }
  // JsonLine has no array support; splice the two arrays as a raw tail.
  std::string out = "{" + line.body() + ",\"destinations\":[" + dests + "]";
  out += ",\"bandwidth_mbps\":" + obs::json_number(request.bandwidth_mbps);
  out += ",\"chain\":[" + chain + "]";
  if (request.max_delay_ms > 0) {
    out += ",\"max_delay_ms\":" + obs::json_number(request.max_delay_ms);
  }
  out += "}";
  return out;
}

std::string depart_line(std::uint64_t id) {
  obs::JsonLine line;
  line.field("cmd", "depart").field("id", id);
  return line.str();
}

}  // namespace nfvm::serve
