// JSONL wire protocol for the nfvm-serve admission daemon.
//
// The daemon reads one command object per line (stdin or a Unix socket) and
// answers every line - including malformed ones - with exactly one reply
// line. That one-reply-per-line invariant is what makes the crash-recovery
// gate a plain `head -n lines_consumed | diff`: a snapshot taken after N
// consumed lines covers exactly the first N reply lines.
//
// Command grammar (see docs/serving.md for the full contract):
//   {"cmd":"arrive","id":1,"source":4,"destinations":[7,9],
//    "bandwidth_mbps":120.5,"chain":["NAT","Firewall"],"max_delay_ms":0}
//   {"cmd":"depart","id":1}
//   {"cmd":"snapshot"}          write a snapshot now (needs --snapshot)
//   {"cmd":"stats"}             counters + latency quantiles reply
//   {"cmd":"drain"}             graceful shutdown after the reply
//
// Replies are flat JSON objects with "ok" first. Decision replies carry only
// deterministic fields (no timings), so reply streams are byte-identical
// across thread counts, NFVM_OBS settings, and crash/restore boundaries;
// latency lives in the stats reply and the metrics registry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/online.h"
#include "nfv/request.h"

namespace nfvm::serve {

enum class CommandKind : std::uint8_t {
  kArrive,
  kDepart,
  kSnapshot,
  kStats,
  kDrain,
};

struct Command {
  CommandKind kind = CommandKind::kArrive;
  /// Filled for kArrive (the full request) and kDepart (id only).
  nfv::Request request;
};

/// Where a command line sits in the input stream - stamped into error
/// replies so a bad line in a multi-gigabyte trace is findable.
struct LinePosition {
  std::uint64_t offset = 0;  ///< byte offset of the line start
  std::size_t number = 0;    ///< 1-based line number
};

/// Why a command line was refused: `reply` is the complete structured reply
/// line ({"ok":false,"error":"parse"|"invalid",...,"line":N,"offset":B,...});
/// `malformed_json` distinguishes unparseable bytes ("parse") from
/// well-formed JSON with bad shape or semantics ("invalid").
struct ParseFailure {
  std::string reply;
  bool malformed_json = false;
};

/// Parses one command line. On success returns the command; on malformed
/// JSON or an invalid command shape/semantics (unknown cmd, bad vertex ids,
/// non-positive bandwidth, unknown NF name, ...) returns std::nullopt and
/// fills `failure`.
/// Graph-level request validation (vertices in range, destinations distinct)
/// runs here too, so OnlineAlgorithm::process never throws on daemon input.
std::optional<Command> parse_command(std::string_view line,
                                     const LinePosition& position,
                                     const graph::Graph& graph,
                                     ParseFailure& failure);

// --- Reply builders ---------------------------------------------------------

/// Admission decision reply for an arrive command. `active` is the number of
/// in-flight admitted requests after the decision.
std::string arrive_reply(std::uint64_t id,
                         const core::AdmissionDecision& decision,
                         std::size_t active);

/// Overload-shed reply: the request was never evaluated
/// (reject_cause "overload", "shed":true).
std::string shed_reply(std::uint64_t id);

/// Depart reply. `released` is false when the id belonged to a rejected
/// (never-admitted) arrival - a no-op, not an error.
std::string depart_reply(std::uint64_t id, bool released, std::size_t active);

std::string snapshot_reply(std::uint64_t seq, std::string_view path,
                           std::size_t active);

/// Structured error reply. `code` is "parse" or "invalid".
std::string error_reply(std::string_view code, std::string_view detail,
                        const LinePosition& position);

// --- Trace emission (nfvm-serve-client) -------------------------------------

/// One arrive command line for `request` (no trailing newline).
std::string arrive_line(const nfv::Request& request);
/// One depart command line (no trailing newline).
std::string depart_line(std::uint64_t id);

}  // namespace nfvm::serve
