#include "serve/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "obs/metrics.h"

namespace nfvm::serve {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void io_fail(const std::string& path, const char* what) {
  throw std::runtime_error("snapshot " + path + ": " + what + ": " +
                           std::strerror(errno));
}

/// Writes `text` to `fd` in full, retrying short writes.
void write_all(int fd, const std::string& path, std::string_view text) {
  std::size_t done = 0;
  while (done < text.size()) {
    const ssize_t n = ::write(fd, text.data() + done, text.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail(path, "write");
    }
    done += static_cast<std::size_t>(n);
  }
}

std::uint64_t load_u64(const obs::JsonValue& doc, const std::string& key) {
  const obs::JsonValue& v = doc.at(key);
  if (!v.is_number() || v.number < 0) {
    throw std::runtime_error("field \"" + key + "\" must be a non-negative number");
  }
  return static_cast<std::uint64_t>(v.number);
}

}  // namespace

std::string to_json(const Snapshot& snapshot) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema").value(kSnapshotSchema);
  w.key("seq").value(snapshot.seq);
  w.key("algorithm").value(snapshot.algorithm);
  w.key("config").begin_object();
  for (const auto& [key, value] : snapshot.config) w.key(key).value(value);
  w.end_object();
  w.key("lines_consumed").value(snapshot.lines_consumed);
  w.key("bytes_consumed").value(snapshot.bytes_consumed);
  w.key("replies_emitted").value(snapshot.replies_emitted);
  w.key("num_admitted").value(snapshot.num_admitted);
  w.key("num_rejected").value(snapshot.num_rejected);
  // json_number round-trips every double, so these numbers restore the
  // residual state bit-for-bit.
  w.key("residuals").begin_object();
  w.key("bandwidth").begin_array();
  for (double r : snapshot.residuals.bandwidth) w.value(r);
  w.end_array();
  w.key("compute").begin_array();
  for (double r : snapshot.residuals.compute) w.value(r);
  w.end_array();
  w.key("table").begin_array();
  for (double r : snapshot.residuals.table) w.value(r);
  w.end_array();
  w.end_object();
  w.key("counters").begin_object();
  w.key("lines").value(snapshot.counters.lines);
  w.key("admitted").value(snapshot.counters.admitted);
  w.key("rejected").value(snapshot.counters.rejected);
  w.key("overload_rejects").value(snapshot.counters.overload_rejects);
  w.key("departed").value(snapshot.counters.departed);
  w.key("parse_errors").value(snapshot.counters.parse_errors);
  w.key("invalid_requests").value(snapshot.counters.invalid_requests);
  w.key("snapshots_written").value(snapshot.counters.snapshots_written);
  w.end_object();
  w.key("active").begin_array();
  for (const ActiveEntry& entry : snapshot.active) {
    w.begin_object();
    w.key("id").value(entry.id);
    w.key("bandwidth").begin_array();
    for (const auto& [e, mbps] : entry.footprint.bandwidth) {
      w.begin_array();
      w.value(static_cast<std::uint64_t>(e)).value(mbps);
      w.end_array();
    }
    w.end_array();
    w.key("compute").begin_array();
    for (const auto& [v, mhz] : entry.footprint.compute) {
      w.begin_array();
      w.value(static_cast<std::uint64_t>(v)).value(mhz);
      w.end_array();
    }
    w.end_array();
    w.key("table").begin_array();
    for (graph::VertexId v : entry.footprint.table_entries) {
      w.value(static_cast<std::uint64_t>(v));
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("rejected_pending").begin_array();
  for (std::uint64_t id : snapshot.rejected_pending) w.value(id);
  w.end_array();
  w.end_object();
  out << "\n";
  return out.str();
}

void write_snapshot(const std::string& path, const Snapshot& snapshot) {
  const std::string text = to_json(snapshot);
  const fs::path target(path);
  const fs::path dir = target.parent_path().empty() ? fs::path(".")
                                                    : target.parent_path();
  const std::string tmp =
      (dir / (target.filename().string() + ".tmp." +
              std::to_string(static_cast<long>(::getpid()))))
          .string();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_fail(tmp, "open");
  try {
    write_all(fd, tmp, text);
    if (::fsync(fd) != 0) io_fail(tmp, "fsync");
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    io_fail(tmp, "close");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    io_fail(path, "rename");
  }
  // Make the rename itself durable: fsync the containing directory.
  const int dir_fd = ::open(dir.string().c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  NFVM_COUNTER_INC("serve.snapshots_written");
}

Snapshot load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("snapshot " + path + ": cannot open");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  obs::JsonValue doc;
  try {
    doc = obs::parse_json(text);
  } catch (const std::exception& e) {
    // A truncated or partially-written file parses up to the cut and then
    // fails with the byte offset - surface it with the path attached.
    throw std::runtime_error("snapshot " + path + ": " + e.what());
  }
  try {
    if (!doc.is_object()) throw std::runtime_error("not a JSON object");
    if (!doc.has("schema") || doc.at("schema").string != kSnapshotSchema) {
      throw std::runtime_error("not an \"" + std::string(kSnapshotSchema) +
                               "\" document");
    }
    Snapshot snapshot;
    snapshot.seq = load_u64(doc, "seq");
    snapshot.algorithm = doc.at("algorithm").string;
    for (const auto& [key, value] : doc.at("config").object) {
      if (!value.is_string()) {
        throw std::runtime_error("config values must be strings");
      }
      snapshot.config[key] = value.string;
    }
    snapshot.lines_consumed = load_u64(doc, "lines_consumed");
    snapshot.bytes_consumed = load_u64(doc, "bytes_consumed");
    snapshot.replies_emitted = load_u64(doc, "replies_emitted");
    snapshot.num_admitted = load_u64(doc, "num_admitted");
    snapshot.num_rejected = load_u64(doc, "num_rejected");
    const obs::JsonValue& residuals = doc.at("residuals");
    const auto load_doubles = [&residuals](const std::string& key) {
      std::vector<double> values;
      for (const obs::JsonValue& v : residuals.at(key).array) {
        if (!v.is_number()) {
          throw std::runtime_error("residuals." + key + " must hold numbers");
        }
        values.push_back(v.number);
      }
      return values;
    };
    snapshot.residuals.bandwidth = load_doubles("bandwidth");
    snapshot.residuals.compute = load_doubles("compute");
    snapshot.residuals.table = load_doubles("table");
    const obs::JsonValue& counters = doc.at("counters");
    snapshot.counters.lines = load_u64(counters, "lines");
    snapshot.counters.admitted = load_u64(counters, "admitted");
    snapshot.counters.rejected = load_u64(counters, "rejected");
    snapshot.counters.overload_rejects = load_u64(counters, "overload_rejects");
    snapshot.counters.departed = load_u64(counters, "departed");
    snapshot.counters.parse_errors = load_u64(counters, "parse_errors");
    snapshot.counters.invalid_requests = load_u64(counters, "invalid_requests");
    snapshot.counters.snapshots_written = load_u64(counters, "snapshots_written");
    for (const obs::JsonValue& entry : doc.at("active").array) {
      ActiveEntry active;
      active.id = load_u64(entry, "id");
      for (const obs::JsonValue& pair : entry.at("bandwidth").array) {
        if (!pair.is_array() || pair.array.size() != 2) {
          throw std::runtime_error("bandwidth entries must be [edge, mbps] pairs");
        }
        active.footprint.bandwidth.emplace_back(
            static_cast<graph::EdgeId>(pair.array[0].number),
            pair.array[1].number);
      }
      for (const obs::JsonValue& pair : entry.at("compute").array) {
        if (!pair.is_array() || pair.array.size() != 2) {
          throw std::runtime_error("compute entries must be [server, mhz] pairs");
        }
        active.footprint.compute.emplace_back(
            static_cast<graph::VertexId>(pair.array[0].number),
            pair.array[1].number);
      }
      for (const obs::JsonValue& v : entry.at("table").array) {
        active.footprint.table_entries.push_back(
            static_cast<graph::VertexId>(v.number));
      }
      snapshot.active.push_back(std::move(active));
    }
    for (const obs::JsonValue& id : doc.at("rejected_pending").array) {
      snapshot.rejected_pending.push_back(static_cast<std::uint64_t>(id.number));
    }
    return snapshot;
  } catch (const std::exception& e) {
    throw std::runtime_error("snapshot " + path + ": " + e.what());
  }
}

void restore_into(core::OnlineAlgorithm& algorithm, const Snapshot& snapshot) {
  try {
    algorithm.restore_resources(snapshot.residuals);
  } catch (const std::exception& e) {
    throw std::runtime_error(
        std::string("snapshot restore: residuals do not fit the topology "
                    "(wrong network?): ") +
        e.what());
  }
  algorithm.restore_counts(snapshot.num_admitted, snapshot.num_rejected);
  NFVM_COUNTER_INC("serve.restores");
}

}  // namespace nfvm::serve
