// Crash-safe state snapshots for the admission daemon: "nfvm-snapshot-v1".
//
// A snapshot captures everything needed to rebuild an engine whose
// subsequent decision stream is byte-identical to an uninterrupted run:
//   * the run configuration echo (topology kind/size/seed, algorithm) -
//     validated on restore so a snapshot can never be replayed against a
//     different network;
//   * the input-stream cursor (lines/bytes consumed, replies emitted) - the
//     restored daemon skips exactly the consumed prefix of the trace;
//   * the residual resource vectors, bit-for-bit (obs::json_number prints
//     every double so it round-trips exactly) - residuals are accumulated
//     floating-point sums, so replaying footprints would reassociate them
//     and drift by an ulp; the residual-derived incremental view
//     (core::OnlineWeightedView) is rebuilt from them because its weights
//     are a pure function of the residuals;
//   * the active-request table (id -> footprint), needed to serve future
//     departs, and the ids of rejected arrivals whose departs are still
//     pending;
//   * the daemon's lifetime counters, so stats/drain replies stay identical
//     across a crash/restore boundary.
//
// Durability: write_snapshot writes to a same-directory temp file, fsyncs
// it, renames it over the target, and fsyncs the directory. A kill -9 at
// any instant therefore leaves either the previous or the new snapshot,
// never a torn one.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/online.h"
#include "nfv/resources.h"

namespace nfvm::serve {

inline constexpr std::string_view kSnapshotSchema = "nfvm-snapshot-v1";

/// One admitted, not-yet-departed request.
struct ActiveEntry {
  std::uint64_t id = 0;
  nfv::Footprint footprint;
};

/// Daemon lifetime counters (also the shape of the stats reply). Plain
/// struct, not obs counters: they must survive NFVM_OBS=0 builds and ride in
/// snapshots.
struct ServeCounters {
  std::uint64_t lines = 0;             ///< command lines processed
  std::uint64_t admitted = 0;          ///< arrive -> admitted
  std::uint64_t rejected = 0;          ///< arrive -> rejected (evaluated)
  std::uint64_t overload_rejects = 0;  ///< arrive -> shed unevaluated
  std::uint64_t departed = 0;          ///< depart -> released
  std::uint64_t parse_errors = 0;      ///< malformed JSON lines
  std::uint64_t invalid_requests = 0;  ///< well-formed but semantically bad
  std::uint64_t snapshots_written = 0;
};

struct Snapshot {
  /// Monotonic sequence number (increments per snapshot written).
  std::uint64_t seq = 0;
  std::string algorithm;
  /// Flat configuration echo (topology, nodes, seed, ...); compared
  /// verbatim on restore.
  std::map<std::string, std::string> config;
  /// Input-stream cursor at the moment of the snapshot.
  std::uint64_t lines_consumed = 0;
  std::uint64_t bytes_consumed = 0;
  std::uint64_t replies_emitted = 0;
  /// Algorithm lifetime decision counters (OnlineAlgorithm::num_admitted /
  /// num_rejected), restored via restore_counts.
  std::uint64_t num_admitted = 0;
  std::uint64_t num_rejected = 0;
  /// The engine's residual resource vectors, carried verbatim so the
  /// restored residuals are bit-identical to the crashed run's.
  nfv::ResourceResiduals residuals;
  ServeCounters counters;
  std::vector<ActiveEntry> active;
  /// Rejected arrival ids whose departs have not been seen yet - a depart
  /// for one of these answers released:false instead of an unknown-id error,
  /// and that classification must survive a restore.
  std::vector<std::uint64_t> rejected_pending;
};

/// Serializes the snapshot as one "nfvm-snapshot-v1" JSON document.
std::string to_json(const Snapshot& snapshot);

/// Atomically replaces `path` with the serialized snapshot
/// (same-directory temp file + fsync + rename + directory fsync). Throws
/// std::runtime_error on any I/O failure, leaving the previous snapshot -
/// if any - untouched.
void write_snapshot(const std::string& path, const Snapshot& snapshot);

/// Loads and validates a snapshot file. Throws std::runtime_error with the
/// file path and byte offset on malformed, truncated, or schema-invalid
/// input - a partially-written file (which write_snapshot can never itself
/// produce) must fail loudly, not crash or restore garbage.
Snapshot load_snapshot(const std::string& path);

/// Reinstates snapshot state into a freshly constructed algorithm: installs
/// the residual vectors bit-for-bit (rebuilding residual-derived state) and
/// restores the lifetime counters. The algorithm must be newly built on the
/// same topology the snapshot was taken from. Throws std::runtime_error on
/// a residual shape/range mismatch (topology mismatch that the config echo
/// comparison could not catch).
void restore_into(core::OnlineAlgorithm& algorithm, const Snapshot& snapshot);

}  // namespace nfvm::serve
