#include "serve/trace_gen.h"

#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

#include "serve/protocol.h"

namespace nfvm::serve {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Next arrival instant after `clock` - run_soak's thinned-Poisson draw,
/// duplicated rather than shared so the two RNG consumption orders can never
/// drift apart silently (each is pinned by its own determinism test).
double next_arrival(util::Rng& rng, double clock,
                    const TraceGenOptions& options) {
  const double peak_rate =
      options.arrival_rate * (1.0 + options.diurnal_amplitude);
  for (;;) {
    clock += rng.exponential(peak_rate);
    if (options.diurnal_amplitude == 0.0) return clock;
    const double rate =
        options.arrival_rate *
        (1.0 + options.diurnal_amplitude *
                   std::sin(kTwoPi * clock / options.diurnal_period));
    if (rng.uniform01() * peak_rate < rate) return clock;
  }
}

}  // namespace

TraceSummary write_serve_trace(std::ostream& out, const topo::Topology& topo,
                               util::Rng& rng,
                               const TraceGenOptions& options) {
  if (!(options.arrival_rate > 0) || !(options.mean_duration > 0)) {
    throw std::invalid_argument("write_serve_trace: rates must be positive");
  }
  if (options.diurnal_amplitude < 0.0 || options.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument(
        "write_serve_trace: diurnal amplitude must be in [0, 1)");
  }
  if (options.diurnal_amplitude > 0.0 && !(options.diurnal_period > 0.0)) {
    throw std::invalid_argument(
        "write_serve_trace: diurnal period must be positive");
  }

  sim::RequestGenerator generator(topo, rng, options.request_gen);
  struct Departure {
    double time;
    std::uint64_t id;
  };
  const auto later = [](const Departure& a, const Departure& b) {
    return a.time > b.time;
  };
  std::priority_queue<Departure, std::vector<Departure>, decltype(later)>
      pending(later);

  TraceSummary summary;
  const auto emit = [&](const std::string& line) {
    out << line << '\n';
    ++summary.total_lines;
  };

  double clock = 0.0;
  for (std::size_t i = 0; i < options.num_requests; ++i) {
    clock = next_arrival(rng, clock, options);
    const double duration = rng.exponential(1.0 / options.mean_duration);
    nfv::Request request = generator.next();
    request.max_delay_ms = options.max_delay_ms;

    while (!pending.empty() && pending.top().time <= clock) {
      emit(depart_line(pending.top().id));
      ++summary.depart_lines;
      pending.pop();
    }
    emit(arrive_line(request));
    ++summary.arrive_lines;
    pending.push(Departure{clock + duration, request.id});

    if (options.snapshot_every != 0 &&
        (i + 1) % options.snapshot_every == 0) {
      emit("{\"cmd\":\"snapshot\"}");
      ++summary.snapshot_lines;
    }
  }
  while (!pending.empty()) {
    emit(depart_line(pending.top().id));
    ++summary.depart_lines;
    pending.pop();
  }
  if (options.final_stats) emit("{\"cmd\":\"stats\"}");
  return summary;
}

}  // namespace nfvm::serve
