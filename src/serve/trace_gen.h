// Offline trace generation for nfvm-serve (the `nfvm-serve-client` CLI).
//
// Produces a JSONL command trace - interleaved arrive/depart lines in
// simulated-time order, optional periodic snapshot commands, optional final
// stats command - that a daemon can consume from stdin or have replayed over
// a socket. The workload model is run_soak's: Poisson arrivals (optionally
// diurnally thinned), exponential holding times, request bodies from
// sim::RequestGenerator, so a (topology, seed, options) triple always yields
// the same trace bytes.
//
// The generator cannot know admission outcomes, so it emits a depart for
// EVERY arrival; the daemon answers departs for rejected or shed arrivals
// with released:false rather than an error (see serve/protocol.h).
#pragma once

#include <cstddef>
#include <ostream>

#include "sim/request_gen.h"
#include "topology/topology.h"
#include "util/rng.h"

namespace nfvm::serve {

struct TraceGenOptions {
  std::size_t num_requests = 1000;
  /// Poisson arrival model, as sim::SoakOptions.
  double arrival_rate = 1.0;
  double mean_duration = 20.0;
  double diurnal_amplitude = 0.0;
  double diurnal_period = 86'400.0;
  /// Applied to every request; 0 = unconstrained.
  double max_delay_ms = 0.0;
  /// Emit a {"cmd":"snapshot"} line after every N arrivals; 0 disables.
  std::size_t snapshot_every = 0;
  /// End the trace with a {"cmd":"stats"} line. Leave off for traces used in
  /// byte-equivalence gates - the stats reply carries timing quantiles.
  bool final_stats = false;
  sim::RequestGenOptions request_gen;
};

struct TraceSummary {
  std::size_t arrive_lines = 0;
  std::size_t depart_lines = 0;
  std::size_t snapshot_lines = 0;
  std::size_t total_lines = 0;
};

/// Writes the trace to `out`, one command per line. Throws
/// std::invalid_argument for non-positive rates or a bad diurnal amplitude.
TraceSummary write_serve_trace(std::ostream& out, const topo::Topology& topo,
                               util::Rng& rng, const TraceGenOptions& options);

}  // namespace nfvm::serve
