#include "sim/metrics.h"

// Header-only data for now; this TU anchors the library target.
