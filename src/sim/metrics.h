// Aggregated metrics of a simulation run.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/online.h"
#include "util/stats.h"

namespace nfvm::sim {

struct SimulationMetrics {
  std::size_t num_requests = 0;
  std::size_t num_admitted = 0;
  std::size_t num_rejected = 0;
  /// Rejections bucketed by core::RejectCause (indexed by the enum value);
  /// entries sum to num_rejected.
  std::array<std::size_t, core::kNumRejectCauses> rejects_by_cause{};
  /// Admission decisions in arrival order (true = admitted).
  std::vector<bool> decisions;
  /// Cumulative admitted count after each arrival (throughput-over-time,
  /// the series plotted in the paper's Fig. 9).
  std::vector<std::size_t> cumulative_admitted;
  /// Implementation cost of each admitted request, in the algorithm's units.
  util::SampleSet admitted_costs;
  /// Per-request decision latency, seconds.
  util::SampleSet decision_seconds;
  /// Summed per-phase wall-clock across all requests, microseconds (see the
  /// phase contract in core/request_record.h). All zero unless the run had
  /// SimulatorOptions::record_provenance set and NFVM_OBS compiled in.
  double phase_classify_us = 0.0;
  double phase_closure_us = 0.0;
  double phase_eval_us = 0.0;
  double phase_realize_us = 0.0;
  double phase_view_patch_us = 0.0;
  /// Final resource utilization.
  double final_bandwidth_utilization = 0.0;
  double final_compute_utilization = 0.0;

  double acceptance_ratio() const {
    return num_requests == 0
               ? 0.0
               : static_cast<double>(num_admitted) / static_cast<double>(num_requests);
  }

  std::size_t rejected_because(core::RejectCause cause) const {
    return rejects_by_cause[static_cast<std::size_t>(cause)];
  }
};

}  // namespace nfvm::sim
