#include "sim/offline_batch.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nfvm::sim {

std::vector<OfflineRequestResult> run_offline_batch(
    const topo::Topology& topo, const core::LinearCosts& costs,
    std::span<const nfv::Request> requests,
    const OfflineBatchOptions& options) {
  NFVM_SPAN("sim/run_offline_batch");
  NFVM_COUNTER_ADD("sim.offline_batch.requests", requests.size());
  return parallel_map(requests.size(), [&](std::size_t i) {
    const nfv::Request& request = requests[i];
    OfflineRequestResult result;
    result.appro_multi.reserve(options.max_servers_sweep);
    for (std::size_t k = 1; k <= options.max_servers_sweep; ++k) {
      core::ApproMultiOptions ao;
      ao.max_servers = k;
      ao.engine = options.engine;
      ao.search = options.search;
      ao.beam_width = options.beam_width;
      result.appro_multi.push_back(core::appro_multi(topo, costs, request, ao));
    }
    result.one_server = core::alg_one_server(topo, costs, request);
    result.chain_split = core::chain_split_multicast(topo, costs, request);
    return result;
  });
}

}  // namespace nfvm::sim
