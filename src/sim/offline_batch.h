// Parallel offline request batches.
//
// The offline experiments evaluate every request independently on the
// *uncapacitated* network (no resource state is threaded between requests),
// which makes the batch embarrassingly parallel: each request's evaluations
// land in their own result slot and the caller aggregates in request order,
// so the output is bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/alg_one_server.h"
#include "core/appro_multi.h"
#include "core/chain_split.h"
#include "nfv/request.h"
#include "topology/topology.h"
#include "util/thread_pool.h"

namespace nfvm::sim {

/// Deterministic parallel map on the global thread pool: out[i] = fn(i).
/// Each call writes only its own slot, so the result does not depend on the
/// schedule. The result type must be default-constructible and movable.
template <typename Fn>
auto parallel_map(std::size_t count, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(count);
  util::ThreadPool::global().parallel_for(
      count, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

struct OfflineBatchOptions {
  /// Appro_Multi is evaluated for K = 1 .. max_servers_sweep per request.
  std::size_t max_servers_sweep = 3;
  /// Combination-sweep engine passed through to Appro_Multi.
  core::ApproMultiOptions::Engine engine =
      core::ApproMultiOptions::Engine::kSharedDijkstra;
  /// Combination-search strategy passed through to Appro_Multi.
  core::ApproMultiOptions::Search search =
      core::ApproMultiOptions::Search::kBranchAndBound;
  /// Beam width passed through to Appro_Multi (0 = exact full pool).
  std::size_t beam_width = 0;
};

/// Everything the offline comparison computes for one request.
struct OfflineRequestResult {
  /// Index k-1 holds the Appro_Multi solution for K = k.
  std::vector<core::OfflineSolution> appro_multi;
  core::OfflineSolution one_server;
  core::ChainSplitSolution chain_split;
};

/// Evaluates the whole batch across the global thread pool; result[i]
/// corresponds to requests[i].
std::vector<OfflineRequestResult> run_offline_batch(
    const topo::Topology& topo, const core::LinearCosts& costs,
    std::span<const nfv::Request> requests,
    const OfflineBatchOptions& options = {});

}  // namespace nfvm::sim
