#include "sim/request_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nfvm::sim {

RequestGenerator::RequestGenerator(const topo::Topology& topo, util::Rng& rng,
                                   const RequestGenOptions& options)
    : topo_(&topo), rng_(&rng), options_(options) {
  if (topo.num_switches() < 2) {
    throw std::invalid_argument("RequestGenerator: topology too small");
  }
  if (!(options.min_dest_ratio > 0) ||
      options.min_dest_ratio > options.max_dest_ratio ||
      options.max_dest_ratio > 1.0) {
    throw std::invalid_argument("RequestGenerator: bad destination ratio bounds");
  }
  if (!(options.min_bandwidth_mbps > 0) ||
      options.min_bandwidth_mbps > options.max_bandwidth_mbps) {
    throw std::invalid_argument("RequestGenerator: bad bandwidth bounds");
  }
  if (options.min_chain_length == 0 ||
      options.min_chain_length > options.max_chain_length ||
      options.max_chain_length > nfv::kNumNetworkFunctions) {
    throw std::invalid_argument("RequestGenerator: bad chain length bounds");
  }
}

nfv::Request RequestGenerator::next() {
  const std::size_t n = topo_->num_switches();
  nfv::Request request;
  request.id = next_id_++;

  // Draw source + destinations together so they are distinct by
  // construction: sample (1 + dest_count) distinct switches.
  const double ratio =
      rng_->uniform_real(options_.min_dest_ratio, options_.max_dest_ratio);
  const auto d_max = static_cast<std::size_t>(
      std::floor(ratio * static_cast<double>(n)));
  const std::size_t upper = std::min(std::max<std::size_t>(d_max, 1), n - 1);
  const auto dest_count = static_cast<std::size_t>(
      rng_->uniform_int(1, static_cast<std::int64_t>(upper)));

  std::vector<std::size_t> picks = rng_->sample_without_replacement(n, dest_count + 1);
  request.source = static_cast<graph::VertexId>(picks[0]);
  request.destinations.reserve(dest_count);
  for (std::size_t i = 1; i < picks.size(); ++i) {
    request.destinations.push_back(static_cast<graph::VertexId>(picks[i]));
  }

  request.bandwidth_mbps =
      rng_->uniform_real(options_.min_bandwidth_mbps, options_.max_bandwidth_mbps);
  request.chain = nfv::random_service_chain(*rng_, options_.min_chain_length,
                                            options_.max_chain_length);
  return request;
}

std::vector<nfv::Request> RequestGenerator::sequence(std::size_t count) {
  std::vector<nfv::Request> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(next());
  return out;
}

}  // namespace nfvm::sim
