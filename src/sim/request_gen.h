// Random NFV-enabled multicast request generation following the paper's
// evaluation settings (Section VI-A): random source and destinations, the
// destination count bounded by D_max = ratio * |V| with the ratio drawn from
// [0.05, 0.2] (or fixed), bandwidth uniform in [50, 200] Mbps, and a random
// service chain over the five network functions.
#pragma once

#include <vector>

#include "nfv/request.h"
#include "topology/topology.h"
#include "util/rng.h"

namespace nfvm::sim {

struct RequestGenOptions {
  /// Bounds for the per-request ratio D_max/|V|. Set both equal to fix it.
  double min_dest_ratio = 0.05;
  double max_dest_ratio = 0.20;
  /// Bandwidth demand range, Mbps.
  double min_bandwidth_mbps = 50.0;
  double max_bandwidth_mbps = 200.0;
  /// Service chain length bounds (1..5 distinct NFs).
  std::size_t min_chain_length = 1;
  std::size_t max_chain_length = 3;
};

class RequestGenerator {
 public:
  /// Throws std::invalid_argument for inconsistent options or a topology
  /// too small to host source + one destination.
  RequestGenerator(const topo::Topology& topo, util::Rng& rng,
                   const RequestGenOptions& options = {});

  /// Generates the next request (ids increase from 1). The destination count
  /// is uniform in [1, max(1, floor(ratio * |V|))]; destinations are
  /// distinct and exclude the source.
  nfv::Request next();

  /// Generates a whole arrival sequence.
  std::vector<nfv::Request> sequence(std::size_t count);

 private:
  const topo::Topology* topo_;
  util::Rng* rng_;
  RequestGenOptions options_;
  std::uint64_t next_id_ = 1;
};

}  // namespace nfvm::sim
