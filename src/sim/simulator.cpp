#include "sim/simulator.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/timer.h"

namespace nfvm::sim {

SimulationMetrics run_online(core::OnlineAlgorithm& algorithm,
                             std::span<const nfv::Request> requests,
                             const SimulatorOptions& options) {
  SimulationMetrics metrics;
  metrics.num_requests = requests.size();
  metrics.decisions.reserve(requests.size());
  metrics.cumulative_admitted.reserve(requests.size());

  for (const nfv::Request& request : requests) {
    util::Stopwatch watch;
    const core::AdmissionDecision decision = algorithm.process(request);
    metrics.decision_seconds.add(watch.elapsed_seconds());

    if (decision.admitted) {
      if (options.validate_trees) {
        std::string error;
        if (!core::validate_pseudo_tree(algorithm.topology().graph, request,
                                        decision.tree, &error)) {
          throw std::logic_error("run_online: invalid pseudo-multicast tree for " +
                                 request.to_string() + ": " + error);
        }
      }
      ++metrics.num_admitted;
      metrics.admitted_costs.add(decision.tree.cost);
    } else {
      ++metrics.num_rejected;
    }
    metrics.decisions.push_back(decision.admitted);
    metrics.cumulative_admitted.push_back(metrics.num_admitted);
  }

  // Mean utilizations across links / servers at the end of the run.
  const nfv::ResourceState& state = algorithm.resources();
  double bw = 0.0;
  for (graph::EdgeId e = 0; e < state.num_links(); ++e) {
    bw += state.bandwidth_utilization(e);
  }
  metrics.final_bandwidth_utilization =
      state.num_links() == 0 ? 0.0 : bw / static_cast<double>(state.num_links());
  double cp = 0.0;
  std::size_t servers = 0;
  for (graph::VertexId v = 0; v < state.num_switches(); ++v) {
    if (state.compute_capacity(v) > 0) {
      cp += state.compute_utilization(v);
      ++servers;
    }
  }
  metrics.final_compute_utilization =
      servers == 0 ? 0.0 : cp / static_cast<double>(servers);
  return metrics;
}

}  // namespace nfvm::sim

namespace nfvm::sim {

std::vector<TimedRequest> make_poisson_workload(RequestGenerator& generator,
                                                util::Rng& rng, std::size_t count,
                                                const DynamicWorkloadOptions& options) {
  if (!(options.arrival_rate > 0) || !(options.mean_duration > 0)) {
    throw std::invalid_argument("make_poisson_workload: rates must be positive");
  }
  std::vector<TimedRequest> workload;
  workload.reserve(count);
  double clock = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    clock += rng.exponential(options.arrival_rate);
    TimedRequest tr;
    tr.request = generator.next();
    tr.arrival_time = clock;
    tr.duration = rng.exponential(1.0 / options.mean_duration);
    workload.push_back(std::move(tr));
  }
  return workload;
}

DynamicMetrics run_online_dynamic(core::OnlineAlgorithm& algorithm,
                                  std::span<const TimedRequest> requests,
                                  const SimulatorOptions& options) {
  for (std::size_t i = 1; i < requests.size(); ++i) {
    if (requests[i].arrival_time < requests[i - 1].arrival_time) {
      throw std::invalid_argument("run_online_dynamic: arrivals not sorted");
    }
  }

  DynamicMetrics metrics;
  metrics.num_requests = requests.size();

  // Departure queue: (departure_time, footprint). Earliest departure first.
  struct Departure {
    double time;
    nfv::Footprint footprint;
  };
  const auto later = [](const Departure& a, const Departure& b) {
    return a.time > b.time;
  };
  std::priority_queue<Departure, std::vector<Departure>, decltype(later)> active(later);

  double active_sum = 0.0;
  for (const TimedRequest& tr : requests) {
    while (!active.empty() && active.top().time <= tr.arrival_time) {
      algorithm.release(active.top().footprint);
      active.pop();
    }
    const core::AdmissionDecision decision = algorithm.process(tr.request);
    if (decision.admitted) {
      if (options.validate_trees) {
        std::string error;
        if (!core::validate_pseudo_tree(algorithm.topology().graph, tr.request,
                                        decision.tree, &error)) {
          throw std::logic_error("run_online_dynamic: invalid tree for " +
                                 tr.request.to_string() + ": " + error);
        }
      }
      ++metrics.num_admitted;
      metrics.admitted_costs.add(decision.tree.cost);
      active.push(Departure{tr.arrival_time + tr.duration, decision.footprint});
    } else {
      ++metrics.num_rejected;
    }
    metrics.peak_active = std::max(metrics.peak_active, active.size());
    active_sum += static_cast<double>(active.size());
  }
  metrics.mean_active = requests.empty()
                            ? 0.0
                            : active_sum / static_cast<double>(requests.size());
  // Drain remaining departures so the algorithm's state returns to idle.
  while (!active.empty()) {
    algorithm.release(active.top().footprint);
    active.pop();
  }
  return metrics;
}

}  // namespace nfvm::sim
