#include "sim/simulator.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "obs/hdr_histogram.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "util/timer.h"

namespace nfvm::sim {

/// One JSONL record per processed request (schema "nfvm-events-v2", see
/// docs/observability.md). When the decision carries a RequestRecord, its
/// provenance fields ride on the same line.
void emit_request_event(obs::EventLog* log, const core::OnlineAlgorithm& algorithm,
                        std::size_t index, const nfv::Request& request,
                        const core::AdmissionDecision& decision,
                        double decision_seconds, double arrival_time) {
  if (log == nullptr || !log->is_open()) return;
  obs::JsonLine line;
  line.field("event", "request")
      .field("algorithm", algorithm.name())
      .field("index", index)
      .field("request_id", static_cast<std::uint64_t>(request.id))
      .field("source", static_cast<std::uint64_t>(request.source))
      .field("num_destinations", request.destinations.size())
      .field("bandwidth_mbps", request.bandwidth_mbps)
      .field("admitted", decision.admitted);
  if (decision.admitted) {
    line.field("cost", decision.tree.cost)
        .field("servers", decision.tree.servers.size());
  } else {
    line.field("reject_cause", core::to_string(decision.reject_cause))
        .field("reject_reason", decision.reject_reason);
  }
  line.field("decision_us", decision_seconds * 1e6);
  if (arrival_time >= 0.0) line.field("arrival_time", arrival_time);
  if (const core::RequestRecord* rec = decision.record.get()) {
    line.field("fast_path", rec->fast_path)
        .field("total_us", rec->total_us)
        .field("phase_classify_us", rec->classify_us)
        .field("phase_closure_us", rec->closure_us)
        .field("phase_eval_us", rec->eval_us)
        .field("phase_realize_us", rec->realize_us)
        .field("phase_view_patch_us", rec->view_patch_us)
        .field("servers_total", rec->servers_total)
        .field("servers_eligible", rec->servers_eligible)
        .field("servers_evaluated", rec->servers_evaluated)
        .field("candidates_feasible", rec->candidates_feasible);
    if (decision.admitted) {
      line.field("chosen_server", rec->chosen_server)
          .field("cost_total", rec->cost_total)
          .field("cost_steiner", rec->cost_steiner)
          .field("cost_server", rec->cost_server)
          .field("cost_backhaul", rec->cost_backhaul);
    }
    line.field("spcache_hits", rec->spcache_hits)
        .field("spcache_misses", rec->spcache_misses)
        .field("skip_compute", rec->skipped_compute)
        .field("skip_sigma_v", rec->skipped_sigma_v)
        .field("fail_disconnected", rec->failed_disconnected)
        .field("fail_sigma_e", rec->failed_sigma_e)
        .field("fail_delay", rec->failed_delay)
        .field("fail_capacity", rec->failed_capacity)
        .field("cost_pruned", rec->cost_pruned);
  }
  log->write(line);
}

namespace {

/// Accumulates a decision's phase timings into the run-level sums.
void accumulate_phases(SimulationMetrics& metrics,
                       const core::AdmissionDecision& decision) {
  if (const core::RequestRecord* rec = decision.record.get()) {
    metrics.phase_classify_us += rec->classify_us;
    metrics.phase_closure_us += rec->closure_us;
    metrics.phase_eval_us += rec->eval_us;
    metrics.phase_realize_us += rec->realize_us;
    metrics.phase_view_patch_us += rec->view_patch_us;
  }
}

}  // namespace

SimulationMetrics run_online(core::OnlineAlgorithm& algorithm,
                             std::span<const nfv::Request> requests,
                             const SimulatorOptions& options) {
  NFVM_SPAN("sim/run_online");
  SimulationMetrics metrics;
  metrics.num_requests = requests.size();
  metrics.decisions.reserve(requests.size());
  metrics.cumulative_admitted.reserve(requests.size());
  algorithm.set_record_provenance(options.record_provenance);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const nfv::Request& request = requests[i];
    util::Stopwatch watch;
    const core::AdmissionDecision decision = algorithm.process(request);
    const double seconds = watch.elapsed_seconds();
    metrics.decision_seconds.add(seconds);
    NFVM_HDR_OBSERVE("online.decision_us", seconds * 1e6);
    NFVM_WINDOW_OBSERVE("online.decision_us", seconds * 1e6);
    accumulate_phases(metrics, decision);

    if (decision.admitted) {
      if (options.validate_trees) {
        std::string error;
        if (!core::validate_pseudo_tree(algorithm.topology().graph, request,
                                        decision.tree, &error)) {
          throw std::logic_error("run_online: invalid pseudo-multicast tree for " +
                                 request.to_string() + ": " + error);
        }
      }
      ++metrics.num_admitted;
      metrics.admitted_costs.add(decision.tree.cost);
    } else {
      ++metrics.num_rejected;
      ++metrics.rejects_by_cause[static_cast<std::size_t>(decision.reject_cause)];
      if (obs::log_enabled(obs::LogLevel::kDebug)) {
        obs::log_debug("reject " + request.to_string() + ": " +
                       decision.reject_reason);
      }
    }
    metrics.decisions.push_back(decision.admitted);
    metrics.cumulative_admitted.push_back(metrics.num_admitted);
    emit_request_event(options.event_log, algorithm, i, request, decision, seconds);
  }

  // Mean utilizations across links / servers at the end of the run.
  const nfv::ResourceState& state = algorithm.resources();
  double bw = 0.0;
  for (graph::EdgeId e = 0; e < state.num_links(); ++e) {
    bw += state.bandwidth_utilization(e);
  }
  metrics.final_bandwidth_utilization =
      state.num_links() == 0 ? 0.0 : bw / static_cast<double>(state.num_links());
  double cp = 0.0;
  std::size_t servers = 0;
  for (graph::VertexId v = 0; v < state.num_switches(); ++v) {
    if (state.compute_capacity(v) > 0) {
      cp += state.compute_utilization(v);
      ++servers;
    }
  }
  metrics.final_compute_utilization =
      servers == 0 ? 0.0 : cp / static_cast<double>(servers);
  NFVM_GAUGE_SET("sim.final_bandwidth_utilization",
                 metrics.final_bandwidth_utilization);
  NFVM_GAUGE_SET("sim.final_compute_utilization",
                 metrics.final_compute_utilization);
  return metrics;
}

}  // namespace nfvm::sim

namespace nfvm::sim {

std::vector<TimedRequest> make_poisson_workload(RequestGenerator& generator,
                                                util::Rng& rng, std::size_t count,
                                                const DynamicWorkloadOptions& options) {
  if (!(options.arrival_rate > 0) || !(options.mean_duration > 0)) {
    throw std::invalid_argument("make_poisson_workload: rates must be positive");
  }
  std::vector<TimedRequest> workload;
  workload.reserve(count);
  double clock = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    clock += rng.exponential(options.arrival_rate);
    TimedRequest tr;
    tr.request = generator.next();
    tr.arrival_time = clock;
    tr.duration = rng.exponential(1.0 / options.mean_duration);
    workload.push_back(std::move(tr));
  }
  return workload;
}

DynamicMetrics run_online_dynamic(core::OnlineAlgorithm& algorithm,
                                  std::span<const TimedRequest> requests,
                                  const SimulatorOptions& options) {
  NFVM_SPAN("sim/run_online_dynamic");
  for (std::size_t i = 1; i < requests.size(); ++i) {
    if (requests[i].arrival_time < requests[i - 1].arrival_time) {
      throw std::invalid_argument("run_online_dynamic: arrivals not sorted");
    }
  }

  DynamicMetrics metrics;
  metrics.num_requests = requests.size();
  algorithm.set_record_provenance(options.record_provenance);

  // Departure queue: (departure_time, footprint). Earliest departure first.
  struct Departure {
    double time;
    nfv::Footprint footprint;
  };
  const auto later = [](const Departure& a, const Departure& b) {
    return a.time > b.time;
  };
  std::priority_queue<Departure, std::vector<Departure>, decltype(later)> active(later);

  double active_sum = 0.0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const TimedRequest& tr = requests[i];
    while (!active.empty() && active.top().time <= tr.arrival_time) {
      algorithm.release(active.top().footprint);
      active.pop();
    }
    util::Stopwatch watch;
    const core::AdmissionDecision decision = algorithm.process(tr.request);
    const double seconds = watch.elapsed_seconds();
    NFVM_HDR_OBSERVE("online.decision_us", seconds * 1e6);
    NFVM_WINDOW_OBSERVE("online.decision_us", seconds * 1e6);
    if (decision.admitted) {
      if (options.validate_trees) {
        std::string error;
        if (!core::validate_pseudo_tree(algorithm.topology().graph, tr.request,
                                        decision.tree, &error)) {
          throw std::logic_error("run_online_dynamic: invalid tree for " +
                                 tr.request.to_string() + ": " + error);
        }
      }
      ++metrics.num_admitted;
      metrics.admitted_costs.add(decision.tree.cost);
      active.push(Departure{tr.arrival_time + tr.duration, decision.footprint});
    } else {
      ++metrics.num_rejected;
      ++metrics.rejects_by_cause[static_cast<std::size_t>(decision.reject_cause)];
    }
    metrics.peak_active = std::max(metrics.peak_active, active.size());
    active_sum += static_cast<double>(active.size());
    emit_request_event(options.event_log, algorithm, i, tr.request, decision,
                       seconds, tr.arrival_time);
  }
  metrics.mean_active = requests.empty()
                            ? 0.0
                            : active_sum / static_cast<double>(requests.size());
  // Drain remaining departures so the algorithm's state returns to idle.
  while (!active.empty()) {
    algorithm.release(active.top().footprint);
    active.pop();
  }
  return metrics;
}

}  // namespace nfvm::sim
