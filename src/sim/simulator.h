// Online admission simulator: feeds an arrival sequence to an online
// algorithm, validates every admitted pseudo-multicast tree against the
// physical topology, and aggregates metrics.
#pragma once

#include <span>
#include <vector>

#include "core/online.h"
#include "obs/event_log.h"
#include "sim/metrics.h"
#include "sim/request_gen.h"

namespace nfvm::sim {

struct SimulatorOptions {
  /// Validate every admitted tree with core::validate_pseudo_tree and throw
  /// std::logic_error on a violation. Cheap; on by default.
  bool validate_trees = true;
  /// When non-null and open, one JSONL event is written per processed
  /// request (see docs/observability.md for the schema). Not owned.
  obs::EventLog* event_log = nullptr;
  /// Record per-request decision provenance (core::RequestRecord): phase
  /// timings, candidate-scan counts, cost breakdown, reject context. The
  /// fields ride on each request event and feed `nfvm-report latency` /
  /// `explain`. Requires NFVM_OBS; decisions are unaffected either way.
  bool record_provenance = false;
};

/// Writes one "nfvm-events-v2" request line to `log` (no-op when null or
/// closed). Shared by run_online, run_online_dynamic and the soak harness
/// (sim/soak.h) so all runners emit byte-identical event records. A negative
/// `arrival_time` omits the field (static workloads).
void emit_request_event(obs::EventLog* log,
                        const core::OnlineAlgorithm& algorithm,
                        std::size_t index, const nfv::Request& request,
                        const core::AdmissionDecision& decision,
                        double decision_seconds, double arrival_time = -1.0);

/// Runs the full sequence through `algorithm` (which carries resource state
/// across calls). Returns the aggregated metrics.
SimulationMetrics run_online(core::OnlineAlgorithm& algorithm,
                             std::span<const nfv::Request> requests,
                             const SimulatorOptions& options = {});

/// A request with an arrival time and a holding duration - the dynamic
/// workload model (the paper's throughput experiments keep admitted
/// requests forever; real deployments release resources on departure, which
/// OnlineAlgorithm::release supports and this simulator exercises).
struct TimedRequest {
  nfv::Request request;
  /// Arrival instant (monotonically non-decreasing across a workload).
  double arrival_time = 0.0;
  /// Holding time; resources release at arrival_time + duration.
  double duration = 0.0;
};

struct DynamicWorkloadOptions {
  /// Poisson arrival rate (arrivals per unit time).
  double arrival_rate = 1.0;
  /// Mean of the exponential holding-time distribution.
  double mean_duration = 20.0;
};

/// Draws `count` requests from `generator` with Poisson arrivals and
/// exponential holding times from `rng`.
std::vector<TimedRequest> make_poisson_workload(RequestGenerator& generator,
                                                util::Rng& rng, std::size_t count,
                                                const DynamicWorkloadOptions& options = {});

struct DynamicMetrics {
  std::size_t num_requests = 0;
  std::size_t num_admitted = 0;
  std::size_t num_rejected = 0;
  /// Rejections bucketed by core::RejectCause; entries sum to num_rejected.
  std::array<std::size_t, core::kNumRejectCauses> rejects_by_cause{};
  /// Largest number of simultaneously active admitted requests.
  std::size_t peak_active = 0;
  /// Active count averaged over arrival instants.
  double mean_active = 0.0;
  util::SampleSet admitted_costs;

  double acceptance_ratio() const {
    return num_requests == 0
               ? 0.0
               : static_cast<double>(num_admitted) / static_cast<double>(num_requests);
  }

  std::size_t rejected_because(core::RejectCause cause) const {
    return rejects_by_cause[static_cast<std::size_t>(cause)];
  }
};

/// Event-driven run: before each arrival, footprints of departed requests
/// are released; then the arrival is offered to the algorithm. Requests must
/// be sorted by arrival_time (throws std::invalid_argument otherwise).
DynamicMetrics run_online_dynamic(core::OnlineAlgorithm& algorithm,
                                  std::span<const TimedRequest> requests,
                                  const SimulatorOptions& options = {});

}  // namespace nfvm::sim
