#include "sim/soak.h"

#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

#include "obs/hdr_histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "util/timer.h"

namespace nfvm::sim {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Next arrival instant after `clock`. Homogeneous draws at the peak rate
/// are thinned down to the instantaneous rate (Lewis & Shedler); with zero
/// amplitude every candidate is accepted and this reduces to the plain
/// exponential gap.
double next_arrival(util::Rng& rng, double clock, const SoakOptions& options) {
  const double peak_rate = options.arrival_rate * (1.0 + options.diurnal_amplitude);
  for (;;) {
    clock += rng.exponential(peak_rate);
    if (options.diurnal_amplitude == 0.0) return clock;
    const double rate =
        options.arrival_rate *
        (1.0 + options.diurnal_amplitude *
                   std::sin(kTwoPi * clock / options.diurnal_period));
    if (rng.uniform01() * peak_rate < rate) return clock;
  }
}

}  // namespace

SoakMetrics run_soak(core::OnlineAlgorithm& algorithm,
                     RequestGenerator& generator, util::Rng& rng,
                     const SoakOptions& options) {
  NFVM_SPAN("sim/run_soak");
  if (!(options.arrival_rate > 0) || !(options.mean_duration > 0)) {
    throw std::invalid_argument("run_soak: rates must be positive");
  }
  if (options.diurnal_amplitude < 0.0 || options.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument("run_soak: diurnal amplitude must be in [0, 1)");
  }
  if (options.diurnal_amplitude > 0.0 && !(options.diurnal_period > 0.0)) {
    throw std::invalid_argument("run_soak: diurnal period must be positive");
  }

  SoakMetrics metrics;
  metrics.num_requests = options.num_requests;
  algorithm.set_record_provenance(options.sim.record_provenance);

  struct Departure {
    double time;
    nfv::Footprint footprint;
  };
  const auto later = [](const Departure& a, const Departure& b) {
    return a.time > b.time;
  };
  std::priority_queue<Departure, std::vector<Departure>, decltype(later)>
      active(later);

  obs::HdrHistogram latency;
  util::Stopwatch wall;
  double clock = 0.0;
  double active_sum = 0.0;
  std::size_t processed = 0;
  for (std::size_t i = 0; i < options.num_requests; ++i) {
    if (options.stop != nullptr &&
        options.stop->load(std::memory_order_relaxed)) {
      metrics.clean_shutdown = false;
      break;
    }
    clock = next_arrival(rng, clock, options);
    // Draw the holding time before processing so the RNG stream does not
    // depend on the admission outcome - rejected requests must consume the
    // same draws as admitted ones for cross-build reproducibility.
    const double duration = rng.exponential(1.0 / options.mean_duration);
    nfv::Request request = generator.next();
    request.max_delay_ms = options.max_delay_ms;

    while (!active.empty() && active.top().time <= clock) {
      algorithm.release(active.top().footprint);
      active.pop();
    }

    util::Stopwatch watch;
    const core::AdmissionDecision decision = algorithm.process(request);
    const double seconds = watch.elapsed_seconds();
    const double us = seconds * 1e6;
    metrics.decision_us.add(us);
    latency.observe(us);
    NFVM_HDR_OBSERVE("online.decision_us", us);
    NFVM_WINDOW_OBSERVE("online.decision_us", us);

    if (decision.admitted) {
      if (options.sim.validate_trees) {
        std::string error;
        if (!core::validate_pseudo_tree(algorithm.topology().graph, request,
                                        decision.tree, &error)) {
          throw std::logic_error("run_soak: invalid pseudo-multicast tree for " +
                                 request.to_string() + ": " + error);
        }
      }
      ++metrics.num_admitted;
      active.push(Departure{clock + duration, decision.footprint});
    } else {
      ++metrics.num_rejected;
      ++metrics.rejects_by_cause[static_cast<std::size_t>(decision.reject_cause)];
    }
    metrics.peak_active = std::max(metrics.peak_active, active.size());
    active_sum += static_cast<double>(active.size());
    processed = i + 1;
    emit_request_event(options.sim.event_log, algorithm, i, request, decision,
                       seconds, clock);
    if (options.progress_every != 0 && options.on_progress &&
        (i + 1) % options.progress_every == 0) {
      options.on_progress(i + 1);
    }
  }
  // All rollups cover the arrivals actually processed, so an interrupted run
  // still writes internally consistent artifacts.
  metrics.num_requests = processed;
  metrics.wall_seconds = wall.elapsed_seconds();
  metrics.sim_duration = clock;
  metrics.mean_active =
      processed == 0 ? 0.0 : active_sum / static_cast<double>(processed);
  metrics.requests_per_s =
      metrics.wall_seconds > 0.0
          ? static_cast<double>(processed) / metrics.wall_seconds
          : 0.0;
  if (latency.count() > 0) {
    metrics.p50_us = latency.quantile(0.50);
    metrics.p90_us = latency.quantile(0.90);
    metrics.p99_us = latency.quantile(0.99);
  }
  if (options.progress_every != 0 && options.on_progress &&
      processed % options.progress_every != 0) {
    options.on_progress(processed);
  }
  // Drain remaining departures so the algorithm's state returns to idle.
  while (!active.empty()) {
    algorithm.release(active.top().footprint);
    active.pop();
  }
  return metrics;
}

}  // namespace nfvm::sim
