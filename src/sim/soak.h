// Sustained-load soak harness: streams millions of Poisson (optionally
// diurnally modulated) arrivals and exponential departures through an online
// algorithm without materializing the workload. Where run_online_dynamic
// takes a pregenerated std::vector<TimedRequest> (fine for 10^4-10^5
// requests, prohibitive at 10^6+), run_soak draws each request on the fly,
// so memory stays flat at the departure queue's size and the run length is
// bounded only by patience.
//
// Wired to `nfvm-sim --soak N` (plus --arrival-rate / --mean-duration /
// --diurnal-amplitude / --diurnal-period); combine with --timeseries and
// --slo to exercise the windowed telemetry and SLO layers this harness
// exists to feed. Determinism: the arrival process consumes the RNG
// identically whether or not NFVM_OBS instrumentation is compiled in, so
// decision streams are byte-identical across builds.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <functional>

#include "core/online.h"
#include "sim/request_gen.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace nfvm::sim {

struct SoakOptions {
  /// Number of arrivals to offer.
  std::size_t num_requests = 1'000'000;
  /// Base Poisson arrival rate (arrivals per simulated time unit).
  double arrival_rate = 1.0;
  /// Mean of the exponential holding-time distribution.
  double mean_duration = 20.0;
  /// Diurnal modulation amplitude A in [0, 1):
  ///   rate(t) = arrival_rate * (1 + A * sin(2*pi*t / diurnal_period)).
  /// 0 keeps arrivals homogeneous. Implemented by thinning a homogeneous
  /// process at the peak rate, the standard exact method for
  /// non-homogeneous Poisson processes.
  double diurnal_amplitude = 0.0;
  /// Simulated time units per diurnal cycle.
  double diurnal_period = 86'400.0;
  /// Per-request delay bound, applied to every generated request;
  /// 0 = unconstrained (mirrors `nfvm-sim --max-delay`).
  double max_delay_ms = 0.0;
  /// Invoked every `progress_every` processed requests (and once at the
  /// end) with the number processed so far; 0 disables. Runs inline - keep
  /// it cheap.
  std::size_t progress_every = 0;
  std::function<void(std::size_t processed)> on_progress;
  /// Cooperative early-stop flag (typically flipped by a SIGINT/SIGTERM
  /// handler): checked before each arrival; when true the run winds down
  /// cleanly - departures drained, metrics finalized over the requests
  /// actually processed - and SoakMetrics.clean_shutdown reports false.
  /// Null disables the check.
  const std::atomic<bool>* stop = nullptr;
  /// Validation / event-log / provenance switches, as for run_online.
  SimulatorOptions sim;
};

struct SoakMetrics {
  /// Arrivals actually processed - equals the configured count unless the
  /// stop flag ended the run early.
  std::size_t num_requests = 0;
  /// False when the stop flag interrupted the run; artifacts from such a run
  /// are still internally consistent (partial counts, drained departures)
  /// but cover fewer arrivals than configured.
  bool clean_shutdown = true;
  std::size_t num_admitted = 0;
  std::size_t num_rejected = 0;
  std::array<std::size_t, core::kNumRejectCauses> rejects_by_cause{};
  /// Largest / arrival-averaged number of simultaneously held admissions.
  std::size_t peak_active = 0;
  double mean_active = 0.0;
  /// Simulated time of the last arrival.
  double sim_duration = 0.0;
  /// Wall-clock cost of the whole run and the sustained decision rate.
  double wall_seconds = 0.0;
  double requests_per_s = 0.0;
  /// Per-decision latency in microseconds (count/mean/min/max; no retained
  /// samples - a million-request soak must not hoard 8 MB of doubles).
  util::RunningStats decision_us;
  /// Whole-run latency quantiles, estimated from an HDR histogram (<= 1%
  /// relative error). The windowed per-interval view lives in the
  /// --timeseries stream; these are the run-level rollup.
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;

  double acceptance_ratio() const {
    return num_requests == 0 ? 0.0
                             : static_cast<double>(num_admitted) /
                                   static_cast<double>(num_requests);
  }

  std::size_t rejected_because(core::RejectCause cause) const {
    return rejects_by_cause[static_cast<std::size_t>(cause)];
  }
};

/// Streams `options.num_requests` arrivals from `generator` through
/// `algorithm`, releasing departed footprints before each arrival. `rng`
/// drives the arrival process (inter-arrival gaps, holding times, diurnal
/// thinning); `generator` draws the request bodies. Throws
/// std::invalid_argument for non-positive rates or an amplitude outside
/// [0, 1).
SoakMetrics run_soak(core::OnlineAlgorithm& algorithm,
                     RequestGenerator& generator, util::Rng& rng,
                     const SoakOptions& options);

}  // namespace nfvm::sim
