#include "topology/geant.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <unordered_map>

namespace nfvm::topo {
namespace {

// 40 PoPs. Coordinates are approximate (longitude, latitude) pairs used only
// for plotting/debugging; the algorithms never read them.
struct City {
  const char* name;
  double lon;
  double lat;
};

constexpr std::array<City, 40> kCities = {{
    {"Amsterdam", 4.9, 52.4},   {"Athens", 23.7, 38.0},
    {"Belgrade", 20.5, 44.8},   {"Bratislava", 17.1, 48.1},
    {"Brussels", 4.4, 50.8},    {"Bucharest", 26.1, 44.4},
    {"Budapest", 19.0, 47.5},   {"Copenhagen", 12.6, 55.7},
    {"Dublin", -6.3, 53.3},     {"Frankfurt", 8.7, 50.1},
    {"Geneva", 6.1, 46.2},      {"Hamburg", 10.0, 53.6},
    {"Helsinki", 24.9, 60.2},   {"Istanbul", 29.0, 41.0},
    {"Kaunas", 23.9, 54.9},     {"Kiev", 30.5, 50.5},
    {"Lisbon", -9.1, 38.7},     {"Ljubljana", 14.5, 46.1},
    {"London", -0.1, 51.5},     {"Luxembourg", 6.1, 49.6},
    {"Madrid", -3.7, 40.4},     {"Milan", 9.2, 45.5},
    {"Moscow", 37.6, 55.8},     {"Nicosia", 33.4, 35.2},
    {"Oslo", 10.8, 59.9},       {"Paris", 2.3, 48.9},
    {"Poznan", 16.9, 52.4},     {"Prague", 14.4, 50.1},
    {"Riga", 24.1, 56.9},       {"Rome", 12.5, 41.9},
    {"Sofia", 23.3, 42.7},      {"Stockholm", 18.1, 59.3},
    {"Tallinn", 24.8, 59.4},    {"TelAviv", 34.8, 32.1},
    {"Vienna", 16.4, 48.2},     {"Vilnius", 25.3, 54.7},
    {"Warsaw", 21.0, 52.2},     {"Zagreb", 16.0, 45.8},
    {"Zurich", 8.5, 47.4},      {"Malta", 14.5, 35.9},
}};

// 61 PoP-to-PoP links (name pairs).
constexpr std::array<std::pair<const char*, const char*>, 61> kLinks = {{
    {"Amsterdam", "London"},     {"Amsterdam", "Frankfurt"},
    {"Amsterdam", "Brussels"},   {"Amsterdam", "Hamburg"},
    {"Amsterdam", "Copenhagen"}, {"Amsterdam", "Dublin"},
    {"London", "Paris"},         {"London", "Dublin"},
    {"London", "Madrid"},        {"London", "Lisbon"},
    {"Paris", "Geneva"},         {"Paris", "Madrid"},
    {"Paris", "Brussels"},       {"Paris", "Luxembourg"},
    {"Frankfurt", "Geneva"},     {"Frankfurt", "Prague"},
    {"Frankfurt", "Hamburg"},    {"Frankfurt", "Vienna"},
    {"Frankfurt", "Luxembourg"}, {"Frankfurt", "Poznan"},
    {"Frankfurt", "TelAviv"},    {"Geneva", "Milan"},
    {"Geneva", "Zurich"},        {"Geneva", "Madrid"},
    {"Zurich", "Milan"},         {"Zurich", "Vienna"},
    {"Milan", "Rome"},           {"Milan", "Vienna"},
    {"Rome", "Malta"},           {"Rome", "Athens"},
    {"Athens", "Nicosia"},       {"Athens", "Sofia"},
    {"Athens", "Istanbul"},      {"Sofia", "Bucharest"},
    {"Sofia", "Belgrade"},       {"Bucharest", "Budapest"},
    {"Bucharest", "Istanbul"},   {"Budapest", "Vienna"},
    {"Budapest", "Zagreb"},      {"Budapest", "Bratislava"},
    {"Belgrade", "Zagreb"},      {"Zagreb", "Ljubljana"},
    {"Ljubljana", "Vienna"},     {"Vienna", "Prague"},
    {"Vienna", "Bratislava"},    {"Prague", "Poznan"},
    {"Poznan", "Warsaw"},        {"Warsaw", "Kaunas"},
    {"Warsaw", "Kiev"},          {"Kaunas", "Vilnius"},
    {"Kaunas", "Riga"},          {"Vilnius", "Kiev"},
    {"Riga", "Tallinn"},         {"Tallinn", "Helsinki"},
    {"Helsinki", "Stockholm"},   {"Stockholm", "Copenhagen"},
    {"Stockholm", "Oslo"},       {"Stockholm", "Moscow"},
    {"Oslo", "Copenhagen"},      {"Copenhagen", "Hamburg"},
    {"TelAviv", "Nicosia"},
}};

// Nine servers at the major PoPs, as in [7]'s GÉANT middlebox setting.
constexpr std::array<const char*, 9> kServers = {
    "Amsterdam", "Frankfurt", "Geneva", "London", "Madrid",
    "Milan",     "Paris",     "Prague", "Vienna",
};

}  // namespace

const std::vector<std::string>& geant_city_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    out.reserve(kCities.size());
    for (const City& c : kCities) out.emplace_back(c.name);
    return out;
  }();
  return names;
}

Topology make_geant(util::Rng& rng, const CapacityOptions& options) {
  Topology topo;
  topo.name = "geant";
  topo.graph = graph::Graph(kCities.size());
  topo.coords.resize(kCities.size());

  std::unordered_map<std::string, graph::VertexId> index;
  for (std::size_t i = 0; i < kCities.size(); ++i) {
    index.emplace(kCities[i].name, static_cast<graph::VertexId>(i));
    // Normalize roughly into the unit square (lon in [-10, 40], lat [30, 62]).
    topo.coords[i].x = (kCities[i].lon + 10.0) / 50.0;
    topo.coords[i].y = (kCities[i].lat - 30.0) / 32.0;
  }

  for (const auto& [a, b] : kLinks) {
    const auto ia = index.find(a);
    const auto ib = index.find(b);
    if (ia == index.end() || ib == index.end()) {
      throw std::logic_error("make_geant: unknown city in link table");
    }
    topo.graph.add_edge(ia->second, ib->second, 1.0);
  }

  topo.servers.clear();
  for (const char* s : kServers) topo.servers.push_back(index.at(s));
  std::sort(topo.servers.begin(), topo.servers.end());

  assign_capacities(topo, rng, options);
  return topo;
}

}  // namespace nfvm::topo
