// GÉANT-like pan-European research network topology.
//
// The paper evaluates on the GÉANT topology [5] with nine servers (placement
// as in Gushchin et al. [7]). The exact historical snapshot is not in the
// paper; this module embeds a 40-node / 61-link approximation of the GÉANT
// PoP-level map. The reproduction only depends on the scale (tens of nodes),
// mesh-like core, and the server count, all of which are preserved
// (documented in DESIGN.md, "Substitutions").
#pragma once

#include <string>
#include <vector>

#include "topology/topology.h"
#include "util/rng.h"

namespace nfvm::topo {

/// Builds the GÉANT-like topology. City coordinates are rough lon/lat
/// normalized into the unit square. Nine fixed servers at the major PoPs.
/// Capacities are drawn from the default paper ranges using `rng`.
Topology make_geant(util::Rng& rng, const CapacityOptions& options = {});

/// City name of each GÉANT vertex (index == VertexId).
const std::vector<std::string>& geant_city_names();

}  // namespace nfvm::topo
