#include "topology/rocketfuel.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace nfvm::topo {

Topology make_isp_like(const std::string& name, const IspOptions& options,
                       util::Rng& rng, const CapacityOptions& caps) {
  const std::size_t n = options.num_nodes;
  const std::size_t m = options.num_links;
  if (n < 2) throw std::invalid_argument("make_isp_like: need >= 2 nodes");
  if (m < n - 1) throw std::invalid_argument("make_isp_like: too few links for connectivity");
  if (m > n * (n - 1) / 2) throw std::invalid_argument("make_isp_like: too many links");
  if (options.num_servers == 0 || options.num_servers > n) {
    throw std::invalid_argument("make_isp_like: bad server count");
  }

  util::Rng wiring(options.structure_seed);

  Topology topo;
  topo.name = name;
  topo.graph = graph::Graph(n);

  std::vector<std::size_t> degree(n, 0);
  // `endpoints` holds one entry per edge endpoint, so sampling an element
  // uniformly samples a vertex proportionally to its degree (+1 smoothing
  // below keeps isolated vertices attachable).
  auto pick_preferential = [&](graph::VertexId exclude) {
    // total weight = sum(degree) + n (the +1 smoothing per vertex)
    std::size_t total = 0;
    for (std::size_t d : degree) total += d + 1;
    for (;;) {
      std::uint64_t roll = wiring.next_below(total);
      for (graph::VertexId v = 0; v < n; ++v) {
        const std::size_t w = degree[v] + 1;
        if (roll < w) {
          if (v == exclude) break;  // resample
          return v;
        }
        roll -= w;
      }
    }
  };

  // Spanning tree: attach node i to a degree-biased earlier node.
  for (graph::VertexId i = 1; i < n; ++i) {
    std::size_t total = 0;
    for (graph::VertexId v = 0; v < i; ++v) total += degree[v] + 1;
    std::uint64_t roll = wiring.next_below(total);
    graph::VertexId target = 0;
    for (graph::VertexId v = 0; v < i; ++v) {
      const std::size_t w = degree[v] + 1;
      if (roll < w) {
        target = v;
        break;
      }
      roll -= w;
    }
    topo.graph.add_edge(i, target, 1.0);
    ++degree[i];
    ++degree[target];
  }

  // Extra links with preferential endpoints, rejecting duplicates/self-loops.
  std::size_t added = n - 1;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 200 * m + 10000;
  while (added < m) {
    if (++attempts > max_attempts) {
      throw std::runtime_error("make_isp_like: could not place all links");
    }
    const graph::VertexId u = pick_preferential(graph::kInvalidVertex);
    const graph::VertexId v = pick_preferential(u);
    if (topo.graph.find_edge(u, v).has_value()) continue;
    topo.graph.add_edge(u, v, 1.0);
    ++degree[u];
    ++degree[v];
    ++added;
  }

  // Server placement: ISP middleboxes sit at well-connected PoPs; bias the
  // sample toward high-degree switches using the *caller's* rng so different
  // simulation runs see different placements on the same wiring.
  std::vector<graph::VertexId> by_degree(n);
  for (graph::VertexId v = 0; v < n; ++v) by_degree[v] = v;
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](graph::VertexId a, graph::VertexId b) {
                     return degree[a] > degree[b];
                   });
  // Choose servers from the top half (uniformly within it).
  const std::size_t pool = std::max<std::size_t>(options.num_servers, (n + 1) / 2);
  const std::vector<std::size_t> picks =
      rng.sample_without_replacement(std::min(pool, n), options.num_servers);
  topo.servers.clear();
  for (std::size_t p : picks) topo.servers.push_back(by_degree[p]);
  std::sort(topo.servers.begin(), topo.servers.end());

  assign_capacities(topo, rng, caps);
  return topo;
}

Topology make_as1755(util::Rng& rng, const CapacityOptions& caps) {
  IspOptions opts;
  opts.num_nodes = 87;
  opts.num_links = 161;
  opts.num_servers = 9;
  opts.structure_seed = 0x1755;
  return make_isp_like("as1755", opts, rng, caps);
}

Topology make_as4755(util::Rng& rng, const CapacityOptions& caps) {
  IspOptions opts;
  opts.num_nodes = 121;
  opts.num_links = 228;
  opts.num_servers = 12;
  opts.structure_seed = 0x4755;
  return make_isp_like("as4755", opts, rng, caps);
}

}  // namespace nfvm::topo
