// Rocketfuel-like ISP topologies (AS1755 "Ebone" and AS4755 "VSNL").
//
// The paper uses the Rocketfuel ISP maps [20], which are measurement data we
// do not ship. We substitute deterministic synthetic topologies that match
// the published PoP-level node/link counts (AS1755: 87/161, AS4755: 121/228)
// and reproduce the heavy-tailed degree distribution of ISP graphs via
// preferential attachment. The online/offline experiments depend on scale,
// diameter and degree skew, which this construction matches (DESIGN.md,
// "Substitutions").
#pragma once

#include <cstdint>
#include <string>

#include "topology/topology.h"
#include "util/rng.h"

namespace nfvm::topo {

struct IspOptions {
  std::size_t num_nodes = 0;
  std::size_t num_links = 0;  // must be >= num_nodes - 1
  std::size_t num_servers = 0;
  /// Structure seed: the wiring is a pure function of this value, so the
  /// "AS1755-like" graph is identical across runs and machines.
  std::uint64_t structure_seed = 0;
};

/// Generates a connected preferential-attachment ISP-like topology.
/// Capacities and the (degree-biased) server placement are drawn from `rng`.
/// Throws std::invalid_argument on inconsistent options.
Topology make_isp_like(const std::string& name, const IspOptions& options,
                       util::Rng& rng, const CapacityOptions& caps = {});

/// AS1755 (Ebone) stand-in: 87 nodes, 161 links, 9 servers.
Topology make_as1755(util::Rng& rng, const CapacityOptions& caps = {});

/// AS4755 (VSNL) stand-in: 121 nodes, 228 links, 12 servers.
Topology make_as4755(util::Rng& rng, const CapacityOptions& caps = {});

}  // namespace nfvm::topo
