#include "topology/topology.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/components.h"

namespace nfvm::topo {

bool Topology::is_server(graph::VertexId v) const {
  return std::binary_search(servers.begin(), servers.end(), v);
}

void choose_servers(Topology& topo, std::size_t count, util::Rng& rng) {
  if (count == 0 || count > topo.num_switches()) {
    throw std::invalid_argument("choose_servers: bad server count");
  }
  const std::vector<std::size_t> picks =
      rng.sample_without_replacement(topo.num_switches(), count);
  topo.servers.clear();
  topo.servers.reserve(count);
  for (std::size_t p : picks) topo.servers.push_back(static_cast<graph::VertexId>(p));
  std::sort(topo.servers.begin(), topo.servers.end());
}

void choose_servers_fraction(Topology& topo, double fraction, util::Rng& rng) {
  if (!(fraction > 0.0) || fraction > 1.0) {
    throw std::invalid_argument("choose_servers_fraction: fraction outside (0,1]");
  }
  const auto count = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(topo.num_switches())));
  choose_servers(topo, std::max<std::size_t>(count, 1), rng);
}

void assign_capacities(Topology& topo, util::Rng& rng, const CapacityOptions& options) {
  if (options.min_bandwidth_mbps <= 0 ||
      options.min_bandwidth_mbps > options.max_bandwidth_mbps ||
      options.min_compute_mhz <= 0 ||
      options.min_compute_mhz > options.max_compute_mhz) {
    throw std::invalid_argument("assign_capacities: invalid capacity ranges");
  }
  topo.link_bandwidth.resize(topo.num_links());
  for (double& b : topo.link_bandwidth) {
    b = rng.uniform_real(options.min_bandwidth_mbps, options.max_bandwidth_mbps);
  }
  topo.server_compute.assign(topo.num_switches(), 0.0);
  for (graph::VertexId v : topo.servers) {
    topo.server_compute[v] =
        rng.uniform_real(options.min_compute_mhz, options.max_compute_mhz);
  }
}

void assign_delays(Topology& topo, util::Rng& rng, double min_ms, double max_ms) {
  if (!(min_ms > 0) || min_ms > max_ms) {
    throw std::invalid_argument("assign_delays: invalid delay range");
  }
  topo.link_delay_ms.resize(topo.num_links());
  for (double& d : topo.link_delay_ms) d = rng.uniform_real(min_ms, max_ms);
}

void assign_table_capacities(Topology& topo, double entries_per_switch) {
  if (!(entries_per_switch >= 1)) {
    throw std::invalid_argument("assign_table_capacities: need >= 1 entry");
  }
  topo.switch_table_capacity.assign(topo.num_switches(), entries_per_switch);
}

void validate_topology(const Topology& topo) {
  if (topo.link_bandwidth.size() != topo.num_links()) {
    throw std::logic_error("topology: link_bandwidth size mismatch");
  }
  if (topo.server_compute.size() != topo.num_switches()) {
    throw std::logic_error("topology: server_compute size mismatch");
  }
  if (!topo.coords.empty() && topo.coords.size() != topo.num_switches()) {
    throw std::logic_error("topology: coords size mismatch");
  }
  if (topo.servers.empty()) {
    throw std::logic_error("topology: no servers");
  }
  if (!std::is_sorted(topo.servers.begin(), topo.servers.end())) {
    throw std::logic_error("topology: servers not sorted");
  }
  for (graph::VertexId v : topo.servers) {
    if (!topo.graph.has_vertex(v)) throw std::logic_error("topology: server id out of range");
    if (!(topo.server_compute[v] > 0)) {
      throw std::logic_error("topology: server with non-positive compute capacity");
    }
  }
  for (double b : topo.link_bandwidth) {
    if (!(b > 0)) throw std::logic_error("topology: non-positive link bandwidth");
  }
  if (topo.has_delays()) {
    if (topo.link_delay_ms.size() != topo.num_links()) {
      throw std::logic_error("topology: link_delay_ms size mismatch");
    }
    for (double d : topo.link_delay_ms) {
      if (!(d > 0)) throw std::logic_error("topology: non-positive link delay");
    }
  }
  if (topo.has_table_capacities()) {
    if (topo.switch_table_capacity.size() != topo.num_switches()) {
      throw std::logic_error("topology: switch_table_capacity size mismatch");
    }
    for (double t : topo.switch_table_capacity) {
      if (!(t >= 1)) throw std::logic_error("topology: table capacity < 1");
    }
  }
  if (!graph::is_connected(topo.graph)) {
    throw std::logic_error("topology: graph is not connected");
  }
}

}  // namespace nfvm::topo
