// Physical SDN topologies: switches, links, attached servers, capacities.
//
// Matches the paper's system model (Section III-A): G = (V, E) of SDN
// switches, a subset V_S with attached servers, computing capacity C_v per
// server and bandwidth capacity B_e per link.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace nfvm::topo {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

struct Topology {
  std::string name;
  /// Switch-level connectivity. Edge weights are hop weights (1.0); the
  /// algorithms build their own per-request weighted graphs on top.
  graph::Graph graph;
  /// Optional embedding coordinates (empty when the source has none).
  std::vector<Point> coords;
  /// Switches with attached servers (V_S), sorted ascending.
  std::vector<graph::VertexId> servers;
  /// B_e, Mbps, indexed by EdgeId.
  std::vector<double> link_bandwidth;
  /// C_v, MHz, indexed by VertexId; 0 for switches without a server.
  std::vector<double> server_compute;
  /// Optional propagation delay per link, ms, indexed by EdgeId. Empty when
  /// the deployment does not model delays (the base paper does not; the
  /// delay-constrained extension requires it - see core/delay.h).
  std::vector<double> link_delay_ms;
  /// Optional forwarding-table capacity per switch (flow entries), indexed
  /// by VertexId. Empty = unconstrained. Every admitted multicast group
  /// installs one entry on each switch its tree touches - the node-capacity
  /// model of Huang et al. [10] from the paper's related work.
  std::vector<double> switch_table_capacity;

  bool has_delays() const noexcept { return !link_delay_ms.empty(); }
  bool has_table_capacities() const noexcept {
    return !switch_table_capacity.empty();
  }

  std::size_t num_switches() const noexcept { return graph.num_vertices(); }
  std::size_t num_links() const noexcept { return graph.num_edges(); }
  bool is_server(graph::VertexId v) const;
};

/// Capacity ranges from the paper's evaluation settings (Section VI-A).
struct CapacityOptions {
  double min_bandwidth_mbps = 1000.0;
  double max_bandwidth_mbps = 10000.0;
  double min_compute_mhz = 4000.0;
  double max_compute_mhz = 12000.0;
};

/// Chooses `count` server switches uniformly at random and records them in
/// `topo.servers` (sorted). Throws std::invalid_argument if count exceeds
/// the switch count or is zero.
void choose_servers(Topology& topo, std::size_t count, util::Rng& rng);

/// Chooses ceil(fraction * |V|) servers (the paper uses 10%).
void choose_servers_fraction(Topology& topo, double fraction, util::Rng& rng);

/// Draws link bandwidths and server computing capacities uniformly from the
/// configured ranges. Must be called after the server set is fixed.
void assign_capacities(Topology& topo, util::Rng& rng,
                       const CapacityOptions& options = {});

/// Draws per-link propagation delays uniformly from [min_ms, max_ms].
/// Throws std::invalid_argument for a non-positive or inverted range.
void assign_delays(Topology& topo, util::Rng& rng, double min_ms = 0.1,
                   double max_ms = 2.0);

/// Gives every switch the same forwarding-table capacity (flow entries).
/// Throws std::invalid_argument for entries < 1.
void assign_table_capacities(Topology& topo, double entries_per_switch);

/// Validates internal consistency (sizes, sortedness, server capacities
/// positive, connected graph); throws std::logic_error on violation.
void validate_topology(const Topology& topo);

}  // namespace nfvm::topo
