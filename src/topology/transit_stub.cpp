#include "topology/transit_stub.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace nfvm::topo {

Topology make_transit_stub(std::size_t num_nodes, util::Rng& rng,
                           const TransitStubOptions& options) {
  if (num_nodes < 8) {
    throw std::invalid_argument("make_transit_stub: need >= 8 nodes");
  }
  if (options.mean_stub_size < 2) {
    throw std::invalid_argument("make_transit_stub: mean_stub_size must be >= 2");
  }

  std::size_t transit = options.transit_nodes;
  if (transit == 0) transit = std::max<std::size_t>(3, num_nodes / 20);
  if (transit + options.mean_stub_size > num_nodes) {
    throw std::invalid_argument("make_transit_stub: too many transit nodes");
  }

  Topology topo;
  topo.name = "transit-stub-" + std::to_string(num_nodes);
  topo.graph = graph::Graph(num_nodes);

  // Vertex ids: [0, transit) are core switches; the rest are stub switches.
  // Core: ring plus random chords so the core is 2-connected and small-world.
  for (graph::VertexId t = 0; t < transit; ++t) {
    topo.graph.add_edge(t, static_cast<graph::VertexId>((t + 1) % transit), 1.0);
  }
  if (transit > 3) {
    for (graph::VertexId a = 0; a < transit; ++a) {
      for (graph::VertexId b = a + 2; b < transit; ++b) {
        if (a == 0 && b + 1 == transit) continue;  // ring edge already
        if (rng.bernoulli(options.transit_extra_edge_prob)) {
          topo.graph.add_edge(a, b, 1.0);
        }
      }
    }
  }

  // Partition the remaining switches into stub domains of ~mean_stub_size,
  // assigned round-robin to transit nodes.
  const std::size_t stub_total = num_nodes - transit;
  const std::size_t num_stubs =
      std::max<std::size_t>(1, (stub_total + options.mean_stub_size / 2) /
                                   options.mean_stub_size);
  graph::VertexId next = static_cast<graph::VertexId>(transit);
  for (std::size_t s = 0; s < num_stubs; ++s) {
    const std::size_t remaining_stubs = num_stubs - s;
    const std::size_t remaining_nodes = num_nodes - next;
    // Spread remaining nodes evenly over remaining stubs.
    const std::size_t size = remaining_nodes / remaining_stubs;
    if (size == 0) break;
    const graph::VertexId first = next;
    next += static_cast<graph::VertexId>(size);

    // Random spanning tree inside the stub: attach each node to a random
    // earlier node of the same stub.
    for (graph::VertexId v = first + 1; v < next; ++v) {
      const graph::VertexId parent =
          first + static_cast<graph::VertexId>(rng.next_below(v - first));
      topo.graph.add_edge(v, parent, 1.0);
    }
    // Extra intra-stub edges.
    for (graph::VertexId a = first; a < next; ++a) {
      for (graph::VertexId b = a + 1; b < next; ++b) {
        if (topo.graph.find_edge(a, b).has_value()) continue;
        if (rng.bernoulli(options.stub_extra_edge_prob)) {
          topo.graph.add_edge(a, b, 1.0);
        }
      }
    }
    // Uplink: one random stub switch to this stub's transit node.
    const graph::VertexId gateway =
        first + static_cast<graph::VertexId>(rng.next_below(next - first));
    const graph::VertexId attach =
        static_cast<graph::VertexId>(s % transit);
    topo.graph.add_edge(gateway, attach, 1.0);
  }

  choose_servers_fraction(topo, options.server_fraction, rng);
  if (options.assign_capacities) {
    assign_capacities(topo, rng, options.capacities);
  } else {
    topo.link_bandwidth.assign(topo.num_links(), 0.0);
    topo.server_compute.assign(topo.num_switches(), 0.0);
  }
  return topo;
}

}  // namespace nfvm::topo
