// GT-ITM transit-stub topologies (Zegura, Calvert, Bhattacharjee).
//
// GT-ITM [6], the generator the paper uses, is best known for its
// hierarchical transit-stub model: a small, well-connected transit core with
// stub domains (campus/edge networks) hanging off each transit node.
// Destinations scattered across stub domains force multicast traffic through
// the core repeatedly - the regime where placing several service-chain
// instances (K > 1) visibly beats a single instance. The flat Waxman model
// (waxman.h) complements this with homogeneous random graphs.
#pragma once

#include <cstddef>

#include "topology/topology.h"
#include "util/rng.h"

namespace nfvm::topo {

struct TransitStubOptions {
  /// Number of transit (core) switches; 0 = pick ~max(3, n/20).
  std::size_t transit_nodes = 0;
  /// Average stub-domain size; stub count adjusts to reach `num_nodes`.
  std::size_t mean_stub_size = 6;
  /// Probability of an extra intra-stub edge beyond the spanning tree,
  /// per candidate pair.
  double stub_extra_edge_prob = 0.25;
  /// Extra transit-transit edges beyond the core ring, per candidate pair.
  double transit_extra_edge_prob = 0.5;
  /// Fraction of switches that get servers (paper: 10%).
  double server_fraction = 0.10;
  bool assign_capacities = true;
  CapacityOptions capacities = {};
};

/// Generates a connected transit-stub topology with exactly `num_nodes`
/// switches. Deterministic given `rng`. Throws std::invalid_argument for
/// num_nodes < 8 or inconsistent options.
Topology make_transit_stub(std::size_t num_nodes, util::Rng& rng,
                           const TransitStubOptions& options = {});

}  // namespace nfvm::topo
