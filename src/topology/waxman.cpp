#include "topology/waxman.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "graph/components.h"

namespace nfvm::topo {
namespace {

double euclid(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

Topology make_waxman(std::size_t num_nodes, util::Rng& rng,
                     const WaxmanOptions& options) {
  if (num_nodes < 2) throw std::invalid_argument("make_waxman: need >= 2 nodes");
  if (!(options.alpha > 0) || !(options.beta > 0) || options.beta > 1.0) {
    throw std::invalid_argument("make_waxman: alpha must be > 0, beta in (0,1]");
  }

  Topology topo;
  topo.name = "waxman-" + std::to_string(num_nodes);
  topo.graph = graph::Graph(num_nodes);
  topo.coords.resize(num_nodes);
  for (Point& p : topo.coords) {
    p.x = rng.uniform01();
    p.y = rng.uniform01();
  }

  const double max_dist = std::sqrt(2.0);  // unit square diagonal
  double beta = options.beta;
  if (options.target_mean_degree > 0.0) {
    // Rescale beta so that, for these coordinates, the expected edge count
    // is target_mean_degree * n / 2.
    double locality_sum = 0.0;
    for (graph::VertexId u = 0; u < num_nodes; ++u) {
      for (graph::VertexId v = u + 1; v < num_nodes; ++v) {
        locality_sum += std::exp(
            -euclid(topo.coords[u], topo.coords[v]) / (options.alpha * max_dist));
      }
    }
    const double target_edges =
        options.target_mean_degree * static_cast<double>(num_nodes) / 2.0;
    beta = std::min(1.0, target_edges / std::max(locality_sum, 1e-12));
  }
  for (graph::VertexId u = 0; u < num_nodes; ++u) {
    for (graph::VertexId v = u + 1; v < num_nodes; ++v) {
      const double d = euclid(topo.coords[u], topo.coords[v]);
      const double p = beta * std::exp(-d / (options.alpha * max_dist));
      if (rng.bernoulli(p)) topo.graph.add_edge(u, v, 1.0);
    }
  }

  // Connectivity repair: while more than one component, add the shortest
  // candidate edge between the first component and any other.
  for (;;) {
    const graph::Components comps = graph::connected_components(topo.graph);
    if (comps.count <= 1) break;
    double best = std::numeric_limits<double>::infinity();
    graph::VertexId bu = graph::kInvalidVertex;
    graph::VertexId bv = graph::kInvalidVertex;
    for (graph::VertexId u = 0; u < num_nodes; ++u) {
      if (comps.component[u] != 0) continue;
      for (graph::VertexId v = 0; v < num_nodes; ++v) {
        if (comps.component[v] == 0) continue;
        const double d = euclid(topo.coords[u], topo.coords[v]);
        if (d < best) {
          best = d;
          bu = u;
          bv = v;
        }
      }
    }
    topo.graph.add_edge(bu, bv, 1.0);
  }

  choose_servers_fraction(topo, options.server_fraction, rng);
  if (options.assign_capacities) {
    assign_capacities(topo, rng, options.capacities);
  } else {
    topo.link_bandwidth.assign(topo.num_links(), 0.0);
    topo.server_compute.assign(topo.num_switches(), 0.0);
  }
  return topo;
}

}  // namespace nfvm::topo
