// GT-ITM-style random topologies (Waxman model).
//
// The paper generates its 50-250 node SDNs with GT-ITM [6]; GT-ITM's flat
// random graphs are Waxman graphs: vertices are placed uniformly in the unit
// square and an edge (u, v) exists with probability
//     P(u, v) = beta * exp(-d(u, v) / (alpha * L)),
// where d is Euclidean distance and L the maximum possible distance. We add
// a connectivity repair pass (joining nearest components) because the
// evaluation assumes connected SDNs.
#pragma once

#include <cstddef>

#include "topology/topology.h"
#include "util/rng.h"

namespace nfvm::topo {

struct WaxmanOptions {
  /// Locality parameter: larger alpha -> longer edges become likely.
  double alpha = 0.25;
  /// Density parameter: larger beta -> more edges overall.
  double beta = 0.4;
  /// When > 0, beta is rescaled (given the drawn coordinates) so the
  /// expected mean degree equals this value - GT-ITM evaluations keep the
  /// degree roughly constant across network sizes, whereas a fixed beta
  /// densifies quadratically. The paper's sweeps use ~4.
  double target_mean_degree = 0.0;
  /// Fraction of switches that get servers (paper: 10%).
  double server_fraction = 0.10;
  /// Assign link/server capacities from the default paper ranges.
  bool assign_capacities = true;
  CapacityOptions capacities = {};
};

/// Generates a connected Waxman topology with `num_nodes` switches.
/// Deterministic given `rng` state. Throws std::invalid_argument for
/// num_nodes < 2 or out-of-range parameters.
Topology make_waxman(std::size_t num_nodes, util::Rng& rng,
                     const WaxmanOptions& options = {});

}  // namespace nfvm::topo
