#include "util/arena.h"

#include <algorithm>
#include <utility>

namespace nfvm::util {

Arena::Arena(std::size_t initial_capacity) { block_.resize(initial_capacity); }

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  std::size_t offset = (used_ + align - 1) & ~(align - 1);
  if (offset + bytes > block_.size()) {
    // Outgrown: retire the live block (outstanding pointers stay valid
    // until reset) and start a bigger one. Doubling amortizes to O(1)
    // growths per epoch; after warm-up this path never runs.
    const std::size_t next_size =
        std::max(block_.size() * 2, offset + bytes + align);
    retired_.push_back(std::move(block_));
    block_.clear();
    block_.resize(next_size);
    used_ = 0;
    ++block_generation_;
    offset = 0;
  }
  used_ = offset + bytes;
  return block_.data() + offset;
}

void Arena::reset() {
  retired_.clear();
  used_ = 0;
  ++block_generation_;
}

Arena& Arena::thread_local_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace nfvm::util
