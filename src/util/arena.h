// Bump-pointer arena for short-lived, trivially-destructible records.
//
// The per-candidate hot paths (RootedTree construction during online
// admission Phase C, AuxOverlay realization in Appro_Multi) repeatedly
// build small scratch structures — adjacency arrays, edge-record buffers —
// whose lifetimes nest perfectly: allocate, use, discard, repeat. Routing
// them through the general-purpose heap costs an allocator round trip per
// structure per candidate. An Arena turns each allocation into a pointer
// bump against a block that is reused forever after warm-up.
//
// Lifetime rules (see docs/performance.md, "SP engine internals"):
//  * allocate()/make_span() return uninitialized storage valid until the
//    enclosing scope is rewound or the arena is reset.
//  * ArenaScope is the intended API: mark on entry, rewind on exit (LIFO
//    nesting, exception-safe). Rewinding reclaims the bytes in O(1).
//  * If an allocation outgrows the live block, the block is retired (NOT
//    freed — outstanding pointers stay valid) and a larger one starts;
//    rewinding across a growth is a no-op and the memory is reclaimed at
//    the next reset()/scope-chain unwind to a pre-growth marker.
//  * reset() frees retired blocks and rewinds the live one: the epoch
//    boundary between requests.
//
// Thread model: an Arena is single-threaded. thread_local_arena() gives
// each thread its own (the pattern for pool workers building RootedTrees
// in parallel); per-request arenas (WorkContext) are confined to the
// request's sequential phases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace nfvm::util {

class Arena {
 public:
  explicit Arena(std::size_t initial_capacity = kDefaultCapacity);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage of `bytes` bytes aligned to `align` (a power of
  /// two). Valid until the covering rewind()/reset().
  void* allocate(std::size_t bytes, std::size_t align);

  /// Typed span of `count` uninitialized T slots. T must be trivially
  /// destructible (the arena never runs destructors).
  template <typename T>
  std::span<T> make_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is reclaimed without destructors");
    T* data = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    return {data, count};
  }

  /// Position marker for LIFO rewinding (see ArenaScope).
  struct Marker {
    std::uint64_t block_generation = 0;
    std::size_t used = 0;
  };
  Marker mark() const noexcept { return Marker{block_generation_, used_}; }

  /// Reclaims everything allocated since `m` — O(1). If the arena grew a
  /// new block since the mark, the rewind is deferred: pointers stay valid
  /// and the memory comes back at the next reset().
  void rewind(Marker m) noexcept {
    if (m.block_generation == block_generation_) used_ = m.used;
  }

  /// Epoch reset: frees retired blocks, rewinds the live one to empty.
  /// Every pointer previously handed out becomes invalid.
  void reset();

  /// Bytes currently allocated out of the live block.
  std::size_t bytes_used() const noexcept { return used_; }
  /// Capacity of the live block (retired blocks excluded).
  std::size_t capacity() const noexcept { return block_.size(); }

  /// Per-thread arena for call sites without a natural owner (e.g.
  /// RootedTree scratch inside ThreadPool workers). Confine use to
  /// ArenaScope so independent call sites on one thread compose.
  static Arena& thread_local_arena();

  static constexpr std::size_t kDefaultCapacity = 64 * 1024;

 private:
  std::vector<std::byte> block_;
  std::size_t used_ = 0;
  std::uint64_t block_generation_ = 0;
  /// Blocks outgrown since the last reset; kept alive so pointers into
  /// them stay valid until the epoch ends.
  std::vector<std::vector<std::byte>> retired_;
};

/// RAII mark/rewind pair. Scopes must nest LIFO (stack order), which
/// C++ scoping enforces for automatic storage.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(&arena), marker_(arena.mark()) {}
  ~ArenaScope() { arena_->rewind(marker_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  Arena& arena() noexcept { return *arena_; }

 private:
  Arena* arena_;
  Arena::Marker marker_;
};

}  // namespace nfvm::util
