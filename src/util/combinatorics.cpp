#include "util/combinatorics.h"

#include <algorithm>
#include <limits>

namespace nfvm::util {
namespace {

constexpr std::size_t kSaturated = std::numeric_limits<std::size_t>::max();

}  // namespace

bool next_combination(std::vector<std::size_t>& idx, std::size_t n) {
  const std::size_t k = idx.size();
  for (std::size_t i = k; i-- > 0;) {
    if (idx[i] + (k - i) < n) {
      ++idx[i];
      for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
      return true;
    }
  }
  return false;
}

std::size_t count_combinations(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::size_t result = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    // result holds C(n - k + i - 1, i - 1); multiplying by (n - k + i)
    // before dividing by i keeps every intermediate value integral.
    const std::size_t factor = n - k + i;
    if (result > kSaturated / factor) return kSaturated;
    result = result * factor / i;
  }
  return result;
}

std::size_t count_combinations_upto(std::size_t n, std::size_t k) {
  std::size_t total = 0;
  for (std::size_t j = 1; j <= std::min(k, n); ++j) {
    total = saturating_add(total, count_combinations(n, j));
    if (total == kSaturated) break;
  }
  return total;
}

std::size_t saturating_add(std::size_t a, std::size_t b) {
  return a > kSaturated - b ? kSaturated : a + b;
}

}  // namespace nfvm::util
