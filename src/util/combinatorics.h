// K-combination enumeration and counting, shared by the offline sweeps
// (Appro_Multi's legacy sweep, the exact offline solvers and the
// branch-and-bound combination search).
#pragma once

#include <cstddef>
#include <vector>

namespace nfvm::util {

/// Advances `idx` (strictly increasing indices into [0, n)) to the next
/// K-combination in lexicographic order; false when exhausted. An empty
/// `idx` (k == 0) has no successor and returns false.
bool next_combination(std::vector<std::size_t>& idx, std::size_t n);

/// C(n, k); saturates at SIZE_MAX instead of overflowing. C(n, 0) == 1 and
/// k > n yields 0.
std::size_t count_combinations(std::size_t n, std::size_t k);

/// Sum of C(n, j) for j in [1, k] — the number of nonempty combinations of
/// at most k elements. Saturates at SIZE_MAX.
std::size_t count_combinations_upto(std::size_t n, std::size_t k);

/// a + b, saturating at SIZE_MAX. Pairs with the saturating counters above
/// so pruned-subtree accounting can never wrap.
std::size_t saturating_add(std::size_t a, std::size_t b);

}  // namespace nfvm::util
