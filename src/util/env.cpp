#include "util/env.h"

#include <cstdlib>

namespace nfvm::util {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

double env_double(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

}  // namespace nfvm::util
