// Environment-variable knobs for the benchmark harness.
//
// Every bench binary runs with sensible defaults but can be scaled up or down
// without recompiling:
//   NFVM_BENCH_REQUESTS  - requests averaged per data point (offline benches)
//   NFVM_BENCH_SCALE     - global multiplier applied to workload sizes
#pragma once

#include <cstdint>
#include <string>

namespace nfvm::util {

/// Reads an integer environment variable; returns `fallback` when the
/// variable is unset or unparsable.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Reads a floating-point environment variable with a fallback.
double env_double(const std::string& name, double fallback);

}  // namespace nfvm::util
