#include "util/rng.h"

#include <cmath>

namespace nfvm::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // cannot produce four zero words, but keep the guard for clarity.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() noexcept {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_real: lo > hi");
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

double Rng::exponential(double rate) {
  if (!(rate > 0)) throw std::invalid_argument("Rng::exponential: rate must be > 0");
  double u = uniform01();
  // uniform01 can return 0; shift into (0, 1] for the log.
  if (u <= 0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t population,
                                                         std::size_t count) {
  if (count > population) {
    throw std::invalid_argument(
        "Rng::sample_without_replacement: count exceeds population");
  }
  // Partial Fisher-Yates over an index vector. Memory is O(population),
  // which is fine for the graph sizes this library targets.
  std::vector<std::size_t> indices(population);
  for (std::size_t i = 0; i < population; ++i) indices[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(population - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

Rng Rng::split() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace nfvm::util
