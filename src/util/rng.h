// Deterministic pseudo-random number generation for reproducible simulations.
//
// All randomness in the library flows through `Rng`, a xoshiro256** generator
// seeded via splitmix64. Unlike std::mt19937 + std::uniform_*_distribution,
// the output sequence here is fully specified by this code, so test and
// benchmark results are reproducible across standard libraries and platforms.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace nfvm::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded with splitmix64.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire stream is determined by `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given rate (> 0).
  double exponential(double rate);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `count` distinct values from [0, population) in random order.
  /// Throws std::invalid_argument if count > population.
  std::vector<std::size_t> sample_without_replacement(std::size_t population,
                                                      std::size_t count);

  /// Derives an independent child generator; useful to decorrelate
  /// subsystems that draw in interleaved order.
  Rng split() noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace nfvm::util
