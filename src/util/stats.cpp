#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace nfvm::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

void SampleSet::add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double SampleSet::sum() const noexcept {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double SampleSet::mean() const noexcept {
  return values_.empty() ? 0.0 : sum() / static_cast<double>(values_.size());
}

double SampleSet::stddev() const noexcept {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double SampleSet::min() const {
  if (values_.empty()) throw std::out_of_range("SampleSet::min: empty");
  ensure_sorted();
  return values_.front();
}

double SampleSet::max() const {
  if (values_.empty()) throw std::out_of_range("SampleSet::max: empty");
  ensure_sorted();
  return values_.back();
}

double SampleSet::quantile(double q) const {
  if (values_.empty()) throw std::out_of_range("SampleSet::quantile: empty");
  if (q < 0.0 || q > 1.0) throw std::out_of_range("SampleSet::quantile: q outside [0,1]");
  ensure_sorted();
  if (values_.size() == 1) return values_.front();
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

}  // namespace nfvm::util
