// Streaming summary statistics used by the benchmark harness and the
// simulation metrics layer.
#pragma once

#include <cstddef>
#include <vector>

namespace nfvm::util {

/// Single-pass accumulator for count/mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double sum() const noexcept { return sum_; }
  /// Mean of the observations; 0 when empty.
  double mean() const noexcept;
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Min/max of the observations; 0 when empty.
  double min() const noexcept;
  double max() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retaining accumulator that additionally supports exact quantiles.
/// Keeps all observations; intended for benchmark-scale sample counts.
class SampleSet {
 public:
  void add(double x);
  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }
  double sum() const noexcept;
  double mean() const noexcept;
  double stddev() const noexcept;
  double min() const;
  double max() const;
  /// Quantile in [0, 1] via linear interpolation between order statistics.
  /// Throws std::out_of_range when empty or q outside [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& values() const noexcept { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

}  // namespace nfvm::util
