#include "util/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nfvm::util {

std::string format_double(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: needs at least one column");
}

Table& Table::begin_row() {
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::add(const std::string& value) {
  if (rows_.empty()) throw std::logic_error("Table::add before begin_row");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::add(const char* value) { return add(std::string(value)); }

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(long long value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

void Table::print(std::ostream& os) const {
  for (const auto& row : rows_) {
    if (row.size() != columns_.size()) {
      throw std::logic_error("Table::print: row width does not match header");
    }
  }
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  os << "#";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << columns_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    os << ' ';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << row[c];
    }
    os << '\n';
  }
}

}  // namespace nfvm::util
