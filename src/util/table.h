// Aligned plain-text table printer. Every benchmark binary prints its
// results through this so that the output of the harness is uniform and
// trivially machine-parsable (`#`-prefixed metadata, whitespace-separated
// columns).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nfvm::util {

class Table {
 public:
  /// `columns` become the header row.
  explicit Table(std::vector<std::string> columns);

  /// Starts a new row; values are appended with the add_* calls below.
  Table& begin_row();
  Table& add(const std::string& value);
  Table& add(const char* value);
  Table& add(double value, int precision = 3);
  Table& add(std::size_t value);
  Table& add(long long value);
  Table& add(int value);

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_columns() const noexcept { return columns_.size(); }
  /// Cell accessor (row-major). Throws std::out_of_range on bad indices.
  const std::string& cell(std::size_t row, std::size_t col) const;
  /// Header name of column `col`. Throws std::out_of_range on bad indices.
  const std::string& column(std::size_t col) const { return columns_.at(col); }

  /// Renders the aligned table. Throws std::logic_error if any row has a
  /// different number of cells than the header.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string format_double(double value, int precision = 3);

}  // namespace nfvm::util
