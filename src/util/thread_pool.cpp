#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/env.h"

namespace nfvm::util {
namespace {

/// Set while the current thread is a pool worker executing region bodies;
/// a nested parallel_for from such a thread must run inline rather than
/// wait on the pool it is part of.
thread_local bool t_in_pool_worker = false;

void run_inline(std::size_t count, const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < count; ++i) body(i);
}

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  // One region at a time: the submitting thread holds run_mu for the whole
  // region, so a second thread arriving mid-region fails the try_lock and
  // runs inline instead of blocking.
  std::mutex run_mu;

  // Region state. body/count are published under state_mu before workers
  // observe the new region_seq, and cleared only after `drainers` drops to
  // zero, so the lock-free reads inside the claim loop are safe.
  std::mutex state_mu;
  std::condition_variable cv_work;  // workers wait here for a region
  std::condition_variable cv_done;  // submitter waits here for completion
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  std::size_t completed = 0;
  std::size_t drainers = 0;      // threads currently inside the claim loop
  std::uint64_t region_seq = 0;  // bumped per region so workers wake once each
  bool shutdown = false;
  std::exception_ptr first_error;

  explicit Impl(std::size_t num_threads) {
    const std::size_t spawned = num_threads > 1 ? num_threads - 1 : 0;
    workers.reserve(spawned);
    for (std::size_t i = 0; i < spawned; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(state_mu);
      shutdown = true;
    }
    cv_work.notify_all();
    for (std::thread& t : workers) t.join();
  }

  void worker_loop() {
    t_in_pool_worker = true;
    std::uint64_t seen_seq = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(state_mu);
        cv_work.wait(lock, [&] { return shutdown || region_seq != seen_seq; });
        if (shutdown) return;
        seen_seq = region_seq;
        ++drainers;
      }
      drain_region();
    }
  }

  /// Claims and executes indices until the region is exhausted. The caller
  /// must have incremented `drainers` under state_mu first.
  void drain_region() {
    std::size_t done_here = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state_mu);
        if (!first_error) first_error = std::current_exception();
      }
      ++done_here;
    }
    {
      std::lock_guard<std::mutex> lock(state_mu);
      completed += done_here;
      --drainers;
      if (completed == count && drainers == 0) cv_done.notify_all();
    }
  }

  void run_region(std::size_t n, const std::function<void(std::size_t)>& fn) {
    {
      std::unique_lock<std::mutex> lock(state_mu);
      // A worker that woke late for an already-finished region may still be
      // in its (empty) claim loop; let it leave before republishing state.
      cv_done.wait(lock, [&] { return drainers == 0; });
      body = &fn;
      count = n;
      completed = 0;
      first_error = nullptr;
      next.store(0, std::memory_order_relaxed);
      ++region_seq;
      ++drainers;  // the submitter works too
    }
    cv_work.notify_all();
    drain_region();
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(state_mu);
      cv_done.wait(lock, [&] { return completed == count && drainers == 0; });
      body = nullptr;
      error = first_error;
    }
    if (error) std::rethrow_exception(error);
  }
};

ThreadPool::ThreadPool(std::size_t num_threads)
    : impl_(std::make_unique<Impl>(num_threads)) {}

ThreadPool::~ThreadPool() = default;

std::size_t ThreadPool::num_threads() const noexcept {
  return impl_->workers.size() + 1;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  NFVM_COUNTER_ADD("pool.tasks", count);
  if (count == 1 || impl_->workers.empty() || t_in_pool_worker) {
    run_inline(count, body);
    return;
  }
  // Another region in flight on this pool (e.g. a caller above us in the
  // stack) — serialize instead of deadlocking on its completion.
  std::unique_lock<std::mutex> region(impl_->run_mu, std::try_to_lock);
  if (!region.owns_lock()) {
    run_inline(count, body);
    return;
  }
  NFVM_COUNTER_INC("pool.parallel_regions");
  impl_->run_region(count, body);
}

namespace {

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::size_t clamp_threads(std::int64_t n) {
  return static_cast<std::size_t>(std::clamp<std::int64_t>(n, 1, 256));
}

}  // namespace

ThreadPool& ThreadPool::global() {
  auto& slot = global_pool_slot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>(clamp_threads(env_int("NFVM_THREADS", 1)));
  }
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t num_threads) {
  global_pool_slot() =
      std::make_unique<ThreadPool>(clamp_threads(static_cast<std::int64_t>(num_threads)));
}

}  // namespace nfvm::util
