// Minimal fixed-size worker pool for deterministic index fan-out.
//
// The only primitive the library needs is parallel_for(count, body):
// run body(i) for every i in [0, count), blocking until all complete.
// Callers keep determinism by writing results into slot i and aggregating
// in index order afterwards — the schedule never leaks into the output.
//
// A pool with one thread (the default) executes everything inline in index
// order, so `--threads 1` / unset NFVM_THREADS is bit-identical to the
// pre-pool code by construction. Nested parallel_for calls (e.g.
// Appro_Multi fanning out combinations whose Steiner solver fans out
// terminal Dijkstras) serialize instead of deadlocking: a pool worker, or
// any thread arriving while a region is in flight, runs its loop inline.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace nfvm::util {

class ThreadPool {
 public:
  /// Spawns num_threads - 1 workers (the calling thread participates in
  /// every region). num_threads <= 1 spawns nothing.
  explicit ThreadPool(std::size_t num_threads = 1);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const noexcept;

  /// Runs body(i) for every i in [0, count); returns when all are done.
  /// Runs inline (in index order) when the pool is single-threaded, count
  /// <= 1, this thread is itself a pool worker, or another region is in
  /// flight. The first exception thrown by any body is rethrown here after
  /// the region drains.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// The process-wide pool every parallel loop in the library uses. Sized
  /// on first use from NFVM_THREADS (default 1, clamped to [1, 256]).
  static ThreadPool& global();

  /// Replaces the global pool (the CLI --threads flag). Must not race with
  /// a concurrent parallel_for on the old pool; call it from the main
  /// thread before any parallel work starts.
  static void set_global_threads(std::size_t num_threads);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nfvm::util
