// Minimal wall-clock stopwatch used to report algorithm running times in the
// benchmark harness (paper Fig. 5(d)-(f), Fig. 6(c)-(d)).
#pragma once

#include <chrono>

namespace nfvm::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed time since construction or the last reset, in seconds.
  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }
  double elapsed_us() const noexcept { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nfvm::util
