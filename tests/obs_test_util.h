// Minimal JSON parser for validating the observability exports in tests.
// Test-only: throws std::runtime_error with a byte offset on malformed
// input, which doubles as the well-formedness check for the writers.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace nfvm::test {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  bool has(const std::string& key) const {
    return is_object() && object.count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing key: " + key);
    return object.at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + peek() + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (v.object.count(key) > 0) fail("duplicate key: " + key);
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The writers only emit \u00XX for control chars; keep it simple.
          if (code > 0xFF) fail("unexpected non-latin \\u escape in test data");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      std::size_t consumed = 0;
      v.number = std::stod(text_.substr(start, pos_ - start), &consumed);
      if (consumed != pos_ - start) fail("malformed number");
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

inline JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace nfvm::test
