// Test-facing aliases for the obs:: JSON parser (which validates the
// observability exports). The parser used to live here; it was promoted to
// src/obs/json.h so the nfvm-report tool can load artifacts with it. Parser
// edge-case tests live in tests/test_obs_json.cpp.
#pragma once

#include "obs/json.h"

namespace nfvm::test {

using JsonValue = obs::JsonValue;

inline JsonValue parse_json(const std::string& text) {
  return obs::parse_json(text);
}

}  // namespace nfvm::test
