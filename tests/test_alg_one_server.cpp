#include "core/alg_one_server.h"

#include <gtest/gtest.h>

#include "core/appro_multi.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

struct PathFixture {
  topo::Topology topo;
  LinearCosts costs;
  nfv::Request request;

  PathFixture() {
    topo.name = "path5";
    topo.graph = graph::Graph(5);
    topo.graph.add_edge(0, 1, 1.0);
    topo.graph.add_edge(1, 2, 1.0);
    topo.graph.add_edge(2, 3, 1.0);
    topo.graph.add_edge(3, 4, 1.0);
    topo.servers = {2, 4};
    topo.link_bandwidth = {1000, 1000, 1000, 1000};
    topo.server_compute = {0, 0, 8000, 0, 8000};

    costs = uniform_costs(topo, 1.0, 0.001);

    request.id = 1;
    request.source = 0;
    request.destinations = {3};
    request.bandwidth_mbps = 100.0;
    request.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  }
};

TEST(AlgOneServer, AdmitsAndValidates) {
  PathFixture f;
  const OfflineSolution sol = alg_one_server(f.topo, f.costs, f.request);
  ASSERT_TRUE(sol.admitted) << sol.reject_reason;
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(f.topo.graph, f.request, sol.tree, &error))
      << error;
  EXPECT_EQ(sol.tree.servers.size(), 1u);
}

TEST(AlgOneServer, EvaluatesEveryServer) {
  PathFixture f;
  const OfflineSolution sol = alg_one_server(f.topo, f.costs, f.request);
  EXPECT_EQ(sol.combinations_explored, 2u);
}

TEST(AlgOneServer, PicksCheapestServer) {
  PathFixture f;
  const OfflineSolution sol = alg_one_server(f.topo, f.costs, f.request);
  ASSERT_TRUE(sol.admitted);
  // Server 2: 0->2 (200) + tree 2->3 (100). Server 4: 0->4 (400) + 4->3 (100).
  EXPECT_EQ(sol.tree.servers, (std::vector<graph::VertexId>{2}));
}

TEST(AlgOneServer, BackhaulWhenServerBehindDestination) {
  // Source 0, dest 1, only server at 3 on a path 0-1-2-3: traffic must go
  // 0->3 then back to 1; link 1-2 and 2-3 are used twice.
  topo::Topology topo;
  topo.graph = graph::Graph(4);
  topo.graph.add_edge(0, 1, 1.0);  // e0
  topo.graph.add_edge(1, 2, 1.0);  // e1
  topo.graph.add_edge(2, 3, 1.0);  // e2
  topo.servers = {3};
  topo.link_bandwidth = {1000, 1000, 1000};
  topo.server_compute = {0, 0, 0, 8000};
  const LinearCosts costs = uniform_costs(topo, 1.0, 0.001);

  nfv::Request request;
  request.id = 1;
  request.source = 0;
  request.destinations = {1};
  request.bandwidth_mbps = 100.0;
  request.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});

  const OfflineSolution sol = alg_one_server(topo, costs, request);
  ASSERT_TRUE(sol.admitted) << sol.reject_reason;
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(topo.graph, request, sol.tree, &error)) << error;
  // Links e1 and e2 carry the flow out and back.
  for (const auto& [edge, mult] : sol.tree.edge_uses) {
    if (edge == 1 || edge == 2) {
      EXPECT_EQ(mult, 2) << "edge " << edge;
    }
    if (edge == 0) {
      EXPECT_EQ(mult, 1);
    }
  }
  // Footprint charges the double traversal.
  const nfv::Footprint fp = sol.tree.footprint(request);
  double on_e1 = 0;
  for (const auto& [e, amount] : fp.bandwidth) {
    if (e == 1) on_e1 += amount;
  }
  EXPECT_DOUBLE_EQ(on_e1, 200.0);
}

TEST(AlgOneServer, NeverCheaperThanApproMultiK1OnAuxiliaryMetric) {
  // Appro_Multi with K=1 is a 2-approximation; the destination-MST baseline
  // is within 3x of the one-server optimum (MST <= 2 Steiner, attachment
  // <= Steiner), so the two costs are within these factors of each other.
  util::Rng rng(55);
  for (int trial = 0; trial < 5; ++trial) {
    const topo::Topology topo = topo::make_waxman(40, rng);
    const LinearCosts costs = random_costs(topo, rng);
    nfv::Request request;
    request.id = 1;
    request.source = static_cast<graph::VertexId>(trial);
    request.destinations = {10, 20, 30};
    request.bandwidth_mbps = 100.0;
    request.chain = nfv::ServiceChain({nfv::NetworkFunction::kProxy});

    ApproMultiOptions opts;
    opts.max_servers = 1;
    const OfflineSolution a = appro_multi(topo, costs, request, opts);
    const OfflineSolution b = alg_one_server(topo, costs, request);
    ASSERT_TRUE(a.admitted);
    ASSERT_TRUE(b.admitted);
    EXPECT_LE(a.tree.cost, 2.0 * b.tree.cost + 1e-9);
    EXPECT_LE(b.tree.cost, 3.0 * a.tree.cost + 1e-9);
  }
}

TEST(AlgOneServer, CapacitatedRejectsWhenSaturated) {
  PathFixture f;
  nfv::ResourceState state(f.topo);
  nfv::Footprint fp;
  fp.bandwidth = {{0, 950.0}};  // source's only outgoing link
  state.allocate(fp);
  const OfflineSolution sol = alg_one_server(f.topo, f.costs, f.request, &state);
  EXPECT_FALSE(sol.admitted);
}

TEST(AlgOneServer, DestinationEqualsServer) {
  PathFixture f;
  f.request.destinations = {2};
  const OfflineSolution sol = alg_one_server(f.topo, f.costs, f.request);
  ASSERT_TRUE(sol.admitted);
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(f.topo.graph, f.request, sol.tree, &error))
      << error;
}

TEST(AlgOneServer, SourceIsServer) {
  PathFixture f;
  f.request.source = 4;
  f.request.destinations = {0, 3};
  const OfflineSolution sol = alg_one_server(f.topo, f.costs, f.request);
  ASSERT_TRUE(sol.admitted);
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(f.topo.graph, f.request, sol.tree, &error))
      << error;
}

TEST(AlgOneServer, MalformedRequestThrows) {
  PathFixture f;
  f.request.bandwidth_mbps = 0.0;
  EXPECT_THROW(alg_one_server(f.topo, f.costs, f.request), std::invalid_argument);
}

}  // namespace
}  // namespace nfvm::core
