#include "core/appro_multi.h"

#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/subgraph.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

/// Path 0-1-2-3-4, servers at 2 and 4.
struct PathFixture {
  topo::Topology topo;
  LinearCosts costs;
  nfv::Request request;

  PathFixture() {
    topo.name = "path5";
    topo.graph = graph::Graph(5);
    topo.graph.add_edge(0, 1, 1.0);
    topo.graph.add_edge(1, 2, 1.0);
    topo.graph.add_edge(2, 3, 1.0);
    topo.graph.add_edge(3, 4, 1.0);
    topo.servers = {2, 4};
    topo.link_bandwidth = {1000, 1000, 1000, 1000};
    topo.server_compute = {0, 0, 8000, 0, 8000};

    costs = uniform_costs(topo, 1.0, 0.001);

    request.id = 1;
    request.source = 0;
    request.destinations = {3};
    request.bandwidth_mbps = 100.0;
    request.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  }
};

TEST(ApproMulti, AdmitsOnSimplePath) {
  PathFixture f;
  const OfflineSolution sol = appro_multi(f.topo, f.costs, f.request);
  ASSERT_TRUE(sol.admitted) << sol.reject_reason;
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(f.topo.graph, f.request, sol.tree, &error))
      << error;
}

TEST(ApproMulti, PicksNearServerOnPath) {
  PathFixture f;
  const OfflineSolution sol = appro_multi(f.topo, f.costs, f.request);
  ASSERT_TRUE(sol.admitted);
  // Route 0->2 (server) ->3 costs 3 links; using server 4 would cost 4 links
  // forward plus backhaul. The chain cost is negligible (0.001/MHz).
  EXPECT_EQ(sol.tree.servers, (std::vector<graph::VertexId>{2}));
  EXPECT_NEAR(sol.tree.cost, 300.0 + f.costs.server_cost(2, f.request.compute_demand_mhz()),
              1e-9);
}

TEST(ApproMulti, ExploresAllCombinationsForK2) {
  PathFixture f;
  ApproMultiOptions opts;
  opts.max_servers = 2;
  opts.search = ApproMultiOptions::Search::kLegacySweep;
  const OfflineSolution sol = appro_multi(f.topo, f.costs, f.request, opts);
  // C(2,1) + C(2,2) = 3 combinations, all evaluated by the legacy sweep.
  EXPECT_EQ(sol.combinations_explored, 3u);
  EXPECT_EQ(sol.combinations_pruned, 0u);

  // Branch-and-bound accounts for the same space: every combination is
  // either evaluated or pruned by the lower bound, never silently dropped.
  opts.search = ApproMultiOptions::Search::kBranchAndBound;
  const OfflineSolution bnb = appro_multi(f.topo, f.costs, f.request, opts);
  EXPECT_EQ(bnb.combinations_explored + bnb.combinations_pruned, 3u);
  EXPECT_EQ(bnb.tree.cost, sol.tree.cost);
}

TEST(ApproMulti, KZeroThrows) {
  PathFixture f;
  ApproMultiOptions opts;
  opts.max_servers = 0;
  EXPECT_THROW(appro_multi(f.topo, f.costs, f.request, opts), std::invalid_argument);
}

TEST(ApproMulti, MaxCombinationsCapsEnumeration) {
  PathFixture f;
  ApproMultiOptions opts;
  opts.max_servers = 2;
  opts.max_combinations = 1;
  const OfflineSolution sol = appro_multi(f.topo, f.costs, f.request, opts);
  EXPECT_EQ(sol.combinations_explored, 1u);
  EXPECT_TRUE(sol.admitted);  // the first combination already works here
}

TEST(ApproMulti, MalformedRequestThrows) {
  PathFixture f;
  f.request.destinations = {0};  // source as destination
  EXPECT_THROW(appro_multi(f.topo, f.costs, f.request), std::invalid_argument);
}

TEST(ApproMulti, CostNeverIncreasesWithK) {
  // Enumerating supersets of combinations can only improve the best tree.
  util::Rng rng(7);
  const topo::Topology topo = topo::make_waxman(40, rng);
  const LinearCosts costs = random_costs(topo, rng);
  nfv::Request request;
  request.id = 1;
  request.source = 0;
  request.destinations = {5, 12, 20, 33};
  request.bandwidth_mbps = 120.0;
  request.chain = nfv::ServiceChain({nfv::NetworkFunction::kFirewall});

  double last = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= 3; ++k) {
    ApproMultiOptions opts;
    opts.max_servers = k;
    const OfflineSolution sol = appro_multi(topo, costs, request, opts);
    ASSERT_TRUE(sol.admitted);
    EXPECT_LE(sol.tree.cost, last + 1e-9) << "K=" << k;
    last = sol.tree.cost;
  }
}

TEST(ApproMulti, MultiServerBeatsSingleWhenBandwidthExpensive) {
  // Star: source in the middle, two distant destination arms, each arm with
  // its own server near the destination. Cheap compute + expensive
  // bandwidth: K=2 should place a chain instance per arm.
  topo::Topology topo;
  topo.graph = graph::Graph(7);
  // Arm A: 0-1-2-3 (dest 3, server 2); Arm B: 0-4-5-6 (dest 6, server 5).
  topo.graph.add_edge(0, 1, 1.0);
  topo.graph.add_edge(1, 2, 1.0);
  topo.graph.add_edge(2, 3, 1.0);
  topo.graph.add_edge(0, 4, 1.0);
  topo.graph.add_edge(4, 5, 1.0);
  topo.graph.add_edge(5, 6, 1.0);
  topo.servers = {2, 5};
  topo.link_bandwidth.assign(6, 10000.0);
  topo.server_compute = {0, 0, 8000, 0, 0, 8000, 0};
  const LinearCosts costs = uniform_costs(topo, 10.0, 0.0001);

  nfv::Request request;
  request.id = 1;
  request.source = 0;
  request.destinations = {3, 6};
  request.bandwidth_mbps = 100.0;
  request.chain = nfv::ServiceChain({nfv::NetworkFunction::kIds});

  ApproMultiOptions k1;
  k1.max_servers = 1;
  ApproMultiOptions k2;
  k2.max_servers = 2;
  const OfflineSolution s1 = appro_multi(topo, costs, request, k1);
  const OfflineSolution s2 = appro_multi(topo, costs, request, k2);
  ASSERT_TRUE(s1.admitted);
  ASSERT_TRUE(s2.admitted);
  EXPECT_LT(s2.tree.cost, s1.tree.cost);
  EXPECT_EQ(s2.tree.servers.size(), 2u);
}

TEST(ApproMulti, SingleServerPreferredWhenComputeExpensive) {
  // Same star, but compute dominates: one instance should win.
  topo::Topology topo;
  topo.graph = graph::Graph(7);
  topo.graph.add_edge(0, 1, 1.0);
  topo.graph.add_edge(1, 2, 1.0);
  topo.graph.add_edge(2, 3, 1.0);
  topo.graph.add_edge(0, 4, 1.0);
  topo.graph.add_edge(4, 5, 1.0);
  topo.graph.add_edge(5, 6, 1.0);
  topo.servers = {2, 5};
  topo.link_bandwidth.assign(6, 10000.0);
  topo.server_compute = {0, 0, 8000, 0, 0, 8000, 0};
  const LinearCosts costs = uniform_costs(topo, 0.001, 10.0);

  nfv::Request request;
  request.id = 1;
  request.source = 0;
  request.destinations = {3, 6};
  request.bandwidth_mbps = 100.0;
  request.chain = nfv::ServiceChain({nfv::NetworkFunction::kIds});

  ApproMultiOptions k2;
  k2.max_servers = 2;
  const OfflineSolution sol = appro_multi(topo, costs, request, k2);
  ASSERT_TRUE(sol.admitted);
  EXPECT_EQ(sol.tree.servers.size(), 1u);
}

TEST(ApproMulti, EveryRouteProcessedBeforeDelivery) {
  util::Rng rng(99);
  const topo::Topology topo = topo::make_waxman(60, rng);
  const LinearCosts costs = random_costs(topo, rng);
  nfv::Request request;
  request.id = 1;
  request.source = 10;
  request.destinations = {3, 25, 40, 55};
  request.bandwidth_mbps = 80.0;
  request.chain = nfv::ServiceChain(
      {nfv::NetworkFunction::kNat, nfv::NetworkFunction::kIds});

  const OfflineSolution sol = appro_multi(topo, costs, request);
  ASSERT_TRUE(sol.admitted);
  for (const DestinationRoute& route : sol.tree.routes) {
    EXPECT_LE(route.server_index, route.walk.size() - 1);
    EXPECT_EQ(route.walk[route.server_index], route.server);
    EXPECT_TRUE(topo.is_server(route.server));
  }
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(topo.graph, request, sol.tree, &error)) << error;
}

TEST(ApproMultiCap, RejectsWhenLinksSaturated) {
  PathFixture f;
  nfv::ResourceState state(f.topo);
  nfv::Footprint fp;
  fp.bandwidth = {{1, 950.0}};  // link 1-2 keeps only 50 Mbps
  state.allocate(fp);

  ApproMultiOptions opts;
  opts.resources = &state;
  const OfflineSolution sol = appro_multi(f.topo, f.costs, f.request, opts);
  EXPECT_FALSE(sol.admitted);
  EXPECT_FALSE(sol.reject_reason.empty());
}

TEST(ApproMultiCap, RejectsWhenAllServersBusy) {
  PathFixture f;
  nfv::ResourceState state(f.topo);
  nfv::Footprint fp;
  fp.compute = {{2, 7999.0}, {4, 7999.0}};
  state.allocate(fp);

  ApproMultiOptions opts;
  opts.resources = &state;
  const OfflineSolution sol = appro_multi(f.topo, f.costs, f.request, opts);
  EXPECT_FALSE(sol.admitted);
  EXPECT_EQ(sol.reject_reason, "no server can host the service chain");
}

TEST(ApproMultiCap, AdmitsWhenResourcesSuffice) {
  PathFixture f;
  nfv::ResourceState state(f.topo);
  ApproMultiOptions opts;
  opts.resources = &state;
  const OfflineSolution sol = appro_multi(f.topo, f.costs, f.request, opts);
  ASSERT_TRUE(sol.admitted);
  // The caller can then charge the footprint.
  EXPECT_TRUE(state.can_allocate(sol.tree.footprint(f.request)));
}

TEST(ApproMultiCap, CapacitatedSolutionRespectsResiduals) {
  // Under partial load the capacitated variant must still produce a valid
  // tree whose footprint fits the residual resources.
  util::Rng rng(1234);
  const topo::Topology topo = topo::make_waxman(50, rng);
  const LinearCosts costs = random_costs(topo, rng);
  nfv::ResourceState state(topo);
  // Pre-load some links below b_k = 100 to force pruning and detours, only
  // choosing links whose loss keeps the pruned graph connected.
  std::vector<bool> pruned(topo.num_links(), false);
  for (graph::EdgeId e = 0; e < topo.num_links(); e += 5) {
    pruned[e] = true;
    const graph::Subgraph sub = graph::filter_edges(
        topo.graph, [&](graph::EdgeId x) { return !pruned[x]; });
    if (!graph::is_connected(sub.graph)) {
      pruned[e] = false;
      continue;
    }
    nfv::Footprint fp;
    fp.bandwidth = {{e, state.residual_bandwidth(e) - 60.0}};
    state.allocate(fp);
  }

  nfv::Request request;
  request.id = 1;
  request.source = 2;
  request.destinations = {11, 30, 44};
  request.bandwidth_mbps = 100.0;
  request.chain = nfv::ServiceChain({nfv::NetworkFunction::kProxy});

  ApproMultiOptions opts;
  opts.resources = &state;
  const OfflineSolution cap = appro_multi(topo, costs, request, opts);
  ASSERT_TRUE(cap.admitted) << cap.reject_reason;
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(topo.graph, request, cap.tree, &error)) << error;
  EXPECT_TRUE(state.can_allocate(cap.tree.footprint(request)));
  // Every link the tree touches kept at least b_k residual, so pruning
  // worked as specified.
  for (const auto& [edge, mult] : cap.tree.edge_uses) {
    EXPECT_GE(state.residual_bandwidth(edge), request.bandwidth_mbps - 1e-9);
  }
}

TEST(ApproMulti, SourceColocatedWithServer) {
  PathFixture f;
  f.request.source = 2;  // the server switch itself
  f.request.destinations = {0, 4};
  const OfflineSolution sol = appro_multi(f.topo, f.costs, f.request);
  ASSERT_TRUE(sol.admitted) << sol.reject_reason;
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(f.topo.graph, f.request, sol.tree, &error))
      << error;
}

TEST(ApproMulti, DestinationIsServer) {
  PathFixture f;
  f.request.destinations = {2, 4};  // both destinations host servers
  const OfflineSolution sol = appro_multi(f.topo, f.costs, f.request);
  ASSERT_TRUE(sol.admitted) << sol.reject_reason;
  std::string error;
  EXPECT_TRUE(validate_pseudo_tree(f.topo.graph, f.request, sol.tree, &error))
      << error;
}

TEST(ApproMulti, ServersUsedNeverExceedK) {
  util::Rng rng(31);
  const topo::Topology topo = topo::make_waxman(50, rng);
  const LinearCosts costs = random_costs(topo, rng);
  for (std::size_t k = 1; k <= 3; ++k) {
    nfv::Request request;
    request.id = k;
    request.source = 1;
    request.destinations = {7, 19, 28, 41, 48};
    request.bandwidth_mbps = 150.0;
    request.chain = nfv::ServiceChain({nfv::NetworkFunction::kFirewall});
    ApproMultiOptions opts;
    opts.max_servers = k;
    const OfflineSolution sol = appro_multi(topo, costs, request, opts);
    ASSERT_TRUE(sol.admitted);
    EXPECT_LE(sol.tree.servers.size(), k);
  }
}

}  // namespace
}  // namespace nfvm::core
