// Equivalence and validity of the shared-Dijkstra Appro_Multi engine.
#include <gtest/gtest.h>

#include "core/appro_multi.h"
#include "core/exact_offline.h"
#include "sim/request_gen.h"
#include "topology/geant.h"
#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::core {
namespace {

struct Instance {
  topo::Topology topo;
  LinearCosts costs;
  nfv::Request request;
};

/// Continuous random costs: shortest paths unique almost surely, so the
/// reference and shared engines must produce identical results.
Instance random_instance(std::uint64_t seed, std::size_t n, std::size_t dests) {
  util::Rng rng(seed);
  Instance inst;
  inst.topo = topo::make_waxman(n, rng);
  inst.costs = random_costs(inst.topo, rng);
  inst.request.id = seed;
  inst.request.bandwidth_mbps = rng.uniform_real(50, 200);
  inst.request.chain = nfv::random_service_chain(rng, 1, 3);
  const auto picks = rng.sample_without_replacement(n, dests + 1);
  inst.request.source = static_cast<graph::VertexId>(picks[0]);
  for (std::size_t i = 1; i < picks.size(); ++i) {
    inst.request.destinations.push_back(static_cast<graph::VertexId>(picks[i]));
  }
  return inst;
}

struct Case {
  std::uint64_t seed;
  std::size_t n;
  std::size_t dests;
  std::size_t k;
};

class SharedEngineTest : public ::testing::TestWithParam<Case> {};

TEST_P(SharedEngineTest, MatchesReferenceOnUniqueShortestPaths) {
  const Case& c = GetParam();
  const Instance inst = random_instance(c.seed, c.n, c.dests);

  ApproMultiOptions ref;
  ref.max_servers = c.k;
  ApproMultiOptions fast = ref;
  fast.engine = ApproMultiOptions::Engine::kSharedDijkstra;

  const OfflineSolution a = appro_multi(inst.topo, inst.costs, inst.request, ref);
  const OfflineSolution b = appro_multi(inst.topo, inst.costs, inst.request, fast);
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  EXPECT_NEAR(a.tree.cost, b.tree.cost, 1e-9) << "engines diverged";
  EXPECT_EQ(a.tree.servers, b.tree.servers);
  EXPECT_EQ(a.tree.edge_uses, b.tree.edge_uses);
  EXPECT_EQ(a.combinations_explored, b.combinations_explored);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, SharedEngineTest,
    ::testing::Values(Case{501, 20, 3, 1}, Case{502, 20, 3, 2},
                      Case{503, 25, 4, 2}, Case{504, 25, 4, 3},
                      Case{505, 30, 5, 2}, Case{506, 30, 2, 3},
                      Case{507, 35, 6, 2}, Case{508, 40, 4, 3},
                      Case{509, 22, 3, 3}, Case{510, 28, 5, 1},
                      // Source adjacent to servers exercises the zero-cost
                      // star composition; random draws cover it across seeds.
                      Case{511, 15, 3, 2}, Case{512, 15, 4, 3}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(SharedEngine, ValidAndWithinBoundOnTieHeavyGraphs) {
  // Uniform costs create massive shortest-path ties; the engines may pick
  // different (equally valid) trees. Validity and the 2x-exact bound must
  // still hold.
  for (std::uint64_t seed : {601u, 602u, 603u}) {
    util::Rng rng(seed);
    Instance inst;
    inst.topo = topo::make_waxman(18, rng);
    inst.costs = uniform_costs(inst.topo, 1.0, 0.01);
    inst.request.id = seed;
    inst.request.bandwidth_mbps = 100.0;
    inst.request.chain = nfv::ServiceChain({nfv::NetworkFunction::kFirewall});
    const auto picks = rng.sample_without_replacement(18, 4);
    inst.request.source = static_cast<graph::VertexId>(picks[0]);
    for (std::size_t i = 1; i < picks.size(); ++i) {
      inst.request.destinations.push_back(static_cast<graph::VertexId>(picks[i]));
    }

    ApproMultiOptions fast;
    fast.max_servers = 2;
    fast.engine = ApproMultiOptions::Engine::kSharedDijkstra;
    const OfflineSolution sol = appro_multi(inst.topo, inst.costs, inst.request, fast);
    ASSERT_TRUE(sol.admitted);
    std::string error;
    EXPECT_TRUE(validate_pseudo_tree(inst.topo.graph, inst.request, sol.tree, &error))
        << error;

    ExactOfflineOptions eopts;
    eopts.max_servers = 2;
    const OfflineSolution exact =
        exact_auxiliary(inst.topo, inst.costs, inst.request, eopts);
    ASSERT_TRUE(exact.admitted);
    EXPECT_LE(sol.tree.cost, 2.0 * exact.tree.cost + 1e-9);
    EXPECT_GE(sol.tree.cost + 1e-9, exact.tree.cost);
  }
}

TEST(SharedEngine, WorksOnGeantWithSourceAdjacentServers) {
  // Amsterdam is adjacent to the London and Frankfurt servers: the zero-cost
  // star has multiple members. Continuous random costs keep paths unique.
  util::Rng rng(9);
  const topo::Topology topo = topo::make_geant(rng);
  const LinearCosts costs = random_costs(topo, rng);
  nfv::Request r;
  r.id = 1;
  r.source = 0;  // Amsterdam
  r.destinations = {1, 16, 22, 29};
  r.bandwidth_mbps = 140.0;
  r.chain = nfv::ServiceChain({nfv::NetworkFunction::kIds});

  ApproMultiOptions ref;
  ref.max_servers = 3;
  ApproMultiOptions fast = ref;
  fast.engine = ApproMultiOptions::Engine::kSharedDijkstra;
  const OfflineSolution a = appro_multi(topo, costs, r, ref);
  const OfflineSolution b = appro_multi(topo, costs, r, fast);
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  EXPECT_NEAR(a.tree.cost, b.tree.cost, 1e-9);
  EXPECT_EQ(a.tree.edge_uses, b.tree.edge_uses);
}

TEST(SharedEngine, CapacitatedRunsMatch) {
  const Instance inst = random_instance(701, 30, 4);
  nfv::ResourceState state_a(inst.topo);
  nfv::ResourceState state_b(inst.topo);
  // Preload a few links identically.
  for (graph::EdgeId e = 0; e < inst.topo.num_links(); e += 6) {
    nfv::Footprint fp;
    fp.bandwidth = {{e, 300.0}};
    state_a.allocate(fp);
    state_b.allocate(fp);
  }
  ApproMultiOptions ref;
  ref.max_servers = 2;
  ref.resources = &state_a;
  ApproMultiOptions fast = ref;
  fast.resources = &state_b;
  fast.engine = ApproMultiOptions::Engine::kSharedDijkstra;
  const OfflineSolution a = appro_multi(inst.topo, inst.costs, inst.request, ref);
  const OfflineSolution b = appro_multi(inst.topo, inst.costs, inst.request, fast);
  ASSERT_EQ(a.admitted, b.admitted);
  if (a.admitted) {
    EXPECT_NEAR(a.tree.cost, b.tree.cost, 1e-9);
    EXPECT_EQ(a.tree.edge_uses, b.tree.edge_uses);
  }
}

TEST(SharedEngine, RejectsNonKmbSteinerEngine) {
  const Instance inst = random_instance(801, 15, 2);
  ApproMultiOptions opts;
  opts.engine = ApproMultiOptions::Engine::kSharedDijkstra;
  opts.steiner_engine = graph::SteinerEngine::kTakahashiMatsuyama;
  EXPECT_THROW(appro_multi(inst.topo, inst.costs, inst.request, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace nfvm::core
