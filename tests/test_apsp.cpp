#include "graph/apsp.h"

#include <gtest/gtest.h>

#include "topology/waxman.h"
#include "util/rng.h"

namespace nfvm::graph {
namespace {

Graph triangle_plus_isolated() {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 5.0);
  return g;  // vertex 3 isolated
}

TEST(Apsp, DistancesMatchDijkstra) {
  const Graph g = triangle_plus_isolated();
  const AllPairsShortestPaths apsp(g);
  EXPECT_DOUBLE_EQ(apsp.distance(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(apsp.distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(apsp.distance(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(apsp.distance(2, 0), 3.0);  // symmetric
  EXPECT_FALSE(apsp.reachable(0, 3));
  EXPECT_TRUE(apsp.reachable(3, 3));
}

TEST(Apsp, DiameterIgnoresInfinitePairs) {
  const Graph g = triangle_plus_isolated();
  const AllPairsShortestPaths apsp(g);
  EXPECT_DOUBLE_EQ(apsp.diameter(), 3.0);
  EXPECT_FALSE(apsp.connected());
}

TEST(Apsp, ConnectedGraphReportsConnected) {
  util::Rng rng(1);
  const topo::Topology t = topo::make_waxman(40, rng);
  const AllPairsShortestPaths apsp(t.graph);
  EXPECT_TRUE(apsp.connected());
  EXPECT_GT(apsp.diameter(), 0.0);
}

TEST(Apsp, PathsRequireKeepParents) {
  const Graph g = triangle_plus_isolated();
  const AllPairsShortestPaths without(g, false);
  EXPECT_THROW(without.path(0, 2), std::logic_error);
  EXPECT_THROW(without.path_edges_between(0, 2), std::logic_error);

  const AllPairsShortestPaths with(g, true);
  EXPECT_EQ(with.path(0, 2), (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(with.path_edges_between(0, 2).size(), 2u);
  EXPECT_TRUE(with.path(0, 3).empty());
}

TEST(Apsp, OutOfRangeThrows) {
  const Graph g = triangle_plus_isolated();
  const AllPairsShortestPaths apsp(g);
  EXPECT_THROW(apsp.distance(0, 9), std::out_of_range);
  EXPECT_THROW(apsp.distance(9, 0), std::out_of_range);
}

TEST(Apsp, AgreesWithPerSourceDijkstraOnRandomGraph) {
  util::Rng rng(7);
  const topo::Topology t = topo::make_waxman(30, rng);
  const AllPairsShortestPaths apsp(t.graph, true);
  for (VertexId s : {VertexId{0}, VertexId{13}, VertexId{29}}) {
    const ShortestPaths sp = dijkstra(t.graph, s);
    for (VertexId v = 0; v < t.graph.num_vertices(); ++v) {
      EXPECT_NEAR(apsp.distance(s, v), sp.dist[v], 1e-12);
    }
  }
}

TEST(Apsp, TriangleInequalityHolds) {
  util::Rng rng(9);
  const topo::Topology t = topo::make_waxman(25, rng);
  const AllPairsShortestPaths apsp(t.graph);
  for (VertexId a = 0; a < 25; ++a) {
    for (VertexId b = 0; b < 25; ++b) {
      for (VertexId c = 0; c < 25; c += 5) {
        EXPECT_LE(apsp.distance(a, b),
                  apsp.distance(a, c) + apsp.distance(c, b) + 1e-9);
      }
    }
  }
}

TEST(Apsp, EmptyGraph) {
  Graph g;
  const AllPairsShortestPaths apsp(g);
  EXPECT_EQ(apsp.num_vertices(), 0u);
  EXPECT_DOUBLE_EQ(apsp.diameter(), 0.0);
  EXPECT_TRUE(apsp.connected());
}

}  // namespace
}  // namespace nfvm::graph
