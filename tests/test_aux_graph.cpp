#include "core/aux_graph.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace nfvm::core {
namespace {

/// 5-switch path 0-1-2-3-4 with servers at 2 and 4; unit capacities large.
struct Fixture {
  topo::Topology topo;
  LinearCosts costs;
  nfv::Request request;

  Fixture() {
    topo.name = "path5";
    topo.graph = graph::Graph(5);
    topo.graph.add_edge(0, 1, 1.0);  // e0
    topo.graph.add_edge(1, 2, 1.0);  // e1
    topo.graph.add_edge(2, 3, 1.0);  // e2
    topo.graph.add_edge(3, 4, 1.0);  // e3
    topo.servers = {2, 4};
    topo.link_bandwidth = {1000, 1000, 1000, 1000};
    topo.server_compute = {0, 0, 8000, 0, 8000};

    costs = uniform_costs(topo, /*link=*/1.0, /*server=*/0.01);

    request.id = 1;
    request.source = 0;
    request.destinations = {3};
    request.bandwidth_mbps = 100.0;
    request.chain = nfv::ServiceChain({nfv::NetworkFunction::kNat});
  }
};

TEST(WorkContext, UncapacitatedKeepsAllLinks) {
  Fixture f;
  const WorkContext ctx = build_work_context(f.topo, f.costs, f.request, nullptr);
  EXPECT_EQ(ctx.cost_graph.num_edges(), 4u);
  EXPECT_TRUE(ctx.destinations_reachable);
  EXPECT_EQ(ctx.eligible_servers, (std::vector<graph::VertexId>{2, 4}));
}

TEST(WorkContext, EdgeWeightsAreCostTimesBandwidth) {
  Fixture f;
  const WorkContext ctx = build_work_context(f.topo, f.costs, f.request, nullptr);
  for (graph::EdgeId e = 0; e < ctx.cost_graph.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(ctx.cost_graph.weight(e), 100.0);  // 1.0 * 100 Mbps
  }
}

TEST(WorkContext, ServerChainCostUsesUnitCost) {
  Fixture f;
  const WorkContext ctx = build_work_context(f.topo, f.costs, f.request, nullptr);
  const double demand = f.request.compute_demand_mhz();
  EXPECT_DOUBLE_EQ(ctx.server_chain_cost[2], 0.01 * demand);
  EXPECT_DOUBLE_EQ(ctx.server_chain_cost[0], 0.0);
}

TEST(WorkContext, CapacitatedPrunesLinks) {
  Fixture f;
  nfv::ResourceState state(f.topo);
  nfv::Footprint fp;
  fp.bandwidth = {{1, 950.0}};  // leaves 50 < b_k = 100 on link 1
  state.allocate(fp);
  const WorkContext ctx = build_work_context(f.topo, f.costs, f.request, &state);
  EXPECT_EQ(ctx.cost_graph.num_edges(), 3u);
  EXPECT_FALSE(ctx.destinations_reachable);  // path graph loses connectivity
}

TEST(WorkContext, CapacitatedPrunesServers) {
  Fixture f;
  nfv::ResourceState state(f.topo);
  nfv::Footprint fp;
  fp.compute = {{2, 7999.0}};
  state.allocate(fp);
  const WorkContext ctx = build_work_context(f.topo, f.costs, f.request, &state);
  EXPECT_EQ(ctx.eligible_servers, (std::vector<graph::VertexId>{4}));
}

TEST(WorkContext, ToPhysicalMapsBack) {
  Fixture f;
  nfv::ResourceState state(f.topo);
  nfv::Footprint fp;
  fp.bandwidth = {{0, 950.0}};
  state.allocate(fp);
  const WorkContext ctx = build_work_context(f.topo, f.costs, f.request, &state);
  ASSERT_EQ(ctx.to_physical.size(), 3u);
  EXPECT_EQ(ctx.to_physical[0], 1u);  // edge 0 was dropped
}

TEST(WorkContext, RejectsMalformedCostTables) {
  Fixture f;
  LinearCosts bad = f.costs;
  bad.link_unit_cost.pop_back();
  EXPECT_THROW(build_work_context(f.topo, bad, f.request, nullptr),
               std::invalid_argument);
}

TEST(AuxGraph, StructureMatchesPaper) {
  Fixture f;
  const WorkContext ctx = build_work_context(f.topo, f.costs, f.request, nullptr);
  const std::vector<graph::VertexId> combo{2, 4};
  const AuxiliaryGraph aux = build_auxiliary_graph(ctx, f.request.source, combo);

  EXPECT_EQ(aux.graph.num_vertices(), 6u);  // V + s'_k
  EXPECT_EQ(aux.virtual_source, 5u);
  EXPECT_EQ(aux.num_real_edges, 4u);
  EXPECT_EQ(aux.graph.num_edges(), 6u);  // 4 real + 2 virtual
  EXPECT_TRUE(aux.is_virtual(4));
  EXPECT_TRUE(aux.is_virtual(5));
  EXPECT_FALSE(aux.is_virtual(3));
  EXPECT_EQ(aux.virtual_index(4), 0u);
  EXPECT_EQ(aux.virtual_index(5), 1u);
}

TEST(AuxGraph, VirtualEdgeWeightIsPathPlusChainCost) {
  Fixture f;
  const WorkContext ctx = build_work_context(f.topo, f.costs, f.request, nullptr);
  const AuxiliaryGraph aux =
      build_auxiliary_graph(ctx, f.request.source, std::vector<graph::VertexId>{2});
  // Shortest path 0->2 costs 200 (two links at 100 each), plus chain cost.
  const double chain_cost = ctx.server_chain_cost[2];
  EXPECT_DOUBLE_EQ(aux.graph.weight(4), 200.0 + chain_cost);
  EXPECT_EQ(aux.virtual_paths[0], (std::vector<graph::EdgeId>{0, 1}));
}

TEST(AuxGraph, ZeroCostCorrectionAppliesToSourceServerLinks) {
  // Make the source adjacent to a server: source 1, server 2, link e1.
  Fixture f;
  f.request.source = 1;
  const WorkContext ctx = build_work_context(f.topo, f.costs, f.request, nullptr);
  const AuxiliaryGraph aux =
      build_auxiliary_graph(ctx, f.request.source, std::vector<graph::VertexId>{2});
  EXPECT_DOUBLE_EQ(aux.graph.weight(1), 0.0);  // physical (1,2) zeroed
  EXPECT_DOUBLE_EQ(aux.graph.weight(0), 100.0);
}

TEST(AuxGraph, NoZeroCostForNonComboServers) {
  Fixture f;
  f.request.source = 3;  // adjacent to servers 2 and 4
  f.request.destinations = {0};
  const WorkContext ctx = build_work_context(f.topo, f.costs, f.request, nullptr);
  const AuxiliaryGraph aux =
      build_auxiliary_graph(ctx, f.request.source, std::vector<graph::VertexId>{4});
  EXPECT_DOUBLE_EQ(aux.graph.weight(3), 0.0);    // (3,4): combo server
  EXPECT_DOUBLE_EQ(aux.graph.weight(2), 100.0);  // (2,3): server not in combo
}

TEST(AuxGraph, EmptyComboThrows) {
  Fixture f;
  const WorkContext ctx = build_work_context(f.topo, f.costs, f.request, nullptr);
  EXPECT_THROW(
      build_auxiliary_graph(ctx, f.request.source, std::vector<graph::VertexId>{}),
      std::invalid_argument);
}

TEST(AuxGraph, SourceCoLocatedServerGetsZeroPath) {
  Fixture f;
  f.request.source = 2;  // the server itself
  f.request.destinations = {4};
  const WorkContext ctx = build_work_context(f.topo, f.costs, f.request, nullptr);
  const AuxiliaryGraph aux =
      build_auxiliary_graph(ctx, f.request.source, std::vector<graph::VertexId>{2});
  EXPECT_DOUBLE_EQ(aux.graph.weight(4), ctx.server_chain_cost[2]);
  EXPECT_TRUE(aux.virtual_paths[0].empty());
}

}  // namespace
}  // namespace nfvm::core
